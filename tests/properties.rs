//! Cross-crate property-based tests on randomly generated designs.

use operon::config::OperonConfig;
use operon::flow::OperonFlow;
use operon_cluster::{build_hyper_nets, ClusterConfig};
use operon_netlist::synth::{generate, HubLayout, SynthConfig};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = SynthConfig> {
    (
        1u64..1000, // proxy for the seed via name uniqueness
        8usize..80, // target bits
        1usize..6,  // min bus width
        1usize..4,  // fanout max
        prop_oneof![Just(HubLayout::Random), Just(HubLayout::EdgeInterfaces)],
        0.0f64..1.0, // distant sink probability
    )
        .prop_map(|(tag, bits, min_w, fan, layout, distant)| SynthConfig {
            name: format!("prop{tag}"),
            die_cm: 1.0,
            target_bits: bits,
            bits_per_group: (min_w, min_w + 6),
            sinks_per_bit: (1, fan),
            hub_count: 6,
            hub_radius: 200,
            bit_pitch: 10,
            distant_sink_prob: distant,
            hub_layout: layout,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn clustering_partitions_bits(cfg in arb_config(), seed in 0u64..1000) {
        let design = generate(&cfg, seed);
        let nets = build_hyper_nets(&design, &ClusterConfig::default());
        let total: usize = nets.iter().map(|n| n.bit_count()).sum();
        prop_assert_eq!(total, design.bit_count());
        for net in &nets {
            prop_assert!(net.bit_count() <= 32);
            prop_assert!(net.root_pin().source_count() > 0);
        }
    }

    #[test]
    fn flow_power_is_bounded_by_all_electrical(cfg in arb_config(), seed in 0u64..1000) {
        // OPERON's selection can never cost more than routing every hyper
        // net on its electrical fallback (the selection minimizes over a
        // set containing exactly that assignment).
        let design = generate(&cfg, seed);
        let result = OperonFlow::new(OperonConfig::default())
            .run(&design)
            .expect("flow");
        let all_electrical: f64 = result
            .candidates
            .iter()
            .map(|nc| nc.electrical().total_power_mw() + nc.fanout_power_mw)
            .sum();
        prop_assert!(result.total_power_mw() <= all_electrical + 1e-6);
    }

    #[test]
    fn wdm_counts_bounded(cfg in arb_config(), seed in 0u64..1000) {
        let design = generate(&cfg, seed);
        let config = OperonConfig::default();
        let result = OperonFlow::new(config.clone()).run(&design).expect("flow");
        let plan = &result.wdm;
        prop_assert!(plan.final_count() <= plan.initial_count);
        prop_assert!(plan.final_count() <= plan.connections.len());
        // Lower bound per orientation: total channels / capacity.
        let total_bits: usize = plan.connections.iter().map(|c| c.bits).sum();
        prop_assert!(
            plan.final_count() >= total_bits.div_ceil(config.optical.wdm_capacity).min(1)
        );
    }

    #[test]
    fn io_round_trip_any_design(cfg in arb_config(), seed in 0u64..1000) {
        let design = generate(&cfg, seed);
        let text = operon_netlist::io::write_design(&design);
        let back = operon_netlist::io::read_design(&text).expect("parse");
        prop_assert_eq!(design, back);
    }
}
