//! Cross-crate integration tests of the extension features: timing,
//! thermal pricing, laser budgets, wavelength channels, SVG rendering,
//! and the incremental (ECO) flow.

use operon::config::OperonConfig;
use operon::flow::OperonFlow;
use operon::render::{render_svg, RenderOptions};
use operon::report::{laser_report, thermal_report};
use operon::wdm::channels::{assign_channels, validate_channels};
use operon::CrossingIndex;
use operon_netlist::stats::DesignStats;
use operon_netlist::synth::{generate, SynthConfig};
use operon_optics::linkbudget::LinkBudget;
use operon_optics::thermal::ThermalProfile;

fn flow_and_result() -> (
    OperonConfig,
    operon_netlist::Design,
    operon::flow::FlowResult,
) {
    let design = generate(&SynthConfig::medium(), 29);
    let config = OperonConfig::default();
    let result = OperonFlow::new(config.clone()).run(&design).expect("flow");
    (config, design, result)
}

#[test]
fn wavelength_channels_validate_on_real_flows() {
    let (config, _design, result) = flow_and_result();
    let channels = assign_channels(&result.wdm, config.optical.wdm_capacity);
    validate_channels(&result.wdm, &channels, config.optical.wdm_capacity)
        .expect("channel assignment is legal");
    // Spot-check: the busiest waveguide is tightly packed from channel 0.
    if let Some(wc) = channels.iter().max_by_key(|wc| wc.used()) {
        let lowest = wc.blocks.iter().map(|b| b.first).min().expect("non-empty");
        assert_eq!(lowest, 0);
    }
}

#[test]
fn laser_budget_closes_for_accepted_selections() {
    let (config, _design, result) = flow_and_result();
    let crossings = CrossingIndex::build(&result.candidates);
    let resolved = config.resolved_for(result.hyper_nets.iter().map(|n| n.bit_count()));
    // A budget matching the configured l_m must close every link.
    let budget = LinkBudget::paper_defaults();
    assert!((budget.max_loss_db() - resolved.optical.max_loss_db).abs() < 1e-9);
    let report = laser_report(
        &result.candidates,
        &crossings,
        &result.selection.choice,
        &budget,
        &resolved.optical,
    );
    assert!(report.worst_headroom_db >= -1e-9, "{report:?}");
    assert!(report.total_laser_mw > 0.0);
    // A 10 dB tighter receiver cannot close the worst link.
    let tight = LinkBudget {
        sensitivity_dbm: budget.sensitivity_dbm + 10.0,
        ..budget
    };
    let tight_report = laser_report(
        &result.candidates,
        &crossings,
        &result.selection.choice,
        &tight,
        &resolved.optical,
    );
    assert!(tight_report.worst_headroom_db < report.worst_headroom_db);
}

#[test]
fn thermal_stress_costs_more_than_calm() {
    let (_config, _design, result) = flow_and_result();
    let calm = thermal_report(
        &result.candidates,
        &result.selection.choice,
        &ThermalProfile::uniform(55.0),
    );
    let stressed = thermal_report(
        &result.candidates,
        &result.selection.choice,
        &ThermalProfile::stressed(2.0),
    );
    assert_eq!(calm.tuning_power_mw, 0.0);
    assert!(stressed.tuning_power_mw > 0.0);
    assert_eq!(calm.device_sites, stressed.device_sites);
}

#[test]
fn svg_renders_every_selected_route() {
    let (_config, design, result) = flow_and_result();
    let svg = render_svg(
        design.die(),
        &result.candidates,
        &result.selection.choice,
        Some(&result.wdm),
        &RenderOptions::default(),
    );
    let optical_segments: usize = result
        .candidates
        .iter()
        .zip(&result.selection.choice)
        .map(|(nc, &j)| nc.candidates[j].optical_segments.len())
        .sum();
    assert_eq!(svg.matches("class=\"waveguide\"").count(), optical_segments);
    assert_eq!(
        svg.matches("class=\"wdm\"").count(),
        result.wdm.final_count()
    );
}

#[test]
fn eco_after_group_removal_matches_fresh() {
    let design = generate(&SynthConfig::small(), 31);
    let flow = OperonFlow::new(OperonConfig::default());
    let previous = flow.run(&design).expect("run");

    // Remove the last group (ids stay dense).
    let mut trimmed = operon_netlist::Design::new(design.name(), design.die());
    let keep = design.group_count() - 1;
    for g in design.groups().iter().take(keep) {
        trimmed.push_group(g.clone());
    }
    let eco = flow.run_eco(&trimmed, &design, &previous).expect("eco");
    let fresh = flow.run(&trimmed).expect("fresh");
    assert_eq!(eco.selection.choice, fresh.selection.choice);
    assert_eq!(eco.total_power_mw(), fresh.total_power_mw());
}

#[test]
fn optical_offload_relieves_electrical_congestion() {
    // OPERON's selection vs. forcing every net onto its electrical
    // fallback: the hybrid must never be more congested, and on a
    // long-haul design the relief should be dramatic.
    let (config, design, result) = flow_and_result();
    let tracks = 64;
    let hybrid = operon::report::congestion_report(
        design.die(),
        config.powermap_cells,
        &result.candidates,
        &result.selection.choice,
        tracks,
    );
    let all_electrical: Vec<usize> = result
        .candidates
        .iter()
        .map(|nc| nc.electrical_idx)
        .collect();
    let copper = operon::report::congestion_report(
        design.die(),
        config.powermap_cells,
        &result.candidates,
        &all_electrical,
        tracks,
    );
    assert!(hybrid.peak_utilization <= copper.peak_utilization + 1e-9);
    assert!(hybrid.overflow_cells <= copper.overflow_cells);
    assert!(
        hybrid.utilization.total() < copper.utilization.total() * 0.5,
        "long-haul traffic moved to the optical layer: {} vs {}",
        hybrid.utilization.total(),
        copper.utilization.total()
    );
}

#[test]
fn design_stats_reflect_generator_configuration() {
    let narrow = SynthConfig {
        distant_sink_prob: 0.0,
        ..SynthConfig::medium()
    };
    let wide = SynthConfig {
        distant_sink_prob: 1.0,
        ..SynthConfig::medium()
    };
    let near = DesignStats::of(&generate(&narrow, 7));
    let far = DesignStats::of(&generate(&wide, 7));
    assert!(
        far.span_cm.1 > near.span_cm.1,
        "distant sinks must lengthen spans: {:.2} vs {:.2}",
        far.span_cm.1,
        near.span_cm.1
    );
    assert!(far.long_haul_fraction >= near.long_haul_fraction);
}
