//! End-to-end integration tests spanning every crate: benchmark
//! generation -> clustering -> co-design -> selection -> WDM assignment.

use operon::config::{OperonConfig, Selector};
use operon::flow::OperonFlow;
use operon::formulation::{loaded_path_losses, selection_feasible};
use operon::CrossingIndex;
use operon_netlist::synth::{generate, SynthConfig};

fn small() -> operon_netlist::Design {
    generate(&SynthConfig::small(), 7)
}

fn medium() -> operon_netlist::Design {
    generate(&SynthConfig::medium(), 7)
}

#[test]
fn lr_flow_produces_consistent_result() {
    let design = medium();
    let config = OperonConfig::default();
    let result = OperonFlow::new(config.clone()).run(&design).expect("flow");

    // One choice per hyper net, every choice in range.
    assert_eq!(result.selection.choice.len(), result.candidates.len());
    for (nc, &j) in result.candidates.iter().zip(&result.selection.choice) {
        assert!(j < nc.candidates.len());
    }
    // Bit conservation: hyper nets partition the design's bits.
    let total_bits: usize = result.hyper_nets.iter().map(|n| n.bit_count()).sum();
    assert_eq!(total_bits, design.bit_count());
    // Reported power equals the recomputed selection power.
    let recomputed =
        operon::formulation::selection_power_mw(&result.candidates, &result.selection.choice);
    assert!((recomputed - result.total_power_mw()).abs() < 1e-9);
}

#[test]
fn final_selection_meets_detection_constraints() {
    let design = medium();
    let config = OperonConfig::default();
    let result = OperonFlow::new(config.clone()).run(&design).expect("flow");
    // Rebuild the crossing index and verify every loaded path fits the
    // budget under the instance-resolved sharing factor.
    let resolved = config.resolved_for(result.hyper_nets.iter().map(|n| n.bit_count()));
    let crossings = CrossingIndex::build(&result.candidates);
    assert!(selection_feasible(
        &result.candidates,
        &crossings,
        &result.selection.choice,
        &resolved.optical
    ));
    for i in 0..result.candidates.len() {
        for load in loaded_path_losses(
            &result.candidates,
            &crossings,
            &result.selection.choice,
            i,
            &resolved.optical,
        ) {
            assert!(load <= resolved.optical.max_loss_db + 1e-9);
        }
    }
}

#[test]
fn wdm_stage_invariants() {
    let design = medium();
    let config = OperonConfig::default();
    let result = OperonFlow::new(config.clone()).run(&design).expect("flow");

    let plan = &result.wdm;
    assert!(plan.final_count() <= plan.initial_count);

    // Channel conservation: every connection's bits are fully assigned.
    let mut assigned = vec![0usize; plan.connections.len()];
    for w in &plan.wdms {
        let mut used = 0;
        for &(c, b) in &w.assigned {
            assigned[c] += b;
            used += b;
        }
        assert!(used <= config.optical.wdm_capacity, "overfull WDM");
        assert!(used > 0, "idle WDM not removed");
    }
    for (c, conn) in plan.connections.iter().enumerate() {
        assert_eq!(assigned[c], conn.bits, "connection {c} not fully carried");
    }
}

#[test]
fn ilp_and_lr_agree_on_tiny_designs() {
    let design = small();
    let lr = OperonFlow::new(OperonConfig::default())
        .run(&design)
        .expect("LR flow");
    let config = OperonConfig {
        selector: Selector::Ilp {
            time_limit_secs: 60,
        },
        ..OperonConfig::default()
    };
    let ilp = OperonFlow::new(config).run(&design).expect("ILP flow");
    // The ILP is warm-started with LR, so it can only match or improve.
    assert!(ilp.total_power_mw() <= lr.total_power_mw() + 1e-6);
}

#[test]
fn paper_ordering_holds_on_medium_designs() {
    // Electrical > GLOW >= OPERON — the Table 1 ordering — across seeds.
    for seed in [1u64, 5, 9] {
        let design = generate(&SynthConfig::medium(), seed);
        let config = OperonConfig::default();
        let flow = OperonFlow::new(config.clone());
        let operon_power = flow.run(&design).expect("flow").total_power_mw();
        let glow_power = flow.run_glow(&design).expect("glow").selection.power_mw;
        let electrical = operon::baselines::electrical_power_mw(&design, &config.electrical);
        assert!(
            glow_power < electrical,
            "seed {seed}: GLOW {glow_power} !< electrical {electrical}"
        );
        assert!(
            operon_power <= glow_power * 1.02 + 1e-6,
            "seed {seed}: OPERON {operon_power} vs GLOW {glow_power}"
        );
    }
}

#[test]
fn flow_round_trips_through_design_io() {
    // Serialize the design, parse it back, and verify the flow result is
    // identical — the interchange format carries everything that matters.
    let design = small();
    let text = operon_netlist::io::write_design(&design);
    let back = operon_netlist::io::read_design(&text).expect("parse");
    assert_eq!(design, back);
    let flow = OperonFlow::new(OperonConfig::default());
    let a = flow.run(&design).expect("flow a");
    let b = flow.run(&back).expect("flow b");
    assert_eq!(a.selection.choice, b.selection.choice);
    assert_eq!(a.total_power_mw(), b.total_power_mw());
}

#[test]
fn facade_reexports_work() {
    // The workspace facade exposes the member crates.
    let p = operon_repro::geom::Point::new(1, 2);
    assert_eq!(p.manhattan(operon_repro::geom::Point::origin()), 3);
    let d = operon_repro::netlist::synth::generate(
        &operon_repro::netlist::synth::SynthConfig::small(),
        1,
    );
    assert!(d.bit_count() > 0);
}
