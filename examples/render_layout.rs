//! Renders a synthesized design to SVG: electrical wires in orange,
//! waveguides in blue, modulators green, detectors red, WDM tracks as
//! dashed light-blue lines.
//!
//! ```text
//! cargo run --release --example render_layout [output.svg]
//! ```

use operon::config::OperonConfig;
use operon::flow::OperonFlow;
use operon::render::{render_svg, RenderOptions};
use operon_netlist::synth::{generate, SynthConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "operon_layout.svg".to_owned());

    let design = generate(&SynthConfig::medium(), 8);
    let result = OperonFlow::new(OperonConfig::default()).run(&design)?;

    let svg = render_svg(
        design.die(),
        &result.candidates,
        &result.selection.choice,
        Some(&result.wdm),
        &RenderOptions::default(),
    );
    std::fs::write(&out_path, &svg)?;

    println!(
        "wrote {out_path}: {} optical nets (blue), {} electrical nets (orange), {} WDM tracks",
        result.optical_net_count(),
        result.electrical_net_count(),
        result.wdm.final_count()
    );
    println!("{} bytes of SVG", svg.len());
    Ok(())
}
