//! A hand-built scenario from the paper's introduction: performance-
//! critical buses between logic blocks and a memory interface.
//!
//! Three buses are constructed explicitly — a wide long-haul bus that
//! should go optical, a short local bus that should stay electrical, and a
//! multi-drop bus where the co-design picks a mixed route — and the
//! per-net decisions are printed.
//!
//! ```text
//! cargo run --release --example memory_bus
//! ```

use operon::config::OperonConfig;
use operon::flow::OperonFlow;
use operon_geom::{BoundingBox, Point};
use operon_netlist::{Bit, BitId, Design, GroupId, SignalGroup};

fn bus(
    id: u32,
    name: &str,
    width: usize,
    src: Point,
    sinks_of: impl Fn(usize) -> Vec<Point>,
) -> SignalGroup {
    let bits = (0..width)
        .map(|i| {
            let offset = i as i64 * 10;
            let source = Point::new(src.x + offset, src.y);
            let sinks = sinks_of(i);
            Bit::new(BitId::new(i as u32), source, sinks)
        })
        .collect();
    SignalGroup::new(GroupId::new(id), name, bits)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 2 cm x 2 cm die: logic cluster on the west side, memory interface
    // on the east edge.
    let die = BoundingBox::new(Point::new(0, 0), Point::new(20_000, 20_000));
    let mut design = Design::new("memory_bus", die);

    // Bus 0: 16-bit logic -> memory, 1.6 cm span. Optical should win:
    // 1.6 cm of wire costs 3.2 mW/bit, one EO/OE pair costs 0.885 mW/bit.
    design.push_group(bus(0, "dram_rd", 16, Point::new(2_000, 10_000), |i| {
        vec![Point::new(18_000, 10_000 + i as i64 * 10)]
    }));

    // Bus 1: 8-bit local interconnect, 0.15 cm span. Electrical should
    // win: 0.3 mW/bit of wire vs 0.885 mW/bit of conversions.
    design.push_group(bus(1, "local_ctl", 8, Point::new(5_000, 5_000), |i| {
        vec![Point::new(6_500, 5_000 + i as i64 * 10)]
    }));

    // Bus 2: 8-bit multi-drop bus: one far sink cluster plus one sink a
    // short hop beyond it. A mixed route (optical trunk, electrical tail)
    // saves a detector per bit.
    design.push_group(bus(2, "snoop", 8, Point::new(2_000, 15_000), |i| {
        vec![
            Point::new(16_000, 15_000 + i as i64 * 10),
            Point::new(17_200, 15_300 + i as i64 * 10),
        ]
    }));

    let flow = OperonFlow::new(OperonConfig::default());
    let result = flow.run(&design)?;

    println!(
        "{:<12} {:>5} {:>9} {:>6} {:>6} {:>11} {:>10}",
        "net", "bits", "medium", "nmod", "ndet", "power(mW)", "loss(dB)"
    );
    for (net, nc) in result.hyper_nets.iter().zip(&result.candidates) {
        let j = result.selection.choice[nc.net_index];
        let cand = &nc.candidates[j];
        let medium = if cand.is_pure_electrical() {
            "electrical"
        } else if cand.electrical_power_mw > 0.0 {
            "mixed"
        } else {
            "optical"
        };
        let group = design.group(net.group()).expect("group exists");
        println!(
            "{:<12} {:>5} {:>9} {:>6} {:>6} {:>11.2} {:>10.2}",
            group.name(),
            net.bit_count(),
            medium,
            cand.n_mod,
            cand.n_det,
            cand.total_power_mw() + nc.fanout_power_mw,
            cand.worst_fixed_loss_db(),
        );
    }
    println!("\ntotal power: {:.2} mW", result.total_power_mw());
    Ok(())
}
