//! Power hotspot maps (paper Fig. 9): optical vs electrical layer, GLOW
//! vs OPERON, rendered as ASCII heat maps.
//!
//! The paper's observation to look for: the *optical* maps of GLOW and
//! OPERON look similar (both are dominated by the same EO/OE conversion
//! sites), while OPERON's *electrical* map is visibly cooler — co-design
//! moved wire power onto the optical layer.
//!
//! ```text
//! cargo run --release --example hotspot_map
//! ```

use operon::config::OperonConfig;
use operon::flow::OperonFlow;
use operon::report::power_maps;
use operon_netlist::synth::{generate, SynthConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let design = generate(&SynthConfig::medium(), 2);
    let config = OperonConfig::default();
    let flow = OperonFlow::new(config.clone());

    let operon_result = flow.run(&design)?;
    let glow = flow.run_glow(&design)?;

    let cells = 32;
    let operon_maps = power_maps(
        design.die(),
        cells,
        &operon_result.candidates,
        &operon_result.selection.choice,
        &config.optical,
        &config.electrical,
    );
    let glow_maps = power_maps(
        design.die(),
        cells,
        &glow.nets,
        &glow.selection.choice,
        &config.optical,
        &config.electrical,
    );

    println!(
        "== GLOW: optical layer ({:.1} mW) ==",
        glow_maps.optical.total()
    );
    print!("{}", glow_maps.optical.normalized());
    println!(
        "== OPERON: optical layer ({:.1} mW) ==",
        operon_maps.optical.total()
    );
    print!("{}", operon_maps.optical.normalized());
    println!(
        "== GLOW: electrical layer ({:.1} mW) ==",
        glow_maps.electrical.total()
    );
    print!("{}", glow_maps.electrical.normalized());
    println!(
        "== OPERON: electrical layer ({:.1} mW) ==",
        operon_maps.electrical.total()
    );
    print!("{}", operon_maps.electrical.normalized());

    println!(
        "\nelectrical-layer power: GLOW {:.1} mW vs OPERON {:.1} mW",
        glow_maps.electrical.total(),
        operon_maps.electrical.total()
    );
    Ok(())
}
