//! Emits the synthetic paper-suite benchmarks (I1–I5) as `.sig` design
//! files for `operon_route`.
//!
//! ```text
//! cargo run --release --example emit_benchmarks [-- OUT_DIR]
//! ```
//!
//! Uses the same generator seed as the bench harness (2018, the paper's
//! publication year), so the emitted files match what `table1` and the
//! integration tests route.

use operon_netlist::io::write_design;
use operon_netlist::synth::{generate, paper_suite};

const HARNESS_SEED: u64 = 2018;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir = std::env::args().nth(1).unwrap_or_else(|| ".".to_owned());
    std::fs::create_dir_all(&out_dir)?;
    for config in paper_suite() {
        let design = generate(&config, HARNESS_SEED);
        let path = format!("{out_dir}/{}.sig", config.name);
        std::fs::write(&path, write_design(&design))?;
        println!(
            "{path}: {} groups, {} bits, die {}",
            design.group_count(),
            design.bit_count(),
            design.die()
        );
    }
    Ok(())
}
