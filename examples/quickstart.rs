//! Quickstart: run the full OPERON flow on a synthetic benchmark.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use operon::config::OperonConfig;
use operon::flow::OperonFlow;
use operon_netlist::synth::{generate, SynthConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A deterministic synthetic benchmark: ~400 signal bits bundled
    //    into buses on a 2 cm die.
    let design = generate(&SynthConfig::medium(), 42);
    println!(
        "design '{}': {} signal groups, {} bits, die {}",
        design.name(),
        design.group_count(),
        design.bit_count(),
        design.die()
    );

    // 2. Run OPERON with the paper's parameters (LR selector).
    let config = OperonConfig::default();
    let flow = OperonFlow::new(config.clone());
    let result = flow.run(&design)?;

    println!(
        "hyper nets: {} ({} hyper pins)",
        result.hyper_nets.len(),
        result.hyper_pin_count()
    );
    println!(
        "selection: {} optical, {} electrical hyper nets",
        result.optical_net_count(),
        result.electrical_net_count()
    );
    println!("total power: {:.1} mW", result.total_power_mw());
    println!(
        "WDM waveguides: {} connections -> {} placed -> {} after flow assignment",
        result.wdm.connections.len(),
        result.wdm.initial_count,
        result.wdm.final_count()
    );

    // 3. Compare against the paper's baselines.
    let electrical = operon::baselines::electrical_power_mw(&design, &config.electrical);
    let glow = flow.run_glow(&design)?;
    println!("\npower comparison (mW):");
    println!("  Electrical [Streak-like] {electrical:10.1}");
    println!(
        "  Optical    [GLOW-like]   {:10.1}",
        glow.selection.power_mw
    );
    println!(
        "  OPERON     (LR)          {:10.1}",
        result.total_power_mw()
    );
    Ok(())
}
