//! Delay analysis: the interconnect-delay motivation of the paper's
//! introduction, quantified on a synthesized design.
//!
//! Shows the electrical/optical delay crossover, then runs the flow with
//! and without a timing bound and reports how the bound steers the medium
//! selection.
//!
//! ```text
//! cargo run --release --example timing_analysis
//! ```

use operon::config::OperonConfig;
use operon::flow::OperonFlow;
use operon::timing::worst_delay_ps;
use operon_netlist::synth::{generate, SynthConfig};
use operon_optics::DelayParams;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let d = DelayParams::paper_defaults();
    println!("delay models (ps):");
    println!("{:>8} {:>12} {:>12}", "span(cm)", "electrical", "optical");
    for len in [0.05, 0.1, 0.2, 0.5, 1.0, 2.0] {
        println!(
            "{len:>8} {:>12.1} {:>12.1}",
            d.electrical_ps(len),
            d.optical_path_ps(len, 1, 1)
        );
    }
    println!(
        "crossover: optics wins on delay beyond {:.2} cm\n",
        d.delay_crossover_cm()
    );

    let design = generate(&SynthConfig::medium(), 11);
    let base = OperonConfig::default();
    let unconstrained = OperonFlow::new(base.clone()).run(&design)?;
    println!(
        "unconstrained: {} optical / {} electrical, {:.1} mW, worst arrival {:.0} ps",
        unconstrained.optical_net_count(),
        unconstrained.electrical_net_count(),
        unconstrained.total_power_mw(),
        unconstrained.worst_delay_ps(&base)
    );

    let config = OperonConfig {
        max_delay_ps: Some(600.0),
        ..base
    };
    let constrained = OperonFlow::new(config.clone()).run(&design)?;
    println!(
        "bound 600 ps:  {} optical / {} electrical, {:.1} mW, worst arrival {:.0} ps",
        constrained.optical_net_count(),
        constrained.electrical_net_count(),
        constrained.total_power_mw(),
        constrained.worst_delay_ps(&config)
    );
    let violations = constrained.delay_violations(&config);
    if violations.is_empty() {
        println!("every selected route meets the bound");
    } else {
        println!(
            "{} nets only have (violating) electrical fallbacks left:",
            violations.len()
        );
        for i in violations {
            let nc = &constrained.candidates[i];
            let j = constrained.selection.choice[i];
            println!(
                "  net {}: {:.0} ps on the fallback",
                i,
                worst_delay_ps(&nc.candidates[j], &config.delay)
            );
        }
    }
    Ok(())
}
