//! The WDM sharing scenario of paper Figs. 6–7: three 20-bit connections,
//! capacity-32 waveguides. The greedy sweep needs three WDMs; the min-cost
//! max-flow re-assignment packs the same channels into two.
//!
//! ```text
//! cargo run --release --example wdm_sharing
//! ```

use operon::codesign::{analyze_assignment, EdgeMedium, NetCandidates};
use operon::wdm;
use operon_geom::Point;
use operon_optics::{ElectricalParams, OpticalLib};
use operon_steiner::{NodeKind, RouteTree};

/// A single horizontal optical connection as a one-candidate hyper net.
fn connection(net_index: usize, y: i64, bits: usize) -> NetCandidates {
    let mut tree = RouteTree::new(Point::new(0, y));
    tree.add_child(tree.root(), Point::new(15_000, y), NodeKind::Terminal);
    let cand = analyze_assignment(
        &tree,
        &[EdgeMedium::Optical],
        bits,
        &OpticalLib::paper_defaults(),
        &ElectricalParams::paper_defaults(),
    );
    NetCandidates {
        net_index,
        bits,
        candidates: vec![cand],
        electrical_idx: 0,
        fanout_power_mw: 0.0,
    }
}

fn main() {
    let lib = OpticalLib::paper_defaults();
    // Three 20-bit buses 100 dbu apart (within the dis_u assignment reach).
    let nets: Vec<NetCandidates> = (0..3).map(|k| connection(k, k as i64 * 100, 20)).collect();
    let choice = vec![0usize; nets.len()];

    let plan = wdm::plan(&nets, &choice, &lib).expect("demo plan is feasible");
    println!(
        "connections: {} (20 bits each, WDM capacity {})",
        plan.connections.len(),
        lib.wdm_capacity
    );
    println!("after sweep placement : {} WDMs", plan.initial_count);
    println!("after flow assignment : {} WDMs", plan.final_count());
    println!();
    for (i, w) in plan.wdms.iter().enumerate() {
        let detail: Vec<String> = w
            .assigned
            .iter()
            .map(|&(c, b)| format!("conn{c}:{b}ch"))
            .collect();
        println!(
            "  WDM {i} @ y={} : {}/{} channels [{}]",
            w.track,
            w.used(),
            lib.wdm_capacity,
            detail.join(", ")
        );
    }
    println!("\n(the paper's Fig. 6: three connections share two WDMs after");
    println!(" the min-cost max-flow re-assignment — one connection's channels");
    println!(" split across both waveguides, which integral flow permits)");
}
