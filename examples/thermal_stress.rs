//! Thermal variation study: ring tuning power and off-resonance derating
//! of a finished design under a stressed die profile — the
//! variation-resilience concern of the optical NoC work the paper cites.
//!
//! Because OPERON's co-design shares detectors (electrical tails replace
//! per-sink rings), it fields fewer ring devices than the optical-only
//! baseline and pays proportionally less tuning power.
//!
//! ```text
//! cargo run --release --example thermal_stress
//! ```

use operon::config::OperonConfig;
use operon::flow::OperonFlow;
use operon::report::thermal_report;
use operon_geom::{BoundingBox, Point};
use operon_netlist::{Bit, BitId, Design, GroupId, SignalGroup};
use operon_optics::thermal::ThermalProfile;

/// Buses whose two sink clusters sit ~0.15 cm apart at the far end of a
/// 2 cm die: close enough that one detector plus an electrical tail beats
/// two detectors, far enough that the clusters stay separate hyper pins.
fn build_design() -> Design {
    let die = BoundingBox::new(Point::new(0, 0), Point::new(20_000, 20_000));
    let mut design = Design::new("thermal_stress", die);
    for g in 0..12u32 {
        let y = 1_500 + g as i64 * 1_500;
        let bits = (0..8)
            .map(|i| {
                let off = i as i64 * 10;
                Bit::new(
                    BitId::new(i),
                    Point::new(500 + off, y),
                    vec![
                        Point::new(18_000 + off, y),
                        Point::new(18_000 + off, y + 1_200),
                    ],
                )
            })
            .collect();
        design.push_group(SignalGroup::new(GroupId::new(g), format!("bus{g}"), bits));
    }
    design
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let die_cm = 2.0;
    let design = build_design();
    let flow = OperonFlow::new(OperonConfig::default());
    let operon_result = flow.run(&design)?;
    let glow = flow.run_glow(&design)?;

    for (label, profile) in [
        (
            "uniform 55 degC (calibrated)",
            ThermalProfile::uniform(55.0),
        ),
        (
            "stressed (gradient + hotspot)",
            ThermalProfile::stressed(die_cm),
        ),
    ] {
        let operon_thermal = thermal_report(
            &operon_result.candidates,
            &operon_result.selection.choice,
            &profile,
        );
        let glow_thermal = thermal_report(&glow.nets, &glow.selection.choice, &profile);
        println!("profile: {label}");
        println!(
            "  GLOW   : {:>4} device sites, tuning {:.2} mW, worst derating {:.3} dB",
            glow_thermal.device_sites,
            glow_thermal.tuning_power_mw,
            glow_thermal.worst_extra_loss_db
        );
        println!(
            "  OPERON : {:>4} device sites, tuning {:.2} mW, worst derating {:.3} dB",
            operon_thermal.device_sites,
            operon_thermal.tuning_power_mw,
            operon_thermal.worst_extra_loss_db
        );
    }
    Ok(())
}
