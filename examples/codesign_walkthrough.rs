//! Walkthrough of the co-design dynamic program on the paper's Fig. 5
//! hyper net: a source, a Steiner trunk point, and two sinks.
//!
//! Prints every surviving candidate with its per-edge medium assignment,
//! device counts, power, and worst loss — the table of Fig. 5(c).
//!
//! ```text
//! cargo run --release --example codesign_walkthrough
//! ```

use operon::codesign::{codesign_tree, EdgeMedium};
use operon_geom::Point;
use operon_optics::{ElectricalParams, OpticalLib};
use operon_steiner::{NodeKind, RouteTree};

fn main() {
    // Fig. 5(a): hyper pin 1 (source) -- steiner 2 -- pins 3 and 4.
    let mut tree = RouteTree::new(Point::new(0, 0));
    let steiner = tree.add_child(tree.root(), Point::new(10_000, 0), NodeKind::Steiner);
    tree.add_child(steiner, Point::new(14_000, 3_000), NodeKind::Terminal);
    tree.add_child(steiner, Point::new(14_000, -3_000), NodeKind::Terminal);

    let lib = OpticalLib::paper_defaults();
    let elec = ElectricalParams::paper_defaults();
    let bits = 8;

    println!("hyper net: source (0,0) -> steiner (1 cm,0) -> sinks at (1.4 cm, ±0.3 cm)");
    println!(
        "bits: {bits}; alpha {} dB/cm, beta {} dB, l_m {} dB\n",
        lib.alpha_db_per_cm, lib.beta_db_per_crossing, lib.max_loss_db
    );

    let mut candidates = codesign_tree(&tree, bits, &lib, &elec, 64);
    candidates.sort_by(|a, b| {
        a.total_power_mw()
            .partial_cmp(&b.total_power_mw())
            .expect("finite powers")
    });

    println!(
        "{:<28} {:>5} {:>5} {:>10} {:>10} {:>10}",
        "edges (1-2)(2-3)(2-4)", "nmod", "ndet", "conv(mW)", "wire(mW)", "loss(dB)"
    );
    for cand in &candidates {
        let media: String = cand
            .media
            .iter()
            .map(|m| match m {
                EdgeMedium::Optical => 'O',
                EdgeMedium::Electrical => 'E',
            })
            .collect();
        println!(
            "{:<28} {:>5} {:>5} {:>10.3} {:>10.3} {:>10.2}",
            media,
            cand.n_mod,
            cand.n_det,
            cand.conversion_power_mw,
            cand.electrical_power_mw,
            cand.worst_fixed_loss_db(),
        );
    }
    println!(
        "\n{} non-dominated candidates survive the bottom-up pruning",
        candidates.len()
    );
    println!("(compare with the four finalized solutions of paper Fig. 5(c))");
}
