//! Workspace facade for the OPERON reproduction.
//!
//! This crate exists so the repository root can host runnable examples
//! (`examples/`) and cross-crate integration tests (`tests/`). It re-exports
//! the member crates under short names; library users should depend on the
//! member crates directly.
//!
//! # Examples
//!
//! ```
//! use operon_repro::geom::Point;
//!
//! let p = Point::new(10, 20);
//! assert_eq!(p.x, 10);
//! ```

pub use operon;
pub use operon_cluster as cluster;
pub use operon_geom as geom;
pub use operon_ilp as ilp;
pub use operon_mcmf as mcmf;
pub use operon_netlist as netlist;
pub use operon_optics as optics;
pub use operon_steiner as steiner;
