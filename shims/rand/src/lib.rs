//! Offline stand-in for the crates.io `rand` crate (0.8 API subset).
//!
//! The build environment has no registry access, so this workspace ships
//! the small part of `rand` it actually uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over integer and
//! float ranges, and [`Rng::gen_bool`]. The generator is xoshiro256++
//! seeded through splitmix64 — high-quality, fully deterministic, and
//! identical on every platform (which the workspace's reproducibility
//! tests rely on). It is **not** the upstream implementation: streams
//! differ from crates.io `rand` for the same seed.

/// Distribution-style range argument for [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from(self, rng: &mut impl RngCore) -> T;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore + Sized {
    /// A uniform draw from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of [0,1]: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Seeding interface, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Generator types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand`'s
    /// `StdRng`; different stream, same role).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the seed with splitmix64 (the reference seeding
            // procedure for the xoshiro family).
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Uniform in `[0, 1)` from 64 random bits (53-bit mantissa method).
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform draw from `[0, span)` without modulo bias (Lemire's method
/// would be overkill here; simple rejection keeps it obviously correct).
fn bounded_u64(rng: &mut impl RngCore, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from(self, rng: &mut impl RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + bounded_u64(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let u = unit_f64(rng.next_u64()) as $t;
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from(self, rng: &mut impl RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let u = unit_f64(rng.next_u64()) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-50i64..50);
            assert!((-50..50).contains(&v));
            let w = rng.gen_range(3usize..=7);
            assert!((3..=7).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }
}
