//! Offline stand-in for the crates.io `proptest` crate.
//!
//! The build environment has no registry access, so this workspace ships
//! the subset of proptest it uses: the [`proptest!`] macro, strategies for
//! numeric ranges / tuples / `Just` / `any` / `collection::vec` /
//! `prop_map` / [`prop_oneof!`], string generation for `&str` patterns,
//! and the `prop_assert*` macros.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports its inputs (via the assert
//!   message) but is not minimized.
//! * **Deterministic seeding.** Each test's RNG is seeded from a hash of
//!   the test's name, so failures reproduce exactly across runs and
//!   machines. There is no `proptest-regressions` persistence (existing
//!   regression files are ignored).
//! * `&str` strategies ignore the regex and generate arbitrary
//!   printable-ish text including exotic unicode — every use in this
//!   workspace is a "parser never panics" pattern of the form `"\\PC*"`,
//!   for which arbitrary text is the intent.

pub mod strategy;
pub mod test_runner;

/// `proptest::collection` — sized collections of strategy-driven values.
pub mod collection {
    use crate::strategy::{Strategy, VecStrategy};

    /// A range of lengths for [`vec`].
    pub trait SizeRange {
        /// `(min, max)` inclusive bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl SizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start() <= self.end(), "empty size range");
            (*self.start(), *self.end())
        }
    }

    /// A strategy producing `Vec`s whose elements are drawn from
    /// `element` and whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }
}

/// Everything a test module conventionally imports.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests.
///
/// Mirrors upstream's surface: an optional
/// `#![proptest_config(expr)]` header followed by `#[test] fn
/// name(pat in strategy, ...) { body }` items. Each test runs
/// `config.cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr); $(#[$meta:meta])* fn $name:ident(
        $($pat:pat_param in $strat:expr),+ $(,)?
    ) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::deterministic_rng(stringify!($name));
            for case in 0..config.cases {
                $(let $pat = $crate::strategy::Strategy::sample(&$strat, &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        let _ = $body;
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    Ok(()) => {}
                    Err($crate::test_runner::TestCaseError::Reject(why)) => {
                        // A rejected case is skipped, not failed.
                        let _ = why;
                    }
                    Err($crate::test_runner::TestCaseError::Fail(why)) => {
                        panic!(
                            "proptest case {}/{} of `{}` failed: {}",
                            case + 1,
                            config.cases,
                            stringify!($name),
                            why
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    (($config:expr);) => {};
}

/// Fails the current case with a formatted message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_owned(),
            ));
        }
    };
}

/// Uniformly picks one of several strategies of a common value type.
///
/// Weighted arms (`w => strat`) are not supported — no caller uses them.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
