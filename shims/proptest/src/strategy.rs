//! The strategy subset: how random values are described and sampled.

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating random values of one type.
///
/// Unlike upstream proptest there is no value tree and no shrinking — a
/// strategy is simply a sampler.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms every generated value through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn StrategyObject<Value = T>>);

/// Object-safe mirror of [`Strategy`].
trait StrategyObject {
    type Value;
    fn sample_dyn(&self, rng: &mut StdRng) -> Self::Value;
}

impl<S: Strategy> StrategyObject for S {
    type Value = S::Value;
    fn sample_dyn(&self, rng: &mut StdRng) -> S::Value {
        self.sample(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        self.0.sample_dyn(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// `strategy.prop_map(f)`.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice between boxed strategies ([`crate::prop_oneof!`]).
pub struct OneOf<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// Builds a uniform choice over `arms`.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        let k = rng.gen_range(0..self.arms.len());
        self.arms[k].sample(rng)
    }
}

/// `collection::vec(element, len)`.
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) min: usize,
    pub(crate) max: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.min..=self.max);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// String patterns generate arbitrary text (the regex itself is ignored
/// — see the crate docs for why that is the right trade here).
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut StdRng) -> String {
        let len = rng.gen_range(0usize..64);
        (0..len)
            .map(|_| match rng.gen_range(0u32..10) {
                // Mostly printable ASCII: the densest path through text
                // parsers.
                0..=5 => char::from(rng.gen_range(0x20u8..0x7F)),
                // Structure characters parsers branch on.
                6 => *[' ', '\t', ':', ',', '#', '-', '0', '9']
                    .get(rng.gen_range(0usize..8))
                    .expect("in range"),
                // Newlines to exercise line splitting.
                7 => '\n',
                // Arbitrary unicode scalar values.
                _ => loop {
                    if let Some(c) = char::from_u32(rng.gen_range(0u32..0x11_0000)) {
                        break c;
                    }
                },
            })
            .collect()
    }
}

/// Marker for types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The canonical strategy type.
    type Strategy: Strategy<Value = Self>;
    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (`any::<bool>()`, `any::<u32>()`, …).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Full-domain strategy behind [`any`] for primitives.
pub struct AnyPrimitive<T>(core::marker::PhantomData<T>);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(<$t>::MIN..=<$t>::MAX)
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(core::marker::PhantomData)
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for AnyPrimitive<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut StdRng) -> bool {
        rng.gen_range(0u8..2) == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrimitive<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(core::marker::PhantomData)
    }
}
