//! Case-count configuration and the per-test deterministic RNG.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Why a single random case did not succeed.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case's assumptions did not hold; skip it.
    Reject(String),
    /// An assertion failed; the whole test fails.
    Fail(String),
}

impl TestCaseError {
    /// A failing-case error with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self::Fail(msg.into())
    }

    /// A rejected-case marker with the given reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        Self::Reject(msg.into())
    }
}

impl core::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Reject(m) => write!(f, "rejected: {m}"),
            Self::Fail(m) => write!(f, "{m}"),
        }
    }
}

/// Runner configuration. Only `cases` is honored.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// How many random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    /// 32 cases — smaller than upstream's 256: this runner re-runs the
    /// exact same cases every time (deterministic seeding), so piling on
    /// cases buys less than it does under upstream's fresh entropy.
    fn default() -> Self {
        Self { cases: 32 }
    }
}

/// The RNG for one property, seeded from the test's name so every run
/// and every machine sees the identical case sequence.
pub fn deterministic_rng(test_name: &str) -> StdRng {
    // FNV-1a over the name.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h)
}
