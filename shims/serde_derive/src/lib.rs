//! Offline stand-in for the crates.io `serde_derive` crate.
//!
//! The workspace's `serde` derives are annotations only — nothing in the
//! tree performs real serialization (there is no `serde_json` or other
//! format crate). These derives therefore emit just the marker-trait
//! impls for the shim `serde` crate, so bounds like `T: Serialize` would
//! still hold, and nothing else.
//!
//! Implemented without `syn`/`quote` (registry is unreachable): a tiny
//! token scan finds the type name. Generic types get no impl (none of
//! the annotated types in this workspace are generic).

use proc_macro::{TokenStream, TokenTree};

/// Scans `struct`/`enum`/`union` item tokens for the type name, returning
/// `None` when the type is generic.
fn plain_type_name(input: &TokenStream) -> Option<String> {
    let mut tokens = input.clone().into_iter().peekable();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(ref id) = tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                let name = match tokens.next()? {
                    TokenTree::Ident(name) => name.to_string(),
                    _ => return None,
                };
                let generic = matches!(
                    tokens.peek(),
                    Some(TokenTree::Punct(p)) if p.as_char() == '<'
                );
                return (!generic).then_some(name);
            }
        }
    }
    None
}

fn marker_impl(input: TokenStream, trait_path: &str) -> TokenStream {
    match plain_type_name(&input) {
        Some(name) => format!("impl {trait_path} for {name} {{}}")
            .parse()
            .expect("valid impl tokens"),
        None => TokenStream::new(),
    }
}

/// Derives the shim `serde::Serialize` marker.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "::serde::Serialize")
}

/// Derives the shim `serde::Deserialize` marker.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "::serde::Deserialize<'static>")
}
