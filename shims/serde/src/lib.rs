//! Offline stand-in for the crates.io `serde` crate.
//!
//! The workspace annotates several types with `#[derive(Serialize,
//! Deserialize)]` but never serializes them (no format crate is in the
//! tree). With the registry unreachable, this shim keeps those
//! annotations compiling: [`Serialize`] and [`Deserialize`] are marker
//! traits, and the `derive` feature wires in no-op derive macros that
//! emit the marker impls.
//!
//! If a future change needs real serialization, replace this shim with
//! the genuine crate (or the hand-rolled JSON in `operon-exec`, which is
//! what the run-report pipeline uses).

/// Marker mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker mirroring `serde::Deserialize`.
pub trait Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
