//! Offline stand-in for the crates.io `criterion` crate.
//!
//! The build environment has no registry access, so this workspace ships
//! the part of the criterion API its benches use: [`Criterion`],
//! [`Bencher::iter`], benchmark groups with [`BenchmarkGroup::sample_size`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of criterion's statistical machinery, each benchmark is run
//! for a fixed wall-clock budget and the mean/min/max per-iteration times
//! are printed. Good enough to compare implementations on one machine;
//! not a substitute for criterion's confidence intervals.

use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Measures one closure's iterations.
pub struct Bencher {
    samples: Vec<Duration>,
    budget: Duration,
}

impl Bencher {
    /// Runs `f` repeatedly inside the time budget, recording each
    /// iteration's wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up iteration.
        black_box(f());
        let deadline = Instant::now() + self.budget;
        loop {
            let t = Instant::now();
            black_box(f());
            self.samples.push(t.elapsed());
            if Instant::now() >= deadline || self.samples.len() >= 1_000 {
                break;
            }
        }
    }

    /// Runs `routine` on a fresh input from `setup` each iteration,
    /// timing only the routine (criterion's `iter_batched`).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // One untimed warm-up iteration.
        black_box(routine(setup()));
        let deadline = Instant::now() + self.budget;
        loop {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples.push(t.elapsed());
            if Instant::now() >= deadline || self.samples.len() >= 1_000 {
                break;
            }
        }
    }
}

/// Accepted for API compatibility; this runner always runs one setup per
/// timed iteration regardless of the hint.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

fn report(name: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{name:<44} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().expect("non-empty");
    let max = samples.iter().max().expect("non-empty");
    println!(
        "{name:<44} {:>12.3?} mean {:>12.3?} min {:>12.3?} max ({} iters)",
        mean,
        min,
        max,
        samples.len()
    );
}

/// Top-level benchmark registry, mirroring `criterion::Criterion`.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            budget: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Runs and reports one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            budget: self.budget,
        };
        f(&mut b);
        report(name.as_ref(), &b.samples);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
        }
    }
}

/// A named collection of benchmarks (`Criterion::benchmark_group`).
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this runner sizes samples by time
    /// budget, not count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs and reports one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name.as_ref());
        let mut b = Bencher {
            samples: Vec::new(),
            budget: self.parent.budget,
        };
        f(&mut b);
        report(&full, &b.samples);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
