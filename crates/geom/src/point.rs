//! Integer lattice points and floating-point companions.

use core::fmt;
use core::ops::{Add, Sub};

/// A point on the integer database-unit lattice.
///
/// Pin locations, Steiner points, and WDM tracks all live on this lattice.
/// Arithmetic uses `i64`, wide enough for centimeter-scale dies at µm
/// resolution with plenty of headroom for intermediate products.
///
/// # Examples
///
/// ```
/// use operon_geom::Point;
///
/// let a = Point::new(0, 0);
/// let b = Point::new(3, 4);
/// assert_eq!(a.manhattan(b), 7);
/// assert_eq!(a.euclidean(b), 5.0);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Point {
    /// Horizontal coordinate in database units.
    pub x: i64,
    /// Vertical coordinate in database units.
    pub y: i64,
}

impl Point {
    /// Creates a point at `(x, y)`.
    #[inline]
    pub const fn new(x: i64, y: i64) -> Self {
        Self { x, y }
    }

    /// The origin `(0, 0)`.
    #[inline]
    pub const fn origin() -> Self {
        Self { x: 0, y: 0 }
    }

    /// Manhattan (L1) distance to `other`.
    ///
    /// Electrical wires route rectilinearly, so their wirelength is
    /// measured in this metric.
    #[inline]
    pub fn manhattan(self, other: Self) -> i64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Euclidean (L2) distance to `other`.
    ///
    /// Optical waveguides may route in any direction (paper §2.3), so
    /// optical wirelength is measured in this metric.
    #[inline]
    pub fn euclidean(self, other: Self) -> f64 {
        let dx = (self.x - other.x) as f64;
        let dy = (self.y - other.y) as f64;
        dx.hypot(dy)
    }

    /// Squared Euclidean distance, avoiding the square root.
    ///
    /// Useful for nearest-neighbor comparisons where only the ordering
    /// matters.
    #[inline]
    pub fn euclidean_sq(self, other: Self) -> i128 {
        let dx = (self.x - other.x) as i128;
        let dy = (self.y - other.y) as i128;
        dx * dx + dy * dy
    }

    /// Chebyshev (L∞) distance to `other`.
    #[inline]
    pub fn chebyshev(self, other: Self) -> i64 {
        (self.x - other.x).abs().max((self.y - other.y).abs())
    }

    /// Converts to a floating-point point.
    #[inline]
    pub fn to_fpoint(self) -> FPoint {
        FPoint {
            x: self.x as f64,
            y: self.y as f64,
        }
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(i64, i64)> for Point {
    #[inline]
    fn from((x, y): (i64, i64)) -> Self {
        Self { x, y }
    }
}

impl Add for Point {
    type Output = Point;

    #[inline]
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;

    #[inline]
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

/// A floating-point point, used for centroids and gravity centers.
///
/// Clustering (K-Means centroids, hyper-pin gravity centers) needs
/// sub-lattice precision during iteration; results are rounded back to
/// [`Point`] with [`FPoint::round`].
///
/// # Examples
///
/// ```
/// use operon_geom::{FPoint, Point};
///
/// let c = FPoint::new(1.6, 2.4);
/// assert_eq!(c.round(), Point::new(2, 2));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FPoint {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl FPoint {
    /// Creates a floating-point point at `(x, y)`.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn euclidean(self, other: Self) -> f64 {
        (self.x - other.x).hypot(self.y - other.y)
    }

    /// Rounds to the nearest lattice point (ties away from zero).
    #[inline]
    pub fn round(self) -> Point {
        Point::new(self.x.round() as i64, self.y.round() as i64)
    }

    /// Component-wise mean of an iterator of points.
    ///
    /// Returns `None` when the iterator is empty.
    pub fn centroid<I>(points: I) -> Option<FPoint>
    where
        I: IntoIterator<Item = FPoint>,
    {
        let (mut sx, mut sy, mut n) = (0.0, 0.0, 0usize);
        for p in points {
            sx += p.x;
            sy += p.y;
            n += 1;
        }
        if n == 0 {
            None
        } else {
            Some(FPoint::new(sx / n as f64, sy / n as f64))
        }
    }
}

impl fmt::Display for FPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

impl From<Point> for FPoint {
    #[inline]
    fn from(p: Point) -> Self {
        p.to_fpoint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn manhattan_matches_components() {
        let a = Point::new(1, 2);
        let b = Point::new(4, -2);
        assert_eq!(a.manhattan(b), 3 + 4);
        assert_eq!(b.manhattan(a), 7);
    }

    #[test]
    fn euclidean_is_pythagorean() {
        let a = Point::new(0, 0);
        let b = Point::new(3, 4);
        assert!((a.euclidean(b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn chebyshev_is_max_component() {
        let a = Point::new(0, 0);
        let b = Point::new(-7, 4);
        assert_eq!(a.chebyshev(b), 7);
    }

    #[test]
    fn add_sub_round_trip() {
        let a = Point::new(5, -3);
        let b = Point::new(2, 9);
        assert_eq!(a + b - b, a);
    }

    #[test]
    fn centroid_of_empty_is_none() {
        assert_eq!(FPoint::centroid(std::iter::empty()), None);
    }

    #[test]
    fn centroid_of_square_is_center() {
        let pts = [
            FPoint::new(0.0, 0.0),
            FPoint::new(2.0, 0.0),
            FPoint::new(2.0, 2.0),
            FPoint::new(0.0, 2.0),
        ];
        let c = FPoint::centroid(pts).expect("non-empty");
        assert_eq!(c, FPoint::new(1.0, 1.0));
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(Point::new(1, 2).to_string(), "(1, 2)");
        assert!(!FPoint::new(0.5, 0.25).to_string().is_empty());
    }

    proptest! {
        #[test]
        fn metrics_are_symmetric(ax in -1000i64..1000, ay in -1000i64..1000,
                                 bx in -1000i64..1000, by in -1000i64..1000) {
            let a = Point::new(ax, ay);
            let b = Point::new(bx, by);
            prop_assert_eq!(a.manhattan(b), b.manhattan(a));
            prop_assert_eq!(a.euclidean_sq(b), b.euclidean_sq(a));
            prop_assert!((a.euclidean(b) - b.euclidean(a)).abs() < 1e-9);
        }

        #[test]
        fn metric_ordering_holds(ax in -1000i64..1000, ay in -1000i64..1000,
                                 bx in -1000i64..1000, by in -1000i64..1000) {
            // L∞ ≤ L2 ≤ L1 for any pair of points.
            let a = Point::new(ax, ay);
            let b = Point::new(bx, by);
            let l1 = a.manhattan(b) as f64;
            let l2 = a.euclidean(b);
            let linf = a.chebyshev(b) as f64;
            prop_assert!(linf <= l2 + 1e-9);
            prop_assert!(l2 <= l1 + 1e-9);
        }

        #[test]
        fn triangle_inequality(ax in -500i64..500, ay in -500i64..500,
                               bx in -500i64..500, by in -500i64..500,
                               cx in -500i64..500, cy in -500i64..500) {
            let a = Point::new(ax, ay);
            let b = Point::new(bx, by);
            let c = Point::new(cx, cy);
            prop_assert!(a.euclidean(c) <= a.euclidean(b) + b.euclidean(c) + 1e-9);
            prop_assert!(a.manhattan(c) <= a.manhattan(b) + b.manhattan(c));
        }

        #[test]
        fn euclidean_sq_consistent_with_euclidean(ax in -1000i64..1000, ay in -1000i64..1000,
                                                  bx in -1000i64..1000, by in -1000i64..1000) {
            let a = Point::new(ax, ay);
            let b = Point::new(bx, by);
            let d = a.euclidean(b);
            prop_assert!((d * d - a.euclidean_sq(b) as f64).abs() < 1e-6);
        }
    }
}
