//! Axis-aligned bounding boxes.

use crate::Point;
use core::fmt;

/// An axis-aligned rectangle, closed on all sides.
///
/// OPERON's ILP speed-up (paper §3.3) drops crossing variables between
/// hyper-net pairs whose candidate bounding boxes do not overlap; this type
/// provides the [`overlaps`](BoundingBox::overlaps) test that drives it.
///
/// # Examples
///
/// ```
/// use operon_geom::{BoundingBox, Point};
///
/// let b = BoundingBox::from_points([Point::new(0, 0), Point::new(4, 2)])
///     .expect("non-empty");
/// assert_eq!(b.half_perimeter(), 6);
/// assert!(b.contains(Point::new(2, 1)));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BoundingBox {
    lo: Point,
    hi: Point,
}

impl BoundingBox {
    /// Creates a box from two corner points in any order.
    pub fn new(a: Point, b: Point) -> Self {
        Self {
            lo: Point::new(a.x.min(b.x), a.y.min(b.y)),
            hi: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// Creates the tightest box enclosing all `points`.
    ///
    /// Returns `None` when the iterator is empty.
    pub fn from_points<I>(points: I) -> Option<Self>
    where
        I: IntoIterator<Item = Point>,
    {
        let mut iter = points.into_iter();
        let first = iter.next()?;
        let mut b = BoundingBox::new(first, first);
        for p in iter {
            b.expand(p);
        }
        Some(b)
    }

    /// The lower-left corner.
    #[inline]
    pub fn lo(&self) -> Point {
        self.lo
    }

    /// The upper-right corner.
    #[inline]
    pub fn hi(&self) -> Point {
        self.hi
    }

    /// Width along x in database units.
    #[inline]
    pub fn width(&self) -> i64 {
        self.hi.x - self.lo.x
    }

    /// Height along y in database units.
    #[inline]
    pub fn height(&self) -> i64 {
        self.hi.y - self.lo.y
    }

    /// Half-perimeter wirelength (HPWL) of the box.
    ///
    /// A classic lower bound on the wirelength of any tree connecting the
    /// enclosed pins.
    #[inline]
    pub fn half_perimeter(&self) -> i64 {
        self.width() + self.height()
    }

    /// Area of the box (may be zero for degenerate boxes).
    #[inline]
    pub fn area(&self) -> i128 {
        self.width() as i128 * self.height() as i128
    }

    /// The center of the box, rounded toward the lower-left corner.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new(self.lo.x + self.width() / 2, self.lo.y + self.height() / 2)
    }

    /// Grows the box (if needed) so it contains `p`.
    pub fn expand(&mut self, p: Point) {
        self.lo.x = self.lo.x.min(p.x);
        self.lo.y = self.lo.y.min(p.y);
        self.hi.x = self.hi.x.max(p.x);
        self.hi.y = self.hi.y.max(p.y);
    }

    /// Returns the box inflated by `margin` on every side.
    ///
    /// # Panics
    ///
    /// Panics if `margin` is negative.
    pub fn inflated(&self, margin: i64) -> Self {
        assert!(margin >= 0, "margin must be non-negative, got {margin}");
        Self {
            lo: Point::new(self.lo.x - margin, self.lo.y - margin),
            hi: Point::new(self.hi.x + margin, self.hi.y + margin),
        }
    }

    /// Tests whether `p` lies inside the (closed) box.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        self.lo.x <= p.x && p.x <= self.hi.x && self.lo.y <= p.y && p.y <= self.hi.y
    }

    /// Tests whether two closed boxes share at least one point.
    #[inline]
    pub fn overlaps(&self, other: &Self) -> bool {
        self.lo.x <= other.hi.x
            && other.lo.x <= self.hi.x
            && self.lo.y <= other.hi.y
            && other.lo.y <= self.hi.y
    }

    /// The smallest box containing both operands.
    pub fn union(&self, other: &Self) -> Self {
        Self {
            lo: Point::new(self.lo.x.min(other.lo.x), self.lo.y.min(other.lo.y)),
            hi: Point::new(self.hi.x.max(other.hi.x), self.hi.y.max(other.hi.y)),
        }
    }

    /// The intersection of both operands, or `None` when they are disjoint.
    pub fn intersection(&self, other: &Self) -> Option<Self> {
        if !self.overlaps(other) {
            return None;
        }
        Some(Self {
            lo: Point::new(self.lo.x.max(other.lo.x), self.lo.y.max(other.lo.y)),
            hi: Point::new(self.hi.x.min(other.hi.x), self.hi.y.min(other.hi.y)),
        })
    }
}

impl fmt::Display for BoundingBox {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} .. {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn new_normalizes_corners() {
        let b = BoundingBox::new(Point::new(5, 1), Point::new(2, 7));
        assert_eq!(b.lo(), Point::new(2, 1));
        assert_eq!(b.hi(), Point::new(5, 7));
    }

    #[test]
    fn from_points_empty_is_none() {
        assert!(BoundingBox::from_points(std::iter::empty()).is_none());
    }

    #[test]
    fn degenerate_box_has_zero_area() {
        let b = BoundingBox::new(Point::new(3, 3), Point::new(3, 3));
        assert_eq!(b.area(), 0);
        assert_eq!(b.half_perimeter(), 0);
        assert!(b.contains(Point::new(3, 3)));
    }

    #[test]
    fn overlap_on_shared_edge_counts() {
        let a = BoundingBox::new(Point::new(0, 0), Point::new(2, 2));
        let b = BoundingBox::new(Point::new(2, 0), Point::new(4, 2));
        assert!(a.overlaps(&b));
        let c = BoundingBox::new(Point::new(3, 0), Point::new(4, 2));
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn intersection_of_disjoint_is_none() {
        let a = BoundingBox::new(Point::new(0, 0), Point::new(1, 1));
        let b = BoundingBox::new(Point::new(5, 5), Point::new(6, 6));
        assert!(a.intersection(&b).is_none());
    }

    #[test]
    fn intersection_of_nested_is_inner() {
        let outer = BoundingBox::new(Point::new(0, 0), Point::new(10, 10));
        let inner = BoundingBox::new(Point::new(2, 3), Point::new(4, 5));
        assert_eq!(outer.intersection(&inner), Some(inner));
    }

    #[test]
    fn inflated_grows_all_sides() {
        let b = BoundingBox::new(Point::new(0, 0), Point::new(2, 2)).inflated(3);
        assert_eq!(b.lo(), Point::new(-3, -3));
        assert_eq!(b.hi(), Point::new(5, 5));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn inflated_rejects_negative_margin() {
        let _ = BoundingBox::new(Point::origin(), Point::origin()).inflated(-1);
    }

    fn arb_box() -> impl Strategy<Value = BoundingBox> {
        (
            -1000i64..1000,
            -1000i64..1000,
            -1000i64..1000,
            -1000i64..1000,
        )
            .prop_map(|(ax, ay, bx, by)| BoundingBox::new(Point::new(ax, ay), Point::new(bx, by)))
    }

    proptest! {
        #[test]
        fn overlap_is_symmetric(a in arb_box(), b in arb_box()) {
            prop_assert_eq!(a.overlaps(&b), b.overlaps(&a));
        }

        #[test]
        fn union_contains_both(a in arb_box(), b in arb_box()) {
            let u = a.union(&b);
            prop_assert!(u.contains(a.lo()) && u.contains(a.hi()));
            prop_assert!(u.contains(b.lo()) && u.contains(b.hi()));
        }

        #[test]
        fn intersection_agrees_with_point_membership(
            a in arb_box(), b in arb_box(),
            px in -1000i64..1000, py in -1000i64..1000,
        ) {
            let p = Point::new(px, py);
            let in_both = a.contains(p) && b.contains(p);
            match a.intersection(&b) {
                Some(i) => prop_assert_eq!(in_both, i.contains(p)),
                None => prop_assert!(!in_both),
            }
        }

        #[test]
        fn from_points_contains_all(pts in proptest::collection::vec(
            (-1000i64..1000, -1000i64..1000), 1..20)) {
            let pts: Vec<Point> = pts.into_iter().map(Point::from).collect();
            let b = BoundingBox::from_points(pts.iter().copied()).expect("non-empty");
            for p in pts {
                prop_assert!(b.contains(p));
            }
        }
    }
}
