//! Fixed-point planar geometry for optical-electrical route synthesis.
//!
//! All coordinates are integer *database units* (dbu). The OPERON benchmarks
//! are up-scaled to centimeter dimensions; throughout this workspace
//! `1 dbu = 1 µm`, so [`DBU_PER_CM`] converts wirelength to the
//! centimeter scale used by the optical loss coefficients (dB/cm).
//!
//! The crate provides the primitives every other crate builds on:
//!
//! * [`Point`] — integer lattice point with Manhattan/Euclidean metrics,
//! * [`BoundingBox`] — axis-aligned boxes with overlap tests (used by the
//!   ILP variable-reduction speed-up of the paper),
//! * [`Segment`] — line segments with exact intersection predicates (used
//!   to count waveguide crossings for the crossing-loss term),
//! * [`Grid`] — uniform spatial binning (used for hotspot power maps and
//!   to accelerate all-pairs segment intersection queries),
//! * [`sweep_crossings`] — output-sensitive Bentley–Ottmann sweep line
//!   reporting proper segment crossings with exact rational event
//!   ordering (the third crossing-build strategy next to brute force and
//!   the grid).
//!
//! # Examples
//!
//! ```
//! use operon_geom::{Point, Segment};
//!
//! let a = Segment::new(Point::new(0, 0), Point::new(10, 10));
//! let b = Segment::new(Point::new(0, 10), Point::new(10, 0));
//! assert!(a.crosses(&b));
//! ```

#![forbid(unsafe_code)]

mod bbox;
mod grid;
mod point;
mod segment;
mod sweep;

pub use bbox::BoundingBox;
pub use grid::{Grid, GridCell, SegmentGrid};
pub use point::{FPoint, Point};
pub use segment::{Orientation, Segment};
pub use sweep::{sweep_crossings, SWEEP_COORD_LIMIT};

/// Database units per centimeter (`1 dbu = 1 µm`).
///
/// Optical loss coefficients in the literature are quoted in dB/cm; the
/// netlists store coordinates in dbu, so wirelength must be divided by this
/// constant before applying the propagation-loss coefficient.
pub const DBU_PER_CM: f64 = 10_000.0;

/// Converts a length in database units to centimeters.
///
/// # Examples
///
/// ```
/// assert_eq!(operon_geom::dbu_to_cm(20_000.0), 2.0);
/// ```
#[inline]
pub fn dbu_to_cm(dbu: f64) -> f64 {
    dbu / DBU_PER_CM
}

/// Converts a length in centimeters to database units.
///
/// # Examples
///
/// ```
/// assert_eq!(operon_geom::cm_to_dbu(1.5), 15_000.0);
/// ```
#[inline]
pub fn cm_to_dbu(cm: f64) -> f64 {
    cm * DBU_PER_CM
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversion_round_trips() {
        for v in [0.0, 1.0, 2.5, 123.456] {
            let dbu = cm_to_dbu(v);
            assert!((dbu_to_cm(dbu) - v).abs() < 1e-12);
        }
    }
}
