//! Line segments and exact intersection predicates.
//!
//! Waveguide crossings induce the `β · n_x` loss term of Eq. (2); the
//! predicates here are exact (integer arithmetic, no epsilon tuning) so
//! crossing counts are deterministic.

use crate::{BoundingBox, Point};
use core::fmt;

/// Orientation of an ordered point triple.
///
/// Returned by [`Segment::orientation`]; the building block of the
/// segment-intersection predicate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Orientation {
    /// The triple turns counter-clockwise.
    CounterClockwise,
    /// The triple turns clockwise.
    Clockwise,
    /// The three points are collinear.
    Collinear,
}

/// A line segment between two lattice points.
///
/// # Examples
///
/// ```
/// use operon_geom::{Point, Segment};
///
/// let s = Segment::new(Point::new(0, 0), Point::new(6, 8));
/// assert_eq!(s.length(), 10.0);
/// assert!(!s.is_axis_aligned());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Segment {
    /// First endpoint.
    pub a: Point,
    /// Second endpoint.
    pub b: Point,
}

impl Segment {
    /// Creates a segment from `a` to `b`. Degenerate (zero-length)
    /// segments are allowed.
    #[inline]
    pub const fn new(a: Point, b: Point) -> Self {
        Self { a, b }
    }

    /// Euclidean length.
    #[inline]
    pub fn length(&self) -> f64 {
        self.a.euclidean(self.b)
    }

    /// Manhattan length.
    #[inline]
    pub fn manhattan_length(&self) -> i64 {
        self.a.manhattan(self.b)
    }

    /// Whether both endpoints coincide.
    #[inline]
    pub fn is_degenerate(&self) -> bool {
        self.a == self.b
    }

    /// Whether the segment is horizontal or vertical.
    #[inline]
    pub fn is_axis_aligned(&self) -> bool {
        self.a.x == self.b.x || self.a.y == self.b.y
    }

    /// Whether the segment is horizontal (constant y, nonzero extent in x).
    #[inline]
    pub fn is_horizontal(&self) -> bool {
        self.a.y == self.b.y && self.a.x != self.b.x
    }

    /// Whether the segment is vertical (constant x, nonzero extent in y).
    #[inline]
    pub fn is_vertical(&self) -> bool {
        self.a.x == self.b.x && self.a.y != self.b.y
    }

    /// Tightest bounding box of the segment.
    #[inline]
    pub fn bounding_box(&self) -> BoundingBox {
        BoundingBox::new(self.a, self.b)
    }

    /// Orientation of the triple `(p, q, r)`.
    #[inline]
    pub fn orientation(p: Point, q: Point, r: Point) -> Orientation {
        // Die-scale fast path: with every coordinate under 2^30 the
        // differences fit 31 bits and the cross product is exact in
        // i64 — no 128-bit multiplies on the hot pair-test predicate.
        const M: i64 = 1 << 30;
        let cross = if p.x.abs() < M
            && p.y.abs() < M
            && q.x.abs() < M
            && q.y.abs() < M
            && r.x.abs() < M
            && r.y.abs() < M
        {
            ((q.x - p.x) * (r.y - p.y) - (q.y - p.y) * (r.x - p.x)) as i128
        } else {
            (q.x - p.x) as i128 * (r.y - p.y) as i128 - (q.y - p.y) as i128 * (r.x - p.x) as i128
        };
        match cross {
            c if c > 0 => Orientation::CounterClockwise,
            c if c < 0 => Orientation::Clockwise,
            _ => Orientation::Collinear,
        }
    }

    /// Tests whether the closed segments intersect (share at least one
    /// point), including touching endpoints and collinear overlap.
    #[inline]
    pub fn intersects(&self, other: &Segment) -> bool {
        let o1 = Self::orientation(self.a, self.b, other.a);
        let o2 = Self::orientation(self.a, self.b, other.b);
        let o3 = Self::orientation(other.a, other.b, self.a);
        let o4 = Self::orientation(other.a, other.b, self.b);

        // General position: the endpoints of each segment straddle the
        // other's supporting line.
        if o1 != o2 && o3 != o4 {
            return true;
        }
        // Collinear special cases: a point of one segment lies on the other.
        (o1 == Orientation::Collinear && self.contains_collinear(other.a))
            || (o2 == Orientation::Collinear && self.contains_collinear(other.b))
            || (o3 == Orientation::Collinear && other.contains_collinear(self.a))
            || (o4 == Orientation::Collinear && other.contains_collinear(self.b))
    }

    /// Tests whether the open interiors of the segments cross at a single
    /// point (a *proper* crossing).
    ///
    /// This is the predicate used to count waveguide crossings: two
    /// waveguides that merely touch at a shared branch point do not incur
    /// crossing loss, but transversal intersections do.
    #[inline]
    pub fn crosses(&self, other: &Segment) -> bool {
        let o1 = Self::orientation(self.a, self.b, other.a);
        let o2 = Self::orientation(self.a, self.b, other.b);
        let o3 = Self::orientation(other.a, other.b, self.a);
        let o4 = Self::orientation(other.a, other.b, self.b);
        o1 != Orientation::Collinear
            && o2 != Orientation::Collinear
            && o3 != Orientation::Collinear
            && o4 != Orientation::Collinear
            && o1 != o2
            && o3 != o4
    }

    /// Tests whether `p`, already known to be collinear with the segment,
    /// lies within its bounding box (and therefore on the segment).
    fn contains_collinear(&self, p: Point) -> bool {
        self.bounding_box().contains(p)
    }

    /// Tests whether `p` lies on the closed segment.
    pub fn contains(&self, p: Point) -> bool {
        Self::orientation(self.a, self.b, p) == Orientation::Collinear && self.contains_collinear(p)
    }

    /// Perpendicular distance from `p` to the supporting line, in dbu.
    ///
    /// Degenerate segments fall back to point distance.
    pub fn line_distance(&self, p: Point) -> f64 {
        if self.is_degenerate() {
            return self.a.euclidean(p);
        }
        let cross = ((self.b.x - self.a.x) as i128 * (p.y - self.a.y) as i128
            - (self.b.y - self.a.y) as i128 * (p.x - self.a.x) as i128)
            .unsigned_abs() as f64;
        cross / self.length()
    }
}

impl fmt::Display for Segment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}", self.a, self.b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn seg(ax: i64, ay: i64, bx: i64, by: i64) -> Segment {
        Segment::new(Point::new(ax, ay), Point::new(bx, by))
    }

    #[test]
    fn proper_crossing_detected() {
        let a = seg(0, 0, 10, 10);
        let b = seg(0, 10, 10, 0);
        assert!(a.crosses(&b));
        assert!(a.intersects(&b));
    }

    #[test]
    fn shared_endpoint_is_intersection_not_crossing() {
        let a = seg(0, 0, 5, 5);
        let b = seg(5, 5, 9, 0);
        assert!(a.intersects(&b));
        assert!(!a.crosses(&b));
    }

    #[test]
    fn t_junction_is_not_a_proper_crossing() {
        // b's endpoint lies in the interior of a.
        let a = seg(0, 0, 10, 0);
        let b = seg(5, 0, 5, 7);
        assert!(a.intersects(&b));
        assert!(!a.crosses(&b));
    }

    #[test]
    fn collinear_overlap_intersects() {
        let a = seg(0, 0, 10, 0);
        let b = seg(5, 0, 15, 0);
        assert!(a.intersects(&b));
        assert!(!a.crosses(&b));
    }

    #[test]
    fn collinear_disjoint_does_not_intersect() {
        let a = seg(0, 0, 4, 0);
        let b = seg(5, 0, 9, 0);
        assert!(!a.intersects(&b));
    }

    #[test]
    fn parallel_segments_do_not_intersect() {
        let a = seg(0, 0, 10, 0);
        let b = seg(0, 1, 10, 1);
        assert!(!a.intersects(&b));
        assert!(!a.crosses(&b));
    }

    #[test]
    fn contains_checks_on_segment_points() {
        let s = seg(0, 0, 10, 10);
        assert!(s.contains(Point::new(5, 5)));
        assert!(s.contains(Point::new(0, 0)));
        assert!(!s.contains(Point::new(5, 6)));
        assert!(!s.contains(Point::new(11, 11)));
    }

    #[test]
    fn line_distance_examples() {
        let s = seg(0, 0, 10, 0);
        assert!((s.line_distance(Point::new(5, 4)) - 4.0).abs() < 1e-12);
        assert!((s.line_distance(Point::new(-3, 0)) - 0.0).abs() < 1e-12);
        let d = seg(2, 2, 2, 2);
        assert!((d.line_distance(Point::new(5, 6)) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn axis_aligned_predicates() {
        assert!(seg(0, 3, 9, 3).is_horizontal());
        assert!(!seg(0, 3, 9, 3).is_vertical());
        assert!(seg(4, 0, 4, 9).is_vertical());
        assert!(seg(1, 1, 1, 1).is_axis_aligned());
        assert!(!seg(1, 1, 1, 1).is_horizontal());
        assert!(!seg(0, 0, 3, 4).is_axis_aligned());
    }

    fn arb_seg() -> impl Strategy<Value = Segment> {
        (-50i64..50, -50i64..50, -50i64..50, -50i64..50)
            .prop_map(|(ax, ay, bx, by)| seg(ax, ay, bx, by))
    }

    /// Brute-force rational check of closed-segment intersection for the
    /// proptest oracle.
    fn intersects_oracle(s: &Segment, t: &Segment) -> bool {
        // Sample the parameterized intersection with exact arithmetic:
        // solve s.a + u*(s.b-s.a) = t.a + v*(t.b-t.a) over the rationals.
        let (p, r) = (s.a, s.b - s.a);
        let (q, sdir) = (t.a, t.b - t.a);
        let rxs = r.x as i128 * sdir.y as i128 - r.y as i128 * sdir.x as i128;
        let qp = q - p;
        let qpxr = qp.x as i128 * r.y as i128 - qp.y as i128 * r.x as i128;
        if rxs == 0 {
            if qpxr != 0 {
                return false; // parallel, non-collinear
            }
            // Collinear: project onto the dominant axis and test interval
            // overlap. Handle degenerate segments via containment.
            if s.is_degenerate() {
                return t.contains(s.a);
            }
            if t.is_degenerate() {
                return s.contains(t.a);
            }
            let key = |pt: Point| -> i64 {
                if r.x.abs() >= r.y.abs() {
                    pt.x
                } else {
                    pt.y
                }
            };
            let (s0, s1) = (key(s.a).min(key(s.b)), key(s.a).max(key(s.b)));
            let (t0, t1) = (key(t.a).min(key(t.b)), key(t.a).max(key(t.b)));
            return s0 <= t1 && t0 <= s1;
        }
        let qpxs = qp.x as i128 * sdir.y as i128 - qp.y as i128 * sdir.x as i128;
        // u = qpxs / rxs, v = qpxr / rxs; need both in [0, 1].
        let in_unit = |num: i128, den: i128| -> bool {
            if den > 0 {
                0 <= num && num <= den
            } else {
                den <= num && num <= 0
            }
        };
        in_unit(qpxs, rxs) && in_unit(qpxr, rxs)
    }

    #[test]
    fn predicates_stay_exact_at_sweep_limit_magnitudes() {
        // One-dbu discriminations at |coord| ~ 2^40 — the top of the
        // sweep's supported range. The i64 fast path must defer to the
        // i128 cross product here; an inexact predicate would collapse
        // these parallel-by-one-dbu cases into false crossings.
        const L: i64 = (1 << 40) - 1;
        let diag = seg(-L, -L, L, L);
        let shifted = seg(-L, -L + 1, L, L + 1);
        assert!(!diag.intersects(&shifted), "parallel 1-dbu offset");
        assert!(!diag.crosses(&shifted));
        let anti = seg(-L, L, L, -L);
        assert!(diag.crosses(&anti), "transversal at the origin");
        // Shares diag's right endpoint, 1 dbu off-line at the left:
        // touches but never properly crosses.
        let graze = seg(-L, -L + 1, L, L);
        assert!(diag.intersects(&graze));
        assert!(!diag.crosses(&graze));
        assert!(diag.contains(Point::new(123_456_789, 123_456_789)));
        assert!(!diag.contains(Point::new(123_456_789, 123_456_790)));
    }

    /// Direct `i128` evaluation of the orientation cross product — the
    /// oracle for the windowed `i64` fast path.
    fn orientation_oracle(p: Point, q: Point, r: Point) -> Orientation {
        let cross =
            (q.x - p.x) as i128 * (r.y - p.y) as i128 - (q.y - p.y) as i128 * (r.x - p.x) as i128;
        match cross {
            c if c > 0 => Orientation::CounterClockwise,
            c if c < 0 => Orientation::Clockwise,
            _ => Orientation::Collinear,
        }
    }

    /// Segments confined to a small window around `(sx, sy) * (2^40 - 200)`
    /// — large enough that every coordinate product overflows i64, small
    /// enough that the two segments still interact.
    fn arb_seg_near_limit() -> impl Strategy<Value = Segment> {
        const BASE: i64 = (1 << 40) - 200;
        (
            any::<bool>(),
            any::<bool>(),
            0i64..150,
            0i64..150,
            0i64..150,
            0i64..150,
        )
            .prop_map(|(nx, ny, ax, ay, bx, by)| {
                let sx = if nx { -1 } else { 1 };
                let sy = if ny { -1 } else { 1 };
                seg(
                    sx * (BASE + ax),
                    sy * (BASE + ay),
                    sx * (BASE + bx),
                    sy * (BASE + by),
                )
            })
    }

    /// Point coordinates straddling the 2^30 fast-path cutoff of
    /// [`Segment::orientation`], either sign.
    fn arb_boundary_coord() -> impl Strategy<Value = i64> {
        const M: i64 = 1 << 30;
        (any::<bool>(), M - 1_000..M + 1_000).prop_map(|(neg, c)| if neg { -c } else { c })
    }

    proptest! {
        #[test]
        fn intersects_matches_rational_oracle(a in arb_seg(), b in arb_seg()) {
            prop_assert_eq!(a.intersects(&b), intersects_oracle(&a, &b));
        }

        #[test]
        fn intersects_matches_oracle_near_the_sweep_limit(
            a in arb_seg_near_limit(),
            b in arb_seg_near_limit(),
        ) {
            prop_assert_eq!(a.intersects(&b), intersects_oracle(&a, &b));
            prop_assert_eq!(a.crosses(&b), b.crosses(&a));
        }

        #[test]
        fn orientation_fast_path_agrees_at_the_i64_boundary(
            coords in (
                arb_boundary_coord(),
                arb_boundary_coord(),
                arb_boundary_coord(),
                arb_boundary_coord(),
                arb_boundary_coord(),
                arb_boundary_coord(),
            ),
        ) {
            // The window straddles the fast-path cutoff, so triples mix
            // both evaluation paths; each must match the pure i128 form.
            let (px, py, qx, qy, rx, ry) = coords;
            let (p, q, r) = (Point::new(px, py), Point::new(qx, qy), Point::new(rx, ry));
            prop_assert_eq!(Segment::orientation(p, q, r), orientation_oracle(p, q, r));
        }

        #[test]
        fn crossing_implies_intersection(a in arb_seg(), b in arb_seg()) {
            if a.crosses(&b) {
                prop_assert!(a.intersects(&b));
            }
        }

        #[test]
        fn intersection_is_symmetric(a in arb_seg(), b in arb_seg()) {
            prop_assert_eq!(a.intersects(&b), b.intersects(&a));
            prop_assert_eq!(a.crosses(&b), b.crosses(&a));
        }

        #[test]
        fn segment_intersects_itself(a in arb_seg()) {
            prop_assert!(a.intersects(&a));
            prop_assert!(!a.crosses(&a));
        }
    }
}
