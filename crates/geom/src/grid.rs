//! Uniform spatial grids.
//!
//! Used in two roles:
//!
//! 1. **Power maps** (paper Fig. 9): each cell accumulates the power
//!    dissipated by the wires and converters it covers.
//! 2. **Crossing-count acceleration**: candidate segment pairs are pruned
//!    to those whose bounding boxes touch common cells.

use crate::{BoundingBox, Point};
use core::fmt;

/// Index of a cell in a [`Grid`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct GridCell {
    /// Column index (x direction).
    pub col: usize,
    /// Row index (y direction).
    pub row: usize,
}

/// A uniform grid of `f64` accumulators over a die region.
///
/// # Examples
///
/// ```
/// use operon_geom::{BoundingBox, Grid, Point};
///
/// let die = BoundingBox::new(Point::new(0, 0), Point::new(100, 100));
/// let mut g = Grid::new(die, 10, 10);
/// g.deposit(Point::new(5, 5), 2.0);
/// g.deposit(Point::new(7, 3), 1.0);
/// assert_eq!(g.value(0, 0), 3.0);
/// assert_eq!(g.total(), 3.0);
/// ```
#[derive(Clone, Debug)]
pub struct Grid {
    extent: BoundingBox,
    cols: usize,
    rows: usize,
    cells: Vec<f64>,
}

impl Grid {
    /// Creates a zero-initialized grid with `cols × rows` cells over
    /// `extent`.
    ///
    /// # Panics
    ///
    /// Panics if `cols` or `rows` is zero, or if `extent` is degenerate
    /// (zero width or height).
    pub fn new(extent: BoundingBox, cols: usize, rows: usize) -> Self {
        assert!(cols > 0 && rows > 0, "grid must have at least one cell");
        assert!(
            extent.width() > 0 && extent.height() > 0,
            "grid extent must have positive area, got {extent}"
        );
        Self {
            extent,
            cols,
            rows,
            cells: vec![0.0; cols * rows],
        }
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The region covered by the grid.
    #[inline]
    pub fn extent(&self) -> BoundingBox {
        self.extent
    }

    /// Maps a point to its cell, clamping points outside the extent to the
    /// boundary cells.
    pub fn cell_of(&self, p: Point) -> GridCell {
        let fx = (p.x - self.extent.lo().x) as f64 / self.extent.width() as f64;
        let fy = (p.y - self.extent.lo().y) as f64 / self.extent.height() as f64;
        let col = ((fx * self.cols as f64) as isize).clamp(0, self.cols as isize - 1) as usize;
        let row = ((fy * self.rows as f64) as isize).clamp(0, self.rows as isize - 1) as usize;
        GridCell { col, row }
    }

    /// Adds `amount` to the cell containing `p`.
    pub fn deposit(&mut self, p: Point, amount: f64) {
        let c = self.cell_of(p);
        self.cells[c.row * self.cols + c.col] += amount;
    }

    /// Distributes `amount` uniformly along the straight segment from `a`
    /// to `b` by sampling it at sub-cell resolution.
    ///
    /// This is how wire power is smeared over a power map: a long wire
    /// heats every cell it traverses in proportion to the length inside.
    pub fn deposit_segment(&mut self, a: Point, b: Point, amount: f64) {
        let len = a.euclidean(b);
        if len == 0.0 {
            self.deposit(a, amount);
            return;
        }
        // Sample at roughly quarter-cell pitch so that every traversed cell
        // receives its share.
        let cell_w = self.extent.width() as f64 / self.cols as f64;
        let cell_h = self.extent.height() as f64 / self.rows as f64;
        let step = (cell_w.min(cell_h) / 4.0).max(1.0);
        let samples = (len / step).ceil() as usize + 1;
        let share = amount / samples as f64;
        for i in 0..samples {
            let t = i as f64 / (samples - 1).max(1) as f64;
            let p = Point::new(
                a.x + ((b.x - a.x) as f64 * t).round() as i64,
                a.y + ((b.y - a.y) as f64 * t).round() as i64,
            );
            self.deposit(p, share);
        }
    }

    /// Value of the cell at (`col`, `row`).
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn value(&self, col: usize, row: usize) -> f64 {
        assert!(
            col < self.cols && row < self.rows,
            "cell index out of bounds"
        );
        self.cells[row * self.cols + col]
    }

    /// Sum over all cells.
    pub fn total(&self) -> f64 {
        self.cells.iter().sum()
    }

    /// Maximum cell value (0.0 for an all-zero grid).
    pub fn max(&self) -> f64 {
        self.cells.iter().copied().fold(0.0, f64::max)
    }

    /// Iterates over `(cell, value)` pairs in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (GridCell, f64)> + '_ {
        self.cells.iter().enumerate().map(move |(i, &v)| {
            (
                GridCell {
                    col: i % self.cols,
                    row: i / self.cols,
                },
                v,
            )
        })
    }

    /// Returns the grid normalized so the maximum cell is 1.0.
    ///
    /// An all-zero grid is returned unchanged.
    pub fn normalized(&self) -> Grid {
        let mx = self.max();
        if mx == 0.0 {
            return self.clone();
        }
        let mut out = self.clone();
        for v in &mut out.cells {
            *v /= mx;
        }
        out
    }

    /// Cells whose value is at least `frac` of the maximum (hotspots).
    pub fn hotspots(&self, frac: f64) -> Vec<GridCell> {
        let threshold = self.max() * frac;
        if threshold == 0.0 {
            return Vec::new();
        }
        self.iter()
            .filter(|&(_, v)| v >= threshold)
            .map(|(c, _)| c)
            .collect()
    }
}

impl fmt::Display for Grid {
    /// Renders the grid as an ASCII heat map (`.:-=+*#%@` ramp), row 0 at
    /// the bottom as in die coordinates.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const RAMP: &[u8] = b" .:-=+*#%@";
        let mx = self.max();
        for row in (0..self.rows).rev() {
            for col in 0..self.cols {
                let v = self.value(col, row);
                let idx = if mx == 0.0 {
                    0
                } else {
                    (((v / mx) * (RAMP.len() - 1) as f64).round() as usize).min(RAMP.len() - 1)
                };
                write!(f, "{}", RAMP[idx] as char)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn die() -> BoundingBox {
        BoundingBox::new(Point::new(0, 0), Point::new(100, 100))
    }

    #[test]
    #[should_panic(expected = "at least one cell")]
    fn zero_cells_rejected() {
        let _ = Grid::new(die(), 0, 4);
    }

    #[test]
    #[should_panic(expected = "positive area")]
    fn degenerate_extent_rejected() {
        let b = BoundingBox::new(Point::new(0, 0), Point::new(0, 10));
        let _ = Grid::new(b, 2, 2);
    }

    #[test]
    fn cell_of_clamps_outside_points() {
        let g = Grid::new(die(), 10, 10);
        assert_eq!(g.cell_of(Point::new(-5, -5)), GridCell { col: 0, row: 0 });
        assert_eq!(
            g.cell_of(Point::new(1000, 1000)),
            GridCell { col: 9, row: 9 }
        );
    }

    #[test]
    fn deposit_accumulates() {
        let mut g = Grid::new(die(), 4, 4);
        g.deposit(Point::new(10, 10), 1.5);
        g.deposit(Point::new(12, 14), 0.5);
        assert_eq!(g.value(0, 0), 2.0);
        assert_eq!(g.total(), 2.0);
    }

    #[test]
    fn deposit_segment_conserves_total() {
        let mut g = Grid::new(die(), 8, 8);
        g.deposit_segment(Point::new(3, 3), Point::new(97, 91), 10.0);
        assert!((g.total() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn deposit_degenerate_segment_is_point_deposit() {
        let mut g = Grid::new(die(), 8, 8);
        g.deposit_segment(Point::new(50, 50), Point::new(50, 50), 3.0);
        let c = g.cell_of(Point::new(50, 50));
        assert_eq!(g.value(c.col, c.row), 3.0);
    }

    #[test]
    fn deposit_segment_spreads_across_cells() {
        let mut g = Grid::new(die(), 10, 1);
        g.deposit_segment(Point::new(0, 50), Point::new(99, 50), 1.0);
        let touched = g.iter().filter(|&(_, v)| v > 0.0).count();
        assert_eq!(touched, 10, "horizontal wire should heat all 10 columns");
    }

    #[test]
    fn normalized_max_is_one() {
        let mut g = Grid::new(die(), 4, 4);
        g.deposit(Point::new(10, 10), 4.0);
        g.deposit(Point::new(90, 90), 2.0);
        let n = g.normalized();
        assert_eq!(n.max(), 1.0);
        let c = n.cell_of(Point::new(90, 90));
        assert_eq!(n.value(c.col, c.row), 0.5);
    }

    #[test]
    fn normalized_zero_grid_is_unchanged() {
        let g = Grid::new(die(), 4, 4);
        assert_eq!(g.normalized().total(), 0.0);
    }

    #[test]
    fn hotspots_of_zero_grid_empty() {
        let g = Grid::new(die(), 4, 4);
        assert!(g.hotspots(0.5).is_empty());
    }

    #[test]
    fn hotspots_threshold_filters() {
        let mut g = Grid::new(die(), 4, 4);
        g.deposit(Point::new(10, 10), 10.0);
        g.deposit(Point::new(90, 90), 1.0);
        let hs = g.hotspots(0.5);
        assert_eq!(hs.len(), 1);
        assert_eq!(hs[0], g.cell_of(Point::new(10, 10)));
    }

    #[test]
    fn display_has_rows_lines() {
        let g = Grid::new(die(), 3, 5);
        let s = g.to_string();
        assert_eq!(s.lines().count(), 5);
        assert!(s.lines().all(|l| l.chars().count() == 3));
    }

    proptest! {
        #[test]
        fn total_equals_sum_of_deposits(
            deposits in proptest::collection::vec(
                ((0i64..100, 0i64..100), 0.0f64..10.0), 0..30)
        ) {
            let mut g = Grid::new(die(), 7, 7);
            let mut expected = 0.0;
            for ((x, y), amt) in deposits {
                g.deposit(Point::new(x, y), amt);
                expected += amt;
            }
            prop_assert!((g.total() - expected).abs() < 1e-9);
        }

        #[test]
        fn cell_of_in_bounds(x in -500i64..500, y in -500i64..500) {
            let g = Grid::new(die(), 9, 11);
            let c = g.cell_of(Point::new(x, y));
            prop_assert!(c.col < 9 && c.row < 11);
        }
    }
}
