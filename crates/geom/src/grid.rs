//! Uniform spatial grids.
//!
//! Used in two roles:
//!
//! 1. **Power maps** (paper Fig. 9): each cell accumulates the power
//!    dissipated by the wires and converters it covers.
//! 2. **Crossing-count acceleration**: candidate segment pairs are pruned
//!    to those whose bounding boxes touch common cells.

use crate::{BoundingBox, Point, Segment};
use core::fmt;

/// Index of a cell in a [`Grid`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct GridCell {
    /// Column index (x direction).
    pub col: usize,
    /// Row index (y direction).
    pub row: usize,
}

/// A uniform grid of `f64` accumulators over a die region.
///
/// # Examples
///
/// ```
/// use operon_geom::{BoundingBox, Grid, Point};
///
/// let die = BoundingBox::new(Point::new(0, 0), Point::new(100, 100));
/// let mut g = Grid::new(die, 10, 10);
/// g.deposit(Point::new(5, 5), 2.0);
/// g.deposit(Point::new(7, 3), 1.0);
/// assert_eq!(g.value(0, 0), 3.0);
/// assert_eq!(g.total(), 3.0);
/// ```
#[derive(Clone, Debug)]
pub struct Grid {
    extent: BoundingBox,
    cols: usize,
    rows: usize,
    cells: Vec<f64>,
}

impl Grid {
    /// Creates a zero-initialized grid with `cols × rows` cells over
    /// `extent`.
    ///
    /// # Panics
    ///
    /// Panics if `cols` or `rows` is zero, or if `extent` is degenerate
    /// (zero width or height).
    pub fn new(extent: BoundingBox, cols: usize, rows: usize) -> Self {
        assert!(cols > 0 && rows > 0, "grid must have at least one cell");
        assert!(
            extent.width() > 0 && extent.height() > 0,
            "grid extent must have positive area, got {extent}"
        );
        Self {
            extent,
            cols,
            rows,
            cells: vec![0.0; cols * rows],
        }
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The region covered by the grid.
    #[inline]
    pub fn extent(&self) -> BoundingBox {
        self.extent
    }

    /// Maps a point to its cell, clamping points outside the extent to the
    /// boundary cells.
    pub fn cell_of(&self, p: Point) -> GridCell {
        let fx = (p.x - self.extent.lo().x) as f64 / self.extent.width() as f64;
        let fy = (p.y - self.extent.lo().y) as f64 / self.extent.height() as f64;
        let col = ((fx * self.cols as f64) as isize).clamp(0, self.cols as isize - 1) as usize;
        let row = ((fy * self.rows as f64) as isize).clamp(0, self.rows as isize - 1) as usize;
        GridCell { col, row }
    }

    /// Adds `amount` to the cell containing `p`.
    pub fn deposit(&mut self, p: Point, amount: f64) {
        let c = self.cell_of(p);
        self.cells[c.row * self.cols + c.col] += amount;
    }

    /// Distributes `amount` uniformly along the straight segment from `a`
    /// to `b` by sampling it at sub-cell resolution.
    ///
    /// This is how wire power is smeared over a power map: a long wire
    /// heats every cell it traverses in proportion to the length inside.
    pub fn deposit_segment(&mut self, a: Point, b: Point, amount: f64) {
        let len = a.euclidean(b);
        if len == 0.0 {
            self.deposit(a, amount);
            return;
        }
        // Sample at roughly quarter-cell pitch so that every traversed cell
        // receives its share.
        let cell_w = self.extent.width() as f64 / self.cols as f64;
        let cell_h = self.extent.height() as f64 / self.rows as f64;
        let step = (cell_w.min(cell_h) / 4.0).max(1.0);
        let samples = (len / step).ceil() as usize + 1;
        let share = amount / samples as f64;
        for i in 0..samples {
            let t = i as f64 / (samples - 1).max(1) as f64;
            let p = Point::new(
                a.x + ((b.x - a.x) as f64 * t).round() as i64,
                a.y + ((b.y - a.y) as f64 * t).round() as i64,
            );
            self.deposit(p, share);
        }
    }

    /// Value of the cell at (`col`, `row`).
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn value(&self, col: usize, row: usize) -> f64 {
        assert!(
            col < self.cols && row < self.rows,
            "cell index out of bounds"
        );
        self.cells[row * self.cols + col]
    }

    /// Sum over all cells.
    pub fn total(&self) -> f64 {
        self.cells.iter().sum()
    }

    /// Maximum cell value (0.0 for an all-zero grid).
    pub fn max(&self) -> f64 {
        self.cells.iter().copied().fold(0.0, f64::max)
    }

    /// Iterates over `(cell, value)` pairs in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (GridCell, f64)> + '_ {
        self.cells.iter().enumerate().map(move |(i, &v)| {
            (
                GridCell {
                    col: i % self.cols,
                    row: i / self.cols,
                },
                v,
            )
        })
    }

    /// Returns the grid normalized so the maximum cell is 1.0.
    ///
    /// An all-zero grid is returned unchanged.
    pub fn normalized(&self) -> Grid {
        let mx = self.max();
        if mx == 0.0 {
            return self.clone();
        }
        let mut out = self.clone();
        for v in &mut out.cells {
            *v /= mx;
        }
        out
    }

    /// Cells whose value is at least `frac` of the maximum (hotspots).
    pub fn hotspots(&self, frac: f64) -> Vec<GridCell> {
        let threshold = self.max() * frac;
        if threshold == 0.0 {
            return Vec::new();
        }
        self.iter()
            .filter(|&(_, v)| v >= threshold)
            .map(|(c, _)| c)
            .collect()
    }
}

impl fmt::Display for Grid {
    /// Renders the grid as an ASCII heat map (`.:-=+*#%@` ramp), row 0 at
    /// the bottom as in die coordinates.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const RAMP: &[u8] = b" .:-=+*#%@";
        let mx = self.max();
        for row in (0..self.rows).rev() {
            for col in 0..self.cols {
                let v = self.value(col, row);
                let idx = if mx == 0.0 {
                    0
                } else {
                    (((v / mx) * (RAMP.len() - 1) as f64).round() as usize).min(RAMP.len() - 1)
                };
                write!(f, "{}", RAMP[idx] as char)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// A deterministic uniform grid that buckets line segments by the cells
/// they traverse.
///
/// Built for crossing-count acceleration: two segments can only cross
/// where they geometrically overlap, so any properly-crossing pair shares
/// at least one cell (the cell containing the crossing point — see the
/// coverage invariant below). Candidate-pair generation then only has to
/// look inside cells instead of at all `O(N²)` pairs.
///
/// **Coverage invariant:** for every point `p` on an inserted segment
/// with `p` inside the extent, the cell containing `p` is among the cells
/// the segment was bucketed into. Rasterization walks the row bands the
/// segment traverses and, per band, marks the exact column range spanned
/// by the segment inside that band (computed with exact integer
/// rationals — `x(y)` is monotone in `y` along a straight segment). A
/// die-spanning diagonal therefore occupies `O(rows + cols)` cells, not
/// every cell of its bounding box.
///
/// Everything about the structure is deterministic: cell geometry is
/// integer arithmetic on dbu coordinates, and each cell lists item ids in
/// insertion order.
///
/// # Examples
///
/// ```
/// use operon_geom::{BoundingBox, Point, Segment, SegmentGrid};
///
/// let extent = BoundingBox::new(Point::new(0, 0), Point::new(100, 100));
/// let mut g = SegmentGrid::new(extent, 4, 4);
/// g.insert(0, Segment::new(Point::new(0, 0), Point::new(100, 100)));
/// g.insert(1, Segment::new(Point::new(0, 100), Point::new(100, 0)));
/// // The diagonals cross at (50, 50); some cell holds both.
/// assert!(g
///     .nonempty_cells()
///     .iter()
///     .any(|&c| g.cell_items(c) == [0, 1]));
/// ```
#[derive(Clone, Debug)]
pub struct SegmentGrid {
    extent: BoundingBox,
    cols: usize,
    rows: usize,
    cell_w: i64,
    cell_h: i64,
    cells: Vec<Vec<u32>>,
}

impl SegmentGrid {
    /// Creates an empty grid with `cols × rows` cells over `extent`.
    ///
    /// Unlike [`Grid::new`], degenerate extents (zero width or height —
    /// all segments on one line) are allowed; the cell size is always at
    /// least one dbu.
    ///
    /// # Panics
    ///
    /// Panics if `cols` or `rows` is zero.
    pub fn new(extent: BoundingBox, cols: usize, rows: usize) -> Self {
        assert!(cols > 0 && rows > 0, "grid must have at least one cell");
        // `+ 1` guarantees `cols * cell_w > width`, so every in-extent
        // x maps to a column strictly below `cols` (same for rows).
        let cell_w = extent.width() / cols as i64 + 1;
        let cell_h = extent.height() / rows as i64 + 1;
        Self {
            extent,
            cols,
            rows,
            cell_w,
            cell_h,
            cells: vec![Vec::new(); cols * rows],
        }
    }

    /// Creates a grid sized for roughly `items` segments: a square layout
    /// with about one cell per item, capped at 512 cells per side.
    pub fn sized(extent: BoundingBox, items: usize) -> Self {
        let side = ((items as f64).sqrt().ceil() as usize).clamp(1, 512);
        Self::new(extent, side, side)
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The region covered by the grid.
    #[inline]
    pub fn extent(&self) -> BoundingBox {
        self.extent
    }

    /// Item ids stored in cell `cell` (row-major index), in insertion
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if `cell >= cols * rows`.
    #[inline]
    pub fn cell_items(&self, cell: usize) -> &[u32] {
        &self.cells[cell]
    }

    /// Row-major indices of all cells holding at least one item,
    /// ascending.
    pub fn nonempty_cells(&self) -> Vec<usize> {
        (0..self.cells.len())
            .filter(|&c| !self.cells[c].is_empty())
            .collect()
    }

    /// The largest number of items in any single cell (the grid's load
    /// factor hotspot — if this approaches the total item count the grid
    /// has degenerated to brute force).
    pub fn max_cell_load(&self) -> usize {
        self.cells.iter().map(Vec::len).max().unwrap_or(0)
    }

    fn col_of(&self, x: i64) -> usize {
        let off = (x - self.extent.lo().x).max(0);
        ((off / self.cell_w) as usize).min(self.cols - 1)
    }

    fn row_of(&self, y: i64) -> usize {
        let off = (y - self.extent.lo().y).max(0);
        ((off / self.cell_h) as usize).min(self.rows - 1)
    }

    /// Column of the exact rational x-coordinate `num / den` (`den > 0`).
    fn col_of_rational(&self, num: i128, den: i128) -> usize {
        let off = num - i128::from(self.extent.lo().x) * den;
        if off <= 0 {
            return 0;
        }
        let col = div_floor(off, den * i128::from(self.cell_w));
        (col as usize).min(self.cols - 1)
    }

    /// Buckets `seg` into every cell it traverses inside the extent.
    ///
    /// The coverage invariant holds for the portion of the segment lying
    /// inside the extent; parts outside are clamped to boundary cells
    /// without any coverage guarantee, so build the grid over an extent
    /// that contains every inserted segment.
    pub fn insert(&mut self, id: u32, seg: Segment) {
        let lo = self.extent.lo();
        let (ylo, yhi) = if seg.a.y <= seg.b.y {
            (seg.a.y, seg.b.y)
        } else {
            (seg.b.y, seg.a.y)
        };
        let r0 = self.row_of(ylo);
        let r1 = self.row_of(yhi);
        if seg.a.y == seg.b.y {
            // Horizontal or degenerate: one row band, a contiguous column
            // range.
            let c0 = self.col_of(seg.a.x.min(seg.b.x));
            let c1 = self.col_of(seg.a.x.max(seg.b.x));
            for c in c0..=c1 {
                self.cells[r0 * self.cols + c].push(id);
            }
            return;
        }
        // x(y) = ax + (y − ay)·dx/dy, exact in i128; monotone in y, so
        // inside any row band the covered columns are exactly those
        // between the columns at the band's two boundary ordinates.
        let dx = i128::from(seg.b.x - seg.a.x);
        let dy = i128::from(seg.b.y - seg.a.y);
        let x_at = |y: i64| -> (i128, i128) {
            let num = i128::from(seg.a.x) * dy + i128::from(y - seg.a.y) * dx;
            if dy < 0 {
                (-num, -dy)
            } else {
                (num, dy)
            }
        };
        let span = self.rows as i64 * self.cell_h;
        let ylo_c = ylo.clamp(lo.y, lo.y + span);
        let yhi_c = yhi.clamp(lo.y, lo.y + span);
        for r in r0..=r1 {
            let band_lo = ylo_c.max(lo.y + r as i64 * self.cell_h);
            let band_hi = yhi_c.min(lo.y + (r as i64 + 1) * self.cell_h);
            if band_lo > band_hi {
                continue;
            }
            let (n1, d1) = x_at(band_lo);
            let (n2, d2) = x_at(band_hi);
            let ca = self.col_of_rational(n1, d1);
            let cb = self.col_of_rational(n2, d2);
            let (c0, c1) = if ca <= cb { (ca, cb) } else { (cb, ca) };
            for c in c0..=c1 {
                self.cells[r * self.cols + c].push(id);
            }
        }
    }
}

/// Floor division for `i128` with a positive divisor.
fn div_floor(a: i128, b: i128) -> i128 {
    let q = a / b;
    if a % b != 0 && a < 0 {
        q - 1
    } else {
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn die() -> BoundingBox {
        BoundingBox::new(Point::new(0, 0), Point::new(100, 100))
    }

    #[test]
    #[should_panic(expected = "at least one cell")]
    fn zero_cells_rejected() {
        let _ = Grid::new(die(), 0, 4);
    }

    #[test]
    #[should_panic(expected = "positive area")]
    fn degenerate_extent_rejected() {
        let b = BoundingBox::new(Point::new(0, 0), Point::new(0, 10));
        let _ = Grid::new(b, 2, 2);
    }

    #[test]
    fn cell_of_clamps_outside_points() {
        let g = Grid::new(die(), 10, 10);
        assert_eq!(g.cell_of(Point::new(-5, -5)), GridCell { col: 0, row: 0 });
        assert_eq!(
            g.cell_of(Point::new(1000, 1000)),
            GridCell { col: 9, row: 9 }
        );
    }

    #[test]
    fn deposit_accumulates() {
        let mut g = Grid::new(die(), 4, 4);
        g.deposit(Point::new(10, 10), 1.5);
        g.deposit(Point::new(12, 14), 0.5);
        assert_eq!(g.value(0, 0), 2.0);
        assert_eq!(g.total(), 2.0);
    }

    #[test]
    fn deposit_segment_conserves_total() {
        let mut g = Grid::new(die(), 8, 8);
        g.deposit_segment(Point::new(3, 3), Point::new(97, 91), 10.0);
        assert!((g.total() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn deposit_degenerate_segment_is_point_deposit() {
        let mut g = Grid::new(die(), 8, 8);
        g.deposit_segment(Point::new(50, 50), Point::new(50, 50), 3.0);
        let c = g.cell_of(Point::new(50, 50));
        assert_eq!(g.value(c.col, c.row), 3.0);
    }

    #[test]
    fn deposit_segment_spreads_across_cells() {
        let mut g = Grid::new(die(), 10, 1);
        g.deposit_segment(Point::new(0, 50), Point::new(99, 50), 1.0);
        let touched = g.iter().filter(|&(_, v)| v > 0.0).count();
        assert_eq!(touched, 10, "horizontal wire should heat all 10 columns");
    }

    #[test]
    fn normalized_max_is_one() {
        let mut g = Grid::new(die(), 4, 4);
        g.deposit(Point::new(10, 10), 4.0);
        g.deposit(Point::new(90, 90), 2.0);
        let n = g.normalized();
        assert_eq!(n.max(), 1.0);
        let c = n.cell_of(Point::new(90, 90));
        assert_eq!(n.value(c.col, c.row), 0.5);
    }

    #[test]
    fn normalized_zero_grid_is_unchanged() {
        let g = Grid::new(die(), 4, 4);
        assert_eq!(g.normalized().total(), 0.0);
    }

    #[test]
    fn hotspots_of_zero_grid_empty() {
        let g = Grid::new(die(), 4, 4);
        assert!(g.hotspots(0.5).is_empty());
    }

    #[test]
    fn hotspots_threshold_filters() {
        let mut g = Grid::new(die(), 4, 4);
        g.deposit(Point::new(10, 10), 10.0);
        g.deposit(Point::new(90, 90), 1.0);
        let hs = g.hotspots(0.5);
        assert_eq!(hs.len(), 1);
        assert_eq!(hs[0], g.cell_of(Point::new(10, 10)));
    }

    #[test]
    fn display_has_rows_lines() {
        let g = Grid::new(die(), 3, 5);
        let s = g.to_string();
        assert_eq!(s.lines().count(), 5);
        assert!(s.lines().all(|l| l.chars().count() == 3));
    }

    #[test]
    fn segment_grid_horizontal_covers_all_columns_in_one_row() {
        let mut g = SegmentGrid::new(die(), 10, 10);
        g.insert(7, Segment::new(Point::new(0, 55), Point::new(100, 55)));
        let cells = g.nonempty_cells();
        assert_eq!(cells.len(), 10, "one full row of columns");
        let row = g.row_of(55);
        assert!(cells.iter().all(|&c| c / 10 == row));
        assert!(cells.iter().all(|&c| g.cell_items(c) == [7]));
    }

    #[test]
    fn segment_grid_diagonal_is_sparse_not_bbox_dense() {
        // A die-spanning diagonal must occupy O(rows + cols) cells, not
        // the full bounding box (which here is every cell of the grid).
        let mut g = SegmentGrid::new(die(), 16, 16);
        g.insert(0, Segment::new(Point::new(0, 0), Point::new(100, 100)));
        let n = g.nonempty_cells().len();
        assert!(n >= 16, "diagonal traverses every row: {n}");
        assert!(n <= 3 * 16, "diagonal must not fill its bbox: {n}");
    }

    #[test]
    fn segment_grid_degenerate_extent_is_usable() {
        // All segments collinear on x = 5: zero-width extent.
        let extent = BoundingBox::new(Point::new(5, 0), Point::new(5, 100));
        let mut g = SegmentGrid::new(extent, 4, 4);
        g.insert(0, Segment::new(Point::new(5, 0), Point::new(5, 100)));
        assert_eq!(g.max_cell_load(), 1);
        assert!(!g.nonempty_cells().is_empty());
    }

    #[test]
    fn segment_grid_insertion_order_is_preserved_per_cell() {
        let mut g = SegmentGrid::new(die(), 2, 2);
        for id in 0..4u32 {
            g.insert(id, Segment::new(Point::new(10, 10), Point::new(40, 40)));
        }
        for c in g.nonempty_cells() {
            assert_eq!(g.cell_items(c), [0, 1, 2, 3]);
        }
    }

    proptest! {
        #[test]
        fn segment_grid_crossing_pairs_share_a_cell(
            ax in 0i64..200, ay in 0i64..200, bx in 0i64..200, by in 0i64..200,
            cx in 0i64..200, cy in 0i64..200, dx in 0i64..200, dy in 0i64..200,
            cols in 1usize..12, rows in 1usize..12,
        ) {
            let s1 = Segment::new(Point::new(ax, ay), Point::new(bx, by));
            let s2 = Segment::new(Point::new(cx, cy), Point::new(dx, dy));
            let extent = BoundingBox::from_points(
                [s1.a, s1.b, s2.a, s2.b].into_iter(),
            ).unwrap();
            let mut g = SegmentGrid::new(extent, cols, rows);
            g.insert(0, s1);
            g.insert(1, s2);
            if s1.crosses(&s2) {
                let shared = g.nonempty_cells().into_iter().any(|c| {
                    let items = g.cell_items(c);
                    items.contains(&0) && items.contains(&1)
                });
                prop_assert!(shared, "crossing segments must share a cell");
            }
        }

        #[test]
        fn segment_grid_endpoint_cells_are_covered(
            ax in 0i64..101, ay in 0i64..101,
            bx in 0i64..101, by in 0i64..101,
            cols in 1usize..9, rows in 1usize..9,
        ) {
            let seg = Segment::new(Point::new(ax, ay), Point::new(bx, by));
            let mut g = SegmentGrid::new(die(), cols, rows);
            g.insert(3, seg);
            for p in [seg.a, seg.b] {
                let cell = g.row_of(p.y) * cols + g.col_of(p.x);
                prop_assert!(
                    g.cell_items(cell).contains(&3),
                    "endpoint {p:?} cell {cell} not covered"
                );
            }
        }
    }

    proptest! {
        #[test]
        fn total_equals_sum_of_deposits(
            deposits in proptest::collection::vec(
                ((0i64..100, 0i64..100), 0.0f64..10.0), 0..30)
        ) {
            let mut g = Grid::new(die(), 7, 7);
            let mut expected = 0.0;
            for ((x, y), amt) in deposits {
                g.deposit(Point::new(x, y), amt);
                expected += amt;
            }
            prop_assert!((g.total() - expected).abs() < 1e-9);
        }

        #[test]
        fn cell_of_in_bounds(x in -500i64..500, y in -500i64..500) {
            let g = Grid::new(die(), 9, 11);
            let c = g.cell_of(Point::new(x, y));
            prop_assert!(c.col < 9 && c.row < 11);
        }
    }
}
