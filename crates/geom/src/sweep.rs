//! Bentley–Ottmann sweep line over candidate segments.
//!
//! Third crossing-build strategy next to brute force and the uniform
//! [`SegmentGrid`](crate::SegmentGrid): output-sensitive `O((n + k) log n)`
//! in the segment count `n` and the crossing count `k`, so it wins exactly
//! where the grid loses — candidate sets whose segment lengths are widely
//! dispersed (a few die-spanning trunks over many short cluster stubs
//! defeat any uniform cell size).
//!
//! Determinism is load-bearing: the crossing index must be a pure function
//! of the candidate set. All event ordering here uses exact rational
//! arithmetic (`i128` numerators compared by 256-bit cross multiplication),
//! never floating point, so the pair set — and therefore everything
//! downstream of it — is bit-identical across machines and thread counts.
//! The sweep itself is sequential; callers parallelize around it.
//!
//! Degenerate handling follows [`Segment::crosses`] exactly: only *proper*
//! crossings (transversal interior-interior intersections) are reported.
//! Shared endpoints, T-junctions, and collinear overlaps are events the
//! sweep processes for ordering but never reports, because every candidate
//! pair is filtered through the same exact predicate the brute-force
//! oracle uses.

use crate::{Point, Segment};
use core::cmp::Ordering;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Coordinate magnitude bound for [`sweep_crossings`] inputs.
///
/// With `|x|, |y| < 2^40` every intermediate rational in the sweep —
/// intersection numerators up to ~`2^125`, denominators up to ~`2^83` —
/// fits `i128`, and the 256-bit comparison helpers cover every cross
/// product exactly. `2^40` dbu is ~1.1e12 units: six orders of magnitude
/// above a centimeter-scale die at µm resolution.
pub const SWEEP_COORD_LIMIT: i64 = 1 << 40;

/// Compares `a * b` with `c * d` exactly.
///
/// The factors are full-range `i128`, so the products need 256 bits;
/// magnitudes are computed as `(hi, lo)` `u128` pairs via 64-bit limbs.
#[inline]
fn cmp_prod(a: i128, b: i128, c: i128, d: i128) -> Ordering {
    // Fast path: both products computed in i128 when neither overflows.
    // Die-scale coordinates land here even for crossing-event rationals
    // (numerators ~2^44 times denominators ~2^30), which keeps the
    // per-event comparison cost to two multiplies; only coordinates
    // near the SWEEP_COORD_LIMIT bound fall through to 256 bits.
    if let (Ok(a64), Ok(b64), Ok(c64), Ok(d64)) = (
        i64::try_from(a),
        i64::try_from(b),
        i64::try_from(c),
        i64::try_from(d),
    ) {
        if let (Some(l), Some(r)) = (a64.checked_mul(b64), c64.checked_mul(d64)) {
            return l.cmp(&r);
        }
        // Factors fit i64, so the products fit i128 exactly: plain
        // 128-bit multiplies, no overflow checking needed.
        return (a * b).cmp(&(c * d));
    }
    if let (Some(l), Some(r)) = (a.checked_mul(b), c.checked_mul(d)) {
        return l.cmp(&r);
    }
    fn sign(x: i128) -> i32 {
        match x.cmp(&0) {
            Ordering::Less => -1,
            Ordering::Equal => 0,
            Ordering::Greater => 1,
        }
    }
    /// Full 256-bit magnitude product as `(hi, lo)`.
    fn wide_mul(x: u128, y: u128) -> (u128, u128) {
        const MASK: u128 = (1u128 << 64) - 1;
        let (xh, xl) = (x >> 64, x & MASK);
        let (yh, yl) = (y >> 64, y & MASK);
        let ll = xl * yl;
        let lh = xl * yh;
        let hl = xh * yl;
        let hh = xh * yh;
        let (mid, mid_carry) = lh.overflowing_add(hl);
        let (lo, lo_carry) = ll.overflowing_add(mid << 64);
        let hi = hh + (mid >> 64) + ((mid_carry as u128) << 64) + lo_carry as u128;
        (hi, lo)
    }
    let sl = sign(a) * sign(b);
    let sr = sign(c) * sign(d);
    if sl != sr {
        return sl.cmp(&sr);
    }
    if sl == 0 {
        return Ordering::Equal;
    }
    let ml = wide_mul(a.unsigned_abs(), b.unsigned_abs());
    let mr = wide_mul(c.unsigned_abs(), d.unsigned_abs());
    if sl > 0 {
        ml.cmp(&mr)
    } else {
        mr.cmp(&ml)
    }
}

/// An exact rational event point `(nx / d, ny / d)` with `d > 0`.
///
/// Fractions are deliberately *not* reduced: ordering and equality go
/// through cross multiplication, so `(2, 4, 2)` and `(1, 2, 1)` compare
/// equal anywhere the queue compares them. Segment endpoints always enter the
/// queue first (with `d == 1`), so any event at a lattice point keeps its
/// integer representation.
#[derive(Clone, Copy, Debug)]
struct EvPoint {
    nx: i128,
    ny: i128,
    d: i128,
}

impl EvPoint {
    fn integer(p: Point) -> Self {
        Self {
            nx: p.x as i128,
            ny: p.y as i128,
            d: 1,
        }
    }
}

impl PartialEq for EvPoint {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for EvPoint {}

impl PartialOrd for EvPoint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for EvPoint {
    fn cmp(&self, other: &Self) -> Ordering {
        // Lexicographic (x, y); denominators are positive so the
        // cross-multiplied comparison preserves the rational order.
        cmp_prod(self.nx, other.d, other.nx, self.d)
            .then_with(|| cmp_prod(self.ny, other.d, other.ny, self.d))
    }
}

/// Per-segment sweep bookkeeping: endpoints oriented lexicographically
/// (left = min by `(x, y)`, so verticals run bottom-to-top).
struct SweepSeg {
    left: Point,
    right: Point,
    dx: i128,
    dy: i128,
    vertical: bool,
    degenerate: bool,
}

impl SweepSeg {
    fn of(s: &Segment) -> Self {
        let (left, right) = if (s.a.x, s.a.y) <= (s.b.x, s.b.y) {
            (s.a, s.b)
        } else {
            (s.b, s.a)
        };
        Self {
            left,
            right,
            dx: (right.x - left.x) as i128,
            dy: (right.y - left.y) as i128,
            vertical: left.x == right.x && left.y != right.y,
            degenerate: left == right,
        }
    }

    /// Ordering of this segment's `y` at the event's `x` versus the
    /// event's `y`. Exact: the sign of `dy·(nx − lx·d) − dx·(ny − ly·d)`
    /// over the positive denominator `dx·d`. Only valid for non-vertical
    /// segments (`dx > 0`).
    #[inline]
    fn y_at_vs(&self, p: &EvPoint) -> Ordering {
        // Integer events (d == 1: every endpoint event and any crossing
        // at a lattice point) skip the denominator entirely: two
        // multiplies, all i64 — the single hottest line of the sweep.
        if p.d == 1 {
            if let (Ok(nx), Ok(ny)) = (i64::try_from(p.nx), i64::try_from(p.ny)) {
                let fast = (|| {
                    let lhs = (self.dy as i64).checked_mul(nx.checked_sub(self.left.x)?)?;
                    let rhs = (self.dx as i64).checked_mul(ny.checked_sub(self.left.y)?)?;
                    Some(lhs.cmp(&rhs))
                })();
                if let Some(ord) = fast {
                    return ord;
                }
            }
        }
        // i64 fast path: die-scale coordinates keep every intermediate
        // (lx·d, the numerator differences, both cross products) within
        // i64, sparing the hottest comparison of the sweep any 128-bit
        // multiply. Overflow at any step falls back to the wide path.
        if let (Ok(nx), Ok(ny), Ok(d)) =
            (i64::try_from(p.nx), i64::try_from(p.ny), i64::try_from(p.d))
        {
            let fast = (|| {
                let t2 = nx.checked_sub(d.checked_mul(self.left.x)?)?;
                let t1 = ny.checked_sub(d.checked_mul(self.left.y)?)?;
                Some(
                    (self.dy as i64)
                        .checked_mul(t2)?
                        .cmp(&(self.dx as i64).checked_mul(t1)?),
                )
            })();
            if let Some(ord) = fast {
                return ord;
            }
        }
        let t1 = p.ny - self.left.y as i128 * p.d;
        let t2 = p.nx - self.left.x as i128 * p.d;
        cmp_prod(self.dy, t2, self.dx, t1)
    }

    /// Whether the segment's right endpoint is exactly the event point.
    #[inline]
    fn ends_at(&self, p: &EvPoint) -> bool {
        if p.d == 1 {
            return self.right.x as i128 == p.nx && self.right.y as i128 == p.ny;
        }
        if let (Ok(nx), Ok(ny), Ok(d)) =
            (i64::try_from(p.nx), i64::try_from(p.ny), i64::try_from(p.d))
        {
            if let (Some(px), Some(py)) = (d.checked_mul(self.right.x), d.checked_mul(self.right.y))
            {
                return px == nx && py == ny;
            }
        }
        self.right.x as i128 * p.d == p.nx && self.right.y as i128 * p.d == p.ny
    }

    /// Slope ordering (`dy/dx`, both `dx > 0`): the status order of two
    /// segments just *after* a common point is ascending slope.
    fn cmp_slope(&self, other: &Self) -> Ordering {
        cmp_prod(self.dy, other.dx, other.dy, self.dx)
    }

    /// The proper crossing point of two non-parallel segments as an exact
    /// rational event point (`d > 0`). Caller guarantees a proper
    /// crossing, so the denominator is nonzero.
    fn crossing_point(&self, other: &Self) -> EvPoint {
        let rxs = self.dx * other.dy - self.dy * other.dx;
        let qpx = (other.left.x - self.left.x) as i128;
        let qpy = (other.left.y - self.left.y) as i128;
        let u_num = qpx * other.dy - qpy * other.dx;
        let mut nx = self.left.x as i128 * rxs + u_num * self.dx;
        let mut ny = self.left.y as i128 * rxs + u_num * self.dy;
        let mut d = rxs;
        if d < 0 {
            nx = -nx;
            ny = -ny;
            d = -d;
        }
        EvPoint { nx, ny, d }
    }
}

/// If `a` and `b` cross properly beyond `p`, schedule the crossing event.
fn schedule(
    crossings: &mut BinaryHeap<Reverse<EvPoint>>,
    segs: &[SweepSeg],
    raw: &[Segment],
    p: &EvPoint,
    a: u32,
    b: u32,
) {
    if !raw[a as usize].crosses(&raw[b as usize]) {
        return;
    }
    let q = segs[a as usize].crossing_point(&segs[b as usize]);
    if q > *p {
        crossings.push(Reverse(q));
    }
}

/// Reports every properly crossing pair of segments, as `(i, j)` index
/// pairs with `i < j`, sorted and deduplicated.
///
/// The crossing predicate is exactly [`Segment::crosses`]: collinear
/// overlaps, shared endpoints, and T-junctions are not reported, and
/// degenerate segments never cross anything. The result is a pure
/// function of the input slice — no floating point, no randomness, no
/// thread-count dependence.
///
/// Coordinates must satisfy `|x|, |y| < ` [`SWEEP_COORD_LIMIT`] so every
/// intermediate rational stays exact; the function asserts this.
pub fn sweep_crossings(segments: &[Segment]) -> Vec<(u32, u32)> {
    assert!(
        segments.iter().all(|s| s.a.x.abs() < SWEEP_COORD_LIMIT
            && s.a.y.abs() < SWEEP_COORD_LIMIT
            && s.b.x.abs() < SWEEP_COORD_LIMIT
            && s.b.y.abs() < SWEEP_COORD_LIMIT),
        "sweep_crossings: coordinate magnitude exceeds SWEEP_COORD_LIMIT"
    );
    let segs: Vec<SweepSeg> = segments.iter().map(SweepSeg::of).collect();

    // Endpoint events are known up front: one `(point, id)` entry per
    // left endpoint and a `(point, MAX)` sentinel per right endpoint,
    // sorted once with cheap integer comparisons. Only the dynamically
    // discovered crossing events go through a rational-keyed tree — the
    // pending-crossing set stays small (future crossings of currently
    // adjacent pairs), so the queue never pays tree-of-rationals costs
    // proportional to n.
    let mut endpoint_events: Vec<(Point, u32)> = Vec::with_capacity(2 * segs.len());
    for (id, ss) in segs.iter().enumerate() {
        if ss.degenerate {
            continue;
        }
        endpoint_events.push((ss.left, id as u32));
        endpoint_events.push((ss.right, u32::MAX));
    }
    endpoint_events.sort_unstable();
    let mut crossings: BinaryHeap<Reverse<EvPoint>> = BinaryHeap::new();

    // Status: non-vertical segments currently intersecting the sweep
    // line, ordered bottom-to-top by y at the sweep position (slope then
    // id inside blocks that share a point). A flat vec beats a balanced
    // tree at on-chip candidate-set sizes. Verticals stay out entirely
    // and are resolved by range scans at their own x.
    let mut status: Vec<u32> = Vec::new();
    let mut out: Vec<(u32, u32)> = Vec::new();
    let mut bundle: Vec<u32> = Vec::new();
    let mut reinsert: Vec<u32> = Vec::new();
    let mut starts: Vec<u32> = Vec::new();

    let mut ei = 0usize;
    while ei < endpoint_events.len() || !crossings.is_empty() {
        // Next event: the smaller of the endpoint cursor and the first
        // pending crossing; when they coincide the crossing entry is
        // absorbed into the endpoint event.
        let next_ep = (ei < endpoint_events.len()).then(|| endpoint_events[ei].0);
        let next_xq = crossings.peek().map(|&Reverse(k)| k);
        let p = match (next_ep.map(EvPoint::integer), next_xq) {
            // On a tie the integer endpoint representation wins: `d == 1`
            // keeps every downstream comparison on the cheap path.
            (Some(e), Some(x)) => {
                if x < e {
                    x
                } else {
                    e
                }
            }
            (Some(e), None) => e,
            (None, Some(x)) => x,
            (None, None) => break,
        };
        // Consume the crossing entry at p, plus any duplicates: the heap
        // (unlike the map it replaced) does not unify equal-point pushes,
        // so duplicate schedules drain here.
        while crossings.peek().is_some_and(|&Reverse(q)| q == p) {
            crossings.pop();
        }
        // Consume every endpoint entry at p (if p is this lattice point).
        starts.clear();
        if let Some(pt) = next_ep {
            if EvPoint::integer(pt) == p {
                while ei < endpoint_events.len() && endpoint_events[ei].0 == pt {
                    let id = endpoint_events[ei].1;
                    if id != u32::MAX {
                        starts.push(id);
                    }
                    ei += 1;
                }
            }
        }

        // Contiguous block of status segments whose supporting line
        // passes through p: exactly those ending at or continuing
        // through the event point.
        let lo = status.partition_point(|&id| segs[id as usize].y_at_vs(&p) == Ordering::Less);
        // The equal block is almost always tiny (the segments actually
        // meeting at p), so a linear scan beats a second binary search.
        let mut hi = lo;
        while hi < status.len() && segs[status[hi] as usize].y_at_vs(&p) == Ordering::Equal {
            hi += 1;
        }

        // Every pair meeting at p is a crossing candidate; the exact
        // predicate keeps only proper crossings. Early hits for pairs
        // crossing elsewhere are harmless — the result is deduplicated.
        bundle.clear();
        bundle.extend_from_slice(&starts);
        bundle.extend_from_slice(&status[lo..hi]);
        for (i, &a) in bundle.iter().enumerate() {
            for &b in &bundle[i + 1..] {
                if segments[a as usize].crosses(&segments[b as usize]) {
                    out.push((a.min(b), a.max(b)));
                }
            }
        }

        // Verticals: anything properly crossing one spans its x strictly,
        // so it is in the status right now; scan the y-range.
        for &v in &starts {
            let vs = &segs[v as usize];
            if !vs.vertical {
                continue;
            }
            let plo = EvPoint::integer(vs.left);
            let phi = EvPoint::integer(vs.right);
            let from =
                status.partition_point(|&id| segs[id as usize].y_at_vs(&plo) == Ordering::Less);
            for &id in &status[from..] {
                if segs[id as usize].y_at_vs(&phi) == Ordering::Greater {
                    break;
                }
                if segments[v as usize].crosses(&segments[id as usize]) {
                    out.push((v.min(id), v.max(id)));
                }
            }
        }

        // Rebuild the block for the outgoing side of p: continuing
        // segments plus non-vertical starters, in ascending slope order
        // (ties by id — collinear overlaps keep a stable order).
        reinsert.clear();
        for &id in &status[lo..hi] {
            if !segs[id as usize].ends_at(&p) {
                reinsert.push(id);
            }
        }
        for &id in &starts {
            let ss = &segs[id as usize];
            if !ss.vertical && !ss.degenerate {
                reinsert.push(id);
            }
        }
        reinsert.sort_unstable_by(|&a, &b| {
            segs[a as usize]
                .cmp_slope(&segs[b as usize])
                .then_with(|| a.cmp(&b))
        });
        // Same-size replacement (the common case: a pure crossing event
        // permutes the block) writes in place; start/end events move the
        // tail once by the size delta — a plain memmove, no element-wise
        // splice machinery.
        let k = reinsert.len();
        let old = hi - lo;
        if k <= old {
            status.copy_within(hi.., lo + k);
            status.truncate(status.len() - (old - k));
        } else {
            let grow = k - old;
            status.resize(status.len() + grow, 0);
            let end = status.len() - grow;
            status.copy_within(hi..end, lo + k);
        }
        status[lo..lo + k].copy_from_slice(&reinsert);

        // New adjacencies at the block boundaries are the only places a
        // future proper crossing can first become imminent.
        if k == 0 {
            if lo > 0 && lo < status.len() {
                schedule(
                    &mut crossings,
                    &segs,
                    segments,
                    &p,
                    status[lo - 1],
                    status[lo],
                );
            }
        } else {
            if lo > 0 {
                schedule(
                    &mut crossings,
                    &segs,
                    segments,
                    &p,
                    status[lo - 1],
                    status[lo],
                );
            }
            let top = lo + k;
            if top < status.len() {
                schedule(
                    &mut crossings,
                    &segs,
                    segments,
                    &p,
                    status[top - 1],
                    status[top],
                );
            }
        }
    }

    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn seg(ax: i64, ay: i64, bx: i64, by: i64) -> Segment {
        Segment::new(Point::new(ax, ay), Point::new(bx, by))
    }

    /// Brute-force oracle: all pairs through the exact predicate.
    fn brute(segments: &[Segment]) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for i in 0..segments.len() {
            for j in i + 1..segments.len() {
                if segments[i].crosses(&segments[j]) {
                    out.push((i as u32, j as u32));
                }
            }
        }
        out
    }

    #[test]
    fn x_crossing_is_reported_once() {
        let segs = [seg(0, 0, 10, 10), seg(0, 10, 10, 0)];
        assert_eq!(sweep_crossings(&segs), [(0, 1)]);
    }

    #[test]
    fn shared_endpoint_and_t_junction_are_not_crossings() {
        let segs = [
            seg(0, 0, 5, 5),
            seg(5, 5, 9, 0),  // shares an endpoint with 0
            seg(2, 2, 2, -3), // T-junction onto 0's interior endpoint? no: touches (2,2)
        ];
        assert_eq!(sweep_crossings(&segs), brute(&segs));
        assert!(sweep_crossings(&segs).is_empty());
    }

    #[test]
    fn collinear_overlap_is_not_a_crossing() {
        let segs = [seg(0, 0, 10, 0), seg(5, 0, 15, 0), seg(-2, 0, 3, 0)];
        assert!(sweep_crossings(&segs).is_empty());
    }

    #[test]
    fn transversal_through_collinear_overlap_hits_both() {
        // Two collinear overlapping diagonals, one transversal through
        // the shared interior: both pairs cross at the same point.
        let segs = [seg(0, 0, 8, 8), seg(2, 2, 12, 12), seg(0, 8, 8, 0)];
        assert_eq!(sweep_crossings(&segs), [(0, 2), (1, 2)]);
    }

    #[test]
    fn vertical_crossings_are_found() {
        let segs = [
            seg(5, -10, 5, 10),  // vertical
            seg(0, 0, 10, 1),    // crosses it
            seg(0, 5, 5, 5),     // T-junction at (5,5): not proper
            seg(5, 10, 9, 12),   // shares the top endpoint
            seg(4, -20, 4, -15), // disjoint vertical
        ];
        assert_eq!(sweep_crossings(&segs), [(0, 1)]);
    }

    #[test]
    fn vertical_vertical_overlap_never_crosses() {
        let segs = [seg(3, 0, 3, 10), seg(3, 5, 3, 15)];
        assert!(sweep_crossings(&segs).is_empty());
    }

    #[test]
    fn star_of_segments_through_one_point() {
        // Several segments concurrent at (0,0); interior-interior for all
        // pairs, so every pair crosses at the same event point.
        let segs = [
            seg(-5, -5, 5, 5),
            seg(-5, 5, 5, -5),
            seg(-5, 0, 5, 0),
            seg(-5, 1, 5, -1),
        ];
        let got = sweep_crossings(&segs);
        assert_eq!(got, brute(&segs));
        assert_eq!(got.len(), 6);
    }

    #[test]
    fn degenerate_segments_are_ignored() {
        let segs = [seg(2, 2, 2, 2), seg(0, 0, 4, 4), seg(0, 4, 4, 0)];
        assert_eq!(sweep_crossings(&segs), [(1, 2)]);
    }

    #[test]
    fn crossing_at_rational_point_between_lattice_points() {
        // Intersection at (5/3, 5/3): exercises non-integer event keys.
        let segs = [seg(0, 0, 5, 5), seg(0, 5, 5, -5), seg(1, 0, 1, 3)];
        assert_eq!(sweep_crossings(&segs), brute(&segs));
    }

    #[test]
    fn dense_grid_of_segments_matches_brute_force() {
        // Axis-aligned lattice: every horizontal/vertical pair meets, but
        // only strict interior intersections count.
        let mut segs = Vec::new();
        for i in 0..8i64 {
            segs.push(seg(0, i, 7, i));
            segs.push(seg(i, 0, i, 7));
        }
        assert_eq!(sweep_crossings(&segs), brute(&segs));
    }

    #[test]
    fn empty_and_single_inputs() {
        assert!(sweep_crossings(&[]).is_empty());
        assert!(sweep_crossings(&[seg(0, 0, 3, 3)]).is_empty());
    }

    fn arb_seg(range: core::ops::Range<i64>) -> impl Strategy<Value = Segment> {
        (range.clone(), range.clone(), range.clone(), range)
            .prop_map(|(ax, ay, bx, by)| seg(ax, ay, bx, by))
    }

    proptest! {
        #[test]
        fn matches_brute_force_on_random_segments(
            segs in proptest::collection::vec(arb_seg(-50..50), 0..40)
        ) {
            prop_assert_eq!(sweep_crossings(&segs), brute(&segs));
        }

        #[test]
        fn matches_brute_force_on_tight_lattice(
            // Tiny coordinate range forces shared endpoints, collinear
            // overlaps, concurrent crossings, and degenerate segments.
            segs in proptest::collection::vec(arb_seg(0..7), 0..30)
        ) {
            prop_assert_eq!(sweep_crossings(&segs), brute(&segs));
        }

        #[test]
        fn matches_brute_force_on_axis_heavy_sets(
            raw in proptest::collection::vec((0i64..20, 0i64..20, 0i64..20, any::<bool>()), 0..30)
        ) {
            // Mostly horizontals/verticals with a few diagonals mixed in.
            let segs: Vec<Segment> = raw
                .iter()
                .enumerate()
                .map(|(i, &(a, b, c, horizontal))| {
                    if i % 5 == 0 {
                        seg(a, b, c, (a + c) % 20)
                    } else if horizontal {
                        seg(a, b, c, b)
                    } else {
                        seg(a, b, a, c)
                    }
                })
                .collect();
            prop_assert_eq!(sweep_crossings(&segs), brute(&segs));
        }

        #[test]
        fn result_is_sorted_and_unique(
            segs in proptest::collection::vec(arb_seg(-20..20), 0..25)
        ) {
            let got = sweep_crossings(&segs);
            let mut sorted = got.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(got, sorted);
        }
    }
}
