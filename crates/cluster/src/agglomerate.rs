//! Bottom-up agglomerative clustering of pin locations (paper §3.1.2).
//!
//! Every pin starts as its own cluster; the closest pair (Euclidean,
//! between gravity centers) is merged while their distance stays below a
//! threshold. The result is the hyper-pin partition: each cluster's
//! gravity center will represent its member pins during routing.

use operon_geom::{FPoint, Point};

/// Agglomerates `points` into clusters whose pairwise gravity-center
/// distance is at least `threshold`.
///
/// Returns the member-index lists; each input index appears in exactly one
/// cluster. With `threshold <= 0` no merging occurs; with a very large
/// threshold everything collapses into one cluster.
///
/// The merge loop is O(n³) in the worst case, fine for the dozens of pins
/// a hyper net carries.
///
/// # Examples
///
/// ```
/// use operon_cluster::agglomerate;
/// use operon_geom::Point;
///
/// let pins = [
///     Point::new(0, 0),
///     Point::new(2, 0),     // near the first pin
///     Point::new(100, 100), // far away
/// ];
/// let clusters = agglomerate(&pins, 10.0);
/// assert_eq!(clusters.len(), 2);
/// ```
pub fn agglomerate(points: &[Point], threshold: f64) -> Vec<Vec<usize>> {
    let mut clusters: Vec<Vec<usize>> = (0..points.len()).map(|i| vec![i]).collect();
    let mut centers: Vec<FPoint> = points.iter().map(|p| p.to_fpoint()).collect();

    loop {
        // Find the closest pair of clusters.
        let mut best: Option<(f64, usize, usize)> = None;
        for i in 0..clusters.len() {
            for j in i + 1..clusters.len() {
                let d = centers[i].euclidean(centers[j]);
                if best.is_none_or(|(bd, _, _)| d < bd) {
                    best = Some((d, i, j));
                }
            }
        }
        match best {
            Some((d, i, j)) if d < threshold => {
                // Merge j into i; gravity center weighted by member count.
                let (ni, nj) = (clusters[i].len() as f64, clusters[j].len() as f64);
                centers[i] = FPoint::new(
                    (centers[i].x * ni + centers[j].x * nj) / (ni + nj),
                    (centers[i].y * ni + centers[j].y * nj) / (ni + nj),
                );
                let moved = clusters.swap_remove(j);
                centers.swap_remove(j);
                // After swap_remove, index i is still valid because j > i.
                clusters[i].extend(moved);
            }
            _ => break,
        }
    }
    clusters
}

/// The gravity center of a cluster of points, rounded to the lattice.
///
/// # Panics
///
/// Panics if `members` is empty.
pub(crate) fn gravity_center(points: &[Point], members: &[usize]) -> Point {
    assert!(!members.is_empty(), "gravity center of an empty cluster");
    FPoint::centroid(members.iter().map(|&i| points[i].to_fpoint()))
        .expect("non-empty members")
        .round()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_input_gives_no_clusters() {
        assert!(agglomerate(&[], 10.0).is_empty());
    }

    #[test]
    fn zero_threshold_keeps_singletons() {
        let pts = [Point::new(0, 0), Point::new(1, 0), Point::new(2, 0)];
        let clusters = agglomerate(&pts, 0.0);
        assert_eq!(clusters.len(), 3);
    }

    #[test]
    fn huge_threshold_collapses_everything() {
        let pts = [Point::new(0, 0), Point::new(50, 0), Point::new(0, 50)];
        let clusters = agglomerate(&pts, 1e9);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].len(), 3);
    }

    #[test]
    fn two_groups_separate_cleanly() {
        let pts = [
            Point::new(0, 0),
            Point::new(3, 0),
            Point::new(0, 3),
            Point::new(1000, 1000),
            Point::new(1004, 1000),
        ];
        let clusters = agglomerate(&pts, 50.0);
        assert_eq!(clusters.len(), 2);
        let sizes: Vec<usize> = {
            let mut s: Vec<usize> = clusters.iter().map(Vec::len).collect();
            s.sort_unstable();
            s
        };
        assert_eq!(sizes, vec![2, 3]);
    }

    #[test]
    fn chain_merging_uses_gravity_centers() {
        // Points at 0, 10, 20 with threshold 11: 0 and 10 merge (center 5);
        // center-to-20 distance is 15 >= 11, so 20 stays separate even
        // though it was within 11 of the original point at 10.
        let pts = [Point::new(0, 0), Point::new(10, 0), Point::new(20, 0)];
        let clusters = agglomerate(&pts, 11.0);
        assert_eq!(clusters.len(), 2);
    }

    #[test]
    fn gravity_center_of_square() {
        let pts = [
            Point::new(0, 0),
            Point::new(4, 0),
            Point::new(4, 4),
            Point::new(0, 4),
        ];
        assert_eq!(gravity_center(&pts, &[0, 1, 2, 3]), Point::new(2, 2));
    }

    #[test]
    #[should_panic(expected = "empty cluster")]
    fn gravity_center_of_empty_panics() {
        let _ = gravity_center(&[Point::origin()], &[]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn partition_is_exact(
            pts in proptest::collection::vec((-300i64..300, -300i64..300), 0..25),
            threshold in 0.0f64..200.0,
        ) {
            let pts: Vec<Point> = pts.into_iter().map(Point::from).collect();
            let clusters = agglomerate(&pts, threshold);
            let mut all: Vec<usize> = clusters.iter().flatten().copied().collect();
            all.sort_unstable();
            let expect: Vec<usize> = (0..pts.len()).collect();
            prop_assert_eq!(all, expect);
        }

        #[test]
        fn final_centers_respect_threshold(
            pts in proptest::collection::vec((-300i64..300, -300i64..300), 2..20),
            threshold in 1.0f64..100.0,
        ) {
            let pts: Vec<Point> = pts.into_iter().map(Point::from).collect();
            let clusters = agglomerate(&pts, threshold);
            let centers: Vec<_> = clusters
                .iter()
                .map(|c| gravity_center(&pts, c).to_fpoint())
                .collect();
            for i in 0..centers.len() {
                for j in i + 1..centers.len() {
                    // Rounded centers may drift by up to ~1 dbu from the
                    // exact gravity centers the algorithm compared.
                    prop_assert!(centers[i].euclidean(centers[j]) >= threshold - 2.0);
                }
            }
        }
    }
}
