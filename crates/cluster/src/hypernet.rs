//! Hyper nets and hyper pins.

use crate::agglomerate::{agglomerate, gravity_center};
use crate::kmeans::{cluster_capacitated, KmeansParams};
use core::fmt;
use operon_geom::{BoundingBox, Point};
use operon_netlist::{BitId, Design, GroupId};

/// Identifier of a [`HyperNet`] within a design's hyper-net list.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HyperNetId(u32);

impl HyperNetId {
    /// Creates a hyper-net id from a dense index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        Self(index)
    }

    /// The dense index backing this id.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for HyperNetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

/// The role an electrical pin plays in its bit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PinRole {
    /// The driving pin of the bit.
    Source,
    /// The `k`-th sink pin of the bit.
    Sink(usize),
}

/// An electrical pin, qualified by the bit it belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ElectricalPin {
    /// The bit (within the hyper net's signal group) owning this pin.
    pub bit: BitId,
    /// Source or k-th sink.
    pub role: PinRole,
    /// Pin location.
    pub location: Point,
}

/// A hyper pin: the gravity center of a cluster of neighboring electrical
/// pins (paper §3.1.2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HyperPin {
    location: Point,
    members: Vec<ElectricalPin>,
}

impl HyperPin {
    /// Creates a hyper pin from its member pins, placing it at their
    /// gravity center.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty.
    pub fn new(members: Vec<ElectricalPin>) -> Self {
        assert!(!members.is_empty(), "hyper pin must have member pins");
        let pts: Vec<Point> = members.iter().map(|m| m.location).collect();
        let idx: Vec<usize> = (0..pts.len()).collect();
        Self {
            location: gravity_center(&pts, &idx),
            members,
        }
    }

    /// The gravity center representing this hyper pin.
    #[inline]
    pub fn location(&self) -> Point {
        self.location
    }

    /// The electrical pins represented by this hyper pin.
    #[inline]
    pub fn members(&self) -> &[ElectricalPin] {
        &self.members
    }

    /// Number of source pins among the members.
    pub fn source_count(&self) -> usize {
        self.members
            .iter()
            .filter(|m| m.role == PinRole::Source)
            .count()
    }

    /// Number of sink pins among the members.
    pub fn sink_count(&self) -> usize {
        self.members.len() - self.source_count()
    }
}

/// A hyper net: a cluster of signal bits routed with one shared topology
/// (paper §3.1).
///
/// `pins()[0]` is always the *root* hyper pin — the one holding the most
/// source pins; the remaining hyper pins are the targets the topology must
/// reach.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HyperNet {
    id: HyperNetId,
    group: GroupId,
    bits: Vec<BitId>,
    pins: Vec<HyperPin>,
}

impl HyperNet {
    /// Assembles a hyper net, moving the hyper pin with the most source
    /// members to the front.
    ///
    /// # Panics
    ///
    /// Panics if `bits` or `pins` is empty, or if no pin contains a source.
    pub fn new(id: HyperNetId, group: GroupId, bits: Vec<BitId>, mut pins: Vec<HyperPin>) -> Self {
        assert!(!bits.is_empty(), "hyper net {id} must contain bits");
        assert!(!pins.is_empty(), "hyper net {id} must contain pins");
        let root = pins
            .iter()
            .enumerate()
            .max_by_key(|(_, p)| p.source_count())
            .map(|(i, _)| i)
            .unwrap_or(0);
        assert!(
            pins[root].source_count() > 0,
            "hyper net {id} has no source pin"
        );
        pins.swap(0, root);
        Self {
            id,
            group,
            bits,
            pins,
        }
    }

    /// The id of this hyper net.
    #[inline]
    pub fn id(&self) -> HyperNetId {
        self.id
    }

    /// The signal group the member bits come from.
    #[inline]
    pub fn group(&self) -> GroupId {
        self.group
    }

    /// The member bits.
    #[inline]
    pub fn bits(&self) -> &[BitId] {
        &self.bits
    }

    /// Number of member bits — the channel demand of every connection of
    /// this hyper net (bounded by the WDM capacity by construction).
    #[inline]
    pub fn bit_count(&self) -> usize {
        self.bits.len()
    }

    /// The hyper pins; index 0 is the root (source side).
    #[inline]
    pub fn pins(&self) -> &[HyperPin] {
        &self.pins
    }

    /// The root (source) hyper pin.
    #[inline]
    pub fn root_pin(&self) -> &HyperPin {
        &self.pins[0]
    }

    /// Locations of all hyper pins, root first.
    pub fn pin_locations(&self) -> Vec<Point> {
        self.pins.iter().map(HyperPin::location).collect()
    }

    /// The tightest box around the hyper-pin locations.
    pub fn bounding_box(&self) -> BoundingBox {
        BoundingBox::from_points(self.pins.iter().map(HyperPin::location))
            // operon-lint: allow(R003, reason = "new() asserts pins is non-empty, so from_points always sees a point")
            .expect("hyper net always has pins")
    }
}

/// Parameters of hyper-net construction.
#[derive(Clone, Debug, PartialEq)]
pub struct ClusterConfig {
    /// WDM capacity: the maximum bits per hyper net.
    pub capacity: usize,
    /// Agglomeration threshold for hyper-pin merging, dbu.
    pub merge_threshold: f64,
    /// K-Means iteration cap.
    pub kmeans_max_iters: usize,
    /// K-Means variance-improvement stop tolerance.
    pub kmeans_tolerance: f64,
    /// Seed for K-Means initialization.
    pub seed: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            capacity: 32,
            merge_threshold: 400.0,
            kmeans_max_iters: 50,
            kmeans_tolerance: 1e-3,
            seed: 2018,
        }
    }
}

/// Runs the full signal-processing stage over a design: top-down
/// capacity-constrained K-Means per group, then bottom-up hyper-pin
/// agglomeration per cluster.
///
/// Hyper nets are returned in `(group, cluster)` order with dense ids.
///
/// # Panics
///
/// Panics if `config.capacity` is zero.
///
/// # Examples
///
/// ```
/// use operon_cluster::{build_hyper_nets, ClusterConfig};
/// use operon_netlist::synth::{generate, SynthConfig};
///
/// let design = generate(&SynthConfig::small(), 3);
/// let nets = build_hyper_nets(&design, &ClusterConfig::default());
/// let total_bits: usize = nets.iter().map(|n| n.bit_count()).sum();
/// assert_eq!(total_bits, design.bit_count());
/// ```
pub fn build_hyper_nets(design: &Design, config: &ClusterConfig) -> Vec<HyperNet> {
    let mut nets = Vec::new();
    for group in design.groups() {
        for (bits, hyper_pins) in group_clusters(group, config) {
            let id = HyperNetId::new(nets.len() as u32);
            nets.push(HyperNet::new(id, group.id(), bits, hyper_pins));
        }
    }
    nets
}

/// Runs the signal-processing stage on a single group, returning the
/// `(member bits, hyper pins)` of each cluster — the per-group kernel of
/// [`build_hyper_nets`], exposed so incremental (ECO) flows can re-cluster
/// only the groups that changed.
///
/// # Panics
///
/// Panics if `config.capacity` is zero.
pub fn group_clusters(
    group: &operon_netlist::SignalGroup,
    config: &ClusterConfig,
) -> Vec<(Vec<BitId>, Vec<HyperPin>)> {
    assert!(config.capacity > 0, "capacity must be positive");
    let params = KmeansParams {
        capacity: config.capacity,
        max_iters: config.kmeans_max_iters,
        tolerance: config.kmeans_tolerance,
        seed: config.seed,
    };

    // Represent each bit by the centroid of its pins for clustering.
    let bit_centroids: Vec<Point> = group
        .bits()
        .iter()
        .map(|bit| {
            let pts: Vec<Point> = bit.pins().collect();
            let idx: Vec<usize> = (0..pts.len()).collect();
            gravity_center(&pts, &idx)
        })
        .collect();

    let clusters = if group.bit_count() > config.capacity {
        cluster_capacitated(&bit_centroids, &params)
    } else {
        vec![(0..group.bit_count()).collect()]
    };

    clusters
        .into_iter()
        .map(|member_bits| {
            // Collect the electrical pins of the cluster's bits.
            let mut epins = Vec::new();
            for &bi in &member_bits {
                let bit = &group.bits()[bi];
                epins.push(ElectricalPin {
                    bit: bit.id(),
                    role: PinRole::Source,
                    location: bit.source(),
                });
                for (k, &sink) in bit.sinks().iter().enumerate() {
                    epins.push(ElectricalPin {
                        bit: bit.id(),
                        role: PinRole::Sink(k),
                        location: sink,
                    });
                }
            }
            // Bottom-up hyper-pin agglomeration.
            let locations: Vec<Point> = epins.iter().map(|p| p.location).collect();
            let pin_clusters = agglomerate(&locations, config.merge_threshold);
            let hyper_pins: Vec<HyperPin> = pin_clusters
                .into_iter()
                .map(|members| HyperPin::new(members.into_iter().map(|i| epins[i]).collect()))
                .collect();
            let bits: Vec<BitId> = member_bits
                .into_iter()
                .map(|bi| group.bits()[bi].id())
                .collect();
            (bits, hyper_pins)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use operon_netlist::synth::{generate, SynthConfig};
    use operon_netlist::{Bit, SignalGroup};

    fn epin(bit: u32, role: PinRole, x: i64, y: i64) -> ElectricalPin {
        ElectricalPin {
            bit: BitId::new(bit),
            role,
            location: Point::new(x, y),
        }
    }

    #[test]
    fn hyper_pin_sits_at_gravity_center() {
        let hp = HyperPin::new(vec![
            epin(0, PinRole::Source, 0, 0),
            epin(1, PinRole::Source, 4, 0),
        ]);
        assert_eq!(hp.location(), Point::new(2, 0));
        assert_eq!(hp.source_count(), 2);
        assert_eq!(hp.sink_count(), 0);
    }

    #[test]
    #[should_panic(expected = "member pins")]
    fn empty_hyper_pin_rejected() {
        let _ = HyperPin::new(vec![]);
    }

    #[test]
    fn hyper_net_roots_the_sourceful_pin() {
        let sinks = HyperPin::new(vec![
            epin(0, PinRole::Sink(0), 100, 100),
            epin(1, PinRole::Sink(0), 104, 100),
        ]);
        let sources = HyperPin::new(vec![
            epin(0, PinRole::Source, 0, 0),
            epin(1, PinRole::Source, 4, 0),
        ]);
        let net = HyperNet::new(
            HyperNetId::new(0),
            GroupId::new(0),
            vec![BitId::new(0), BitId::new(1)],
            vec![sinks, sources.clone()],
        );
        assert_eq!(net.root_pin(), &sources);
        assert_eq!(net.bit_count(), 2);
    }

    #[test]
    #[should_panic(expected = "no source pin")]
    fn sourceless_hyper_net_rejected() {
        let sinks = HyperPin::new(vec![epin(0, PinRole::Sink(0), 1, 1)]);
        let _ = HyperNet::new(
            HyperNetId::new(0),
            GroupId::new(0),
            vec![BitId::new(0)],
            vec![sinks],
        );
    }

    #[test]
    fn build_covers_all_bits_within_capacity() {
        let design = generate(&SynthConfig::medium(), 5);
        let config = ClusterConfig::default();
        let nets = build_hyper_nets(&design, &config);
        let total: usize = nets.iter().map(HyperNet::bit_count).sum();
        assert_eq!(total, design.bit_count());
        assert!(nets.iter().all(|n| n.bit_count() <= config.capacity));
        // Dense ids in order.
        for (i, n) in nets.iter().enumerate() {
            assert_eq!(n.id().index(), i);
        }
    }

    #[test]
    fn wide_group_splits_into_multiple_hyper_nets() {
        // One 80-bit bus with capacity 32 must split into >= 3 hyper nets.
        let die = BoundingBox::new(Point::new(0, 0), Point::new(10_000, 10_000));
        let mut design = Design::new("wide", die);
        let bits: Vec<Bit> = (0..80)
            .map(|i| {
                Bit::new(
                    BitId::new(i),
                    Point::new(100 + i as i64 * 5, 100),
                    vec![Point::new(9_000 + i as i64 * 5, 9_000)],
                )
            })
            .collect();
        design.push_group(SignalGroup::new(GroupId::new(0), "wide_bus", bits));
        let nets = build_hyper_nets(&design, &ClusterConfig::default());
        assert!(nets.len() >= 3, "got {} hyper nets", nets.len());
        let total: usize = nets.iter().map(HyperNet::bit_count).sum();
        assert_eq!(total, 80);
    }

    #[test]
    fn bus_pins_agglomerate_to_few_hyper_pins() {
        // 8 bits, sources in one corner, sinks in the other: 2 hyper pins.
        let die = BoundingBox::new(Point::new(0, 0), Point::new(10_000, 10_000));
        let mut design = Design::new("bus", die);
        let bits: Vec<Bit> = (0..8)
            .map(|i| {
                Bit::new(
                    BitId::new(i),
                    Point::new(100 + i as i64 * 10, 100),
                    vec![Point::new(9_000 + i as i64 * 10, 9_000)],
                )
            })
            .collect();
        design.push_group(SignalGroup::new(GroupId::new(0), "bus", bits));
        let nets = build_hyper_nets(&design, &ClusterConfig::default());
        assert_eq!(nets.len(), 1);
        assert_eq!(nets[0].pins().len(), 2);
        assert_eq!(nets[0].root_pin().source_count(), 8);
    }

    #[test]
    fn bounding_box_covers_pin_locations() {
        let design = generate(&SynthConfig::small(), 8);
        for net in build_hyper_nets(&design, &ClusterConfig::default()) {
            let bb = net.bounding_box();
            for p in net.pin_locations() {
                assert!(bb.contains(p));
            }
        }
    }

    #[test]
    fn construction_is_deterministic() {
        let design = generate(&SynthConfig::medium(), 13);
        let a = build_hyper_nets(&design, &ClusterConfig::default());
        let b = build_hyper_nets(&design, &ClusterConfig::default());
        assert_eq!(a, b);
    }
}
