//! Capacity-constrained K-Means (Lloyd's algorithm with spill-over).
//!
//! Plain K-Means cannot bound cluster sizes, so OPERON extends it: after
//! each assignment pass, clusters over capacity spill their farthest
//! members to the next-closest centroid with head-room (paper §3.1.1).
//! Iteration stops when the total within-cluster variance improves by less
//! than a tolerance or the iteration cap is hit; empty clusters are
//! dropped at the end.

use operon_geom::{FPoint, Point};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the constrained K-Means run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KmeansParams {
    /// Maximum members per cluster (the WDM capacity).
    pub capacity: usize,
    /// Iteration cap.
    pub max_iters: usize,
    /// Stop when relative variance improvement drops below this.
    pub tolerance: f64,
    /// Seed for centroid initialization.
    pub seed: u64,
}

impl Default for KmeansParams {
    fn default() -> Self {
        Self {
            capacity: 32,
            max_iters: 50,
            tolerance: 1e-3,
            seed: 0x0965,
        }
    }
}

/// Partitions `points` into clusters of at most `params.capacity` members.
///
/// `k` is chosen as `ceil(len / capacity)`, the minimum number of clusters
/// that can hold all points. Returns the member-index lists of the
/// non-empty clusters; every input index appears in exactly one cluster.
///
/// # Panics
///
/// Panics if `params.capacity` is zero.
///
/// # Examples
///
/// ```
/// use operon_cluster::kmeans::{cluster_capacitated, KmeansParams};
/// use operon_geom::Point;
///
/// let pts: Vec<Point> = (0..10).map(|i| Point::new(i * 10, 0)).collect();
/// let params = KmeansParams { capacity: 4, ..KmeansParams::default() };
/// let clusters = cluster_capacitated(&pts, &params);
/// assert!(clusters.iter().all(|c| c.len() <= 4));
/// let total: usize = clusters.iter().map(Vec::len).sum();
/// assert_eq!(total, 10);
/// ```
pub fn cluster_capacitated(points: &[Point], params: &KmeansParams) -> Vec<Vec<usize>> {
    assert!(params.capacity > 0, "capacity must be positive");
    if points.is_empty() {
        return Vec::new();
    }
    let k = points.len().div_ceil(params.capacity);
    if k == 1 {
        return vec![(0..points.len()).collect()];
    }

    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut centroids = init_centroids(points, k, &mut rng);
    let mut assignment = vec![0usize; points.len()];
    let mut prev_variance = f64::INFINITY;

    for _ in 0..params.max_iters {
        assign_capacitated(points, &centroids, params.capacity, &mut assignment);
        update_centroids(points, &assignment, &mut centroids);
        let variance = total_variance(points, &assignment, &centroids);
        if prev_variance.is_finite() {
            let improvement = (prev_variance - variance) / prev_variance.max(1e-12);
            if improvement < params.tolerance {
                break;
            }
        }
        prev_variance = variance;
    }

    // Gather non-empty clusters.
    let mut clusters: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (i, &c) in assignment.iter().enumerate() {
        clusters[c].push(i);
    }
    clusters.retain(|c| !c.is_empty());
    clusters
}

/// K-Means++-style initialization: first centroid uniform, the rest chosen
/// with probability proportional to squared distance from the nearest
/// existing centroid.
fn init_centroids(points: &[Point], k: usize, rng: &mut StdRng) -> Vec<FPoint> {
    let mut centroids = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..points.len())].to_fpoint());
    while centroids.len() < k {
        let dists: Vec<f64> = points
            .iter()
            .map(|p| {
                centroids
                    .iter()
                    .map(|c| {
                        let d = c.euclidean(p.to_fpoint());
                        d * d
                    })
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        let total: f64 = dists.iter().sum();
        if total <= 1e-12 {
            // All points coincide with centroids: duplicate one.
            centroids.push(centroids[0]);
            continue;
        }
        let mut pick = rng.gen_range(0.0..total);
        let mut chosen = points.len() - 1;
        for (i, &d) in dists.iter().enumerate() {
            if pick < d {
                chosen = i;
                break;
            }
            pick -= d;
        }
        centroids.push(points[chosen].to_fpoint());
    }
    centroids
}

/// Assigns each point to the closest centroid, spilling overflow to the
/// next-closest cluster with room (then the next, and so on).
///
/// Points are processed closest-first so that a full cluster keeps its
/// tightest members and spills the stragglers — the "additional bits will
/// be assigned to the second closest one" rule of the paper.
fn assign_capacitated(
    points: &[Point],
    centroids: &[FPoint],
    capacity: usize,
    assignment: &mut [usize],
) {
    let k = centroids.len();
    // (distance to own best centroid, point index) processed in order.
    let mut order: Vec<(f64, usize)> = points
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let d = centroids
                .iter()
                .map(|c| c.euclidean(p.to_fpoint()))
                .fold(f64::INFINITY, f64::min);
            (d, i)
        })
        .collect();
    order.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite distances"));

    let mut load = vec![0usize; k];
    for &(_, i) in &order {
        let p = points[i].to_fpoint();
        let mut prefs: Vec<(f64, usize)> = centroids
            .iter()
            .enumerate()
            .map(|(c, ctr)| (ctr.euclidean(p), c))
            .collect();
        prefs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite distances"));
        let target = prefs
            .iter()
            .find(|&&(_, c)| load[c] < capacity)
            .map(|&(_, c)| c)
            .expect("k = ceil(n/capacity) guarantees head-room somewhere");
        assignment[i] = target;
        load[target] += 1;
    }
}

fn update_centroids(points: &[Point], assignment: &[usize], centroids: &mut [FPoint]) {
    let k = centroids.len();
    let mut sums = vec![(0.0f64, 0.0f64, 0usize); k];
    for (i, &c) in assignment.iter().enumerate() {
        sums[c].0 += points[i].x as f64;
        sums[c].1 += points[i].y as f64;
        sums[c].2 += 1;
    }
    for (c, &(sx, sy, n)) in sums.iter().enumerate() {
        if n > 0 {
            centroids[c] = FPoint::new(sx / n as f64, sy / n as f64);
        }
        // Empty clusters keep their centroid; they may re-acquire members
        // in a later iteration or be dropped at the end.
    }
}

fn total_variance(points: &[Point], assignment: &[usize], centroids: &[FPoint]) -> f64 {
    assignment
        .iter()
        .enumerate()
        .map(|(i, &c)| {
            let d = centroids[c].euclidean(points[i].to_fpoint());
            d * d
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn params(capacity: usize) -> KmeansParams {
        KmeansParams {
            capacity,
            max_iters: 50,
            tolerance: 1e-4,
            seed: 42,
        }
    }

    #[test]
    fn empty_input_gives_no_clusters() {
        assert!(cluster_capacitated(&[], &params(4)).is_empty());
    }

    #[test]
    fn under_capacity_input_is_one_cluster() {
        let pts = [Point::new(0, 0), Point::new(100, 100)];
        let clusters = cluster_capacitated(&pts, &params(32));
        assert_eq!(clusters, vec![vec![0, 1]]);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = cluster_capacitated(&[Point::origin()], &params(0));
    }

    #[test]
    fn capacity_is_respected() {
        let pts: Vec<Point> = (0..100).map(|i| Point::new(i, i * 3 % 17)).collect();
        let clusters = cluster_capacitated(&pts, &params(7));
        assert!(clusters.iter().all(|c| c.len() <= 7));
    }

    #[test]
    fn every_point_assigned_exactly_once() {
        let pts: Vec<Point> = (0..57)
            .map(|i| Point::new(i * 13 % 101, i * 7 % 89))
            .collect();
        let clusters = cluster_capacitated(&pts, &params(10));
        let mut seen = vec![false; pts.len()];
        for c in &clusters {
            for &i in c {
                assert!(!seen[i], "point {i} assigned twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn well_separated_blobs_stay_separate() {
        // Two blobs of 4 points each, far apart; capacity 4 forces exactly
        // the natural split.
        let mut pts = Vec::new();
        for i in 0..4 {
            pts.push(Point::new(i, 0));
        }
        for i in 0..4 {
            pts.push(Point::new(10_000 + i, 0));
        }
        let clusters = cluster_capacitated(&pts, &params(4));
        assert_eq!(clusters.len(), 2);
        for c in &clusters {
            let blob_of = |i: usize| pts[i].x >= 5_000;
            assert!(
                c.iter().all(|&i| blob_of(i) == blob_of(c[0])),
                "blob split across clusters: {c:?}"
            );
        }
    }

    #[test]
    fn identical_points_cluster_fine() {
        let pts = vec![Point::new(5, 5); 20];
        let clusters = cluster_capacitated(&pts, &params(8));
        assert!(clusters.iter().all(|c| c.len() <= 8));
        let total: usize = clusters.iter().map(Vec::len).sum();
        assert_eq!(total, 20);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let pts: Vec<Point> = (0..40)
            .map(|i| Point::new(i * 17 % 53, i * 5 % 47))
            .collect();
        let a = cluster_capacitated(&pts, &params(6));
        let b = cluster_capacitated(&pts, &params(6));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn partition_invariants(
            pts in proptest::collection::vec((-500i64..500, -500i64..500), 1..60),
            capacity in 1usize..20,
        ) {
            let pts: Vec<Point> = pts.into_iter().map(Point::from).collect();
            let clusters = cluster_capacitated(&pts, &params(capacity));
            // Capacity respected.
            prop_assert!(clusters.iter().all(|c| c.len() <= capacity));
            // No empty clusters.
            prop_assert!(clusters.iter().all(|c| !c.is_empty()));
            // Exact partition.
            let mut all: Vec<usize> = clusters.iter().flatten().copied().collect();
            all.sort_unstable();
            let expect: Vec<usize> = (0..pts.len()).collect();
            prop_assert_eq!(all, expect);
            // Cluster count is at least the lower bound.
            prop_assert!(clusters.len() >= pts.len().div_ceil(capacity));
        }
    }
}
