//! Signal processing: hyper-net and hyper-pin construction (paper §3.1).
//!
//! Before routing, OPERON reduces the problem size in two directions:
//!
//! * **Top-down**: each signal group whose bit count exceeds the WDM
//!   capacity is partitioned by a capacity-constrained K-Means
//!   ([`kmeans`]) so that every resulting *hyper net* fits on one WDM.
//! * **Bottom-up**: within a hyper net, neighboring electrical pins are
//!   agglomerated into *hyper pins* ([`agglomerate`]) — gravity centers
//!   that stand in for their member pins during topology construction.
//!
//! [`build_hyper_nets`] runs both stages over a whole design.
//!
//! # Examples
//!
//! ```
//! use operon_cluster::{build_hyper_nets, ClusterConfig};
//! use operon_netlist::synth::{generate, SynthConfig};
//!
//! let design = generate(&SynthConfig::small(), 1);
//! let nets = build_hyper_nets(&design, &ClusterConfig::default());
//! assert!(!nets.is_empty());
//! for net in &nets {
//!     assert!(net.bit_count() <= 32);
//! }
//! ```

#![forbid(unsafe_code)]

mod agglomerate;
mod hypernet;
pub mod kmeans;

pub use agglomerate::agglomerate;
pub use hypernet::{
    build_hyper_nets, group_clusters, ClusterConfig, ElectricalPin, HyperNet, HyperNetId, HyperPin,
    PinRole,
};
