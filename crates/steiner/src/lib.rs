//! Spanning- and Steiner-tree construction for OPERON baselines.
//!
//! The co-design stage of OPERON (paper §3.2) starts from *baseline
//! topologies*: trees over a hyper net's pins. Electrical baselines are
//! Rectilinear Steiner Minimum Trees approximated by the Batched Iterated
//! 1-Steiner heuristic ([`rsmt_bi1s`]); optical baselines may route in any
//! direction, so Euclidean MSTs and Steiner variants ([`euclidean`]) are
//! provided as well. All topologies share the rooted [`RouteTree`]
//! representation consumed by the dynamic-programming co-design.
//!
//! # Examples
//!
//! ```
//! use operon_geom::Point;
//! use operon_steiner::{mst, rsmt_bi1s};
//!
//! let pins = [
//!     Point::new(0, 0),
//!     Point::new(10, 10),
//!     Point::new(0, 10),
//!     Point::new(10, 0),
//! ];
//! let tree = rsmt_bi1s(&pins);
//! // The Steiner tree is never longer than the Manhattan MST.
//! let mst_len: i64 = mst::manhattan(&pins)
//!     .iter()
//!     .map(|&(a, b)| pins[a].manhattan(pins[b]))
//!     .sum();
//! assert!(tree.wirelength_manhattan() <= mst_len);
//! ```

#![forbid(unsafe_code)]

pub mod euclidean;
pub mod exact;
pub mod mst;
mod rsmt;
mod tree;

pub use exact::{rsmt_exact, rsmt_exact_length};
pub use rsmt::{hanan_points, rsmt_bi1s, rsmt_bi1s_with_limit};
pub use tree::{NodeKind, RouteTree, TreeNodeId};
