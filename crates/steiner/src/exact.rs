//! Exact Rectilinear Steiner Minimum Trees via Dreyfus-Wagner.
//!
//! Hanan's theorem restricts some optimal RSMT's Steiner points to the
//! Hanan grid, so the exact optimum is the minimum Steiner tree of the
//! terminals in the metric closure of the grid points under Manhattan
//! distance. The Dreyfus-Wagner dynamic program solves that in
//! `O(3^k · n + 2^k · n²)` for `k` terminals over `n` grid points —
//! practical for the small hyper nets OPERON routes (and as the quality
//! oracle for the BI1S heuristic).
//!
//! # Examples
//!
//! ```
//! use operon_geom::Point;
//! use operon_steiner::exact::rsmt_exact;
//!
//! // The classic 4-pin cross: optimum 20 (the MST needs 30).
//! let pins = [
//!     Point::new(5, 0),
//!     Point::new(5, 10),
//!     Point::new(0, 5),
//!     Point::new(10, 5),
//! ];
//! let tree = rsmt_exact(&pins).expect("within terminal limit");
//! assert_eq!(tree.wirelength_manhattan(), 20);
//! ```

use crate::rsmt::hanan_points;
use crate::{NodeKind, RouteTree};
use operon_geom::Point;
use std::collections::BTreeSet;

/// The largest terminal count [`rsmt_exact`] accepts (the DP is
/// exponential in it).
pub const MAX_EXACT_TERMINALS: usize = 9;

/// Computes an exact RSMT over `terminals`, rooted at `terminals[0]`.
///
/// Returns `None` when there are more than [`MAX_EXACT_TERMINALS`]
/// distinct terminals; use [`crate::rsmt_bi1s`] beyond that.
///
/// # Panics
///
/// Panics if `terminals` is empty.
pub fn rsmt_exact(terminals: &[Point]) -> Option<RouteTree> {
    assert!(!terminals.is_empty(), "RSMT needs at least one terminal");
    // Deduplicate, keeping the source first.
    let mut seen = BTreeSet::new();
    let unique: Vec<Point> = terminals
        .iter()
        .copied()
        .filter(|&p| seen.insert(p))
        .collect();
    let k = unique.len();
    if k > MAX_EXACT_TERMINALS {
        return None;
    }
    if k == 1 {
        return Some(RouteTree::new(unique[0]));
    }

    // Grid points: terminals first, then Hanan candidates.
    let mut points = unique.clone();
    points.extend(hanan_points(&unique));
    let n = points.len();
    let dist = |a: usize, b: usize| -> i64 { points[a].manhattan(points[b]) };

    // dp[S][v]: minimum tree cost spanning terminal set S ∪ {v}, where S
    // ranges over subsets of terminals 1..k (terminal 0 is the root query).
    const INF: i64 = i64::MAX / 4;
    let masks = 1usize << (k - 1);
    let mut dp = vec![vec![INF; n]; masks];
    /// Reconstruction record for dp[S][v].
    #[derive(Clone, Copy)]
    enum Choice {
        /// Base case: S is a singleton terminal, connected by an edge.
        Base,
        /// dp[S][v] = dp[S1][v] + dp[S\S1][v].
        Merge(usize),
        /// dp[S][v] = dp[S][u] + dist(u, v).
        Extend(usize),
    }
    let mut choice = vec![vec![Choice::Base; n]; masks];

    // Base: single terminals. Terminal t (1-based among 1..k) is grid
    // point index t.
    for t in 1..k {
        let mask = 1usize << (t - 1);
        for (v, slot) in dp[mask].iter_mut().enumerate() {
            *slot = dist(t, v);
        }
    }

    for mask in 1..masks {
        if mask.count_ones() >= 2 {
            // Merge two subtrees at v.
            for v in 0..n {
                let mut sub = (mask - 1) & mask;
                while sub > 0 {
                    if sub < mask - sub {
                        // Each unordered split visited once.
                        let other = mask ^ sub;
                        let cost = dp[sub][v].saturating_add(dp[other][v]);
                        if cost < dp[mask][v] {
                            dp[mask][v] = cost;
                            choice[mask][v] = Choice::Merge(sub);
                        }
                    }
                    sub = (sub - 1) & mask;
                }
            }
        }
        // Extend: relax through intermediate points. With the metric
        // closure, one relaxation round in order of increasing dp
        // (Dijkstra-like) is exact.
        let mut settled = vec![false; n];
        for _ in 0..n {
            let mut best = usize::MAX;
            for v in 0..n {
                if !settled[v] && (best == usize::MAX || dp[mask][v] < dp[mask][best]) {
                    best = v;
                }
            }
            let u = best;
            settled[u] = true;
            if dp[mask][u] >= INF {
                break;
            }
            for v in 0..n {
                if !settled[v] {
                    let cost = dp[mask][u] + dist(u, v);
                    if cost < dp[mask][v] {
                        dp[mask][v] = cost;
                        choice[mask][v] = Choice::Extend(u);
                    }
                }
            }
        }
    }

    // Reconstruct the edge set rooted at terminal 0 (grid point 0).
    let full = masks - 1;
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut stack = vec![(full, 0usize)];
    while let Some((mask, v)) = stack.pop() {
        match choice[mask][v] {
            Choice::Base => {
                let t = mask.trailing_zeros() as usize + 1;
                debug_assert_eq!(mask.count_ones(), 1);
                if t != v {
                    edges.push((t, v));
                }
            }
            Choice::Merge(sub) => {
                stack.push((sub, v));
                stack.push((mask ^ sub, v));
            }
            Choice::Extend(u) => {
                edges.push((u, v));
                stack.push((mask, u));
            }
        }
    }

    Some(build_tree(&points, k, &edges))
}

/// Exact RSMT length, or `None` beyond the terminal limit.
///
/// # Panics
///
/// Panics if `terminals` is empty.
pub fn rsmt_exact_length(terminals: &[Point]) -> Option<i64> {
    rsmt_exact(terminals).map(|t| t.wirelength_manhattan())
}

/// Builds a [`RouteTree`] from the reconstructed edge list, dropping
/// duplicate edges and unused grid points.
fn build_tree(points: &[Point], n_terminals: usize, edges: &[(usize, usize)]) -> RouteTree {
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); points.len()];
    let mut dedup = BTreeSet::new();
    for &(a, b) in edges {
        let key = (a.min(b), a.max(b));
        if a != b && dedup.insert(key) {
            adj[a].push(b);
            adj[b].push(a);
        }
    }
    let mut tree = RouteTree::new(points[0]);
    let mut ids = vec![None; points.len()];
    ids[0] = Some(tree.root());
    let mut stack = vec![0usize];
    let mut visited = vec![false; points.len()];
    visited[0] = true;
    while let Some(u) = stack.pop() {
        // operon-lint: allow(R001, reason = "every node is assigned an id when first visited, before its neighbors are stacked")
        let uid = ids[u].expect("visited nodes have ids");
        for &v in &adj[u] {
            if !visited[v] {
                visited[v] = true;
                let kind = if v < n_terminals {
                    NodeKind::Terminal
                } else {
                    NodeKind::Steiner
                };
                ids[v] = Some(tree.add_child(uid, points[v], kind));
                stack.push(v);
            }
        }
    }
    debug_assert!(
        (0..n_terminals).all(|t| visited[t]),
        "every terminal must be spanned"
    );
    tree
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mst::{self, Metric};
    use crate::rsmt_bi1s;
    use operon_geom::BoundingBox;
    use proptest::prelude::*;

    #[test]
    fn single_terminal() {
        let t = rsmt_exact(&[Point::new(3, 4)]).expect("small");
        assert_eq!(t.node_count(), 1);
    }

    #[test]
    fn two_terminals_direct() {
        let t = rsmt_exact(&[Point::new(0, 0), Point::new(7, 5)]).expect("small");
        assert_eq!(t.wirelength_manhattan(), 12);
    }

    #[test]
    fn cross_reaches_twenty() {
        let pins = [
            Point::new(5, 0),
            Point::new(5, 10),
            Point::new(0, 5),
            Point::new(10, 5),
        ];
        let t = rsmt_exact(&pins).expect("small");
        assert_eq!(t.wirelength_manhattan(), 20);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn l_triple_uses_trunk() {
        let pins = [Point::new(0, 0), Point::new(10, 5), Point::new(10, -5)];
        assert_eq!(rsmt_exact_length(&pins).expect("small"), 20);
    }

    #[test]
    fn staircase_instance() {
        // 5 terminals on a staircase; optimum is the bounding path.
        let pins: Vec<Point> = (0..5).map(|i| Point::new(i * 10, i * 10)).collect();
        let len = rsmt_exact_length(&pins).expect("small");
        assert_eq!(len, 80, "a monotone staircase needs exactly HPWL");
    }

    #[test]
    fn duplicates_are_harmless() {
        let pins = [
            Point::new(0, 0),
            Point::new(0, 0),
            Point::new(5, 5),
            Point::new(5, 5),
        ];
        assert_eq!(rsmt_exact_length(&pins).expect("small"), 10);
    }

    #[test]
    fn too_many_terminals_is_none() {
        let pins: Vec<Point> = (0..=MAX_EXACT_TERMINALS as i64)
            .map(|i| Point::new(i, i * i))
            .collect();
        assert!(rsmt_exact(&pins).is_none());
    }

    #[test]
    fn root_is_first_terminal() {
        let pins = [Point::new(9, 9), Point::new(0, 0), Point::new(9, 0)];
        let t = rsmt_exact(&pins).expect("small");
        assert_eq!(t.point(t.root()), Point::new(9, 9));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        /// The exact optimum is sandwiched between the HPWL lower bound
        /// and the BI1S heuristic, and the heuristic stays within the
        /// theoretical 3/2 MST guarantee of the optimum.
        #[test]
        fn exact_bounds_the_heuristic(
            pts in proptest::collection::vec((-40i64..40, -40i64..40), 2..6)
        ) {
            let pts: Vec<Point> = pts.into_iter().map(Point::from).collect();
            let exact = rsmt_exact_length(&pts).expect("small") as f64;
            let heuristic = rsmt_bi1s(&pts).wirelength_manhattan() as f64;
            let mst_len = mst::length(&pts, &mst::manhattan(&pts), Metric::Manhattan);
            let bb = BoundingBox::from_points(pts.iter().copied()).expect("non-empty");
            prop_assert!(exact >= bb.half_perimeter() as f64 - 1e-9);
            prop_assert!(exact <= heuristic + 1e-9, "exact {exact} > bi1s {heuristic}");
            prop_assert!(exact <= mst_len + 1e-9);
            prop_assert!(heuristic <= 1.5 * exact + 1e-9, "heuristic beyond 3/2 bound");
        }

        /// The reconstructed tree's length matches the DP value implied
        /// by re-solving, and the tree is structurally valid.
        #[test]
        fn reconstruction_is_consistent(
            pts in proptest::collection::vec((-30i64..30, -30i64..30), 1..6)
        ) {
            let pts: Vec<Point> = pts.into_iter().map(Point::from).collect();
            let tree = rsmt_exact(&pts).expect("small");
            prop_assert!(tree.validate().is_ok());
            let tree_pts: std::collections::BTreeSet<Point> =
                tree.node_ids().map(|id| tree.point(id)).collect();
            for p in &pts {
                prop_assert!(tree_pts.contains(p));
            }
            // Idempotence: solving again gives the same length.
            prop_assert_eq!(
                rsmt_exact_length(&pts).expect("small"),
                tree.wirelength_manhattan()
            );
        }
    }
}
