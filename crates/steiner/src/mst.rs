//! Minimum spanning trees over point sets (Prim, O(n²)).
//!
//! MSTs serve two roles: the inner metric of the Batched Iterated
//! 1-Steiner heuristic (which measures the *gain* of a candidate Steiner
//! point as the MST-length reduction it induces), and the starting
//! topology of the any-angle optical baselines.

use crate::{NodeKind, RouteTree};
use operon_geom::Point;

/// The distance metric an MST is built in.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Metric {
    /// L1 — rectilinear (electrical) routing.
    Manhattan,
    /// L2 — any-angle (optical) routing.
    Euclidean,
    /// λ-4 (45°-enabled) routing: horizontals, verticals, and diagonals.
    ///
    /// The shortest octilinear path length is
    /// `max(|dx|,|dy|) + (√2 − 1)·min(|dx|,|dy|)` — between L2 and L1.
    /// Some waveguide processes restrict bends to 45° increments; this
    /// metric models their wirelength.
    Octilinear,
}

impl Metric {
    /// Distance between two points under this metric.
    ///
    /// Manhattan distances are exact integers widened to `f64`; for the
    /// point magnitudes used here (≤ ~10⁶ dbu) this is lossless.
    #[inline]
    pub fn distance(self, a: Point, b: Point) -> f64 {
        match self {
            Metric::Manhattan => a.manhattan(b) as f64,
            Metric::Euclidean => a.euclidean(b),
            Metric::Octilinear => {
                let dx = (a.x - b.x).abs() as f64;
                let dy = (a.y - b.y).abs() as f64;
                dx.max(dy) + (std::f64::consts::SQRT_2 - 1.0) * dx.min(dy)
            }
        }
    }
}

/// Computes the MST edge list over `points` under `metric` using Prim's
/// algorithm.
///
/// Returns `(i, j)` index pairs into `points`; for `n` points there are
/// `n - 1` edges (0 for an empty or single-point input). Duplicate points
/// are connected by zero-length edges.
pub fn edges(points: &[Point], metric: Metric) -> Vec<(usize, usize)> {
    let n = points.len();
    if n <= 1 {
        return Vec::new();
    }
    let mut in_tree = vec![false; n];
    let mut best_dist = vec![f64::INFINITY; n];
    let mut best_from = vec![0usize; n];
    let mut result = Vec::with_capacity(n - 1);
    in_tree[0] = true;
    for j in 1..n {
        best_dist[j] = metric.distance(points[0], points[j]);
    }
    for _ in 1..n {
        let mut pick = usize::MAX;
        let mut pick_dist = f64::INFINITY;
        for j in 0..n {
            if !in_tree[j] && best_dist[j] < pick_dist {
                pick = j;
                pick_dist = best_dist[j];
            }
        }
        debug_assert!(
            pick != usize::MAX,
            "graph is complete, a pick always exists"
        );
        in_tree[pick] = true;
        result.push((best_from[pick], pick));
        for j in 0..n {
            if !in_tree[j] {
                let d = metric.distance(points[pick], points[j]);
                if d < best_dist[j] {
                    best_dist[j] = d;
                    best_from[j] = pick;
                }
            }
        }
    }
    result
}

/// MST over `points` in the Manhattan metric.
pub fn manhattan(points: &[Point]) -> Vec<(usize, usize)> {
    edges(points, Metric::Manhattan)
}

/// MST over `points` in the Euclidean metric.
pub fn euclidean(points: &[Point]) -> Vec<(usize, usize)> {
    edges(points, Metric::Euclidean)
}

/// MST over `points` in the octilinear (45°) metric.
pub fn octilinear(points: &[Point]) -> Vec<(usize, usize)> {
    edges(points, Metric::Octilinear)
}

/// Total length of an edge list under `metric`.
pub fn length(points: &[Point], edge_list: &[(usize, usize)], metric: Metric) -> f64 {
    edge_list
        .iter()
        .map(|&(a, b)| metric.distance(points[a], points[b]))
        .sum()
}

/// Converts an MST over `points` into a [`RouteTree`] rooted at
/// `points[root]`.
///
/// Terminal/Steiner kinds are assigned from `steiner_mask`: index `i` is a
/// Steiner node iff `steiner_mask(i)` is true.
///
/// # Panics
///
/// Panics if `points` is empty, `root` is out of bounds, or `edge_list`
/// does not connect all points.
pub fn to_route_tree(
    points: &[Point],
    edge_list: &[(usize, usize)],
    root: usize,
    steiner_mask: impl Fn(usize) -> bool,
) -> RouteTree {
    assert!(!points.is_empty(), "cannot build a tree over no points");
    assert!(root < points.len(), "root index {root} out of bounds");
    let n = points.len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(a, b) in edge_list {
        adj[a].push(b);
        adj[b].push(a);
    }
    let mut tree = RouteTree::new(points[root]);
    let mut ids = vec![None; n];
    ids[root] = Some(tree.root());
    let mut stack = vec![root];
    let mut visited = vec![false; n];
    visited[root] = true;
    while let Some(u) = stack.pop() {
        // operon-lint: allow(R001, reason = "every node is assigned an id when first visited, before its neighbors are stacked")
        let uid = ids[u].expect("visited nodes have ids");
        for &v in &adj[u] {
            if !visited[v] {
                visited[v] = true;
                let kind = if steiner_mask(v) {
                    NodeKind::Steiner
                } else {
                    NodeKind::Terminal
                };
                ids[v] = Some(tree.add_child(uid, points[v], kind));
                stack.push(v);
            }
        }
    }
    assert!(
        visited.iter().all(|&v| v),
        "edge list does not span all points"
    );
    tree
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_and_single_point_have_no_edges() {
        assert!(manhattan(&[]).is_empty());
        assert!(euclidean(&[Point::origin()]).is_empty());
    }

    #[test]
    fn two_points_have_one_edge() {
        let pts = [Point::new(0, 0), Point::new(3, 4)];
        let e = euclidean(&pts);
        assert_eq!(e.len(), 1);
        assert!((length(&pts, &e, Metric::Euclidean) - 5.0).abs() < 1e-12);
        assert_eq!(length(&pts, &manhattan(&pts), Metric::Manhattan), 7.0);
        // Octilinear: max(3,4) + (√2−1)·min(3,4) = 4 + 3(√2−1) ≈ 5.243.
        let oct = length(&pts, &octilinear(&pts), Metric::Octilinear);
        assert!((oct - (4.0 + 3.0 * (std::f64::consts::SQRT_2 - 1.0))).abs() < 1e-12);
    }

    #[test]
    fn octilinear_diagonal_equals_euclidean() {
        let pts = [Point::new(0, 0), Point::new(5, 5)];
        let oct = length(&pts, &octilinear(&pts), Metric::Octilinear);
        let euc = length(&pts, &euclidean(&pts), Metric::Euclidean);
        assert!((oct - euc).abs() < 1e-12, "pure 45° runs are Euclidean");
    }

    #[test]
    fn octilinear_axis_runs_equal_manhattan() {
        let pts = [Point::new(0, 0), Point::new(9, 0)];
        let oct = length(&pts, &octilinear(&pts), Metric::Octilinear);
        assert!((oct - 9.0).abs() < 1e-12);
    }

    #[test]
    fn collinear_points_chain() {
        let pts = [Point::new(0, 0), Point::new(10, 0), Point::new(5, 0)];
        let e = manhattan(&pts);
        assert_eq!(length(&pts, &e, Metric::Manhattan), 10.0);
    }

    #[test]
    fn duplicate_points_connect_at_zero_cost() {
        let pts = [Point::new(1, 1), Point::new(1, 1), Point::new(4, 5)];
        let e = euclidean(&pts);
        assert_eq!(e.len(), 2);
        assert!((length(&pts, &e, Metric::Euclidean) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn square_mst_length() {
        let pts = [
            Point::new(0, 0),
            Point::new(10, 0),
            Point::new(0, 10),
            Point::new(10, 10),
        ];
        assert_eq!(length(&pts, &manhattan(&pts), Metric::Manhattan), 30.0);
        assert!((length(&pts, &euclidean(&pts), Metric::Euclidean) - 30.0).abs() < 1e-12);
    }

    #[test]
    fn route_tree_preserves_length_and_root() {
        let pts = [
            Point::new(0, 0),
            Point::new(10, 0),
            Point::new(0, 10),
            Point::new(7, 7),
        ];
        let e = manhattan(&pts);
        let tree = to_route_tree(&pts, &e, 0, |_| false);
        assert!(tree.validate().is_ok());
        assert_eq!(tree.point(tree.root()), pts[0]);
        assert_eq!(
            tree.wirelength_manhattan() as f64,
            length(&pts, &e, Metric::Manhattan)
        );
        assert_eq!(tree.terminals().len(), 4);
    }

    #[test]
    fn route_tree_steiner_mask_applies() {
        let pts = [Point::new(0, 0), Point::new(5, 0), Point::new(9, 0)];
        let e = manhattan(&pts);
        let tree = to_route_tree(&pts, &e, 0, |i| i == 1);
        let steiner: Vec<_> = tree
            .node_ids()
            .filter(|&id| tree.kind(id) == NodeKind::Steiner)
            .collect();
        assert_eq!(steiner.len(), 1);
        assert_eq!(tree.point(steiner[0]), Point::new(5, 0));
    }

    #[test]
    #[should_panic(expected = "does not span")]
    fn route_tree_rejects_disconnected_edges() {
        let pts = [Point::new(0, 0), Point::new(5, 0), Point::new(9, 0)];
        let _ = to_route_tree(&pts, &[(0, 1)], 0, |_| false);
    }

    /// Brute-force MST length by Kruskal over all pairs (oracle).
    fn kruskal_length(points: &[Point], metric: Metric) -> f64 {
        let n = points.len();
        let mut pairs: Vec<(f64, usize, usize)> = Vec::new();
        for i in 0..n {
            for j in i + 1..n {
                pairs.push((metric.distance(points[i], points[j]), i, j));
            }
        }
        pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite distances"));
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let r = find(parent, parent[x]);
                parent[x] = r;
            }
            parent[x]
        }
        let mut total = 0.0;
        let mut used = 0;
        for (d, i, j) in pairs {
            let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
            if ri != rj {
                parent[ri] = rj;
                total += d;
                used += 1;
                if used == n - 1 {
                    break;
                }
            }
        }
        total
    }

    proptest! {
        #[test]
        fn prim_matches_kruskal(
            pts in proptest::collection::vec((-100i64..100, -100i64..100), 2..15)
        ) {
            let pts: Vec<Point> = pts.into_iter().map(Point::from).collect();
            for metric in [Metric::Manhattan, Metric::Euclidean] {
                let prim = length(&pts, &edges(&pts, metric), metric);
                let kruskal = kruskal_length(&pts, metric);
                prop_assert!((prim - kruskal).abs() < 1e-6,
                    "prim {prim} vs kruskal {kruskal}");
            }
        }

        #[test]
        fn mst_has_n_minus_one_edges(
            pts in proptest::collection::vec((-100i64..100, -100i64..100), 1..15)
        ) {
            let pts: Vec<Point> = pts.into_iter().map(Point::from).collect();
            prop_assert_eq!(manhattan(&pts).len(), pts.len() - 1);
        }

        #[test]
        fn euclidean_mst_never_longer_than_manhattan_mst(
            pts in proptest::collection::vec((-100i64..100, -100i64..100), 2..12)
        ) {
            let pts: Vec<Point> = pts.into_iter().map(Point::from).collect();
            let e_len = length(&pts, &euclidean(&pts), Metric::Euclidean);
            let m_len = length(&pts, &manhattan(&pts), Metric::Manhattan);
            prop_assert!(e_len <= m_len + 1e-9);
        }

        #[test]
        fn metric_sandwich_l2_oct_l1(
            ax in -200i64..200, ay in -200i64..200,
            bx in -200i64..200, by in -200i64..200,
        ) {
            // L2 <= octilinear <= L1 point-to-point, and the same ordering
            // carries over to the MST lengths.
            let a = Point::new(ax, ay);
            let b = Point::new(bx, by);
            let l2 = Metric::Euclidean.distance(a, b);
            let oct = Metric::Octilinear.distance(a, b);
            let l1 = Metric::Manhattan.distance(a, b);
            prop_assert!(l2 <= oct + 1e-9, "{l2} vs {oct}");
            prop_assert!(oct <= l1 + 1e-9, "{oct} vs {l1}");
        }

        #[test]
        fn octilinear_mst_between_euclidean_and_manhattan(
            pts in proptest::collection::vec((-100i64..100, -100i64..100), 2..10)
        ) {
            let pts: Vec<Point> = pts.into_iter().map(Point::from).collect();
            let e_len = length(&pts, &euclidean(&pts), Metric::Euclidean);
            let o_len = length(&pts, &octilinear(&pts), Metric::Octilinear);
            let m_len = length(&pts, &manhattan(&pts), Metric::Manhattan);
            prop_assert!(e_len <= o_len + 1e-9);
            prop_assert!(o_len <= m_len + 1e-9);
        }
    }
}
