//! Rooted route trees.

use core::fmt;
use operon_geom::{Point, Segment};

/// Index of a node in a [`RouteTree`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TreeNodeId(usize);

impl TreeNodeId {
    /// The dense index of the node. Index 0 is always the root.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for TreeNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Whether a tree node is a real pin or an introduced branch point.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// A pin of the net (hyper pin): the root source or a sink.
    Terminal,
    /// A Steiner/branch point introduced by topology construction.
    Steiner,
}

#[derive(Clone, Debug, PartialEq, Eq)]
struct TreeNode {
    point: Point,
    parent: Option<TreeNodeId>,
    children: Vec<TreeNodeId>,
    kind: NodeKind,
}

/// A tree of route nodes rooted at the net's source.
///
/// The tree is built top-down with [`add_child`](RouteTree::add_child), so
/// it is acyclic and connected by construction. Edges are implicit
/// (child → parent); each edge will later carry an optical/electrical
/// assignment in the co-design stage.
///
/// # Examples
///
/// ```
/// use operon_geom::Point;
/// use operon_steiner::{NodeKind, RouteTree};
///
/// let mut tree = RouteTree::new(Point::new(0, 0));
/// let mid = tree.add_child(tree.root(), Point::new(5, 0), NodeKind::Steiner);
/// tree.add_child(mid, Point::new(9, 3), NodeKind::Terminal);
/// tree.add_child(mid, Point::new(9, -3), NodeKind::Terminal);
/// assert_eq!(tree.node_count(), 4);
/// assert_eq!(tree.wirelength_manhattan(), 5 + 7 + 7);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RouteTree {
    nodes: Vec<TreeNode>,
}

impl RouteTree {
    /// Creates a tree containing only the root terminal at `source`.
    pub fn new(source: Point) -> Self {
        Self {
            nodes: vec![TreeNode {
                point: source,
                parent: None,
                children: Vec::new(),
                kind: NodeKind::Terminal,
            }],
        }
    }

    /// The root node (always index 0).
    #[inline]
    pub fn root(&self) -> TreeNodeId {
        TreeNodeId(0)
    }

    /// Adds a node under `parent`, returning its id.
    ///
    /// # Panics
    ///
    /// Panics if `parent` is not a node of this tree.
    pub fn add_child(&mut self, parent: TreeNodeId, point: Point, kind: NodeKind) -> TreeNodeId {
        assert!(parent.0 < self.nodes.len(), "parent {parent} out of bounds");
        let id = TreeNodeId(self.nodes.len());
        self.nodes.push(TreeNode {
            point,
            parent: Some(parent),
            children: Vec::new(),
            kind,
        });
        self.nodes[parent.0].children.push(id);
        id
    }

    /// Number of nodes (including the root).
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges (`node_count - 1`).
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.nodes.len() - 1
    }

    /// Location of a node.
    #[inline]
    pub fn point(&self, id: TreeNodeId) -> Point {
        self.nodes[id.0].point
    }

    /// Kind of a node.
    #[inline]
    pub fn kind(&self, id: TreeNodeId) -> NodeKind {
        self.nodes[id.0].kind
    }

    /// Parent of a node (`None` for the root).
    #[inline]
    pub fn parent(&self, id: TreeNodeId) -> Option<TreeNodeId> {
        self.nodes[id.0].parent
    }

    /// Children of a node.
    #[inline]
    pub fn children(&self, id: TreeNodeId) -> &[TreeNodeId] {
        &self.nodes[id.0].children
    }

    /// Iterates over all node ids in creation (pre-insertion) order.
    pub fn node_ids(&self) -> impl Iterator<Item = TreeNodeId> {
        (0..self.nodes.len()).map(TreeNodeId)
    }

    /// Iterates over edges as `(parent_id, child_id)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (TreeNodeId, TreeNodeId)> + '_ {
        self.node_ids()
            .filter_map(move |id| self.parent(id).map(|p| (p, id)))
    }

    /// All terminal node ids (the root plus all sink pins).
    pub fn terminals(&self) -> Vec<TreeNodeId> {
        self.node_ids()
            .filter(|&id| self.kind(id) == NodeKind::Terminal)
            .collect()
    }

    /// All leaf node ids (no children).
    pub fn leaves(&self) -> Vec<TreeNodeId> {
        self.node_ids()
            .filter(|&id| self.children(id).is_empty())
            .collect()
    }

    /// Nodes in post-order (children before parents, root last).
    pub fn postorder(&self) -> Vec<TreeNodeId> {
        let mut order = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![(self.root(), false)];
        while let Some((id, expanded)) = stack.pop() {
            if expanded {
                order.push(id);
            } else {
                stack.push((id, true));
                for &c in self.children(id) {
                    stack.push((c, false));
                }
            }
        }
        order
    }

    /// The node ids from `id` up to and including the root.
    pub fn path_to_root(&self, id: TreeNodeId) -> Vec<TreeNodeId> {
        let mut path = vec![id];
        let mut cur = id;
        while let Some(p) = self.parent(cur) {
            path.push(p);
            cur = p;
        }
        path
    }

    /// Total Manhattan wirelength over all edges (electrical routing).
    pub fn wirelength_manhattan(&self) -> i64 {
        self.edges()
            .map(|(p, c)| self.point(p).manhattan(self.point(c)))
            .sum()
    }

    /// Total Euclidean wirelength over all edges (optical routing).
    pub fn wirelength_euclidean(&self) -> f64 {
        self.edges()
            .map(|(p, c)| self.point(p).euclidean(self.point(c)))
            .sum()
    }

    /// Physical segments of an any-angle (optical) realization: one direct
    /// segment per edge, degenerate edges skipped.
    pub fn segments_euclidean(&self) -> Vec<Segment> {
        self.edges()
            .map(|(p, c)| Segment::new(self.point(p), self.point(c)))
            .filter(|s| !s.is_degenerate())
            .collect()
    }

    /// Physical segments of a rectilinear (electrical) realization: each
    /// edge becomes an L-route (horizontal first, then vertical).
    pub fn segments_rectilinear(&self) -> Vec<Segment> {
        let mut out = Vec::new();
        for (p, c) in self.edges() {
            let (a, b) = (self.point(p), self.point(c));
            let corner = Point::new(b.x, a.y);
            if corner != a {
                out.push(Segment::new(a, corner));
            }
            if corner != b {
                out.push(Segment::new(corner, b));
            }
        }
        out
    }

    /// Number of direction changes in the rectilinear realization (one per
    /// non-axis-aligned edge).
    pub fn bend_count(&self) -> usize {
        self.edges()
            .filter(|&(p, c)| {
                let (a, b) = (self.point(p), self.point(c));
                a.x != b.x && a.y != b.y
            })
            .count()
    }

    /// Checks the structural invariants: node 0 is the parentless root,
    /// every other node's parent precedes it, and child lists mirror
    /// parent pointers.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant. A tree built
    /// exclusively through [`add_child`](RouteTree::add_child) never
    /// fails.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes[0].parent.is_some() {
            return Err("root must have no parent".to_owned());
        }
        for (i, node) in self.nodes.iter().enumerate().skip(1) {
            let Some(p) = node.parent else {
                return Err(format!("non-root node t{i} has no parent"));
            };
            if p.0 >= i {
                return Err(format!("node t{i} has parent {p} that does not precede it"));
            }
            if !self.nodes[p.0].children.contains(&TreeNodeId(i)) {
                return Err(format!("parent {p} does not list t{i} as child"));
            }
        }
        for (i, node) in self.nodes.iter().enumerate() {
            for &c in &node.children {
                if self.nodes[c.0].parent != Some(TreeNodeId(i)) {
                    return Err(format!("child {c} of t{i} disagrees about its parent"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tree() -> RouteTree {
        // root(0,0) -> s(5,0) -> a(9,3), b(9,-3); root -> c(0,10)
        let mut t = RouteTree::new(Point::new(0, 0));
        let s = t.add_child(t.root(), Point::new(5, 0), NodeKind::Steiner);
        t.add_child(s, Point::new(9, 3), NodeKind::Terminal);
        t.add_child(s, Point::new(9, -3), NodeKind::Terminal);
        t.add_child(t.root(), Point::new(0, 10), NodeKind::Terminal);
        t
    }

    #[test]
    fn construction_invariants_hold() {
        let t = sample_tree();
        assert!(t.validate().is_ok());
        assert_eq!(t.node_count(), 5);
        assert_eq!(t.edge_count(), 4);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn add_child_rejects_foreign_parent() {
        let mut t = RouteTree::new(Point::origin());
        let _ = t.add_child(TreeNodeId(5), Point::new(1, 1), NodeKind::Terminal);
    }

    #[test]
    fn wirelengths_match_hand_computation() {
        let t = sample_tree();
        // Edges: (0,0)-(5,0)=5, (5,0)-(9,3)=7, (5,0)-(9,-3)=7, (0,0)-(0,10)=10.
        assert_eq!(t.wirelength_manhattan(), 5 + 7 + 7 + 10);
        let expected = 5.0 + 5.0 + 5.0 + 10.0; // Euclidean: 3-4-5 triangles
        assert!((t.wirelength_euclidean() - expected).abs() < 1e-9);
    }

    #[test]
    fn terminals_and_leaves() {
        let t = sample_tree();
        assert_eq!(t.terminals().len(), 4); // root + 3 sinks
        let leaves = t.leaves();
        assert_eq!(leaves.len(), 3);
        assert!(leaves.iter().all(|&l| t.children(l).is_empty()));
    }

    #[test]
    fn postorder_visits_children_first() {
        let t = sample_tree();
        let order = t.postorder();
        assert_eq!(order.len(), t.node_count());
        assert_eq!(*order.last().expect("non-empty"), t.root());
        let pos = |id: TreeNodeId| order.iter().position(|&x| x == id).expect("present");
        for (p, c) in t.edges() {
            assert!(pos(c) < pos(p), "child {c} must precede parent {p}");
        }
    }

    #[test]
    fn path_to_root_ends_at_root() {
        let t = sample_tree();
        for id in t.node_ids() {
            let path = t.path_to_root(id);
            assert_eq!(path[0], id);
            assert_eq!(*path.last().expect("non-empty"), t.root());
        }
    }

    #[test]
    fn rectilinear_segments_are_axis_aligned() {
        let t = sample_tree();
        for s in t.segments_rectilinear() {
            assert!(s.is_axis_aligned(), "{s} not axis-aligned");
        }
        // Total rectilinear length equals Manhattan wirelength.
        let total: i64 = t
            .segments_rectilinear()
            .iter()
            .map(Segment::manhattan_length)
            .sum();
        assert_eq!(total, t.wirelength_manhattan());
    }

    #[test]
    fn euclidean_segments_match_edges() {
        let t = sample_tree();
        assert_eq!(t.segments_euclidean().len(), t.edge_count());
        let total: f64 = t.segments_euclidean().iter().map(Segment::length).sum();
        assert!((total - t.wirelength_euclidean()).abs() < 1e-9);
    }

    #[test]
    fn degenerate_edges_skipped_in_segments() {
        let mut t = RouteTree::new(Point::origin());
        t.add_child(t.root(), Point::origin(), NodeKind::Steiner);
        assert!(t.segments_euclidean().is_empty());
        assert!(t.segments_rectilinear().is_empty());
    }

    #[test]
    fn bend_count_counts_diagonal_edges() {
        let t = sample_tree();
        // Two diagonal edges: (5,0)-(9,3) and (5,0)-(9,-3).
        assert_eq!(t.bend_count(), 2);
    }

    #[test]
    fn single_node_tree() {
        let t = RouteTree::new(Point::new(3, 4));
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.edge_count(), 0);
        assert_eq!(t.wirelength_manhattan(), 0);
        assert_eq!(t.leaves(), vec![t.root()]);
        assert!(t.validate().is_ok());
    }
}
