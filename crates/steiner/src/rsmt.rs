//! Rectilinear Steiner Minimum Tree via Batched Iterated 1-Steiner.
//!
//! OPERON extends the BI1S heuristic \[Kahng-Robins\] to generate baseline
//! topologies (paper §3.2): candidate Steiner points come from the Hanan
//! grid of the terminals, and each round inserts the candidates with the
//! largest MST-length *gain*. The result is returned as a rooted
//! [`RouteTree`], with degree-2 pass-through Steiner points cleaned away.

use crate::mst::{self, Metric};
use crate::RouteTree;
use operon_geom::Point;
use std::collections::BTreeSet;

/// The Hanan grid of `terminals`: all intersections of horizontal and
/// vertical lines through the terminals, minus the terminals themselves.
///
/// A classic result (Hanan, 1966) guarantees an optimal RSMT exists whose
/// Steiner points all lie on this grid.
///
/// # Examples
///
/// ```
/// use operon_geom::Point;
/// use operon_steiner::hanan_points;
///
/// let pins = [Point::new(0, 0), Point::new(4, 7)];
/// let h = hanan_points(&pins);
/// // The two "corner" candidates of the pin pair.
/// assert_eq!(h.len(), 2);
/// assert!(h.contains(&Point::new(0, 7)) && h.contains(&Point::new(4, 0)));
/// ```
pub fn hanan_points(terminals: &[Point]) -> Vec<Point> {
    let terminal_set: BTreeSet<Point> = terminals.iter().copied().collect();
    let mut xs: Vec<i64> = terminals.iter().map(|p| p.x).collect();
    let mut ys: Vec<i64> = terminals.iter().map(|p| p.y).collect();
    xs.sort_unstable();
    xs.dedup();
    ys.sort_unstable();
    ys.dedup();
    let mut out = Vec::new();
    for &x in &xs {
        for &y in &ys {
            let p = Point::new(x, y);
            if !terminal_set.contains(&p) {
                out.push(p);
            }
        }
    }
    out
}

/// MST length of `pts ∪ extra` in the Manhattan metric.
fn mst_len_with(pts: &[Point], extra: &[Point]) -> f64 {
    let mut all = pts.to_vec();
    all.extend_from_slice(extra);
    mst::length(
        &all,
        &mst::edges(&all, Metric::Manhattan),
        Metric::Manhattan,
    )
}

/// Builds an approximate RSMT over `terminals` with the Batched Iterated
/// 1-Steiner heuristic and roots it at `terminals[0]` (the net source).
///
/// Each batch round evaluates every Hanan candidate's gain (MST-length
/// reduction when added), inserts accepted candidates greedily — re-checking
/// the gain against the updated point set, as in the batched variant — and
/// stops when no candidate helps. Degree-≤2 Steiner points contribute
/// nothing rectilinear and are dropped from the final tree.
///
/// # Panics
///
/// Panics if `terminals` is empty.
///
/// # Examples
///
/// ```
/// use operon_geom::Point;
/// use operon_steiner::rsmt_bi1s;
///
/// // The classic 4-pin cross: the RSMT uses Steiner points and beats the
/// // MST (length 30) with length 20.
/// let pins = [
///     Point::new(5, 0),
///     Point::new(5, 10),
///     Point::new(0, 5),
///     Point::new(10, 5),
/// ];
/// let tree = rsmt_bi1s(&pins);
/// assert_eq!(tree.wirelength_manhattan(), 20);
/// ```
pub fn rsmt_bi1s(terminals: &[Point]) -> RouteTree {
    rsmt_bi1s_with_limit(terminals, usize::MAX)
}

/// Like [`rsmt_bi1s`] but inserts at most `max_steiner` Steiner points.
///
/// OPERON uses this to derive *families* of baseline topologies: ranking
/// the candidate Steiner points by their induced cost and visiting
/// different subsets yields alternative trees for the co-design stage.
///
/// # Panics
///
/// Panics if `terminals` is empty.
pub fn rsmt_bi1s_with_limit(terminals: &[Point], max_steiner: usize) -> RouteTree {
    assert!(!terminals.is_empty(), "RSMT needs at least one terminal");
    let mut unique = Vec::new();
    let mut seen = BTreeSet::new();
    for &p in terminals {
        if seen.insert(p) {
            unique.push(p);
        }
    }
    // Keep the source (terminals[0]) at index 0 even after deduplication.
    debug_assert_eq!(unique[0], terminals[0]);

    let n_terminals = unique.len();
    let mut points = unique;
    let mut steiner_added = 0usize;

    while steiner_added < max_steiner {
        let candidates = hanan_points(&points);
        if candidates.is_empty() {
            break;
        }
        let base = mst_len_with(&points, &[]);
        // Rank candidates by gain.
        let mut gains: Vec<(f64, Point)> = candidates
            .iter()
            .filter_map(|&c| {
                let gain = base - mst_len_with(&points, &[c]);
                if gain > 1e-9 {
                    Some((gain, c))
                } else {
                    None
                }
            })
            .collect();
        if gains.is_empty() {
            break;
        }
        gains.sort_by(|a, b| b.0.total_cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
        // Batched insertion: accept candidates in gain order, re-verifying
        // each against the already-extended point set.
        let mut inserted_this_round = 0;
        for (_, c) in gains {
            if steiner_added >= max_steiner {
                break;
            }
            let before = mst_len_with(&points, &[]);
            let after = mst_len_with(&points, &[c]);
            if before - after > 1e-9 {
                points.push(c);
                steiner_added += 1;
                inserted_this_round += 1;
            }
        }
        if inserted_this_round == 0 {
            break;
        }
    }

    // Build the MST over terminals + accepted Steiner points, then prune
    // Steiner points that ended up useless (degree <= 2 in the MST gives
    // no rectilinear advantage only for degree <= 1; degree-2 pass-through
    // points are harmless but noisy, so drop those whose removal does not
    // lengthen the tree).
    loop {
        let edges = mst::edges(&points, Metric::Manhattan);
        let mut degree = vec![0usize; points.len()];
        for &(a, b) in &edges {
            degree[a] += 1;
            degree[b] += 1;
        }
        let len_now = mst::length(&points, &edges, Metric::Manhattan);
        let mut removed = false;
        for i in (n_terminals..points.len()).rev() {
            if degree[i] <= 2 {
                let mut trial = points.clone();
                trial.remove(i);
                if mst_len_with(&trial, &[]) <= len_now + 1e-9 {
                    points.remove(i);
                    removed = true;
                    break;
                }
            }
        }
        if !removed {
            break;
        }
    }

    let edges = mst::edges(&points, Metric::Manhattan);
    mst::to_route_tree(&points, &edges, 0, |i| i >= n_terminals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeKind;
    use proptest::prelude::*;

    #[test]
    fn single_terminal_is_a_lone_root() {
        let t = rsmt_bi1s(&[Point::new(3, 3)]);
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.wirelength_manhattan(), 0);
    }

    #[test]
    fn two_terminals_need_no_steiner_points() {
        let t = rsmt_bi1s(&[Point::new(0, 0), Point::new(5, 7)]);
        assert_eq!(t.wirelength_manhattan(), 12);
        assert!(t.node_ids().all(|id| t.kind(id) == NodeKind::Terminal));
    }

    #[test]
    fn hanan_points_of_collinear_pins_is_empty() {
        let pins = [Point::new(0, 0), Point::new(5, 0), Point::new(9, 0)];
        assert!(hanan_points(&pins).is_empty());
    }

    #[test]
    fn hanan_grid_size_is_product_minus_terminals() {
        let pins = [Point::new(0, 0), Point::new(4, 7), Point::new(9, 2)];
        // 3 distinct xs × 3 distinct ys - 3 terminals = 6 candidates.
        assert_eq!(hanan_points(&pins).len(), 6);
    }

    #[test]
    fn l_shaped_triple_gains_a_steiner_point() {
        // Source left, two sinks right-up and right-down: the RSMT merges
        // the common trunk through a Steiner point.
        let pins = [Point::new(0, 0), Point::new(10, 5), Point::new(10, -5)];
        let t = rsmt_bi1s(&pins);
        // MST: 15 + 10 = 25; RSMT: trunk 10 + 5 + 5 = 20.
        assert_eq!(t.wirelength_manhattan(), 20);
        assert!(t.node_ids().any(|id| t.kind(id) == NodeKind::Steiner));
    }

    #[test]
    fn cross_instance_reaches_optimum() {
        let pins = [
            Point::new(5, 0),
            Point::new(5, 10),
            Point::new(0, 5),
            Point::new(10, 5),
        ];
        assert_eq!(rsmt_bi1s(&pins).wirelength_manhattan(), 20);
    }

    #[test]
    fn duplicate_terminals_tolerated() {
        let pins = [Point::new(0, 0), Point::new(0, 0), Point::new(5, 5)];
        let t = rsmt_bi1s(&pins);
        assert!(t.validate().is_ok());
        assert_eq!(t.wirelength_manhattan(), 10);
    }

    #[test]
    fn steiner_limit_zero_gives_plain_mst() {
        let pins = [Point::new(0, 0), Point::new(10, 5), Point::new(10, -5)];
        let t = rsmt_bi1s_with_limit(&pins, 0);
        assert_eq!(t.wirelength_manhattan(), 25); // the MST length
    }

    #[test]
    fn root_is_first_terminal() {
        let pins = [Point::new(7, 3), Point::new(0, 0), Point::new(3, 9)];
        let t = rsmt_bi1s(&pins);
        assert_eq!(t.point(t.root()), Point::new(7, 3));
    }

    #[test]
    #[should_panic(expected = "at least one terminal")]
    fn empty_terminals_rejected() {
        let _ = rsmt_bi1s(&[]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn rsmt_between_hpwl_and_mst(
            pts in proptest::collection::vec((-60i64..60, -60i64..60), 2..8)
        ) {
            let pts: Vec<Point> = pts.into_iter().map(Point::from).collect();
            let tree = rsmt_bi1s(&pts);
            prop_assert!(tree.validate().is_ok());
            let rsmt_len = tree.wirelength_manhattan() as f64;
            let mst_len = mst::length(
                &pts, &mst::manhattan(&pts), Metric::Manhattan);
            // Never worse than the MST it starts from...
            prop_assert!(rsmt_len <= mst_len + 1e-9);
            // ...and never below the half-perimeter lower bound.
            let bb = operon_geom::BoundingBox::from_points(pts.iter().copied())
                .expect("non-empty");
            prop_assert!(rsmt_len >= bb.half_perimeter() as f64 - 1e-9);
        }

        #[test]
        fn all_terminals_present_in_tree(
            pts in proptest::collection::vec((-60i64..60, -60i64..60), 1..8)
        ) {
            let pts: Vec<Point> = pts.into_iter().map(Point::from).collect();
            let tree = rsmt_bi1s(&pts);
            let tree_pts: std::collections::BTreeSet<Point> =
                tree.node_ids().map(|id| tree.point(id)).collect();
            for p in &pts {
                prop_assert!(tree_pts.contains(p), "terminal {p} missing");
            }
        }
    }
}
