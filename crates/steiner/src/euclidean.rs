//! Any-angle (Euclidean) Steiner topologies for optical baselines.
//!
//! Optical waveguides route in any direction (paper §2.3), so optical
//! baselines use Euclidean geometry: the Euclidean MST, and an improved
//! variant that inserts Steiner points near the Fermat-Torricelli point of
//! high-degree junctions. The heuristic is deliberately simple — OPERON's
//! quality comes from the co-design and formulation stages, the baseline
//! only needs to be a reasonable tree.

use crate::mst::{self, Metric};
use crate::RouteTree;
use operon_geom::{FPoint, Point};
use std::collections::BTreeSet;

/// Builds the Euclidean-MST topology over `terminals`, rooted at
/// `terminals[0]`.
///
/// # Panics
///
/// Panics if `terminals` is empty.
///
/// # Examples
///
/// ```
/// use operon_geom::Point;
/// use operon_steiner::euclidean::mst_tree;
///
/// let pins = [Point::new(0, 0), Point::new(30, 40), Point::new(60, 0)];
/// let tree = mst_tree(&pins);
/// assert_eq!(tree.node_count(), 3);
/// assert!((tree.wirelength_euclidean() - 100.0).abs() < 1e-9);
/// ```
pub fn mst_tree(terminals: &[Point]) -> RouteTree {
    assert!(!terminals.is_empty(), "tree needs at least one terminal");
    let unique = dedupe(terminals);
    let edges = mst::euclidean(&unique);
    mst::to_route_tree(&unique, &edges, 0, |_| false)
}

/// Builds a Euclidean Steiner tree by iteratively inserting approximate
/// Fermat-Torricelli points, rooted at `terminals[0]`.
///
/// Each round looks at every triple formed by a tree point and two of its
/// MST neighbors, computes the triple's Fermat point by iterative Weiszfeld
/// refinement, and keeps the insertion with the largest MST-length gain.
/// Stops when no insertion gains more than `min_gain` dbu.
///
/// # Panics
///
/// Panics if `terminals` is empty.
///
/// # Examples
///
/// ```
/// use operon_geom::Point;
/// use operon_steiner::euclidean::steiner_tree;
///
/// // Equilateral-ish triangle: the Fermat point saves length over the MST.
/// let pins = [Point::new(0, 0), Point::new(100, 0), Point::new(50, 87)];
/// let tree = steiner_tree(&pins, 1.0);
/// assert!(tree.wirelength_euclidean() < 200.0 - 1.0);
/// ```
pub fn steiner_tree(terminals: &[Point], min_gain: f64) -> RouteTree {
    assert!(!terminals.is_empty(), "tree needs at least one terminal");
    let unique = dedupe(terminals);
    let n_terminals = unique.len();
    let mut points = unique;

    loop {
        let edges = mst::euclidean(&points);
        let base = mst::length(&points, &edges, Metric::Euclidean);
        // Neighbor lists in the current MST.
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); points.len()];
        for &(a, b) in &edges {
            adj[a].push(b);
            adj[b].push(a);
        }
        let mut best: Option<(f64, Point)> = None;
        for (v, neighbors) in adj.iter().enumerate() {
            for i in 0..neighbors.len() {
                for j in i + 1..neighbors.len() {
                    let triple = [points[v], points[neighbors[i]], points[neighbors[j]]];
                    let fermat = fermat_point(&triple);
                    if triple.contains(&fermat) {
                        continue;
                    }
                    let mut trial = points.clone();
                    trial.push(fermat);
                    let len = mst::length(&trial, &mst::euclidean(&trial), Metric::Euclidean);
                    let gain = base - len;
                    if gain > min_gain && best.is_none_or(|(g, _)| gain > g) {
                        best = Some((gain, fermat));
                    }
                }
            }
        }
        match best {
            Some((_, p)) => points.push(p),
            None => break,
        }
    }

    let edges = mst::euclidean(&points);
    mst::to_route_tree(&points, &edges, 0, |i| i >= n_terminals)
}

/// Approximates the Fermat-Torricelli point of a triangle by Weiszfeld
/// iteration, rounded to the lattice.
///
/// The Fermat point minimizes the sum of Euclidean distances to the three
/// corners; when one corner's angle exceeds 120° the corner itself is the
/// minimizer, which the iteration converges to as well.
///
/// # Examples
///
/// ```
/// use operon_geom::Point;
/// use operon_steiner::euclidean::fermat_point;
///
/// // For an equilateral triangle the Fermat point is the centroid.
/// let f = fermat_point(&[Point::new(0, 0), Point::new(60, 0), Point::new(30, 52)]);
/// assert!(f.euclidean(Point::new(30, 17)) < 2.0);
/// ```
pub fn fermat_point(corners: &[Point; 3]) -> Point {
    // operon-lint: allow(R001, reason = "a [Point; 3] array is never empty, so the centroid exists")
    let mut cur = FPoint::centroid(corners.iter().map(|&p| p.to_fpoint())).expect("three corners");
    for _ in 0..60 {
        let mut wx = 0.0;
        let mut wy = 0.0;
        let mut wsum = 0.0;
        for &c in corners {
            let d = cur.euclidean(c.to_fpoint());
            if d < 1e-9 {
                // Converged onto a corner: that corner is the minimizer.
                return c;
            }
            let w = 1.0 / d;
            wx += w * c.x as f64;
            wy += w * c.y as f64;
            wsum += w;
        }
        let next = FPoint::new(wx / wsum, wy / wsum);
        if cur.euclidean(next) < 1e-6 {
            cur = next;
            break;
        }
        cur = next;
    }
    cur.round()
}

fn dedupe(points: &[Point]) -> Vec<Point> {
    let mut seen = BTreeSet::new();
    points.iter().copied().filter(|&p| seen.insert(p)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mst_tree_of_single_point() {
        let t = mst_tree(&[Point::new(1, 2)]);
        assert_eq!(t.node_count(), 1);
    }

    #[test]
    fn mst_tree_handles_duplicates() {
        let t = mst_tree(&[Point::new(0, 0), Point::new(0, 0), Point::new(3, 4)]);
        assert_eq!(t.node_count(), 2);
        assert!((t.wirelength_euclidean() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn fermat_point_of_obtuse_triangle_is_the_wide_corner() {
        // Angle at (0,0) far exceeds 120°.
        let f = fermat_point(&[Point::new(0, 0), Point::new(100, 1), Point::new(-100, 1)]);
        assert!(f.euclidean(Point::new(0, 0)) < 2.0, "got {f}");
    }

    #[test]
    fn fermat_point_reduces_star_length() {
        let corners = [Point::new(0, 0), Point::new(100, 0), Point::new(50, 87)];
        let f = fermat_point(&corners);
        let star: f64 = corners.iter().map(|&c| f.euclidean(c)).sum();
        // Optimal Steiner length for this near-equilateral triangle is
        // ≈ 173.2; any two sides of the MST total 200.
        assert!(star < 176.0, "star length {star}");
    }

    #[test]
    fn steiner_tree_beats_mst_on_triangle() {
        let pins = [Point::new(0, 0), Point::new(100, 0), Point::new(50, 87)];
        let mst_len = mst_tree(&pins).wirelength_euclidean();
        let st_len = steiner_tree(&pins, 1.0).wirelength_euclidean();
        assert!(st_len < mst_len - 1.0, "steiner {st_len} vs mst {mst_len}");
    }

    #[test]
    fn steiner_tree_on_collinear_points_adds_nothing() {
        let pins = [Point::new(0, 0), Point::new(50, 0), Point::new(100, 0)];
        let t = steiner_tree(&pins, 1.0);
        assert_eq!(t.node_count(), 3);
        assert!((t.wirelength_euclidean() - 100.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one terminal")]
    fn empty_input_rejected() {
        let _ = mst_tree(&[]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn steiner_never_longer_than_mst(
            pts in proptest::collection::vec((-80i64..80, -80i64..80), 2..7)
        ) {
            let pts: Vec<Point> = pts.into_iter().map(Point::from).collect();
            let mst_len = mst_tree(&pts).wirelength_euclidean();
            let tree = steiner_tree(&pts, 1.0);
            prop_assert!(tree.validate().is_ok());
            prop_assert!(tree.wirelength_euclidean() <= mst_len + 1e-6);
        }

        #[test]
        fn all_terminals_retained(
            pts in proptest::collection::vec((-80i64..80, -80i64..80), 1..7)
        ) {
            let pts: Vec<Point> = pts.into_iter().map(Point::from).collect();
            let tree = steiner_tree(&pts, 1.0);
            let tree_pts: std::collections::BTreeSet<Point> =
                tree.node_ids().map(|id| tree.point(id)).collect();
            for p in &pts {
                prop_assert!(tree_pts.contains(p));
            }
        }
    }
}
