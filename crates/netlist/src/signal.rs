//! Bits and signal groups.

use crate::{BitId, GroupId};
use operon_geom::{BoundingBox, Point};
use serde::{Deserialize, Serialize};

/// One signal bit: a net with a single source pin and one or more sinks.
///
/// Pins are bare locations; the cell/port bookkeeping of a full physical
/// design database is irrelevant to route synthesis and intentionally
/// omitted.
///
/// # Examples
///
/// ```
/// use operon_geom::Point;
/// use operon_netlist::{Bit, BitId};
///
/// let bit = Bit::new(BitId::new(0), Point::new(0, 0), vec![Point::new(100, 50)]);
/// assert_eq!(bit.pin_count(), 2);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bit {
    id: BitId,
    source: Point,
    sinks: Vec<Point>,
}

impl Bit {
    /// Creates a bit with the given source and sink pins.
    ///
    /// # Panics
    ///
    /// Panics if `sinks` is empty — a net without sinks has no routing
    /// problem to solve.
    pub fn new(id: BitId, source: Point, sinks: Vec<Point>) -> Self {
        assert!(!sinks.is_empty(), "bit {id} must have at least one sink");
        Self { id, source, sinks }
    }

    /// The per-group id of this bit.
    #[inline]
    pub fn id(&self) -> BitId {
        self.id
    }

    /// The driving pin.
    #[inline]
    pub fn source(&self) -> Point {
        self.source
    }

    /// The receiving pins.
    #[inline]
    pub fn sinks(&self) -> &[Point] {
        &self.sinks
    }

    /// Total pin count (source + sinks).
    #[inline]
    pub fn pin_count(&self) -> usize {
        1 + self.sinks.len()
    }

    /// Iterates over all pins, source first.
    pub fn pins(&self) -> impl Iterator<Item = Point> + '_ {
        std::iter::once(self.source).chain(self.sinks.iter().copied())
    }

    /// The tightest box enclosing every pin of the bit.
    pub fn bounding_box(&self) -> BoundingBox {
        // operon-lint: allow(R003, reason = "pins() always yields the source point first, so from_points never sees an empty iterator")
        BoundingBox::from_points(self.pins()).expect("bit always has pins")
    }
}

/// A bundle of signal bits routed together (a bus).
///
/// In industrial designs, performance-critical bits are bound together for
/// communication between logic cells and memory interfaces (paper §2.3);
/// OPERON treats each bundle as the unit that is clustered into hyper nets.
///
/// # Examples
///
/// ```
/// use operon_geom::Point;
/// use operon_netlist::{Bit, BitId, GroupId, SignalGroup};
///
/// let bits = vec![
///     Bit::new(BitId::new(0), Point::new(0, 0), vec![Point::new(9, 9)]),
///     Bit::new(BitId::new(1), Point::new(0, 1), vec![Point::new(9, 8)]),
/// ];
/// let group = SignalGroup::new(GroupId::new(0), "bus_a", bits);
/// assert_eq!(group.bit_count(), 2);
/// assert_eq!(group.pin_count(), 4);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SignalGroup {
    id: GroupId,
    name: String,
    bits: Vec<Bit>,
}

impl SignalGroup {
    /// Creates a signal group.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is empty, or if bit ids are not the dense sequence
    /// `0..bits.len()` (the invariant every downstream index relies on).
    pub fn new(id: GroupId, name: impl Into<String>, bits: Vec<Bit>) -> Self {
        assert!(!bits.is_empty(), "signal group {id} must have bits");
        for (i, bit) in bits.iter().enumerate() {
            assert_eq!(
                bit.id().index(),
                i,
                "bit ids in group {id} must be dense and ordered"
            );
        }
        Self {
            id,
            name: name.into(),
            bits,
        }
    }

    /// The id of this group.
    #[inline]
    pub fn id(&self) -> GroupId {
        self.id
    }

    /// Human-readable bus name.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The bits of the group, ordered by [`BitId`].
    #[inline]
    pub fn bits(&self) -> &[Bit] {
        &self.bits
    }

    /// Looks up one bit by id.
    pub fn bit(&self, id: BitId) -> Option<&Bit> {
        self.bits.get(id.index())
    }

    /// Number of bits in the bundle.
    #[inline]
    pub fn bit_count(&self) -> usize {
        self.bits.len()
    }

    /// Total pin count over all bits.
    pub fn pin_count(&self) -> usize {
        self.bits.iter().map(Bit::pin_count).sum()
    }

    /// The tightest box enclosing every pin of every bit.
    pub fn bounding_box(&self) -> BoundingBox {
        BoundingBox::from_points(self.bits.iter().flat_map(Bit::pins))
            // operon-lint: allow(R003, reason = "groups are constructed non-empty (read_design rejects empty groups) and every bit has a source pin")
            .expect("group always has pins")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bit(i: u32, sx: i64, sy: i64) -> Bit {
        Bit::new(
            BitId::new(i),
            Point::new(sx, sy),
            vec![Point::new(sx + 10, sy)],
        )
    }

    #[test]
    #[should_panic(expected = "at least one sink")]
    fn bit_requires_sinks() {
        let _ = Bit::new(BitId::new(0), Point::origin(), vec![]);
    }

    #[test]
    fn bit_pins_iterates_source_first() {
        let b = Bit::new(
            BitId::new(0),
            Point::new(1, 1),
            vec![Point::new(2, 2), Point::new(3, 3)],
        );
        let pins: Vec<_> = b.pins().collect();
        assert_eq!(
            pins,
            vec![Point::new(1, 1), Point::new(2, 2), Point::new(3, 3)]
        );
        assert_eq!(b.pin_count(), 3);
    }

    #[test]
    fn bit_bounding_box_covers_pins() {
        let b = Bit::new(BitId::new(0), Point::new(5, -2), vec![Point::new(-1, 7)]);
        let bb = b.bounding_box();
        assert_eq!(bb.lo(), Point::new(-1, -2));
        assert_eq!(bb.hi(), Point::new(5, 7));
    }

    #[test]
    #[should_panic(expected = "must have bits")]
    fn group_requires_bits() {
        let _ = SignalGroup::new(GroupId::new(0), "empty", vec![]);
    }

    #[test]
    #[should_panic(expected = "dense and ordered")]
    fn group_rejects_sparse_bit_ids() {
        let bits = vec![bit(0, 0, 0), bit(2, 1, 0)];
        let _ = SignalGroup::new(GroupId::new(0), "bad", bits);
    }

    #[test]
    fn group_accessors() {
        let g = SignalGroup::new(GroupId::new(1), "bus", vec![bit(0, 0, 0), bit(1, 0, 5)]);
        assert_eq!(g.id(), GroupId::new(1));
        assert_eq!(g.name(), "bus");
        assert_eq!(g.bit_count(), 2);
        assert_eq!(g.pin_count(), 4);
        assert!(g.bit(BitId::new(1)).is_some());
        assert!(g.bit(BitId::new(2)).is_none());
    }

    #[test]
    fn group_bounding_box_spans_all_bits() {
        let g = SignalGroup::new(GroupId::new(0), "bus", vec![bit(0, 0, 0), bit(1, 100, 50)]);
        let bb = g.bounding_box();
        assert_eq!(bb.lo(), Point::new(0, 0));
        assert_eq!(bb.hi(), Point::new(110, 50));
    }
}
