//! Typed identifiers for netlist entities.

use core::fmt;
use serde::{Deserialize, Serialize};

/// Identifier of a [`SignalGroup`](crate::SignalGroup) within a
/// [`Design`](crate::Design).
///
/// Group ids are dense indices assigned in insertion order.
///
/// # Examples
///
/// ```
/// use operon_netlist::GroupId;
///
/// let g = GroupId::new(3);
/// assert_eq!(g.index(), 3);
/// assert_eq!(g.to_string(), "g3");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GroupId(u32);

impl GroupId {
    /// Creates a group id from a dense index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        Self(index)
    }

    /// The dense index backing this id.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// Identifier of a [`Bit`](crate::Bit) *within its group*.
///
/// # Examples
///
/// ```
/// use operon_netlist::BitId;
///
/// assert_eq!(BitId::new(7).index(), 7);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BitId(u32);

impl BitId {
    /// Creates a bit id from a dense per-group index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        Self(index)
    }

    /// The dense index backing this id.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BitId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// A fully-qualified reference to a bit: group plus bit index.
///
/// # Examples
///
/// ```
/// use operon_netlist::{BitId, BitRef, GroupId};
///
/// let r = BitRef::new(GroupId::new(2), BitId::new(5));
/// assert_eq!(r.to_string(), "g2.b5");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BitRef {
    /// The owning group.
    pub group: GroupId,
    /// The bit within the group.
    pub bit: BitId,
}

impl BitRef {
    /// Creates a bit reference.
    #[inline]
    pub const fn new(group: GroupId, bit: BitId) -> Self {
        Self { group, bit }
    }
}

impl fmt::Display for BitRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.group, self.bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_indices() {
        assert_eq!(GroupId::new(0).index(), 0);
        assert_eq!(GroupId::new(41).index(), 41);
        assert_eq!(BitId::new(9).index(), 9);
    }

    #[test]
    fn ids_order_by_index() {
        assert!(GroupId::new(1) < GroupId::new(2));
        assert!(BitId::new(0) < BitId::new(10));
        assert!(
            BitRef::new(GroupId::new(1), BitId::new(9))
                < BitRef::new(GroupId::new(2), BitId::new(0))
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(GroupId::new(12).to_string(), "g12");
        assert_eq!(BitId::new(3).to_string(), "b3");
        assert_eq!(
            BitRef::new(GroupId::new(12), BitId::new(3)).to_string(),
            "g12.b3"
        );
    }
}
