//! Plain-text interchange format for designs.
//!
//! A minimal, diff-friendly format so benchmarks can be checked into a
//! repository and exchanged with other tools:
//!
//! ```text
//! design I1
//! die 0 0 20000 20000
//! group I1_bus0
//! bit 100 200 : 9000 9100 , 9000 9150
//! bit 110 200 : 9010 9100
//! end
//! ```
//!
//! Every `bit` line lists the source pin, a colon, then comma-separated
//! sink pins. Groups are closed by `end`. Blank lines and `#` comments are
//! ignored.
//!
//! # Examples
//!
//! ```
//! use operon_netlist::io::{read_design, write_design};
//! use operon_netlist::synth::{generate, SynthConfig};
//!
//! let d = generate(&SynthConfig::small(), 5);
//! let text = write_design(&d);
//! let back = read_design(&text)?;
//! assert_eq!(d, back);
//! # Ok::<(), operon_netlist::io::ParseDesignError>(())
//! ```

use crate::{Bit, BitId, Design, GroupId, SignalGroup};
use core::fmt;
use operon_geom::{BoundingBox, Point};
use std::error::Error;

/// Error returned by [`read_design`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseDesignError {
    line: usize,
    message: String,
}

impl ParseDesignError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        Self {
            line,
            message: message.into(),
        }
    }

    /// The 1-based line number where parsing failed.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseDesignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseDesignError {}

/// Serializes a design to the text format.
pub fn write_design(design: &Design) -> String {
    let mut out = String::new();
    out.push_str(&format!("design {}\n", design.name()));
    let die = design.die();
    out.push_str(&format!(
        "die {} {} {} {}\n",
        die.lo().x,
        die.lo().y,
        die.hi().x,
        die.hi().y
    ));
    for group in design.groups() {
        out.push_str(&format!("group {}\n", group.name()));
        for bit in group.bits() {
            out.push_str(&format!("bit {} {} :", bit.source().x, bit.source().y));
            for (i, sink) in bit.sinks().iter().enumerate() {
                if i > 0 {
                    out.push_str(" ,");
                }
                out.push_str(&format!(" {} {}", sink.x, sink.y));
            }
            out.push('\n');
        }
        out.push_str("end\n");
    }
    out
}

/// Parses a design from the text format.
///
/// # Errors
///
/// Returns a [`ParseDesignError`] naming the offending line on any
/// malformed input: missing header, unclosed group, bad coordinates, pins
/// outside the die, or empty groups.
pub fn read_design(text: &str) -> Result<Design, ParseDesignError> {
    let mut name: Option<String> = None;
    let mut design: Option<Design> = None;
    let mut current: Option<(String, Vec<Bit>)> = None;
    let mut group_idx = 0u32;

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut tokens = line.split_whitespace();
        let Some(keyword) = tokens.next() else {
            continue; // unreachable: the line was trimmed and is non-empty
        };
        match keyword {
            "design" => {
                let n: Vec<&str> = tokens.collect();
                if n.is_empty() {
                    return Err(ParseDesignError::new(lineno, "design line needs a name"));
                }
                name = Some(n.join(" "));
            }
            "die" => {
                let nums = parse_i64s(&mut tokens, 4, lineno)?;
                let d =
                    BoundingBox::new(Point::new(nums[0], nums[1]), Point::new(nums[2], nums[3]));
                let Some(n) = name.clone() else {
                    return Err(ParseDesignError::new(
                        lineno,
                        "die line must follow the design line",
                    ));
                };
                if d.width() <= 0 || d.height() <= 0 {
                    return Err(ParseDesignError::new(lineno, "die must have positive area"));
                }
                design = Some(Design::new(n, d));
            }
            "group" => {
                if design.is_none() {
                    return Err(ParseDesignError::new(
                        lineno,
                        "group before design/die header",
                    ));
                }
                if current.is_some() {
                    return Err(ParseDesignError::new(lineno, "previous group not closed"));
                }
                let n: Vec<&str> = tokens.collect();
                if n.is_empty() {
                    return Err(ParseDesignError::new(lineno, "group line needs a name"));
                }
                current = Some((n.join(" "), Vec::new()));
            }
            "bit" => {
                let Some((_, bits)) = current.as_mut() else {
                    return Err(ParseDesignError::new(lineno, "bit outside of a group"));
                };
                let rest: Vec<&str> = tokens.collect();
                let joined = rest.join(" ");
                let Some((src_part, sink_part)) = joined.split_once(':') else {
                    return Err(ParseDesignError::new(
                        lineno,
                        "bit line must contain ':' separating source and sinks",
                    ));
                };
                let source = parse_point(src_part, lineno)?;
                let mut sinks = Vec::new();
                for chunk in sink_part.split(',') {
                    if chunk.trim().is_empty() {
                        continue;
                    }
                    sinks.push(parse_point(chunk, lineno)?);
                }
                if sinks.is_empty() {
                    return Err(ParseDesignError::new(lineno, "bit has no sinks"));
                }
                let id = BitId::new(bits.len() as u32);
                bits.push(Bit::new(id, source, sinks));
            }
            "end" => {
                let Some((gname, bits)) = current.take() else {
                    return Err(ParseDesignError::new(lineno, "end without open group"));
                };
                if bits.is_empty() {
                    return Err(ParseDesignError::new(lineno, "group has no bits"));
                }
                let Some(d) = design.as_mut() else {
                    return Err(ParseDesignError::new(
                        lineno,
                        "group before design/die header",
                    ));
                };
                let die = d.die();
                for bit in &bits {
                    for p in bit.pins() {
                        if !die.contains(p) {
                            return Err(ParseDesignError::new(
                                lineno,
                                format!("pin {p} outside die {die}"),
                            ));
                        }
                    }
                }
                d.push_group(SignalGroup::new(GroupId::new(group_idx), gname, bits));
                group_idx += 1;
            }
            other => {
                return Err(ParseDesignError::new(
                    lineno,
                    format!("unknown keyword '{other}'"),
                ));
            }
        }
    }
    if current.is_some() {
        return Err(ParseDesignError::new(
            text.lines().count(),
            "unclosed group at end of input",
        ));
    }
    design.ok_or_else(|| ParseDesignError::new(1, "missing design/die header"))
}

fn parse_i64s<'a, I>(tokens: &mut I, n: usize, lineno: usize) -> Result<Vec<i64>, ParseDesignError>
where
    I: Iterator<Item = &'a str>,
{
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let tok = tokens
            .next()
            .ok_or_else(|| ParseDesignError::new(lineno, "missing coordinate"))?;
        let v = tok
            .parse::<i64>()
            .map_err(|_| ParseDesignError::new(lineno, format!("bad integer '{tok}'")))?;
        out.push(v);
    }
    Ok(out)
}

fn parse_point(chunk: &str, lineno: usize) -> Result<Point, ParseDesignError> {
    let mut it = chunk.split_whitespace();
    let nums = parse_i64s(&mut it, 2, lineno)?;
    if it.next().is_some() {
        return Err(ParseDesignError::new(
            lineno,
            format!("trailing tokens in point '{chunk}'"),
        ));
    }
    Ok(Point::new(nums[0], nums[1]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate, SynthConfig};

    #[test]
    fn round_trip_small_and_medium() {
        for cfg in [SynthConfig::small(), SynthConfig::medium()] {
            let d = generate(&cfg, 77);
            let text = write_design(&d);
            let back = read_design(&text).expect("round trip parses");
            assert_eq!(d, back);
        }
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "\n# header comment\ndesign t\ndie 0 0 100 100\n\ngroup a\n# inner\nbit 1 2 : 3 4\nend\n";
        let d = read_design(text).expect("parses");
        assert_eq!(d.name(), "t");
        assert_eq!(d.bit_count(), 1);
    }

    #[test]
    fn multi_sink_bits_parse() {
        let text = "design t\ndie 0 0 100 100\ngroup a\nbit 1 2 : 3 4 , 5 6 , 7 8\nend\n";
        let d = read_design(text).expect("parses");
        let bit = &d.groups()[0].bits()[0];
        assert_eq!(bit.sinks().len(), 3);
        assert_eq!(bit.sinks()[2], Point::new(7, 8));
    }

    fn err_of(text: &str) -> ParseDesignError {
        read_design(text).expect_err("should fail")
    }

    #[test]
    fn missing_header_is_error() {
        assert!(err_of("group a\nbit 1 2 : 3 4\nend\n")
            .to_string()
            .contains("before design"));
        assert!(err_of("").to_string().contains("missing design"));
    }

    #[test]
    fn bad_integer_reports_line() {
        let e = err_of("design t\ndie 0 0 abc 100\n");
        assert_eq!(e.line(), 2);
        assert!(e.to_string().contains("bad integer"));
    }

    #[test]
    fn bit_without_colon_is_error() {
        let e = err_of("design t\ndie 0 0 100 100\ngroup a\nbit 1 2 3 4\nend\n");
        assert!(e.to_string().contains(':'));
    }

    #[test]
    fn bit_without_sinks_is_error() {
        let e = err_of("design t\ndie 0 0 100 100\ngroup a\nbit 1 2 :\nend\n");
        assert!(e.to_string().contains("no sinks"));
    }

    #[test]
    fn unclosed_group_is_error() {
        let e = err_of("design t\ndie 0 0 100 100\ngroup a\nbit 1 2 : 3 4\n");
        assert!(e.to_string().contains("unclosed"));
    }

    #[test]
    fn end_without_group_is_error() {
        let e = err_of("design t\ndie 0 0 100 100\nend\n");
        assert!(e.to_string().contains("end without"));
    }

    #[test]
    fn empty_group_is_error() {
        let e = err_of("design t\ndie 0 0 100 100\ngroup a\nend\n");
        assert!(e.to_string().contains("no bits"));
    }

    #[test]
    fn pin_outside_die_is_error() {
        let e = err_of("design t\ndie 0 0 100 100\ngroup a\nbit 1 2 : 300 4\nend\n");
        assert!(e.to_string().contains("outside die"));
    }

    #[test]
    fn unknown_keyword_is_error() {
        let e = err_of("design t\ndie 0 0 100 100\nfrobnicate\n");
        assert!(e.to_string().contains("unknown keyword"));
    }

    #[test]
    fn nested_group_is_error() {
        let e = err_of("design t\ndie 0 0 100 100\ngroup a\ngroup b\n");
        assert!(e.to_string().contains("not closed"));
    }

    #[test]
    fn point_with_trailing_tokens_is_error() {
        let e = err_of("design t\ndie 0 0 100 100\ngroup a\nbit 1 2 : 3 4 5\nend\n");
        assert!(e.to_string().contains("trailing"));
    }

    mod fuzz {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            /// The parser never panics, whatever bytes arrive.
            #[test]
            fn parser_never_panics(text in "\\PC*") {
                let _ = read_design(&text);
            }

            /// Line-structured garbage built from the format's own
            /// keywords never panics either (deeper paths than raw
            /// noise).
            #[test]
            fn keyword_shaped_garbage_never_panics(
                lines in proptest::collection::vec(
                    prop_oneof![
                        Just("design x".to_owned()),
                        Just("die 0 0 100 100".to_owned()),
                        Just("die 5 5 5 5".to_owned()),
                        Just("group g".to_owned()),
                        Just("end".to_owned()),
                        Just("bit 1 2 : 3 4".to_owned()),
                        Just("bit 1 2 :".to_owned()),
                        Just("bit : 3 4".to_owned()),
                        Just("bit 999999999999999999999 2 : 3 4".to_owned()),
                        Just("# comment".to_owned()),
                        Just(String::new()),
                    ],
                    0..12,
                )
            ) {
                let _ = read_design(&lines.join("\n"));
            }

            /// Any successfully parsed design re-serializes and re-parses
            /// to itself (write/read is a retraction).
            #[test]
            fn parse_write_parse_is_stable(
                lines in proptest::collection::vec(
                    prop_oneof![
                        Just("design x".to_owned()),
                        Just("die 0 0 100 100".to_owned()),
                        Just("group g".to_owned()),
                        Just("end".to_owned()),
                        Just("bit 1 2 : 3 4".to_owned()),
                        Just("bit 5 6 : 7 8 , 9 10".to_owned()),
                    ],
                    0..12,
                )
            ) {
                if let Ok(design) = read_design(&lines.join("\n")) {
                    let text = write_design(&design);
                    let again = read_design(&text).expect("round trip");
                    prop_assert_eq!(design, again);
                }
            }
        }
    }
}
