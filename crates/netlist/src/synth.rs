//! Deterministic synthetic benchmark generation.
//!
//! The OPERON evaluation used five proprietary industrial benchmarks
//! (I1–I5), up-scaled to centimeter dimensions. This module generates
//! substitutes with the same *statistical shape*: total signal-bit count
//! (the "#Net" column of Table 1), bus-size distribution, multi-pin fanout,
//! and the hub-to-hub communication pattern (logic clusters talking to
//! memory interfaces) that the paper's introduction motivates.
//!
//! All generation is seeded; the same `(config, seed)` pair always yields
//! the identical [`Design`].
//!
//! # Examples
//!
//! ```
//! use operon_netlist::synth::{generate, SynthConfig};
//!
//! let a = generate(&SynthConfig::small(), 7);
//! let b = generate(&SynthConfig::small(), 7);
//! assert_eq!(a, b); // deterministic
//! ```

use crate::{Bit, BitId, Design, GroupId, SignalGroup};
use operon_geom::{cm_to_dbu, BoundingBox, Point};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How communication hubs are laid out on the die.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HubLayout {
    /// Hubs uniformly at random; traffic criss-crosses the die in every
    /// direction (worst case for waveguide crossings).
    Random,
    /// Memory-interface hubs sit in bands along the west and east die
    /// edges; logic hubs occupy the interior. Buses flow logic →
    /// interface, largely in parallel — the structured traffic pattern of
    /// industrial designs that the paper's introduction motivates.
    EdgeInterfaces,
}

/// Parameters of the synthetic benchmark generator.
///
/// Use [`SynthConfig::small`] for fast tests or [`paper_suite`] for the
/// I1–I5 substitutes.
#[derive(Clone, Debug, PartialEq)]
pub struct SynthConfig {
    /// Benchmark name.
    pub name: String,
    /// Side length of the (square) die in centimeters.
    pub die_cm: f64,
    /// Total number of signal bits to generate (Table 1's "#Net").
    pub target_bits: usize,
    /// Inclusive range of bits per signal group (bus width).
    pub bits_per_group: (usize, usize),
    /// Inclusive range of sinks per bit (fanout).
    pub sinks_per_bit: (usize, usize),
    /// Number of communication hubs (logic clusters / memory interfaces).
    pub hub_count: usize,
    /// Pin scatter radius around a hub, in dbu.
    pub hub_radius: i64,
    /// Pitch between adjacent bits of the same bus, in dbu.
    pub bit_pitch: i64,
    /// Probability that a sink is drawn from a *far* hub (at least half a
    /// die away from the source hub); high values favor optical routes.
    pub distant_sink_prob: f64,
    /// Spatial organization of the hubs.
    pub hub_layout: HubLayout,
}

impl SynthConfig {
    /// A small configuration for unit and integration tests: a 0.5 cm die
    /// with a few dozen bits.
    pub fn small() -> Self {
        Self {
            name: "small".to_owned(),
            die_cm: 0.5,
            target_bits: 48,
            bits_per_group: (2, 8),
            sinks_per_bit: (1, 3),
            hub_count: 5,
            hub_radius: 120,
            bit_pitch: 12,
            distant_sink_prob: 0.7,
            hub_layout: HubLayout::Random,
        }
    }

    /// A medium configuration (a few hundred bits) for integration tests
    /// that exercise the full flow without paper-scale runtime.
    pub fn medium() -> Self {
        Self {
            name: "medium".to_owned(),
            die_cm: 2.0,
            target_bits: 400,
            bits_per_group: (2, 16),
            sinks_per_bit: (1, 3),
            hub_count: 8,
            hub_radius: 300,
            bit_pitch: 12,
            distant_sink_prob: 0.8,
            hub_layout: HubLayout::EdgeInterfaces,
        }
    }

    /// A die-scale configuration for the tile-sharded flow: `target_bits`
    /// total bits (benches use 10k–100k+) on a large PIC-class die, as
    /// wide buses between clustered hub regions. Hub count grows with the
    /// design so traffic stays *regionally* clustered — buses flow
    /// between nearby hub clusters and the edge interface bands instead
    /// of criss-crossing the whole die, which is what makes a spatial
    /// tile decomposition effective.
    pub fn die_scale(target_bits: usize) -> Self {
        Self {
            name: format!("die{}k", target_bits.div_ceil(1000)),
            die_cm: 5.0,
            target_bits,
            bits_per_group: (16, 32),
            sinks_per_bit: (1, 2),
            hub_count: (target_bits / 2000).clamp(16, 128),
            hub_radius: 600,
            bit_pitch: 8,
            distant_sink_prob: 0.6,
            hub_layout: HubLayout::EdgeInterfaces,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.die_cm <= 0.0 {
            return Err(format!("die_cm must be positive, got {}", self.die_cm));
        }
        if self.target_bits == 0 {
            return Err("target_bits must be positive".to_owned());
        }
        let (lo, hi) = self.bits_per_group;
        if lo == 0 || lo > hi {
            return Err(format!("bits_per_group range ({lo}, {hi}) invalid"));
        }
        let (slo, shi) = self.sinks_per_bit;
        if slo == 0 || slo > shi {
            return Err(format!("sinks_per_bit range ({slo}, {shi}) invalid"));
        }
        if self.hub_count < 2 {
            return Err("hub_count must be at least 2".to_owned());
        }
        if !(0.0..=1.0).contains(&self.distant_sink_prob) {
            return Err("distant_sink_prob must be in [0, 1]".to_owned());
        }
        Ok(())
    }
}

/// The I1–I5 substitutes, configured to match the published statistics of
/// the paper's Table 1 (see `DESIGN.md`, substitution 1).
///
/// | Bench | #Net (paper) | bus width | fanout |
/// |-------|--------------|-----------|--------|
/// | I1    | 2660         | 4–11      | 2–3    |
/// | I2    | 1782         | 1–3       | 1–2    |
/// | I3    | 5072         | 28–36     | 1      |
/// | I4    | 3224         | 5–11      | 2–3    |
/// | I5    | 1994         | 1–3       | 1–2    |
pub fn paper_suite() -> Vec<SynthConfig> {
    vec![
        SynthConfig {
            name: "I1".to_owned(),
            die_cm: 2.0,
            target_bits: 2660,
            bits_per_group: (4, 11),
            sinks_per_bit: (2, 3),
            hub_count: 24,
            hub_radius: 400,
            bit_pitch: 10,
            distant_sink_prob: 0.75,
            hub_layout: HubLayout::EdgeInterfaces,
        },
        SynthConfig {
            name: "I2".to_owned(),
            die_cm: 2.5,
            target_bits: 1782,
            bits_per_group: (1, 3),
            sinks_per_bit: (1, 2),
            hub_count: 40,
            hub_radius: 350,
            bit_pitch: 10,
            distant_sink_prob: 0.8,
            hub_layout: HubLayout::EdgeInterfaces,
        },
        SynthConfig {
            name: "I3".to_owned(),
            die_cm: 2.0,
            target_bits: 5072,
            bits_per_group: (28, 32),
            sinks_per_bit: (1, 1),
            hub_count: 16,
            hub_radius: 300,
            bit_pitch: 8,
            distant_sink_prob: 0.7,
            hub_layout: HubLayout::EdgeInterfaces,
        },
        SynthConfig {
            name: "I4".to_owned(),
            die_cm: 2.0,
            target_bits: 3224,
            bits_per_group: (5, 11),
            sinks_per_bit: (2, 3),
            hub_count: 24,
            hub_radius: 400,
            bit_pitch: 10,
            distant_sink_prob: 0.75,
            hub_layout: HubLayout::EdgeInterfaces,
        },
        SynthConfig {
            name: "I5".to_owned(),
            die_cm: 3.0,
            target_bits: 1994,
            bits_per_group: (1, 3),
            sinks_per_bit: (1, 2),
            hub_count: 40,
            hub_radius: 350,
            bit_pitch: 10,
            distant_sink_prob: 0.85,
            hub_layout: HubLayout::EdgeInterfaces,
        },
    ]
}

/// Looks up one paper benchmark substitute by name (`"I1"`…`"I5"`,
/// case-insensitive).
pub fn paper_benchmark(name: &str) -> Option<SynthConfig> {
    paper_suite()
        .into_iter()
        .find(|c| c.name.eq_ignore_ascii_case(name))
}

/// Generates a design from `config` with the given `seed`.
///
/// Generation is deterministic in `(config, seed)`.
///
/// # Panics
///
/// Panics if `config` fails [`SynthConfig::validate`].
pub fn generate(config: &SynthConfig, seed: u64) -> Design {
    if let Err(msg) = config.validate() {
        panic!("invalid synthesis config: {msg}");
    }
    let side = cm_to_dbu(config.die_cm) as i64;
    let die = BoundingBox::new(Point::new(0, 0), Point::new(side, side));
    let mut design = Design::new(config.name.clone(), die);
    let mut rng = StdRng::seed_from_u64(seed);

    let hubs = place_hubs(
        &mut rng,
        side,
        config.hub_count,
        config.hub_radius,
        config.hub_layout,
    );

    let mut remaining = config.target_bits;
    let mut group_idx = 0u32;
    while remaining > 0 {
        let (lo, hi) = config.bits_per_group;
        let width = rng.gen_range(lo..=hi).min(remaining);
        let group = generate_group(
            &mut rng,
            GroupId::new(group_idx),
            width,
            config,
            &hubs,
            side,
        );
        design.push_group(group);
        remaining -= width;
        group_idx += 1;
    }
    design
}

/// The hub population of a design: where buses originate (logic) and
/// where they terminate (interfaces).
struct Hubs {
    logic: Vec<Point>,
    interface: Vec<Point>,
}

/// Places hub centers, keeping the scatter radius inside the die.
fn place_hubs(rng: &mut StdRng, side: i64, count: usize, radius: i64, layout: HubLayout) -> Hubs {
    let margin = radius + 1;
    match layout {
        HubLayout::Random => {
            let hubs: Vec<Point> = (0..count)
                .map(|_| {
                    Point::new(
                        rng.gen_range(margin..=side - margin),
                        rng.gen_range(margin..=side - margin),
                    )
                })
                .collect();
            Hubs {
                logic: hubs.clone(),
                interface: hubs,
            }
        }
        HubLayout::EdgeInterfaces => {
            // A third of the hubs (at least two) are interfaces, split
            // between west and east edge bands; the rest are interior
            // logic clusters.
            let n_if = (count / 3).max(2).min(count - 1);
            let band = (2 * radius).min(side / 8).max(1);
            let interface: Vec<Point> = (0..n_if)
                .map(|k| {
                    let x = if k % 2 == 0 {
                        rng.gen_range(margin..=margin + band)
                    } else {
                        rng.gen_range(side - margin - band..=side - margin)
                    };
                    Point::new(x, rng.gen_range(margin..=side - margin))
                })
                .collect();
            let (lo_x, hi_x) = (side / 4, 3 * side / 4);
            let logic: Vec<Point> = (0..count - n_if)
                .map(|_| {
                    Point::new(
                        rng.gen_range(lo_x.max(margin)..=hi_x.min(side - margin)),
                        rng.gen_range(margin..=side - margin),
                    )
                })
                .collect();
            Hubs { logic, interface }
        }
    }
}

/// Generates one bus: bits laid out at a fixed pitch near a source hub,
/// with sinks near one or two sink hubs.
fn generate_group(
    rng: &mut StdRng,
    id: GroupId,
    width: usize,
    config: &SynthConfig,
    hubs: &Hubs,
    side: i64,
) -> SignalGroup {
    let src_hub = hubs.logic[rng.gen_range(0..hubs.logic.len())];
    let src_anchor = jitter(rng, src_hub, config.hub_radius, side);

    // A bit's sinks come from a per-group palette of sink hubs so that the
    // bus as a whole talks to a small number of destinations.
    let sink_pool = &hubs.interface;
    let palette_len = rng.gen_range(1..=2.min(sink_pool.len().saturating_sub(1)).max(1));
    let palette: Vec<Point> = (0..palette_len)
        .map(|_| pick_sink_hub(rng, sink_pool, src_hub, side, config.distant_sink_prob))
        .collect();
    let sink_anchors: Vec<Point> = palette
        .iter()
        .map(|&h| jitter(rng, h, config.hub_radius, side))
        .collect();

    let (slo, shi) = config.sinks_per_bit;
    let bits = (0..width)
        .map(|i| {
            let offset = (i as i64) * config.bit_pitch;
            let source = clamp_to_die(
                Point::new(src_anchor.x + offset % 320, src_anchor.y + offset / 320 * 8),
                side,
            );
            let fanout = rng.gen_range(slo..=shi);
            let sinks = (0..fanout)
                .map(|s| {
                    let anchor = sink_anchors[s % sink_anchors.len()];
                    clamp_to_die(
                        Point::new(anchor.x + offset % 320, anchor.y + offset / 320 * 8),
                        side,
                    )
                })
                .collect();
            Bit::new(BitId::new(i as u32), source, sinks)
        })
        .collect();
    SignalGroup::new(id, format!("{}_bus{}", config.name, id.index()), bits)
}

/// Picks a sink hub, preferring hubs at least half a die away from the
/// source with probability `distant_prob`.
fn pick_sink_hub(
    rng: &mut StdRng,
    hubs: &[Point],
    src: Point,
    side: i64,
    distant_prob: f64,
) -> Point {
    let want_distant = rng.gen_bool(distant_prob);
    let threshold = (side / 2) as f64;
    let candidates: Vec<Point> = hubs
        .iter()
        .copied()
        .filter(|&h| h != src && (h.euclidean(src) >= threshold) == want_distant)
        .collect();
    if candidates.is_empty() {
        // Fall back to any hub other than the source.
        let others: Vec<Point> = hubs.iter().copied().filter(|&h| h != src).collect();
        others[rng.gen_range(0..others.len())]
    } else {
        candidates[rng.gen_range(0..candidates.len())]
    }
}

fn jitter(rng: &mut StdRng, center: Point, radius: i64, side: i64) -> Point {
    let p = Point::new(
        center.x + rng.gen_range(-radius..=radius),
        center.y + rng.gen_range(-radius..=radius),
    );
    clamp_to_die(p, side)
}

fn clamp_to_die(p: Point, side: i64) -> Point {
    Point::new(p.x.clamp(0, side), p.y.clamp(0, side))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = SynthConfig::small();
        assert_eq!(generate(&cfg, 1), generate(&cfg, 1));
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = SynthConfig::small();
        assert_ne!(generate(&cfg, 1), generate(&cfg, 2));
    }

    #[test]
    fn bit_count_matches_target_exactly() {
        for cfg in [SynthConfig::small(), SynthConfig::medium()] {
            let d = generate(&cfg, 3);
            assert_eq!(d.bit_count(), cfg.target_bits);
        }
    }

    #[test]
    fn group_sizes_respect_range() {
        let cfg = SynthConfig::medium();
        let d = generate(&cfg, 9);
        let (lo, hi) = cfg.bits_per_group;
        for g in d.groups() {
            assert!(g.bit_count() <= hi, "group too wide: {}", g.bit_count());
            // The final group may be truncated below `lo` to hit the target.
            let _ = lo;
        }
    }

    #[test]
    fn fanout_respects_range() {
        let cfg = SynthConfig::medium();
        let d = generate(&cfg, 4);
        let (slo, shi) = cfg.sinks_per_bit;
        for g in d.groups() {
            for b in g.bits() {
                assert!((slo..=shi).contains(&b.sinks().len()));
            }
        }
    }

    #[test]
    fn all_pins_inside_die() {
        // push_group asserts this; the test documents the invariant from
        // the outside as well.
        let d = generate(&SynthConfig::medium(), 11);
        for g in d.groups() {
            for b in g.bits() {
                for p in b.pins() {
                    assert!(d.die().contains(p));
                }
            }
        }
    }

    #[test]
    fn paper_suite_matches_published_bit_counts() {
        let expected = [
            ("I1", 2660),
            ("I2", 1782),
            ("I3", 5072),
            ("I4", 3224),
            ("I5", 1994),
        ];
        let suite = paper_suite();
        assert_eq!(suite.len(), expected.len());
        for (cfg, (name, bits)) in suite.iter().zip(expected) {
            assert_eq!(cfg.name, name);
            assert_eq!(cfg.target_bits, bits);
            let d = generate(cfg, 2018);
            assert_eq!(d.bit_count(), bits, "{name}");
        }
    }

    #[test]
    fn die_scale_is_deterministic_and_exact() {
        let cfg = SynthConfig::die_scale(10_000);
        assert!(cfg.validate().is_ok());
        let a = generate(&cfg, 2018);
        let b = generate(&cfg, 2018);
        assert_eq!(a, b);
        assert_eq!(a.bit_count(), 10_000);
        // Group count stays in the thousands even at 100k bits, so the
        // downstream flow sees wide buses, not a hyper-net explosion.
        assert!(a.group_count() * 16 <= 10_000 + 32);
    }

    #[test]
    fn die_scale_hub_count_scales_with_size() {
        assert!(
            SynthConfig::die_scale(10_000).hub_count < SynthConfig::die_scale(100_000).hub_count
        );
        assert!(SynthConfig::die_scale(1_000_000).hub_count <= 128);
        assert!(SynthConfig::die_scale(100).validate().is_ok());
    }

    #[test]
    fn paper_benchmark_lookup_is_case_insensitive() {
        assert!(paper_benchmark("i3").is_some());
        assert!(paper_benchmark("I3").is_some());
        assert!(paper_benchmark("I9").is_none());
    }

    #[test]
    fn validate_rejects_bad_configs() {
        let mut cfg = SynthConfig::small();
        cfg.die_cm = 0.0;
        assert!(cfg.validate().is_err());

        let mut cfg = SynthConfig::small();
        cfg.target_bits = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = SynthConfig::small();
        cfg.bits_per_group = (5, 3);
        assert!(cfg.validate().is_err());

        let mut cfg = SynthConfig::small();
        cfg.sinks_per_bit = (0, 2);
        assert!(cfg.validate().is_err());

        let mut cfg = SynthConfig::small();
        cfg.hub_count = 1;
        assert!(cfg.validate().is_err());

        let mut cfg = SynthConfig::small();
        cfg.distant_sink_prob = 1.5;
        assert!(cfg.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "invalid synthesis config")]
    fn generate_panics_on_invalid_config() {
        let mut cfg = SynthConfig::small();
        cfg.hub_count = 0;
        let _ = generate(&cfg, 0);
    }

    #[test]
    fn edge_interface_layout_puts_sinks_in_edge_bands() {
        let mut cfg = SynthConfig::medium();
        cfg.hub_layout = HubLayout::EdgeInterfaces;
        cfg.sinks_per_bit = (1, 1);
        let design = generate(&cfg, 17);
        let side = operon_geom::cm_to_dbu(cfg.die_cm) as i64;
        // Sinks cluster near the west/east edges (within a band plus the
        // hub scatter radius); sources sit in the interior.
        let band = side / 8 + cfg.hub_radius * 2;
        let mut edge_sinks = 0usize;
        let mut total_sinks = 0usize;
        for g in design.groups() {
            for b in g.bits() {
                for s in b.sinks() {
                    total_sinks += 1;
                    if s.x <= band || s.x >= side - band {
                        edge_sinks += 1;
                    }
                }
            }
        }
        assert!(
            edge_sinks * 10 >= total_sinks * 9,
            "only {edge_sinks}/{total_sinks} sinks near the interface bands"
        );
    }

    #[test]
    fn edge_interface_layout_reduces_crossing_chords() {
        // Structured flows cross each other less than random chords: count
        // pairwise source->sink segment crossings under both layouts.
        let count_crossings = |layout: HubLayout| -> usize {
            let mut cfg = SynthConfig::medium();
            cfg.hub_layout = layout;
            cfg.target_bits = 120;
            cfg.sinks_per_bit = (1, 1);
            let design = generate(&cfg, 23);
            let segs: Vec<operon_geom::Segment> = design
                .groups()
                .iter()
                .flat_map(|g| g.bits().iter())
                .map(|b| operon_geom::Segment::new(b.source(), b.sinks()[0]))
                .collect();
            let mut n = 0;
            for i in 0..segs.len() {
                for j in i + 1..segs.len() {
                    if segs[i].crosses(&segs[j]) {
                        n += 1;
                    }
                }
            }
            n
        };
        let random = count_crossings(HubLayout::Random);
        let structured = count_crossings(HubLayout::EdgeInterfaces);
        assert!(
            structured < random,
            "structured {structured} should cross less than random {random}"
        );
    }

    #[test]
    fn small_hub_counts_still_generate() {
        let mut cfg = SynthConfig::small();
        cfg.hub_count = 2;
        for layout in [HubLayout::Random, HubLayout::EdgeInterfaces] {
            cfg.hub_layout = layout;
            let d = generate(&cfg, 3);
            assert_eq!(d.bit_count(), cfg.target_bits);
        }
    }
}
