//! Signal-group netlist model and benchmark generation for OPERON.
//!
//! The paper routes *signal groups*: bundles of performance-critical signal
//! bits (buses between logic cells and memory interfaces) whose bits travel
//! together. Each [`Bit`] is a net with one source pin and one or more sink
//! pins; a [`SignalGroup`] bundles bits; a [`Design`] holds every group
//! plus the die outline.
//!
//! The original OPERON evaluation used five proprietary industrial
//! benchmarks up-scaled to centimeter dimensions. Those are not available,
//! so [`synth`] provides a deterministic generator whose presets
//! ([`synth::paper_suite`]) match the published statistics of I1–I5 (see
//! `DESIGN.md`, substitution 1).
//!
//! # Examples
//!
//! ```
//! use operon_netlist::synth::{generate, SynthConfig};
//!
//! let design = generate(&SynthConfig::small(), 42);
//! assert!(design.bit_count() > 0);
//! assert!(design.die().width() > 0);
//! ```

#![forbid(unsafe_code)]

mod design;
mod ids;
pub mod io;
mod signal;
pub mod stats;
pub mod synth;

pub use design::Design;
pub use ids::{BitId, BitRef, GroupId};
pub use signal::{Bit, SignalGroup};
