//! The top-level design container.

use crate::{GroupId, SignalGroup};
use operon_geom::{BoundingBox, Point};
use serde::{Deserialize, Serialize};

/// A routing problem instance: a die outline plus signal groups.
///
/// # Examples
///
/// ```
/// use operon_geom::{BoundingBox, Point};
/// use operon_netlist::{Bit, BitId, Design, GroupId, SignalGroup};
///
/// let die = BoundingBox::new(Point::new(0, 0), Point::new(20_000, 20_000));
/// let mut design = Design::new("demo", die);
/// let bit = Bit::new(BitId::new(0), Point::new(100, 100), vec![Point::new(19_000, 400)]);
/// design.push_group(SignalGroup::new(GroupId::new(0), "bus", vec![bit]));
/// assert_eq!(design.bit_count(), 1);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Design {
    name: String,
    die: BoundingBox,
    groups: Vec<SignalGroup>,
}

impl Design {
    /// Creates an empty design over the given die.
    ///
    /// # Panics
    ///
    /// Panics if the die has zero width or height.
    pub fn new(name: impl Into<String>, die: BoundingBox) -> Self {
        assert!(
            die.width() > 0 && die.height() > 0,
            "die must have positive area, got {die}"
        );
        Self {
            name: name.into(),
            die,
            groups: Vec::new(),
        }
    }

    /// The benchmark name.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The die outline.
    #[inline]
    pub fn die(&self) -> BoundingBox {
        self.die
    }

    /// All signal groups, ordered by [`GroupId`].
    #[inline]
    pub fn groups(&self) -> &[SignalGroup] {
        &self.groups
    }

    /// Looks up one group by id.
    pub fn group(&self, id: GroupId) -> Option<&SignalGroup> {
        self.groups.get(id.index())
    }

    /// Appends a group.
    ///
    /// # Panics
    ///
    /// Panics if the group's id is not the next dense index, or if any pin
    /// lies outside the die.
    pub fn push_group(&mut self, group: SignalGroup) {
        assert_eq!(
            group.id().index(),
            self.groups.len(),
            "group ids must be dense and ordered"
        );
        for bit in group.bits() {
            for pin in bit.pins() {
                assert!(
                    self.die.contains(pin),
                    "pin {pin} of {}.{} lies outside die {}",
                    group.id(),
                    bit.id(),
                    self.die
                );
            }
        }
        self.groups.push(group);
    }

    /// Number of signal groups.
    #[inline]
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Total number of signal bits across all groups (the "#Net" column of
    /// the paper's Table 1).
    pub fn bit_count(&self) -> usize {
        self.groups.iter().map(SignalGroup::bit_count).sum()
    }

    /// Total number of pins across all bits.
    pub fn pin_count(&self) -> usize {
        self.groups.iter().map(SignalGroup::pin_count).sum()
    }

    /// The die center.
    pub fn center(&self) -> Point {
        self.die.center()
    }

    /// Returns the design with every coordinate multiplied by
    /// `numerator / denominator` (rounding toward zero) — the up-scaling
    /// the paper applies to its industrial benchmarks ("up-scaling the
    /// dimension into centimeter scale"), and the unit conversion needed
    /// when importing netlists written in different database units.
    ///
    /// # Panics
    ///
    /// Panics if either factor is zero or negative, or if the scaled die
    /// would be degenerate.
    ///
    /// # Examples
    ///
    /// ```
    /// use operon_netlist::synth::{generate, SynthConfig};
    ///
    /// let d = generate(&SynthConfig::small(), 1);
    /// let doubled = d.rescaled(2, 1);
    /// assert_eq!(doubled.die().width(), d.die().width() * 2);
    /// assert_eq!(doubled.bit_count(), d.bit_count());
    /// ```
    pub fn rescaled(&self, numerator: i64, denominator: i64) -> Design {
        assert!(
            numerator > 0 && denominator > 0,
            "scale factors must be positive, got {numerator}/{denominator}"
        );
        let scale =
            |p: Point| Point::new(p.x * numerator / denominator, p.y * numerator / denominator);
        let die = BoundingBox::new(scale(self.die.lo()), scale(self.die.hi()));
        let mut out = Design::new(self.name.clone(), die);
        for group in &self.groups {
            let bits = group
                .bits()
                .iter()
                .map(|bit| {
                    crate::Bit::new(
                        bit.id(),
                        scale(bit.source()),
                        bit.sinks().iter().map(|&s| scale(s)).collect(),
                    )
                })
                .collect();
            out.push_group(SignalGroup::new(group.id(), group.name(), bits));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Bit, BitId};

    fn die() -> BoundingBox {
        BoundingBox::new(Point::new(0, 0), Point::new(1000, 1000))
    }

    fn group(id: u32) -> SignalGroup {
        SignalGroup::new(
            GroupId::new(id),
            format!("bus{id}"),
            vec![Bit::new(
                BitId::new(0),
                Point::new(10, 10),
                vec![Point::new(900, 900)],
            )],
        )
    }

    #[test]
    #[should_panic(expected = "positive area")]
    fn degenerate_die_rejected() {
        let _ = Design::new("bad", BoundingBox::new(Point::origin(), Point::new(0, 5)));
    }

    #[test]
    fn push_and_query_groups() {
        let mut d = Design::new("t", die());
        d.push_group(group(0));
        d.push_group(group(1));
        assert_eq!(d.group_count(), 2);
        assert_eq!(d.bit_count(), 2);
        assert_eq!(d.pin_count(), 4);
        assert!(d.group(GroupId::new(1)).is_some());
        assert!(d.group(GroupId::new(2)).is_none());
    }

    #[test]
    #[should_panic(expected = "dense and ordered")]
    fn out_of_order_group_ids_rejected() {
        let mut d = Design::new("t", die());
        d.push_group(group(1));
    }

    #[test]
    fn rescaling_preserves_structure() {
        let mut d = Design::new("t", die());
        d.push_group(group(0));
        let up = d.rescaled(3, 1);
        assert_eq!(up.die().width(), 3_000);
        assert_eq!(up.bit_count(), d.bit_count());
        assert_eq!(up.groups()[0].bits()[0].source(), Point::new(30, 30));
        // Scaling up then down restores the original exactly (the factors
        // divide every coordinate).
        let back = up.rescaled(1, 3);
        assert_eq!(back, d);
    }

    #[test]
    fn downscaling_rounds_toward_zero() {
        let mut d = Design::new("t", die());
        d.push_group(group(0));
        let down = d.rescaled(1, 7);
        assert_eq!(down.die().hi(), Point::new(142, 142));
        assert_eq!(down.groups()[0].bits()[0].source(), Point::new(1, 1));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_scale_rejected() {
        let mut d = Design::new("t", die());
        d.push_group(group(0));
        let _ = d.rescaled(0, 1);
    }

    #[test]
    #[should_panic(expected = "outside die")]
    fn out_of_die_pin_rejected() {
        let mut d = Design::new("t", die());
        let g = SignalGroup::new(
            GroupId::new(0),
            "bad",
            vec![Bit::new(
                BitId::new(0),
                Point::new(10, 10),
                vec![Point::new(5000, 5000)],
            )],
        );
        d.push_group(g);
    }
}
