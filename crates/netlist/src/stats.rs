//! Descriptive statistics of a design.
//!
//! The OPERON benchmarks are characterized by a handful of numbers — bit
//! count, bus-width distribution, fanout, and span distribution (how far
//! signals travel, which decides the optical/electrical split). This
//! module computes them, both for harness reporting and for validating
//! that generated substitutes land in the published regime.

use crate::Design;
use operon_geom::dbu_to_cm;

/// Summary statistics of a design.
#[derive(Clone, Debug, PartialEq)]
pub struct DesignStats {
    /// Total signal bits (Table 1's "#Net").
    pub bits: usize,
    /// Signal groups (buses).
    pub groups: usize,
    /// Total pins.
    pub pins: usize,
    /// Bus width: (min, mean, max).
    pub bus_width: (usize, f64, usize),
    /// Sinks per bit: (min, mean, max).
    pub fanout: (usize, f64, usize),
    /// Per-bit half-perimeter span in cm: (min, mean, max).
    pub span_cm: (f64, f64, f64),
    /// Fraction of bits whose span exceeds 1 cm (the regime where optics
    /// wins on power at the default calibration).
    pub long_haul_fraction: f64,
}

impl DesignStats {
    /// Computes the statistics of `design`.
    ///
    /// # Panics
    ///
    /// Panics if the design has no groups.
    ///
    /// # Examples
    ///
    /// ```
    /// use operon_netlist::stats::DesignStats;
    /// use operon_netlist::synth::{generate, SynthConfig};
    ///
    /// let d = generate(&SynthConfig::medium(), 1);
    /// let s = DesignStats::of(&d);
    /// assert_eq!(s.bits, 400);
    /// assert!(s.long_haul_fraction > 0.5, "medium is long-haul dominated");
    /// ```
    pub fn of(design: &Design) -> DesignStats {
        assert!(design.group_count() > 0, "design has no groups");
        let mut widths = Vec::new();
        let mut fanouts = Vec::new();
        let mut spans = Vec::new();
        for group in design.groups() {
            widths.push(group.bit_count());
            for bit in group.bits() {
                fanouts.push(bit.sinks().len());
                spans.push(dbu_to_cm(bit.bounding_box().half_perimeter() as f64));
            }
        }
        let long_haul = spans.iter().filter(|&&s| s > 1.0).count();
        DesignStats {
            bits: design.bit_count(),
            groups: design.group_count(),
            pins: design.pin_count(),
            bus_width: min_mean_max_usize(&widths),
            fanout: min_mean_max_usize(&fanouts),
            span_cm: min_mean_max_f64(&spans),
            long_haul_fraction: long_haul as f64 / spans.len().max(1) as f64,
        }
    }
}

impl core::fmt::Display for DesignStats {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(
            f,
            "{} bits in {} groups ({} pins)",
            self.bits, self.groups, self.pins
        )?;
        writeln!(
            f,
            "bus width  min {} / mean {:.1} / max {}",
            self.bus_width.0, self.bus_width.1, self.bus_width.2
        )?;
        writeln!(
            f,
            "fanout     min {} / mean {:.1} / max {}",
            self.fanout.0, self.fanout.1, self.fanout.2
        )?;
        writeln!(
            f,
            "span (cm)  min {:.2} / mean {:.2} / max {:.2}",
            self.span_cm.0, self.span_cm.1, self.span_cm.2
        )?;
        write!(
            f,
            "long-haul (>1 cm) fraction: {:.0}%",
            100.0 * self.long_haul_fraction
        )
    }
}

fn min_mean_max_usize(v: &[usize]) -> (usize, f64, usize) {
    let min = v.iter().copied().min().unwrap_or(0);
    let max = v.iter().copied().max().unwrap_or(0);
    let mean = v.iter().sum::<usize>() as f64 / v.len().max(1) as f64;
    (min, mean, max)
}

fn min_mean_max_f64(v: &[f64]) -> (f64, f64, f64) {
    let min = v.iter().copied().fold(f64::INFINITY, f64::min);
    let max = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mean = v.iter().sum::<f64>() / v.len().max(1) as f64;
    (
        if min.is_finite() { min } else { 0.0 },
        mean,
        if max.is_finite() { max } else { 0.0 },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate, paper_suite, SynthConfig};
    use crate::{Bit, BitId, GroupId, SignalGroup};
    use operon_geom::{BoundingBox, Point};

    #[test]
    fn hand_built_design_stats() {
        let die = BoundingBox::new(Point::new(0, 0), Point::new(30_000, 30_000));
        let mut d = Design::new("t", die);
        d.push_group(SignalGroup::new(
            GroupId::new(0),
            "a",
            vec![
                Bit::new(BitId::new(0), Point::new(0, 0), vec![Point::new(20_000, 0)]),
                Bit::new(
                    BitId::new(1),
                    Point::new(0, 0),
                    vec![Point::new(1_000, 0), Point::new(0, 1_000)],
                ),
            ],
        ));
        let s = DesignStats::of(&d);
        assert_eq!(s.bits, 2);
        assert_eq!(s.groups, 1);
        assert_eq!(s.pins, 5);
        assert_eq!(s.bus_width, (2, 2.0, 2));
        assert_eq!(s.fanout.0, 1);
        assert_eq!(s.fanout.2, 2);
        // Spans: 2 cm and 0.2 cm -> one long-haul of two.
        assert!((s.long_haul_fraction - 0.5).abs() < 1e-12);
        assert!((s.span_cm.2 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn paper_suite_stats_match_presets() {
        for cfg in paper_suite() {
            let d = generate(&cfg, 2018);
            let s = DesignStats::of(&d);
            assert_eq!(s.bits, cfg.target_bits, "{}", cfg.name);
            assert!(s.bus_width.2 <= cfg.bits_per_group.1, "{}", cfg.name);
            assert!(s.fanout.0 >= cfg.sinks_per_bit.0, "{}", cfg.name);
            assert!(s.fanout.2 <= cfg.sinks_per_bit.1, "{}", cfg.name);
        }
    }

    #[test]
    fn display_is_complete() {
        let d = generate(&SynthConfig::small(), 1);
        let text = DesignStats::of(&d).to_string();
        assert!(text.contains("bus width"));
        assert!(text.contains("fanout"));
        assert!(text.contains("span"));
        assert!(text.contains("long-haul"));
    }

    #[test]
    #[should_panic(expected = "no groups")]
    fn empty_design_panics() {
        let die = BoundingBox::new(Point::new(0, 0), Point::new(10, 10));
        let d = Design::new("empty", die);
        let _ = DesignStats::of(&d);
    }
}
