//! A minimal JSON value tree, serializer, and parser.
//!
//! The run report (and the bench harness's `BENCH_exec.json`) *write*
//! JSON; the `operon_serve` daemon additionally *reads* it, one request
//! per line. With registry crates unreachable this module replaces a
//! `serde_json` dependency. Output is RFC 8259-conformant: strings are
//! escaped, non-finite floats serialize as `null`, and integers
//! round-trip exactly. [`parse`] accepts exactly RFC 8259 documents and
//! never panics on malformed input — it returns a [`JsonParseError`]
//! carrying the byte offset of the first problem, which a long-lived
//! server turns into an error response instead of a crash.

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (kept apart from floats so counters round-trip).
    Int(i64),
    /// A float; non-finite values serialize as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Builds an object from `(key, value)` pairs.
    pub fn object<K: Into<String>>(pairs: Vec<(K, Value)>) -> Self {
        Value::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Compact single-line serialization.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty-printed serialization (two-space indent).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    /// Looks up a key in an object (first match; `None` for non-objects).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is a [`Value::Int`].
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The numeric payload as a float (integers widen losslessly up to
    /// 2^53; beyond that the cast rounds like any i64→f64 conversion).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// The boolean payload, if this is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element slice, if this is a [`Value::Array`].
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::Float(x) => {
                if x.is_finite() {
                    // `{:?}` prints the shortest representation that
                    // round-trips, and always includes a decimal point
                    // or exponent — valid JSON either way.
                    out.push_str(&format!("{x:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Array(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                    items[i].write(out, indent, depth + 1);
                });
            }
            Value::Object(pairs) => {
                write_seq(out, indent, depth, '{', '}', pairs.len(), |out, i| {
                    let (k, v) = &pairs[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Int(v as i64)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// A parse failure: the byte offset of the first offending character
/// plus a short description.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    message: String,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonParseError {}

/// Maximum container nesting [`parse`] accepts. Recursive descent uses
/// the call stack, so unbounded depth would let a hostile request line
/// overflow it; 128 is far deeper than any OPERON protocol message.
const MAX_PARSE_DEPTH: usize = 128;

/// Parses one RFC 8259 JSON document.
///
/// Numbers without a fraction or exponent that fit an `i64` become
/// [`Value::Int`]; everything else numeric becomes [`Value::Float`].
/// Trailing non-whitespace input is an error (one document per call —
/// callers splitting a JSONL stream pass one line at a time).
///
/// # Examples
///
/// ```
/// use operon_exec::json::{parse, Value};
///
/// let v = parse(r#"{"op":"route","ids":[1,2]}"#).unwrap();
/// assert_eq!(v.get("op").and_then(Value::as_str), Some("route"));
/// assert!(parse("{oops").is_err());
/// ```
pub fn parse(text: &str) -> Result<Value, JsonParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.fail("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn fail(&self, message: &str) -> JsonParseError {
        JsonParseError {
            offset: self.pos,
            message: message.to_owned(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_literal(&mut self, lit: &str, value: Value) -> Result<Value, JsonParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.fail("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, JsonParseError> {
        if depth > MAX_PARSE_DEPTH {
            return Err(self.fail("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.expect_literal("null", Value::Null),
            Some(b't') => self.expect_literal("true", Value::Bool(true)),
            Some(b'f') => self.expect_literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.fail("unexpected character")),
            None => Err(self.fail("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, JsonParseError> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            if self.eat(b']') {
                return Ok(Value::Array(items));
            }
            if !self.eat(b',') {
                return Err(self.fail("expected ',' or ']' in array"));
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, JsonParseError> {
        self.pos += 1; // '{'
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.fail("expected string key in object"));
            }
            let key = self.string()?;
            self.skip_ws();
            if !self.eat(b':') {
                return Err(self.fail("expected ':' after object key"));
            }
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            if self.eat(b'}') {
                return Ok(Value::Object(pairs));
            }
            if !self.eat(b',') {
                return Err(self.fail("expected ',' or '}' in object"));
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.pos += 1; // opening '"'
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.fail("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(esc) = self.peek() else {
                        return Err(self.fail("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require \uXXXX low half.
                                if !(self.eat(b'\\') && self.eat(b'u')) {
                                    return Err(self.fail("lone high surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.fail("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.fail("invalid unicode escape")),
                            }
                        }
                        _ => return Err(self.fail("invalid escape character")),
                    }
                }
                0x00..=0x1F => return Err(self.fail("raw control character in string")),
                _ => {
                    // Consume one UTF-8 scalar; the input is a &str, so
                    // the continuation bytes are guaranteed well-formed.
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    match std::str::from_utf8(&self.bytes[start..end]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return Err(self.fail("invalid utf-8 in string")),
                    }
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.fail("truncated unicode escape"));
            };
            let digit = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a') + 10,
                b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => return Err(self.fail("invalid hex digit in unicode escape")),
            };
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, JsonParseError> {
        let start = self.pos;
        self.eat(b'-');
        // Integer part: a lone 0, or a nonzero digit run.
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
            }
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.fail("invalid number")),
        }
        let mut integral = true;
        if self.eat(b'.') {
            integral = false;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.fail("digits required after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.fail("digits required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        // The scanned range is ASCII by construction.
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.fail("invalid number"))?;
        if integral {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        match text.parse::<f64>() {
            Ok(x) => Ok(Value::Float(x)),
            Err(_) => Err(self.fail("number out of range")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(Value::Null.compact(), "null");
        assert_eq!(Value::from(true).compact(), "true");
        assert_eq!(Value::from(42u64).compact(), "42");
        assert_eq!(Value::from(-7i64).compact(), "-7");
        assert_eq!(Value::from(1.5).compact(), "1.5");
        assert_eq!(Value::Float(f64::NAN).compact(), "null");
        assert_eq!(Value::Float(f64::INFINITY).compact(), "null");
    }

    #[test]
    fn floats_always_have_a_point_or_exponent() {
        for v in [1.0f64, 0.0, -3.0, 1e30, 1e-30] {
            let s = Value::from(v).compact();
            assert!(
                s.contains('.') || s.contains('e') || s.contains('E'),
                "ambiguous float encoding: {s}"
            );
        }
    }

    #[test]
    fn string_escaping() {
        let v = Value::from("a\"b\\c\nd\te\u{1}");
        assert_eq!(v.compact(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn nested_structures() {
        let v = Value::object(vec![
            (
                "xs",
                Value::Array(vec![Value::from(1u64), Value::from(2u64)]),
            ),
            ("empty", Value::Array(vec![])),
            ("s", Value::from("hi")),
        ]);
        assert_eq!(v.compact(), r#"{"xs":[1,2],"empty":[],"s":"hi"}"#);
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = Value::object(vec![("a", Value::from(1u64))]);
        assert_eq!(v.pretty(), "{\n  \"a\": 1\n}");
    }

    #[test]
    fn parse_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap(), Value::Int(42));
        assert_eq!(parse("-7").unwrap(), Value::Int(-7));
        assert_eq!(parse("1.5").unwrap(), Value::Float(1.5));
        assert_eq!(parse("2e3").unwrap(), Value::Float(2000.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn parse_containers_and_accessors() {
        let v = parse(r#"{"op":"route","session":"a","ids":[1,2,3],"ok":true,"x":1.25}"#).unwrap();
        assert_eq!(v.get("op").and_then(Value::as_str), Some("route"));
        assert_eq!(
            v.get("ids").and_then(Value::as_array).map(<[_]>::len),
            Some(3)
        );
        assert_eq!(
            v.get("ids").unwrap().as_array().unwrap()[1].as_i64(),
            Some(2)
        );
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("x").and_then(Value::as_f64), Some(1.25));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Value::Null.get("op"), None);
    }

    #[test]
    fn parse_string_escapes() {
        let v = parse(r#""a\"b\\c\nd\te\u0041\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nd\teAé😀"));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "01",
            "1.",
            "1e",
            "\"\\q\"",
            "\"unterminated",
            "{\"a\":1} extra",
            "\"\\ud800\"",
            "nan",
            "+1",
        ] {
            assert!(parse(bad).is_err(), "accepted malformed input: {bad:?}");
        }
    }

    #[test]
    fn parse_depth_is_bounded() {
        let deep = "[".repeat(500) + &"]".repeat(500);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(50) + &"]".repeat(50);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn serializer_output_round_trips() {
        let v = Value::object(vec![
            ("s", Value::from("quote\" slash\\ tab\t")),
            ("i", Value::from(-5i64)),
            ("f", Value::from(0.1)),
            ("b", Value::from(false)),
            ("n", Value::Null),
            ("a", Value::Array(vec![Value::from(1u64), Value::from("x")])),
            ("o", Value::object(vec![("k", Value::from(2u64))])),
        ]);
        assert_eq!(parse(&v.compact()).unwrap(), v);
        assert_eq!(parse(&v.pretty()).unwrap(), v);
    }

    #[test]
    fn parsed_floats_round_trip_bitwise() {
        // The serve replay contract depends on float round-tripping:
        // `{:?}` emits the shortest string that parses back to the same
        // bits, and `parse` must preserve them.
        for x in [0.1, 1.0 / 3.0, 6.02e23, -1.5e-300, 123456.789] {
            let s = Value::from(x).compact();
            let back = parse(&s).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "float {s} changed bits");
        }
    }
}
