//! A minimal JSON value tree and serializer.
//!
//! The run report (and the bench harness's `BENCH_exec.json`) need to
//! *write* JSON; nothing needs to parse it. With registry crates
//! unreachable this ~hundred-line writer replaces a `serde_json`
//! dependency. Output is RFC 8259-conformant: strings are escaped,
//! non-finite floats serialize as `null`, and integers round-trip
//! exactly.

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (kept apart from floats so counters round-trip).
    Int(i64),
    /// A float; non-finite values serialize as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Builds an object from `(key, value)` pairs.
    pub fn object<K: Into<String>>(pairs: Vec<(K, Value)>) -> Self {
        Value::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Compact single-line serialization.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty-printed serialization (two-space indent).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::Float(x) => {
                if x.is_finite() {
                    // `{:?}` prints the shortest representation that
                    // round-trips, and always includes a decimal point
                    // or exponent — valid JSON either way.
                    out.push_str(&format!("{x:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Array(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                    items[i].write(out, indent, depth + 1);
                });
            }
            Value::Object(pairs) => {
                write_seq(out, indent, depth, '{', '}', pairs.len(), |out, i| {
                    let (k, v) = &pairs[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Int(v as i64)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(Value::Null.compact(), "null");
        assert_eq!(Value::from(true).compact(), "true");
        assert_eq!(Value::from(42u64).compact(), "42");
        assert_eq!(Value::from(-7i64).compact(), "-7");
        assert_eq!(Value::from(1.5).compact(), "1.5");
        assert_eq!(Value::Float(f64::NAN).compact(), "null");
        assert_eq!(Value::Float(f64::INFINITY).compact(), "null");
    }

    #[test]
    fn floats_always_have_a_point_or_exponent() {
        for v in [1.0f64, 0.0, -3.0, 1e30, 1e-30] {
            let s = Value::from(v).compact();
            assert!(
                s.contains('.') || s.contains('e') || s.contains('E'),
                "ambiguous float encoding: {s}"
            );
        }
    }

    #[test]
    fn string_escaping() {
        let v = Value::from("a\"b\\c\nd\te\u{1}");
        assert_eq!(v.compact(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn nested_structures() {
        let v = Value::object(vec![
            (
                "xs",
                Value::Array(vec![Value::from(1u64), Value::from(2u64)]),
            ),
            ("empty", Value::Array(vec![])),
            ("s", Value::from("hi")),
        ]);
        assert_eq!(v.compact(), r#"{"xs":[1,2],"empty":[],"s":"hi"}"#);
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = Value::object(vec![("a", Value::from(1u64))]);
        assert_eq!(v.pretty(), "{\n  \"a\": 1\n}");
    }
}
