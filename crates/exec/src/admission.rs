//! Admission scheduling for deterministic request batching.
//!
//! A long-lived server draining a request queue wants to hand the
//! executor as much independent work as possible per dispatch — but
//! never at the cost of determinism. [`Admission`] encodes the one
//! policy that keeps replay byte-identical at any thread count: a batch
//! may contain at most one request per conflict key (requests sharing a
//! key mutate shared state and must serialize), and a request marked
//! [`AdmissionKey::Exclusive`] always runs alone, in order.
//!
//! This subsumes the old outer-vs-inner batch policy knob of the CLI:
//! instead of choosing up front whether to parallelize across designs
//! or within one design, the scheduler admits as many *distinct*
//! sessions as the capacity allows and lets each admitted request's
//! inner stages use the same executor. Admission looks only at the
//! queue prefix — never at timing — so the batch boundary sequence is a
//! pure function of the request stream and the configured capacity.

/// How a request interacts with shared state, for batching purposes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmissionKey<'a> {
    /// Must run alone: mutates cross-session state (e.g. `open_design`,
    /// `close`, `shutdown`) or could not be classified (parse errors).
    Exclusive,
    /// Touches only the state named by the key (e.g. one session); any
    /// set of requests with pairwise-distinct keys may run concurrently.
    Keyed(&'a str),
}

/// The admission scheduler: decides how many queued requests form the
/// next batch, and counts what it decided.
///
/// # Examples
///
/// ```
/// use operon_exec::admission::{Admission, AdmissionKey};
///
/// let mut adm = Admission::new(8);
/// let queue = ["a", "b", "a", "c"];
/// // "a" repeats at index 2, so only the distinct prefix is admitted.
/// let n = adm.admit(&queue, |s| AdmissionKey::Keyed(s));
/// assert_eq!(n, 2);
/// ```
#[derive(Debug)]
pub struct Admission {
    capacity: usize,
    batches: u64,
    admitted: u64,
    largest_batch: u64,
    exclusive_batches: u64,
}

impl Admission {
    /// Creates a scheduler admitting at most `capacity` requests per
    /// batch (clamped to at least one).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            batches: 0,
            admitted: 0,
            largest_batch: 0,
            exclusive_batches: 0,
        }
    }

    /// The per-batch capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Decides the next batch: returns the length of the queue prefix to
    /// dispatch together. The prefix is the longest run of requests with
    /// pairwise-distinct [`AdmissionKey::Keyed`] keys, capped at the
    /// capacity; an [`AdmissionKey::Exclusive`] request at the front is
    /// admitted alone, and one later in the queue ends the batch before
    /// it. Returns 0 only for an empty queue.
    pub fn admit<'a, T, F>(&mut self, pending: &'a [T], key: F) -> usize
    where
        F: Fn(&'a T) -> AdmissionKey<'a>,
    {
        if pending.is_empty() {
            return 0;
        }
        let mut seen: Vec<&str> = Vec::new();
        let mut n = 0;
        for item in pending {
            match key(item) {
                AdmissionKey::Exclusive => {
                    if n == 0 {
                        n = 1;
                        self.exclusive_batches += 1;
                    }
                    break;
                }
                AdmissionKey::Keyed(k) => {
                    if n >= self.capacity || seen.contains(&k) {
                        break;
                    }
                    seen.push(k);
                    n += 1;
                }
            }
        }
        self.batches += 1;
        self.admitted += n as u64;
        self.largest_batch = self.largest_batch.max(n as u64);
        n
    }

    /// Batches dispatched so far.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Requests admitted across all batches.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Size of the largest batch dispatched.
    pub fn largest_batch(&self) -> u64 {
        self.largest_batch
    }

    /// Batches that ran a single exclusive request.
    pub fn exclusive_batches(&self) -> u64 {
        self.exclusive_batches
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keyed(s: &str) -> AdmissionKey<'_> {
        if s == "!" {
            AdmissionKey::Exclusive
        } else {
            AdmissionKey::Keyed(s)
        }
    }

    #[test]
    fn empty_queue_admits_nothing() {
        let mut adm = Admission::new(4);
        assert_eq!(adm.admit(&[] as &[&str], |s| keyed(s)), 0);
    }

    #[test]
    fn distinct_keys_batch_up_to_capacity() {
        let mut adm = Admission::new(3);
        let q = ["a", "b", "c", "d"];
        assert_eq!(adm.admit(&q, |s| keyed(s)), 3);
    }

    #[test]
    fn repeated_key_ends_the_batch() {
        let mut adm = Admission::new(8);
        let q = ["a", "b", "a", "c"];
        assert_eq!(adm.admit(&q, |s| keyed(s)), 2);
    }

    #[test]
    fn exclusive_runs_alone_and_in_order() {
        let mut adm = Admission::new(8);
        // Exclusive at the front: admitted alone.
        assert_eq!(adm.admit(&["!", "a"], |s| keyed(s)), 1);
        assert_eq!(adm.exclusive_batches(), 1);
        // Exclusive behind keyed work: the batch stops before it.
        assert_eq!(adm.admit(&["a", "b", "!", "c"], |s| keyed(s)), 2);
        assert_eq!(adm.exclusive_batches(), 1);
    }

    #[test]
    fn capacity_is_clamped_to_one() {
        let mut adm = Admission::new(0);
        assert_eq!(adm.capacity(), 1);
        assert_eq!(adm.admit(&["a", "b"], |s| keyed(s)), 1);
    }

    #[test]
    fn counters_accumulate() {
        let mut adm = Admission::new(4);
        adm.admit(&["a", "b"], |s| keyed(s));
        adm.admit(&["c"], |s| keyed(s));
        adm.admit(&["!"], |s| keyed(s));
        assert_eq!(adm.batches(), 3);
        assert_eq!(adm.admitted(), 4);
        assert_eq!(adm.largest_batch(), 2);
        assert_eq!(adm.exclusive_batches(), 1);
    }

    #[test]
    fn decisions_are_a_pure_function_of_the_queue() {
        // Same queue, same capacity → same batch boundaries, always.
        let q = ["a", "b", "c", "a", "!", "d", "d", "e"];
        let run = || {
            let mut adm = Admission::new(4);
            let mut cuts = Vec::new();
            let mut rest: &[&str] = &q;
            while !rest.is_empty() {
                let n = adm.admit(rest, |s| keyed(s));
                cuts.push(n);
                rest = &rest[n..];
            }
            cuts
        };
        assert_eq!(run(), run());
        assert_eq!(run(), vec![3, 1, 1, 1, 2]);
    }
}
