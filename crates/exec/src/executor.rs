//! The deterministic work-stealing executor.
//!
//! # Scheduling
//!
//! A `par_map` call splits `0..n` into one contiguous range per worker.
//! Each worker claims a *chunk* of indices from the front of its own
//! range (coarse range splitting: up to [`CLAIM_CHUNK_MAX`] indices per
//! CAS, so large maps don't pay one atomic round-trip per item); a
//! worker whose range is exhausted scans the others and steals the
//! *back half* of the largest remaining range (the classic
//! range-splitting variant of work stealing — cache-friendly for the
//! owner, coarse-grained for the thief). Ranges are packed into a
//! single `AtomicU64` per worker (`start` in the high 32 bits, `end` in
//! the low 32), so both claim and steal are one CAS with no locks
//! anywhere on the hot path. A thief that keeps losing races backs off
//! (yield first, then bounded sleeps) instead of spinning — on
//! oversubscribed or few-core hosts a hot thief starves the very
//! workers it waits on.
//!
//! # Determinism
//!
//! Stealing moves *which worker* executes an index between runs, but an
//! index's input and output slot never change. Workers record results as
//! `(index, value)` pairs that are merged and ordered after the scoped
//! join, so the returned `Vec` is independent of the steal schedule.

use crate::metrics::Metrics;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Below this many items a `par_map` runs inline: spawning threads costs
/// more than the loop.
const PARALLEL_THRESHOLD: usize = 16;

/// Most indices one front claim may take. Claims adapt to the remaining
/// range (an eighth, so plenty stays stealable) but never exceed this —
/// a bounded chunk caps how stale the skew can get when per-item cost is
/// wildly uneven.
const CLAIM_CHUNK_MAX: u32 = 32;

/// Consecutive failed claim attempts a worker tolerates before switching
/// from `yield_now` to sleeping.
const BACKOFF_YIELD_LIMIT: u32 = 8;

/// Longest single backoff sleep, in microseconds (reached after repeated
/// contention; short enough that work appearing on a victim is picked up
/// promptly).
const BACKOFF_SLEEP_MAX_US: u64 = 200;

/// A work range packed as `start << 32 | end`.
fn pack(start: u32, end: u32) -> u64 {
    (u64::from(start) << 32) | u64::from(end)
}

fn unpack(v: u64) -> (u32, u32) {
    ((v >> 32) as u32, v as u32)
}

/// The deterministic parallel executor.
///
/// Cloning is cheap and shares the metrics registry, so one executor can
/// be threaded through a whole flow (and its run report accumulates
/// across stages).
#[derive(Clone, Debug)]
pub struct Executor {
    threads: usize,
    metrics: Arc<Metrics>,
}

impl Default for Executor {
    /// An executor sized to the machine (`available_parallelism`).
    fn default() -> Self {
        Self::new(0)
    }
}

impl Executor {
    /// Creates an executor with `threads` workers; `0` means "one per
    /// available hardware thread".
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            threads
        };
        Self {
            threads,
            metrics: Arc::new(Metrics::new(threads)),
        }
    }

    /// A single-threaded executor (every `par_map` runs inline).
    pub fn sequential() -> Self {
        Self::new(1)
    }

    /// The worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The shared metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Opens a named instrumentation scope; see
    /// [`StageScope`](crate::metrics::StageScope).
    pub fn stage(&self, name: impl Into<String>) -> crate::metrics::StageScope<'_> {
        self.metrics.stage(name)
    }

    /// The accumulated run report.
    pub fn report(&self) -> crate::metrics::RunReport {
        self.metrics.report(self.threads)
    }

    /// Maps `f` over `items`, in parallel, preserving order.
    ///
    /// See the crate docs for the determinism contract.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.par_map_indexed(items, |_, item| f(item))
    }

    /// Maps `f(index, item)` over `items`, in parallel, preserving order.
    ///
    /// # Panics
    ///
    /// Panics (after joining all workers) if `f` panics for any item, or
    /// if `items.len()` exceeds `u32::MAX` (the packed-range scheduler's
    /// limit — far above any realistic net count).
    pub fn par_map_indexed<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.par_map_indexed_min(items, PARALLEL_THRESHOLD, f)
    }

    /// Like [`par_map`](Self::par_map), but parallelizes even tiny inputs.
    ///
    /// `par_map` runs inline below `PARALLEL_THRESHOLD` items because
    /// thread spawning usually costs more than a short loop; callers with
    /// a *few heavy* items — per-orientation WDM planning, a batch of
    /// designs — use this variant instead.
    pub fn par_map_coarse<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.par_map_indexed_min(items, 2, |_, item| f(item))
    }

    /// Runs one *synchronized wave*: an order-preserving parallel map over
    /// a small batch of heavy, mutually independent subproblems, counted
    /// in the metrics (see [`RunReport::total_waves`](crate::RunReport)).
    ///
    /// Wave-synchronous solvers — the ILP branch-and-bound expanding its
    /// `wave_size` best frontier nodes per round, the WDM reduction loop
    /// evaluating a batch of tentative deletions — alternate a concurrent
    /// expansion with a sequential deterministic merge. This helper is the
    /// expansion half: like [`par_map_coarse`](Self::par_map_coarse) it
    /// parallelizes from two items up, and it additionally bumps the wave
    /// counter so run reports expose how many solver rounds a stage took.
    ///
    /// Determinism: identical to `items.iter().map(f).collect()` for any
    /// thread count — the wave boundary is what lets the caller merge
    /// results in a fixed order.
    pub fn wave_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        if !items.is_empty() {
            self.metrics.waves.fetch_add(1, Ordering::Relaxed);
        }
        self.par_map_indexed_min(items, 2, |_, item| f(item))
    }

    // operon-lint: allow(R003, reason = "the gather-lock expects only fire after a worker panicked; propagating that panic to the caller is the executor's contract")
    fn par_map_indexed_min<T, R, F>(&self, items: &[T], min_parallel: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let n = items.len();
        assert!(
            n <= u32::MAX as usize,
            "par_map over more than u32::MAX items"
        );
        if self.threads == 1 || n < min_parallel {
            return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
        }
        self.metrics.par_calls.fetch_add(1, Ordering::Relaxed);

        let workers = self.threads.min(n);
        // One packed [start, end) range per worker; initial split is as
        // even as possible, remainder spread over the first ranges.
        let deques: Vec<AtomicU64> = (0..workers)
            .map(|w| {
                let base = n / workers;
                let extra = n % workers;
                let start = w * base + w.min(extra);
                let len = base + usize::from(w < extra);
                AtomicU64::new(pack(start as u32, (start + len) as u32))
            })
            .collect();

        let gathered: Mutex<Vec<(u32, R)>> = Mutex::new(Vec::with_capacity(n));
        let metrics = &self.metrics;
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for w in 0..workers {
                let deques = &deques;
                let gathered = &gathered;
                let f = &f;
                handles.push(scope.spawn(move || {
                    let mut local: Vec<(u32, R)> = Vec::new();
                    let mut tasks = 0u64;
                    let mut steals = 0u64;
                    // operon-lint: allow(D002, reason = "worker busy-time feeds the metrics this rule protects")
                    let busy = Instant::now();
                    let mut misses = 0u32;
                    loop {
                        match claim(deques, w) {
                            Claim::Range(s, e) => {
                                for i in s..e {
                                    local.push((i, f(i as usize, &items[i as usize])));
                                }
                                tasks += u64::from(e - s);
                                misses = 0;
                            }
                            Claim::Stolen => {
                                steals += 1;
                                misses = 0;
                            }
                            // Don't busy-wait on contention: on few-core
                            // machines a spinning thief starves the very
                            // worker it is waiting on. Yield first; under
                            // sustained contention escalate to bounded
                            // sleeps so dozens of thieves don't thrash
                            // the scheduler.
                            Claim::Retry => {
                                misses += 1;
                                if misses <= BACKOFF_YIELD_LIMIT {
                                    std::thread::yield_now();
                                } else {
                                    let over = u64::from(misses - BACKOFF_YIELD_LIMIT);
                                    std::thread::sleep(std::time::Duration::from_micros(
                                        (over * 10).min(BACKOFF_SLEEP_MAX_US),
                                    ));
                                }
                            }
                            Claim::Done => break,
                        }
                    }
                    metrics.record_worker(tasks, steals, busy.elapsed());
                    gathered.lock().expect("gather lock").append(&mut local);
                }));
            }
            for h in handles {
                // Propagate worker panics after every thread joined.
                if let Err(payload) = h.join() {
                    std::panic::resume_unwind(payload);
                }
            }
        });

        let mut pairs = gathered.into_inner().expect("gather lock");
        debug_assert_eq!(pairs.len(), n, "every index claimed exactly once");
        pairs.sort_unstable_by_key(|&(i, _)| i);
        pairs.into_iter().map(|(_, r)| r).collect()
    }
}

/// One scheduling decision for a worker.
enum Claim {
    /// Execute this contiguous `[start, end)` chunk of indices.
    Range(u32, u32),
    /// A steal succeeded; the worker's own deque was refilled.
    Stolen,
    /// Contention (victim drained or a CAS lost); back off and rescan.
    Retry,
    /// No work anywhere; exit.
    Done,
}

/// Claims a chunk off the front of worker `w`'s own range, or steals the
/// back half of the largest other range.
fn claim(deques: &[AtomicU64], w: usize) -> Claim {
    // Fast path: claim a chunk from our own range's front. Taking an
    // eighth (capped) amortizes the CAS over many items while leaving
    // most of the range visible to thieves.
    loop {
        let cur = deques[w].load(Ordering::Acquire);
        let (start, end) = unpack(cur);
        if start >= end {
            break;
        }
        let take = ((end - start) / 8).clamp(1, CLAIM_CHUNK_MAX);
        if deques[w]
            .compare_exchange_weak(
                cur,
                pack(start + take, end),
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
        {
            return Claim::Range(start, start + take);
        }
    }
    // Steal: take the back half of the largest remaining range.
    let victim = deques
        .iter()
        .enumerate()
        .filter(|&(v, _)| v != w)
        .map(|(v, d)| {
            let (s, e) = unpack(d.load(Ordering::Acquire));
            (e.saturating_sub(s), v)
        })
        .max()
        .filter(|&(remaining, _)| remaining > 0);
    let Some((_, v)) = victim else {
        return Claim::Done;
    };
    let cur = deques[v].load(Ordering::Acquire);
    let (start, end) = unpack(cur);
    if start >= end {
        // The victim drained between the scan and the CAS; rescan.
        return Claim::Retry;
    }
    // The thief takes the *ceil* half: a one-item range is stolen whole,
    // so a stalled (or panicked) owner can never strand its last index
    // behind an empty-steal livelock.
    let mid = start + (end - start) / 2;
    if deques[v]
        .compare_exchange(cur, pack(start, mid), Ordering::AcqRel, Ordering::Acquire)
        .is_ok()
    {
        deques[w].store(pack(mid, end), Ordering::Release);
        return Claim::Stolen;
    }
    Claim::Retry
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        for (s, e) in [(0, 0), (0, 1), (7, 123), (u32::MAX - 1, u32::MAX)] {
            assert_eq!(unpack(pack(s, e)), (s, e));
        }
    }

    #[test]
    fn par_map_preserves_order() {
        let exec = Executor::new(4);
        let items: Vec<usize> = (0..1000).collect();
        let out = exec.par_map(&items, |&x| x * 3);
        assert_eq!(out, (0..1000).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_indexed_sees_true_indices() {
        let exec = Executor::new(8);
        let items = vec![10u64; 500];
        let out = exec.par_map_indexed(&items, |i, &x| i as u64 + x);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u64 + 10);
        }
    }

    #[test]
    fn identical_across_thread_counts() {
        // Float-heavy per-item work: bit-identical across 1/2/8 threads.
        let items: Vec<f64> = (0..777).map(|i| i as f64 * 0.37).collect();
        let f = |x: &f64| (x.sin() * 1e9).mul_add(0.001, x.sqrt());
        let seq = Executor::sequential().par_map(&items, f);
        for threads in [2, 3, 8] {
            let par = Executor::new(threads).par_map(&items, f);
            assert_eq!(seq.len(), par.len());
            for (a, b) in seq.iter().zip(&par) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let exec = Executor::new(4);
        assert_eq!(exec.par_map(&[] as &[u32], |&x| x), Vec::<u32>::new());
        assert_eq!(exec.par_map(&[5u32], |&x| x + 1), vec![6]);
    }

    #[test]
    fn skewed_workload_still_ordered() {
        // Heavily skewed cost forces steals; order must survive.
        let items: Vec<usize> = (0..200).collect();
        let exec = Executor::new(4);
        let out = exec.par_map(&items, |&i| {
            let spin = if i < 4 { 200_000 } else { 10 };
            let mut acc = i as u64;
            for k in 0..spin {
                acc = acc.wrapping_mul(31).wrapping_add(k);
            }
            (i, acc)
        });
        for (i, (idx, _)) in out.iter().enumerate() {
            assert_eq!(i, *idx);
        }
    }

    #[test]
    fn counters_account_for_every_task() {
        let exec = Executor::new(4);
        let items: Vec<u32> = (0..300).collect();
        let before = exec.metrics().tasks();
        let _ = exec.par_map(&items, |&x| x);
        assert_eq!(exec.metrics().tasks() - before, 300);
    }

    #[test]
    fn zero_threads_means_auto() {
        assert!(Executor::new(0).threads() >= 1);
    }

    #[test]
    fn worker_panic_propagates() {
        let exec = Executor::new(4);
        let items: Vec<usize> = (0..100).collect();
        let result = std::panic::catch_unwind(|| {
            exec.par_map(&items, |&i| {
                assert!(i != 57, "injected failure");
                i
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn coarse_map_parallelizes_two_items() {
        let exec = Executor::new(2);
        let before = exec.metrics().par_calls();
        let out = exec.par_map_coarse(&[10u64, 20], |&x| x + 1);
        assert_eq!(out, vec![11, 21]);
        assert_eq!(exec.metrics().par_calls(), before + 1, "not inlined");
    }

    #[test]
    fn nested_par_map_works() {
        // The batch driver maps over designs while each flow maps over
        // nets; scoped spawning makes reentrancy safe.
        let exec = Executor::new(2);
        let outer: Vec<usize> = (0..20).collect();
        let out = exec.par_map(&outer, |&o| {
            let inner: Vec<usize> = (0..50).collect();
            exec.par_map(&inner, |&i| i * o).iter().sum::<usize>()
        });
        for (o, v) in out.iter().enumerate() {
            assert_eq!(*v, o * (49 * 50) / 2);
        }
    }
}
