//! Structured instrumentation: counters, stage timers, and the run
//! report.
//!
//! The flow opens a [`StageScope`] around each pipeline stage; dropping
//! the scope records the stage's wall time together with the deltas of
//! the executor's atomic counters (tasks executed, steals, busy worker
//! time) over the stage. [`RunReport`] snapshots everything for human
//! display or JSON serialization.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The workspace's sanctioned wall-clock source.
///
/// Solver crates never call `Instant::now()` directly (lint rule D002):
/// all wall-clock reads go through this type so instrumentation stays
/// centralized and greppable. It is a thin wrapper — the point is the
/// choke point, not the mechanism.
///
/// # Examples
///
/// ```
/// use operon_exec::Stopwatch;
///
/// let sw = Stopwatch::start();
/// let elapsed = sw.elapsed();
/// assert!(elapsed.as_nanos() < u128::MAX);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts a stopwatch at the current instant.
    pub fn start() -> Self {
        Self {
            start: Instant::now(),
        }
    }

    /// Time elapsed since [`Stopwatch::start`].
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::start()
    }
}

/// Peak resident-set size (`VmHWM`) of the current process, in kibibytes.
///
/// Reads `/proc/self/status`; returns 0 where the file or the field is
/// unavailable (non-Linux hosts), so callers can treat the value as
/// best-effort. Lives beside [`Stopwatch`] because it is the same kind of
/// choke point: solver crates never read `/proc` (or the clock) directly —
/// all process-level instrumentation goes through this module.
///
/// `VmHWM` is a per-process high-water mark: it only ever grows, so a
/// sample taken at a stage boundary is the peak over everything the
/// process has done *so far*, not the stage alone. Benches that need a
/// per-variant peak run each variant in its own child process.
pub fn peak_rss_kib() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|status| {
            status
                .lines()
                .find(|line| line.starts_with("VmHWM:"))
                .and_then(|line| line.split_whitespace().nth(1))
                .and_then(|kib| kib.parse().ok())
        })
        .unwrap_or(0)
}

/// Most recent [`peak_rss_kib`] sample taken at a stage close, shared
/// process-wide (`VmHWM` is a per-process value, so one cache serves
/// every executor in the process).
static LAST_STAGE_PEAK_KIB: AtomicU64 = AtomicU64::new(0);

/// Minimum stage wall time that justifies a fresh `/proc` read when the
/// stage closes. A procfs read costs tens of microseconds; warm-session
/// serving closes thousands of sub-millisecond ECO stages per second,
/// and sampling each one would dominate warm latency (serve_bench's 3x
/// warm-speed gate). Stages shorter than this reuse the cached sample.
const RSS_SAMPLE_MIN_WALL: Duration = Duration::from_millis(1);

/// Per-stage peak-RSS sample: fresh for stages long enough that the
/// procfs read is noise (or while no sample exists yet), cached
/// otherwise. Reusing a stale sample stays sound because `VmHWM` is
/// monotone — the cache is always a valid peak-so-far lower bound.
fn stage_peak_kib(wall: Duration) -> u64 {
    let cached = LAST_STAGE_PEAK_KIB.load(Ordering::Relaxed);
    if wall < RSS_SAMPLE_MIN_WALL && cached != 0 {
        return cached;
    }
    let kib = peak_rss_kib();
    LAST_STAGE_PEAK_KIB.store(kib, Ordering::Relaxed);
    kib
}

/// Shared atomic counters plus the accumulated stage records.
#[derive(Debug)]
pub struct Metrics {
    /// Parallel map invocations.
    pub(crate) par_calls: AtomicU64,
    /// Items executed across all `par_map`s.
    tasks: AtomicU64,
    /// Successful steal operations.
    steals: AtomicU64,
    /// Synchronized solver waves (see `Executor::wave_map`).
    pub(crate) waves: AtomicU64,
    /// Nanoseconds workers spent inside `par_map` loops (busy + brief
    /// idle spin; an upper bound on useful CPU time).
    busy_nanos: AtomicU64,
    /// Completed stage records, in open order.
    stages: Mutex<Vec<StageRecord>>,
}

impl Metrics {
    pub(crate) fn new(_threads: usize) -> Self {
        Self {
            par_calls: AtomicU64::new(0),
            tasks: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            waves: AtomicU64::new(0),
            busy_nanos: AtomicU64::new(0),
            stages: Mutex::new(Vec::new()),
        }
    }

    /// Flushes one worker's local counters (called once per worker per
    /// `par_map`, so the atomics stay off the per-item hot path).
    pub(crate) fn record_worker(&self, tasks: u64, steals: u64, busy: Duration) {
        self.tasks.fetch_add(tasks, Ordering::Relaxed);
        self.steals.fetch_add(steals, Ordering::Relaxed);
        self.busy_nanos
            .fetch_add(busy.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Total items executed by `par_map` calls so far.
    pub fn tasks(&self) -> u64 {
        self.tasks.load(Ordering::Relaxed)
    }

    /// Total successful steals so far.
    pub fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }

    /// Total `par_map` invocations so far.
    pub fn par_calls(&self) -> u64 {
        self.par_calls.load(Ordering::Relaxed)
    }

    /// Total synchronized waves (`wave_map` rounds) so far.
    pub fn waves(&self) -> u64 {
        self.waves.load(Ordering::Relaxed)
    }

    /// Opens a named stage scope; the record is written when the guard
    /// drops.
    pub fn stage(&self, name: impl Into<String>) -> StageScope<'_> {
        StageScope {
            metrics: self,
            name: name.into(),
            start: Instant::now(),
            tasks0: self.tasks.load(Ordering::Relaxed),
            steals0: self.steals.load(Ordering::Relaxed),
            busy0: self.busy_nanos.load(Ordering::Relaxed),
            waves0: self.waves.load(Ordering::Relaxed),
            counters: Vec::new(),
            labels: Vec::new(),
        }
    }

    /// Snapshots the accumulated stages into a report.
    pub fn report(&self, threads: usize) -> RunReport {
        RunReport {
            threads,
            stages: self.stages.lock().expect("stage lock").clone(),
            total_tasks: self.tasks(),
            total_steals: self.steals(),
            total_par_calls: self.par_calls(),
            total_waves: self.waves(),
            peak_rss_kib: peak_rss_kib(),
        }
    }
}

/// RAII timer for one pipeline stage.
///
/// # Examples
///
/// ```
/// use operon_exec::Executor;
///
/// let exec = Executor::new(2);
/// {
///     let _scope = exec.stage("codesign");
///     let _ = exec.par_map(&[1, 2, 3], |x| x * 2);
/// }
/// let report = exec.report();
/// assert_eq!(report.stages.len(), 1);
/// assert_eq!(report.stages[0].name, "codesign");
/// ```
#[must_use = "the stage is recorded when this guard drops"]
pub struct StageScope<'a> {
    metrics: &'a Metrics,
    name: String,
    start: Instant,
    tasks0: u64,
    steals0: u64,
    busy0: u64,
    waves0: u64,
    counters: Vec<(String, u64)>,
    labels: Vec<(String, String)>,
}

impl StageScope<'_> {
    /// Attaches a named counter to the stage record (e.g. the ILP stage's
    /// `nodes_explored`). Counters land in [`StageRecord::counters`] and in
    /// the JSON run report, keyed in insertion order.
    pub fn record(&mut self, key: impl Into<String>, value: u64) {
        self.counters.push((key.into(), value));
    }

    /// Attaches a named string annotation to the stage record (e.g. the
    /// `config_fingerprint` hex identity of the lattice point a run was
    /// routed under — full 64-bit hashes don't fit the signed counter
    /// JSON encoding). Labels land in [`StageRecord::labels`] and in the
    /// JSON run report, keyed in insertion order.
    pub fn label(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.labels.push((key.into(), value.into()));
    }
}

impl Drop for StageScope<'_> {
    fn drop(&mut self) {
        let wall = self.start.elapsed();
        let record = StageRecord {
            name: std::mem::take(&mut self.name),
            wall,
            busy: Duration::from_nanos(
                self.metrics
                    .busy_nanos
                    .load(Ordering::Relaxed)
                    .saturating_sub(self.busy0),
            ),
            tasks: self.metrics.tasks().saturating_sub(self.tasks0),
            steals: self.metrics.steals().saturating_sub(self.steals0),
            waves: self.metrics.waves().saturating_sub(self.waves0),
            peak_rss_kib: stage_peak_kib(wall),
            counters: std::mem::take(&mut self.counters),
            labels: std::mem::take(&mut self.labels),
        };
        self.metrics.stages.lock().expect("stage lock").push(record);
    }
}

/// One completed stage's measurements.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StageRecord {
    /// Stage name (e.g. `"codesign"`).
    pub name: String,
    /// Wall-clock duration of the scope.
    pub wall: Duration,
    /// Worker time spent inside `par_map` loops during the scope — the
    /// parallel fraction's CPU cost. Zero for purely sequential stages.
    pub busy: Duration,
    /// Items executed by `par_map` calls inside the scope.
    pub tasks: u64,
    /// Steals inside the scope.
    pub steals: u64,
    /// Synchronized `wave_map` rounds inside the scope.
    pub waves: u64,
    /// Process peak RSS (`VmHWM`, kibibytes) sampled when the stage
    /// closed. Monotone across stages of one process — see
    /// [`peak_rss_kib`]. Sub-millisecond stages reuse the most recent
    /// sample instead of re-reading `/proc` (see `stage_peak_kib`), so
    /// the value can lag on very short stages. Zero where `/proc` is
    /// unavailable.
    pub peak_rss_kib: u64,
    /// Caller-recorded named counters (see [`StageScope::record`]), e.g.
    /// the selection stage's branch-and-bound statistics.
    pub counters: Vec<(String, u64)>,
    /// Caller-recorded string annotations (see [`StageScope::label`]),
    /// e.g. the configuration fingerprint a run was routed under.
    pub labels: Vec<(String, String)>,
}

/// A full run's instrumentation snapshot.
#[derive(Clone, Debug, PartialEq)]
pub struct RunReport {
    /// Executor worker count.
    pub threads: usize,
    /// Per-stage records, in open order (a batch run appends one set per
    /// routed design).
    pub stages: Vec<StageRecord>,
    /// Items executed across the whole run.
    pub total_tasks: u64,
    /// Steals across the whole run.
    pub total_steals: u64,
    /// `par_map` invocations across the whole run.
    pub total_par_calls: u64,
    /// Synchronized `wave_map` rounds across the whole run.
    pub total_waves: u64,
    /// Process peak RSS (`VmHWM`, kibibytes) when the report was taken;
    /// zero where `/proc` is unavailable.
    pub peak_rss_kib: u64,
}

impl RunReport {
    /// Serializes the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        use crate::json::Value;
        let stages: Vec<Value> = self
            .stages
            .iter()
            .map(|s| {
                let mut fields = vec![
                    ("name", Value::from(s.name.as_str())),
                    ("wall_ms", Value::from(s.wall.as_secs_f64() * 1e3)),
                    ("busy_ms", Value::from(s.busy.as_secs_f64() * 1e3)),
                    ("tasks", Value::from(s.tasks)),
                    ("steals", Value::from(s.steals)),
                    ("waves", Value::from(s.waves)),
                    ("peak_rss_kib", Value::from(s.peak_rss_kib)),
                ];
                if !s.counters.is_empty() {
                    let counters = s
                        .counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::from(*v)))
                        .collect();
                    fields.push(("counters", Value::Object(counters)));
                }
                if !s.labels.is_empty() {
                    let labels = s
                        .labels
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::from(v.as_str())))
                        .collect();
                    fields.push(("labels", Value::Object(labels)));
                }
                Value::object(fields)
            })
            .collect();
        Value::object(vec![
            ("threads", Value::from(self.threads as u64)),
            ("total_tasks", Value::from(self.total_tasks)),
            ("total_steals", Value::from(self.total_steals)),
            ("total_par_calls", Value::from(self.total_par_calls)),
            ("total_waves", Value::from(self.total_waves)),
            ("peak_rss_kib", Value::from(self.peak_rss_kib)),
            ("stages", Value::Array(stages)),
        ])
        .pretty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Executor;

    #[test]
    fn stage_scope_records_deltas() {
        let exec = Executor::new(2);
        {
            let _s = exec.stage("alpha");
            let _ = exec.par_map(&(0..100).collect::<Vec<_>>(), |&x: &i32| x);
        }
        {
            let _s = exec.stage("beta");
            // No parallel work inside.
        }
        let report = exec.report();
        assert_eq!(report.stages.len(), 2);
        assert_eq!(report.stages[0].name, "alpha");
        assert_eq!(report.stages[0].tasks, 100);
        assert_eq!(report.stages[1].tasks, 0);
        assert_eq!(report.total_tasks, 100);
    }

    #[test]
    fn stage_labels_land_in_record_and_json() {
        let exec = Executor::new(2);
        {
            let mut s = exec.stage("labelled");
            s.record("items", 7);
            s.label("config_fingerprint", "00deadbeef15dead");
        }
        let report = exec.report();
        assert_eq!(
            report.stages[0].labels,
            vec![(
                "config_fingerprint".to_owned(),
                "00deadbeef15dead".to_owned()
            )]
        );
        let json = report.to_json();
        assert!(json.contains("\"labels\""));
        assert!(json.contains("\"config_fingerprint\": \"00deadbeef15dead\""));
        // A label-free stage must not emit an empty labels object.
        let bare = Executor::new(1);
        {
            let _s = bare.stage("bare");
        }
        assert!(!bare.report().to_json().contains("labels"));
    }

    #[test]
    fn report_json_is_well_formed() {
        let exec = Executor::new(3);
        {
            let _s = exec.stage("only");
            let _ = exec.par_map(&(0..64).collect::<Vec<_>>(), |&x: &i32| x * 2);
        }
        let json = exec.report().to_json();
        assert!(json.contains("\"threads\": 3"));
        assert!(json.contains("\"name\": \"only\""));
        assert!(json.contains("\"tasks\": 64"));
        // Balanced braces/brackets as a cheap structural check.
        let opens = json.matches('{').count() + json.matches('[').count();
        let closes = json.matches('}').count() + json.matches(']').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn peak_rss_is_sampled_on_linux() {
        // On Linux /proc/self/status always carries VmHWM and a running
        // process has touched at least a few pages; elsewhere the sampler
        // degrades to 0 rather than erroring.
        let kib = peak_rss_kib();
        if cfg!(target_os = "linux") {
            assert!(kib > 0, "VmHWM should be readable and positive");
        }
        let exec = Executor::new(2);
        {
            let _s = exec.stage("rss");
            let _ = exec.par_map(&(0..100).collect::<Vec<_>>(), |&x: &i32| x);
        }
        let report = exec.report();
        assert_eq!(report.stages[0].peak_rss_kib > 0, kib > 0);
        assert!(report.peak_rss_kib >= report.stages[0].peak_rss_kib);
        assert!(report.to_json().contains("peak_rss_kib"));
    }

    #[test]
    fn sequential_stage_has_zero_busy() {
        let exec = Executor::sequential();
        {
            let _s = exec.stage("seq");
            let _ = exec.par_map(&(0..1000).collect::<Vec<_>>(), |&x: &i32| x + 1);
        }
        let report = exec.report();
        // threads=1 runs inline: no worker loop, no busy time, but the
        // inline path still produces correct results (tested elsewhere);
        // tasks are only counted by worker loops.
        assert_eq!(report.stages[0].busy, Duration::ZERO);
        assert_eq!(report.stages[0].steals, 0);
    }
}
