//! `operon-exec` — deterministic parallel execution for the OPERON flow.
//!
//! The OPERON pipeline is a chain of stages that are internally
//! embarrassingly parallel: per-hyper-net co-design DP, pairwise crossing
//! analysis, the per-net pricing subproblems of each Lagrangian-relaxation
//! iteration, and per-orientation WDM planning. This crate provides the
//! machinery those stages share:
//!
//! * [`Executor`] — a work-stealing scheduler built on
//!   [`std::thread::scope`] (zero external dependencies) whose
//!   [`Executor::par_map`] / [`Executor::par_map_indexed`] primitives
//!   guarantee **output order and bit-identical results regardless of
//!   thread count**: item `i`'s result always lands at index `i`, and a
//!   pure per-item function sees exactly the same inputs whether one
//!   thread or sixteen run the loop.
//! * [`metrics`] — lightweight instrumentation: atomic task/steal
//!   counters, [`metrics::StageScope`] timers recording per-stage wall
//!   and busy-CPU time, and a [`metrics::RunReport`] serialized to JSON
//!   by the hand-rolled [`json`] module (no serde).
//!
//! # Determinism contract
//!
//! `par_map` promises: for a function `f` with no interior mutability or
//! I/O, `exec.par_map(items, f)` returns a `Vec` equal — bit for bit for
//! float payloads — to `items.iter().map(f).collect()`, for every thread
//! count. The scheduler only decides *which worker* computes an index,
//! never the inputs an index sees nor where its output goes.
//!
//! # Examples
//!
//! ```
//! use operon_exec::Executor;
//!
//! let exec = Executor::new(4);
//! let squares = exec.par_map(&[1u64, 2, 3, 4], |x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//!
//! let seq = Executor::sequential().par_map(&[1u64, 2, 3, 4], |x| x * x);
//! assert_eq!(squares, seq);
//! ```

pub mod admission;
pub mod executor;
pub mod json;
pub mod metrics;

pub use admission::{Admission, AdmissionKey};
pub use executor::Executor;
pub use metrics::{peak_rss_kib, RunReport, StageRecord, StageScope, Stopwatch};
