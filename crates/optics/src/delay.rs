//! Interconnect delay models.
//!
//! The paper's opening motivation: "interconnect delay becomes a
//! bottleneck towards timing closure in comparison to cell delay". This
//! module provides the delay side of the optical-electrical trade-off:
//!
//! * **Electrical** wires are repeatered global interconnect: delay grows
//!   *linearly* with length at a technology-dependent rate (optimally
//!   repeated RC lines; the unrepeated quadratic Elmore regime is also
//!   exposed for short spans).
//! * **Optical** paths pay fixed EO and OE conversion latencies plus
//!   time-of-flight at the waveguide group velocity — far steeper fixed
//!   cost, far shallower slope.
//!
//! The crossover where optics wins on *delay* sits at a few millimeters,
//! mirroring the power crossover of the paper's Eq. (1)/(6) trade-off.
//!
//! # Examples
//!
//! ```
//! use operon_optics::delay::DelayParams;
//!
//! let d = DelayParams::paper_defaults();
//! // At 2 cm, the optical path (conversions + flight) beats the
//! // repeatered wire.
//! assert!(d.optical_path_ps(2.0, 1, 1) < d.electrical_ps(2.0));
//! // At 0.05 cm the wire wins.
//! assert!(d.electrical_ps(0.05) < d.optical_path_ps(0.05, 1, 1));
//! ```

use serde::{Deserialize, Serialize};

/// Speed of light in vacuum, cm/ps.
const C_CM_PER_PS: f64 = 0.029_979_245_8;

/// Delay-model parameters.
///
/// Defaults follow the same 45 nm-era monolithic-photonics literature as
/// the power model: ~60 ps/mm repeatered global-wire delay, group index
/// ~4.2 for silicon waveguides (≈140 ps/cm of flight), and conversion
/// latencies of tens of picoseconds.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DelayParams {
    /// Repeatered electrical wire delay, ps per cm.
    pub electrical_ps_per_cm: f64,
    /// Unrepeated wire RC constant, ps per cm² (Elmore: `k · L²`).
    pub unrepeated_ps_per_cm2: f64,
    /// Span below which the unrepeated quadratic model applies, cm.
    pub repeater_threshold_cm: f64,
    /// Waveguide group index (flight time = `n_g / c` per cm).
    pub group_index: f64,
    /// EO conversion (driver + modulator) latency, ps.
    pub t_mod_ps: f64,
    /// OE conversion (detector + amplifier) latency, ps.
    pub t_det_ps: f64,
}

impl DelayParams {
    /// The default technology point used throughout this reproduction.
    pub fn paper_defaults() -> Self {
        Self {
            electrical_ps_per_cm: 600.0,
            unrepeated_ps_per_cm2: 3_000.0,
            repeater_threshold_cm: 0.1,
            group_index: 4.2,
            t_mod_ps: 25.0,
            t_det_ps: 30.0,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant (any
    /// non-positive physical parameter).
    pub fn validate(&self) -> Result<(), String> {
        if self.electrical_ps_per_cm <= 0.0 || self.unrepeated_ps_per_cm2 <= 0.0 {
            return Err("wire delay coefficients must be positive".to_owned());
        }
        if self.repeater_threshold_cm < 0.0 {
            return Err("repeater threshold must be non-negative".to_owned());
        }
        if self.group_index < 1.0 {
            return Err(format!(
                "group index must be at least 1, got {}",
                self.group_index
            ));
        }
        if self.t_mod_ps < 0.0 || self.t_det_ps < 0.0 {
            return Err("conversion latencies must be non-negative".to_owned());
        }
        Ok(())
    }

    /// Delay of an electrical wire of `length_cm`, ps.
    ///
    /// Quadratic (unrepeated) below the repeater threshold, linear
    /// (optimally repeated) above it, continuous at the threshold by
    /// construction of the linear segment's offset.
    ///
    /// # Panics
    ///
    /// Panics if `length_cm` is negative.
    pub fn electrical_ps(&self, length_cm: f64) -> f64 {
        assert!(length_cm >= 0.0, "length must be non-negative");
        let t = self.repeater_threshold_cm;
        if length_cm <= t {
            self.unrepeated_ps_per_cm2 * length_cm * length_cm
        } else {
            self.unrepeated_ps_per_cm2 * t * t + self.electrical_ps_per_cm * (length_cm - t)
        }
    }

    /// Time-of-flight through `length_cm` of waveguide, ps.
    ///
    /// # Panics
    ///
    /// Panics if `length_cm` is negative.
    pub fn flight_ps(&self, length_cm: f64) -> f64 {
        assert!(length_cm >= 0.0, "length must be non-negative");
        length_cm * self.group_index / C_CM_PER_PS
    }

    /// End-to-end delay of an optical path: `n_mod` EO conversions,
    /// `n_det` OE conversions, and `length_cm` of flight, ps.
    ///
    /// # Panics
    ///
    /// Panics if `length_cm` is negative.
    pub fn optical_path_ps(&self, length_cm: f64, n_mod: usize, n_det: usize) -> f64 {
        self.flight_ps(length_cm) + self.t_mod_ps * n_mod as f64 + self.t_det_ps * n_det as f64
    }

    /// The wire length beyond which a single-hop optical link (one EO +
    /// one OE conversion) is faster than the repeatered wire, cm.
    ///
    /// Solves `electrical(L) = optical(L, 1, 1)` on the linear segment;
    /// returns the repeater threshold when the crossover falls below it.
    pub fn delay_crossover_cm(&self) -> f64 {
        let flight_per_cm = self.group_index / C_CM_PER_PS;
        let slope = self.electrical_ps_per_cm - flight_per_cm;
        if slope <= 0.0 {
            return f64::INFINITY; // wire is always faster per cm
        }
        let t = self.repeater_threshold_cm;
        let fixed = self.t_mod_ps + self.t_det_ps;
        let offset = self.unrepeated_ps_per_cm2 * t * t - self.electrical_ps_per_cm * t;
        ((fixed - offset) / slope).max(t)
    }
}

impl Default for DelayParams {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn defaults_validate() {
        assert!(DelayParams::paper_defaults().validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_params() {
        let mut d = DelayParams::paper_defaults();
        d.electrical_ps_per_cm = 0.0;
        assert!(d.validate().is_err());

        let mut d = DelayParams::paper_defaults();
        d.group_index = 0.5;
        assert!(d.validate().is_err());

        let mut d = DelayParams::paper_defaults();
        d.t_det_ps = -1.0;
        assert!(d.validate().is_err());
    }

    #[test]
    fn electrical_delay_is_continuous_at_threshold() {
        let d = DelayParams::paper_defaults();
        let t = d.repeater_threshold_cm;
        let below = d.electrical_ps(t - 1e-9);
        let above = d.electrical_ps(t + 1e-9);
        assert!((below - above).abs() < 1e-3, "{below} vs {above}");
    }

    #[test]
    fn short_wires_are_quadratic() {
        let d = DelayParams::paper_defaults();
        let a = d.electrical_ps(0.02);
        let b = d.electrical_ps(0.04);
        assert!(
            (b / a - 4.0).abs() < 1e-9,
            "doubling length quadruples delay"
        );
    }

    #[test]
    fn long_wires_are_linear() {
        let d = DelayParams::paper_defaults();
        let a = d.electrical_ps(2.0);
        let b = d.electrical_ps(3.0);
        assert!((b - a - d.electrical_ps_per_cm).abs() < 1e-9);
    }

    #[test]
    fn flight_time_matches_group_velocity() {
        let d = DelayParams::paper_defaults();
        // 1 cm at n_g = 4.2: 4.2 / 0.03 cm/ps ≈ 140 ps.
        assert!((d.flight_ps(1.0) - 140.1).abs() < 0.2);
    }

    #[test]
    fn crossover_is_a_few_millimeters() {
        let d = DelayParams::paper_defaults();
        let x = d.delay_crossover_cm();
        assert!((0.05..2.0).contains(&x), "crossover {x} cm");
        // Just beyond the crossover, optics wins; just before, wire wins.
        assert!(d.optical_path_ps(x * 1.5, 1, 1) < d.electrical_ps(x * 1.5));
        if x * 0.5 > d.repeater_threshold_cm {
            assert!(d.electrical_ps(x * 0.5) < d.optical_path_ps(x * 0.5, 1, 1));
        }
    }

    #[test]
    fn wire_faster_than_light_never_crosses() {
        let mut d = DelayParams::paper_defaults();
        d.electrical_ps_per_cm = 50.0; // below flight-time slope (~140 ps/cm)
        assert_eq!(d.delay_crossover_cm(), f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_length_rejected() {
        let _ = DelayParams::paper_defaults().electrical_ps(-1.0);
    }

    proptest! {
        #[test]
        fn electrical_delay_is_monotone(a in 0.0f64..5.0, b in 0.0f64..5.0) {
            let d = DelayParams::paper_defaults();
            if a <= b {
                prop_assert!(d.electrical_ps(a) <= d.electrical_ps(b) + 1e-12);
            }
        }

        #[test]
        fn optical_delay_additive_in_conversions(
            len in 0.0f64..5.0, m in 0usize..4, k in 0usize..4,
        ) {
            let d = DelayParams::paper_defaults();
            let base = d.optical_path_ps(len, m, k);
            let plus = d.optical_path_ps(len, m + 1, k);
            prop_assert!((plus - base - d.t_mod_ps).abs() < 1e-9);
        }
    }
}
