//! Thermal variation model for ring-based EO/OE devices.
//!
//! Silicon microrings are exquisitely temperature-sensitive; real links
//! spend extra power keeping each ring locked to its wavelength (the
//! "bit-statistics-based resonant microring thermal tuning" of the
//! Sun'15 link the paper draws its device numbers from, and the
//! variation-aware optical NoC work it cites). This module provides:
//!
//! * a die [`ThermalProfile`] — ambient plus a linear gradient plus an
//!   optional Gaussian hotspot,
//! * per-device **tuning power** proportional to the local deviation from
//!   the calibration temperature,
//! * a small per-degree **loss derating** for off-resonance operation.
//!
//! The core flow consumes this through `operon::report::thermal_report`,
//! which prices a finished selection under a profile.
//!
//! # Examples
//!
//! ```
//! use operon_optics::thermal::ThermalProfile;
//!
//! let profile = ThermalProfile::uniform(55.0);
//! assert_eq!(profile.temperature_c(0.0, 0.0), 55.0);
//! // A uniform die at calibration temperature needs no tuning power.
//! let calibrated = ThermalProfile { calibration_c: 55.0, ..profile };
//! assert_eq!(calibrated.tuning_power_mw(0.0, 0.0), 0.0);
//! ```

use serde::{Deserialize, Serialize};

/// A Gaussian hotspot on the die.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Hotspot {
    /// Center, cm (die coordinates).
    pub center_cm: (f64, f64),
    /// Peak temperature rise over ambient, °C.
    pub peak_c: f64,
    /// Gaussian radius, cm.
    pub sigma_cm: f64,
}

/// A die temperature field plus the ring tuning/derating coefficients.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ThermalProfile {
    /// Ambient (die-corner) temperature, °C.
    pub ambient_c: f64,
    /// Linear gradient across the die, °C per cm in x and y.
    pub gradient_c_per_cm: (f64, f64),
    /// Optional hotspot (a compute cluster, a power FET, ...).
    pub hotspot: Option<Hotspot>,
    /// The temperature rings were calibrated to, °C.
    pub calibration_c: f64,
    /// Tuning power per device per °C of deviation, mW/°C.
    pub tuning_mw_per_c: f64,
    /// Extra optical loss per °C of deviation, dB/°C (residual
    /// off-resonance penalty after tuning).
    pub loss_db_per_c: f64,
}

impl ThermalProfile {
    /// A uniform die at `t` °C, calibrated at the same temperature, with
    /// the default coefficients.
    pub fn uniform(t: f64) -> Self {
        Self {
            ambient_c: t,
            gradient_c_per_cm: (0.0, 0.0),
            hotspot: None,
            calibration_c: t,
            tuning_mw_per_c: 0.02,
            loss_db_per_c: 0.005,
        }
    }

    /// A representative stressed profile: 50 °C ambient, a 10 °C/cm
    /// lateral gradient, and a 25 °C hotspot — the kind of variation the
    /// thermal-aware optical NoC literature studies.
    pub fn stressed(die_cm: f64) -> Self {
        Self {
            ambient_c: 50.0,
            gradient_c_per_cm: (10.0, 4.0),
            hotspot: Some(Hotspot {
                center_cm: (die_cm * 0.5, die_cm * 0.5),
                peak_c: 25.0,
                sigma_cm: die_cm * 0.2,
            }),
            calibration_c: 60.0,
            tuning_mw_per_c: 0.02,
            loss_db_per_c: 0.005,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant (negative
    /// coefficients or a degenerate hotspot).
    pub fn validate(&self) -> Result<(), String> {
        if self.tuning_mw_per_c < 0.0 || self.loss_db_per_c < 0.0 {
            return Err("tuning and derating coefficients must be non-negative".to_owned());
        }
        if let Some(h) = &self.hotspot {
            if h.sigma_cm <= 0.0 {
                return Err(format!(
                    "hotspot sigma must be positive, got {}",
                    h.sigma_cm
                ));
            }
        }
        Ok(())
    }

    /// Temperature at die location `(x_cm, y_cm)`, °C.
    pub fn temperature_c(&self, x_cm: f64, y_cm: f64) -> f64 {
        let mut t =
            self.ambient_c + self.gradient_c_per_cm.0 * x_cm + self.gradient_c_per_cm.1 * y_cm;
        if let Some(h) = &self.hotspot {
            let dx = x_cm - h.center_cm.0;
            let dy = y_cm - h.center_cm.1;
            let d2 = dx * dx + dy * dy;
            t += h.peak_c * (-d2 / (2.0 * h.sigma_cm * h.sigma_cm)).exp();
        }
        t
    }

    /// Absolute deviation from the calibration temperature at a location,
    /// °C.
    pub fn deviation_c(&self, x_cm: f64, y_cm: f64) -> f64 {
        (self.temperature_c(x_cm, y_cm) - self.calibration_c).abs()
    }

    /// Tuning power of one ring device at a location, mW.
    pub fn tuning_power_mw(&self, x_cm: f64, y_cm: f64) -> f64 {
        self.tuning_mw_per_c * self.deviation_c(x_cm, y_cm)
    }

    /// Residual off-resonance loss of one device at a location, dB.
    pub fn extra_loss_db(&self, x_cm: f64, y_cm: f64) -> f64 {
        self.loss_db_per_c * self.deviation_c(x_cm, y_cm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn uniform_profile_has_no_deviation() {
        let p = ThermalProfile::uniform(55.0);
        assert_eq!(p.deviation_c(0.3, 1.7), 0.0);
        assert_eq!(p.tuning_power_mw(1.0, 1.0), 0.0);
        assert_eq!(p.extra_loss_db(1.0, 1.0), 0.0);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn gradient_grows_linearly() {
        let mut p = ThermalProfile::uniform(50.0);
        p.gradient_c_per_cm = (10.0, 0.0);
        assert!((p.temperature_c(2.0, 0.0) - 70.0).abs() < 1e-12);
        assert!(
            (p.temperature_c(2.0, 5.0) - 70.0).abs() < 1e-12,
            "y has no effect"
        );
    }

    #[test]
    fn hotspot_peaks_at_center_and_decays() {
        let mut p = ThermalProfile::uniform(50.0);
        p.hotspot = Some(Hotspot {
            center_cm: (1.0, 1.0),
            peak_c: 20.0,
            sigma_cm: 0.3,
        });
        let at_center = p.temperature_c(1.0, 1.0);
        assert!((at_center - 70.0).abs() < 1e-9);
        let off = p.temperature_c(1.0, 1.6); // 2 sigma away
        assert!(off < at_center && off > 50.0);
        let far = p.temperature_c(10.0, 10.0);
        assert!((far - 50.0).abs() < 1e-6);
    }

    #[test]
    fn stressed_profile_validates_and_varies() {
        let p = ThermalProfile::stressed(2.0);
        assert!(p.validate().is_ok());
        let cool = p.temperature_c(0.0, 0.0);
        let hot = p.temperature_c(1.0, 1.0);
        assert!(hot > cool);
        assert!(p.tuning_power_mw(1.0, 1.0) > 0.0);
    }

    #[test]
    fn validation_catches_bad_coefficients() {
        let mut p = ThermalProfile::uniform(50.0);
        p.tuning_mw_per_c = -0.1;
        assert!(p.validate().is_err());

        let mut p = ThermalProfile::uniform(50.0);
        p.hotspot = Some(Hotspot {
            center_cm: (0.0, 0.0),
            peak_c: 5.0,
            sigma_cm: 0.0,
        });
        assert!(p.validate().is_err());
    }

    proptest! {
        #[test]
        fn tuning_power_is_nonnegative(
            x in -5.0f64..5.0, y in -5.0f64..5.0,
            gx in -20.0f64..20.0, gy in -20.0f64..20.0,
        ) {
            let mut p = ThermalProfile::uniform(50.0);
            p.gradient_c_per_cm = (gx, gy);
            prop_assert!(p.tuning_power_mw(x, y) >= 0.0);
            prop_assert!(p.extra_loss_db(x, y) >= 0.0);
        }

        #[test]
        fn hotspot_is_monotone_in_distance(d1 in 0.0f64..3.0, d2 in 0.0f64..3.0) {
            let mut p = ThermalProfile::uniform(50.0);
            p.hotspot = Some(Hotspot {
                center_cm: (0.0, 0.0),
                peak_c: 15.0,
                sigma_cm: 0.5,
            });
            let (near, far) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
            prop_assert!(
                p.temperature_c(near, 0.0) >= p.temperature_c(far, 0.0) - 1e-12
            );
        }
    }
}
