//! Optical loss accounting — Eq. (2) of the paper.

use crate::OpticalLib;
use core::fmt;

/// Splitting loss in dB for a chain of splits with the given arm counts:
/// `10 · Σ log₁₀(n_s)`.
///
/// A splitter with `n_s` arms divides the input power `n_s` ways, an
/// inherent `10·log₁₀(n_s)` dB penalty on every arm. Splits with one arm
/// (pass-through) contribute nothing.
///
/// The paper highlights this term as "one of the major sources of loss for
/// on-chip optical routing" that prior work neglected.
///
/// # Examples
///
/// ```
/// use operon_optics::splitting_loss_db;
///
/// // Two cascaded 50-50 Y-branches: 3.01 dB each.
/// let loss = splitting_loss_db(&[2, 2]);
/// assert!((loss - 20.0 * 2f64.log10()).abs() < 1e-12);
/// assert_eq!(splitting_loss_db(&[]), 0.0);
/// ```
///
/// # Panics
///
/// Panics if any arm count is zero.
pub fn splitting_loss_db(arm_counts: &[usize]) -> f64 {
    arm_counts
        .iter()
        .map(|&ns| {
            assert!(ns > 0, "a splitter must have at least one arm");
            10.0 * (ns as f64).log10()
        })
        .sum()
}

/// A source-to-sink loss budget, broken down by mechanism.
///
/// Constraint (3c) of the formulation bounds the *total* of these terms by
/// the detection budget `l_m`; keeping the breakdown makes diagnostics and
/// the Lagrangian subgradient computation straightforward.
///
/// # Examples
///
/// ```
/// use operon_optics::{LossBreakdown, OpticalLib};
///
/// let lib = OpticalLib::paper_defaults();
/// let loss = LossBreakdown::new(&lib, 1.0, 2, &[2, 2]);
/// assert!(loss.total_db() > loss.propagation_db());
/// assert!(loss.fits(&lib));
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LossBreakdown {
    propagation_db: f64,
    crossing_db: f64,
    splitting_db: f64,
}

impl LossBreakdown {
    /// Computes the loss of a path with `length_cm` of waveguide,
    /// `crossings` waveguide crossings, and the given splitter arm counts
    /// along the way.
    ///
    /// # Panics
    ///
    /// Panics if `length_cm` is negative or any arm count is zero.
    pub fn new(lib: &OpticalLib, length_cm: f64, crossings: usize, arm_counts: &[usize]) -> Self {
        assert!(
            length_cm >= 0.0,
            "waveguide length must be non-negative, got {length_cm}"
        );
        Self {
            propagation_db: lib.alpha_db_per_cm * length_cm,
            crossing_db: lib.beta_db_per_crossing * crossings as f64,
            splitting_db: splitting_loss_db(arm_counts),
        }
    }

    /// A zero-loss budget (the loss of an empty path).
    pub const fn zero() -> Self {
        Self {
            propagation_db: 0.0,
            crossing_db: 0.0,
            splitting_db: 0.0,
        }
    }

    /// Builds a breakdown directly from per-mechanism dB values.
    ///
    /// # Panics
    ///
    /// Panics if any component is negative.
    pub fn from_parts(propagation_db: f64, crossing_db: f64, splitting_db: f64) -> Self {
        assert!(
            propagation_db >= 0.0 && crossing_db >= 0.0 && splitting_db >= 0.0,
            "loss components must be non-negative"
        );
        Self {
            propagation_db,
            crossing_db,
            splitting_db,
        }
    }

    /// Propagation loss `α·WL`, dB.
    #[inline]
    pub fn propagation_db(&self) -> f64 {
        self.propagation_db
    }

    /// Crossing loss `β·n_x`, dB.
    #[inline]
    pub fn crossing_db(&self) -> f64 {
        self.crossing_db
    }

    /// Splitting loss `10·Σ log₁₀(n_s)`, dB.
    #[inline]
    pub fn splitting_db(&self) -> f64 {
        self.splitting_db
    }

    /// Total loss, dB.
    #[inline]
    pub fn total_db(&self) -> f64 {
        self.propagation_db + self.crossing_db + self.splitting_db
    }

    /// Whether the path can still be detected: total loss within the
    /// library's `l_m` budget.
    #[inline]
    pub fn fits(&self, lib: &OpticalLib) -> bool {
        self.total_db() <= lib.max_loss_db
    }

    /// Component-wise sum of two breakdowns (concatenating path pieces).
    pub fn plus(&self, other: &Self) -> Self {
        Self {
            propagation_db: self.propagation_db + other.propagation_db,
            crossing_db: self.crossing_db + other.crossing_db,
            splitting_db: self.splitting_db + other.splitting_db,
        }
    }

    /// The fraction of input optical power that survives this loss:
    /// `10^(-total/10)`.
    pub fn surviving_power_fraction(&self) -> f64 {
        10f64.powf(-self.total_db() / 10.0)
    }
}

impl fmt::Display for LossBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.3} dB (prop {:.3} + cross {:.3} + split {:.3})",
            self.total_db(),
            self.propagation_db,
            self.crossing_db,
            self.splitting_db
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn splitting_loss_of_empty_chain_is_zero() {
        assert_eq!(splitting_loss_db(&[]), 0.0);
        assert_eq!(splitting_loss_db(&[1, 1, 1]), 0.0);
    }

    #[test]
    fn splitting_loss_of_two_way_split_is_3db() {
        assert!((splitting_loss_db(&[2]) - 3.0103).abs() < 1e-3);
    }

    #[test]
    fn splitting_loss_of_four_way_equals_two_cascaded_two_way() {
        assert!((splitting_loss_db(&[4]) - splitting_loss_db(&[2, 2])).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one arm")]
    fn zero_arm_splitter_rejected() {
        let _ = splitting_loss_db(&[0]);
    }

    #[test]
    fn breakdown_matches_eq2() {
        let lib = OpticalLib::paper_defaults();
        let l = LossBreakdown::new(&lib, 2.0, 3, &[2]);
        assert!((l.propagation_db() - 3.0).abs() < 1e-12);
        assert!((l.crossing_db() - 1.56).abs() < 1e-12);
        assert!((l.splitting_db() - 10.0 * 2f64.log10()).abs() < 1e-12);
        assert!((l.total_db() - (3.0 + 1.56 + 10.0 * 2f64.log10())).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_length_rejected() {
        let lib = OpticalLib::paper_defaults();
        let _ = LossBreakdown::new(&lib, -1.0, 0, &[]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_part_rejected() {
        let _ = LossBreakdown::from_parts(1.0, -0.5, 0.0);
    }

    #[test]
    fn zero_budget_fits() {
        let lib = OpticalLib::paper_defaults();
        assert!(LossBreakdown::zero().fits(&lib));
        assert_eq!(LossBreakdown::zero().total_db(), 0.0);
        assert_eq!(LossBreakdown::zero().surviving_power_fraction(), 1.0);
    }

    #[test]
    fn fits_is_boundary_inclusive() {
        let lib = OpticalLib::paper_defaults();
        let exact = LossBreakdown::from_parts(lib.max_loss_db, 0.0, 0.0);
        assert!(exact.fits(&lib));
        let over = LossBreakdown::from_parts(lib.max_loss_db + 1e-9, 0.0, 0.0);
        assert!(!over.fits(&lib));
    }

    #[test]
    fn three_db_halves_power() {
        let l = LossBreakdown::from_parts(10.0 * 2f64.log10(), 0.0, 0.0);
        assert!((l.surviving_power_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_all_components() {
        let l = LossBreakdown::from_parts(1.0, 2.0, 3.0);
        let s = l.to_string();
        assert!(s.contains("prop") && s.contains("cross") && s.contains("split"));
    }

    proptest! {
        #[test]
        fn plus_is_commutative_and_additive(
            a in (0.0f64..10.0, 0.0f64..10.0, 0.0f64..10.0),
            b in (0.0f64..10.0, 0.0f64..10.0, 0.0f64..10.0),
        ) {
            let x = LossBreakdown::from_parts(a.0, a.1, a.2);
            let y = LossBreakdown::from_parts(b.0, b.1, b.2);
            let s = x.plus(&y);
            prop_assert_eq!(s, y.plus(&x));
            prop_assert!((s.total_db() - (x.total_db() + y.total_db())).abs() < 1e-9);
        }

        #[test]
        fn splitting_loss_is_monotone_in_arms(ns in 1usize..64) {
            prop_assert!(splitting_loss_db(&[ns + 1]) > splitting_loss_db(&[ns]) - 1e-12);
        }

        #[test]
        fn surviving_fraction_in_unit_interval(
            p in 0.0f64..30.0, c in 0.0f64..30.0, s in 0.0f64..30.0,
        ) {
            let f = LossBreakdown::from_parts(p, c, s).surviving_power_fraction();
            prop_assert!(f > 0.0 && f <= 1.0);
        }
    }
}
