//! Optical device, loss, and power models for OPERON.
//!
//! Three models from the paper's §2.2 and §5:
//!
//! * **Optical power**, Eq. (1): `p_o = p_mod · n_mod + p_det · n_det` —
//!   EO/OE conversion overheads dominate optical power; propagation itself
//!   is essentially free.
//! * **Optical loss**, Eq. (2): `loss = α·WL + β·n_x + 10·Σ log₁₀(n_s)` —
//!   propagation, crossing, and splitting loss in dB. The light reaching
//!   every sink must stay above the detector threshold, expressed as a
//!   maximum source-to-sink loss `l_m` (constraint (3c)).
//! * **Electrical dynamic power**, Eq. (6): `p_e = γ · f · V² · Cap` with
//!   wire capacitance proportional to wirelength.
//!
//! With the paper's parameters (`p_mod = 0.511 pJ/bit`,
//! `p_det = 0.374 pJ/bit`, 1 GHz system clock) both models conveniently
//! report power in **milliwatts**; see [`ElectricalParams`].
//!
//! # Examples
//!
//! ```
//! use operon_optics::{LossBreakdown, OpticalLib};
//!
//! let lib = OpticalLib::paper_defaults();
//! // A 2 cm waveguide with one crossing and one 2-way split:
//! let loss = LossBreakdown::new(&lib, 2.0, 1, &[2]);
//! assert!((loss.total_db() - (3.0 + 0.52 + 10.0 * 2f64.log10())).abs() < 1e-9);
//! assert!(loss.total_db() < lib.max_loss_db);
//! ```

#![forbid(unsafe_code)]

pub mod delay;
mod lib_params;
pub mod linkbudget;
mod loss;
mod power;
pub mod splitter;
pub mod thermal;

pub use delay::DelayParams;
pub use lib_params::{ElectricalParams, OpticalLib};
pub use loss::{splitting_loss_db, LossBreakdown};
pub use power::{conversion_energy_pj, electrical_power_mw, optical_power_mw};
