//! Device libraries: the tunable physical parameters.

use serde::{Deserialize, Serialize};

/// The optical device library ("Optical Lib" box of the OPERON flow
/// diagram, Fig. 2).
///
/// Defaults follow the paper's §5: α and β from the PROTON settings
/// \[Boos'13\], modulator/detector energies from the 45 nm monolithic
/// photonics link \[Sun'15\], WDM capacity 32 from GLOW \[Ding'12\].
///
/// # Examples
///
/// ```
/// use operon_optics::OpticalLib;
///
/// let lib = OpticalLib::paper_defaults();
/// assert_eq!(lib.alpha_db_per_cm, 1.5);
/// assert_eq!(lib.wdm_capacity, 32);
/// lib.validate().expect("paper defaults are consistent");
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct OpticalLib {
    /// Propagation loss coefficient α, dB per centimeter.
    pub alpha_db_per_cm: f64,
    /// Crossing loss coefficient β, dB per waveguide crossing.
    pub beta_db_per_crossing: f64,
    /// Modulator energy `p_mod`, pJ per bit (EO conversion).
    pub p_mod_pj_per_bit: f64,
    /// Detector energy `p_det`, pJ per bit (OE conversion).
    pub p_det_pj_per_bit: f64,
    /// Maximum tolerable source-to-sink loss `l_m`, dB (detection budget).
    pub max_loss_db: f64,
    /// Expected WDM channel-sharing factor applied to crossing loss.
    ///
    /// Logical candidate routes are ultimately carried on shared WDM
    /// waveguides: `k` parallel nets bundled on one waveguide present a
    /// single physical crossing to a transversal waveguide, not `k`.
    /// Crossing loss between two candidates is therefore charged as
    /// `β · n_x / crossing_sharing`. `1.0` (the conservative default)
    /// charges every logical crossing at full price; flows typically set
    /// it to `capacity / average-bits-per-net` for the instance.
    pub crossing_sharing: f64,
    /// Channels per WDM waveguide.
    pub wdm_capacity: usize,
    /// Minimum pitch `dis_l` between adjacent WDMs (crosstalk bound), dbu.
    pub wdm_min_pitch: i64,
    /// Maximum displacement `dis_u` when assigning a connection to a WDM,
    /// dbu.
    pub wdm_max_displacement: i64,
}

impl OpticalLib {
    /// The parameter set used in the paper's experiments.
    pub fn paper_defaults() -> Self {
        Self {
            alpha_db_per_cm: 1.5,
            beta_db_per_crossing: 0.52,
            p_mod_pj_per_bit: 0.511,
            p_det_pj_per_bit: 0.374,
            max_loss_db: 25.0,
            crossing_sharing: 1.0,
            wdm_capacity: 32,
            wdm_min_pitch: 20,
            wdm_max_displacement: 600,
        }
    }

    /// Crossing loss charged for `n` logical crossings, dB:
    /// `β · n / crossing_sharing`.
    ///
    /// # Examples
    ///
    /// ```
    /// use operon_optics::OpticalLib;
    ///
    /// let lib = OpticalLib::paper_defaults();
    /// assert!((lib.crossing_loss_db(3) - 1.56).abs() < 1e-12);
    /// ```
    pub fn crossing_loss_db(&self, n: usize) -> f64 {
        self.beta_db_per_crossing * n as f64 / self.crossing_sharing
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant: negative
    /// loss coefficients or powers, zero capacity, inverted pitch bounds,
    /// or a sharing factor below one.
    pub fn validate(&self) -> Result<(), String> {
        if self.alpha_db_per_cm < 0.0 {
            return Err(format!(
                "alpha must be non-negative, got {}",
                self.alpha_db_per_cm
            ));
        }
        if self.beta_db_per_crossing < 0.0 {
            return Err(format!(
                "beta must be non-negative, got {}",
                self.beta_db_per_crossing
            ));
        }
        if self.p_mod_pj_per_bit < 0.0 || self.p_det_pj_per_bit < 0.0 {
            return Err("conversion energies must be non-negative".to_owned());
        }
        if self.max_loss_db <= 0.0 {
            return Err(format!(
                "max_loss_db must be positive, got {}",
                self.max_loss_db
            ));
        }
        if self.wdm_capacity == 0 {
            return Err("wdm_capacity must be positive".to_owned());
        }
        if self.crossing_sharing < 1.0 {
            return Err(format!(
                "crossing_sharing must be at least 1, got {}",
                self.crossing_sharing
            ));
        }
        if self.wdm_min_pitch < 0 || self.wdm_max_displacement < 0 {
            return Err("WDM pitch bounds must be non-negative".to_owned());
        }
        if self.wdm_min_pitch > self.wdm_max_displacement {
            return Err(format!(
                "wdm_min_pitch ({}) exceeds wdm_max_displacement ({})",
                self.wdm_min_pitch, self.wdm_max_displacement
            ));
        }
        Ok(())
    }
}

impl Default for OpticalLib {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

/// Electrical dynamic-power parameters for Eq. (6):
/// `p_e = γ · f · V² · Cap(WL)`.
///
/// With the defaults (γ = 0.5, f = 1 GHz, V = 1 V, 4 pF/cm for a
/// repeatered global wire) electrical power comes out in milliwatts per
/// centimeter of wire, the same unit the optical model produces at a
/// 1 Gbit/s line rate — so the two are directly comparable, as in the
/// paper's Table 1.
///
/// # Examples
///
/// ```
/// use operon_optics::ElectricalParams;
///
/// let e = ElectricalParams::paper_defaults();
/// // 1 cm of wire at the defaults: 0.5 · 1 GHz · 1 V² · 4 pF = 2 mW.
/// assert!((e.power_mw_per_cm() - 2.0).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ElectricalParams {
    /// Switching activity factor γ.
    pub switching_factor: f64,
    /// System frequency `f`, GHz.
    pub freq_ghz: f64,
    /// Supply voltage `V`, volts.
    pub vdd: f64,
    /// Wire capacitance, pF per centimeter.
    pub cap_pf_per_cm: f64,
}

impl ElectricalParams {
    /// Parameters calibrated so the electrical and optical models share
    /// the milliwatt unit (see the type-level docs).
    pub fn paper_defaults() -> Self {
        Self {
            switching_factor: 0.5,
            freq_ghz: 1.0,
            vdd: 1.0,
            cap_pf_per_cm: 4.0,
        }
    }

    /// Dynamic power per centimeter of wire, in milliwatts.
    ///
    /// `γ · f[GHz]·10⁹ · V² · c[pF/cm]·10⁻¹² · 10³`.
    pub fn power_mw_per_cm(&self) -> f64 {
        self.switching_factor * self.freq_ghz * self.vdd * self.vdd * self.cap_pf_per_cm
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant (any
    /// non-positive physical parameter, or a switching factor outside
    /// `(0, 1]`).
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.switching_factor) || self.switching_factor == 0.0 {
            return Err(format!(
                "switching_factor must be in (0, 1], got {}",
                self.switching_factor
            ));
        }
        if self.freq_ghz <= 0.0 || self.vdd <= 0.0 || self.cap_pf_per_cm <= 0.0 {
            return Err("frequency, voltage, and capacitance must be positive".to_owned());
        }
        Ok(())
    }
}

impl Default for ElectricalParams {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_are_the_published_numbers() {
        let lib = OpticalLib::paper_defaults();
        assert_eq!(lib.alpha_db_per_cm, 1.5);
        assert_eq!(lib.beta_db_per_crossing, 0.52);
        assert_eq!(lib.p_mod_pj_per_bit, 0.511);
        assert_eq!(lib.p_det_pj_per_bit, 0.374);
        assert_eq!(lib.wdm_capacity, 32);
        assert!(lib.validate().is_ok());
    }

    #[test]
    fn optical_lib_validation_catches_errors() {
        let mut lib = OpticalLib::paper_defaults();
        lib.alpha_db_per_cm = -1.0;
        assert!(lib.validate().is_err());

        let mut lib = OpticalLib::paper_defaults();
        lib.wdm_capacity = 0;
        assert!(lib.validate().is_err());

        let mut lib = OpticalLib::paper_defaults();
        lib.max_loss_db = 0.0;
        assert!(lib.validate().is_err());

        let mut lib = OpticalLib::paper_defaults();
        lib.wdm_min_pitch = 1000;
        lib.wdm_max_displacement = 10;
        assert!(lib.validate().is_err());

        let mut lib = OpticalLib::paper_defaults();
        lib.crossing_sharing = 0.5;
        assert!(lib.validate().is_err());
    }

    #[test]
    fn crossing_sharing_discounts_crossing_loss() {
        let mut lib = OpticalLib::paper_defaults();
        assert!((lib.crossing_loss_db(10) - 5.2).abs() < 1e-12);
        lib.crossing_sharing = 4.0;
        assert!((lib.crossing_loss_db(10) - 1.3).abs() < 1e-12);
    }

    #[test]
    fn electrical_defaults_give_two_mw_per_cm() {
        let e = ElectricalParams::paper_defaults();
        assert!((e.power_mw_per_cm() - 2.0).abs() < 1e-12);
        assert!(e.validate().is_ok());
    }

    #[test]
    fn electrical_power_scales_quadratically_with_vdd() {
        let mut e = ElectricalParams::paper_defaults();
        let base = e.power_mw_per_cm();
        e.vdd = 2.0;
        assert!((e.power_mw_per_cm() - 4.0 * base).abs() < 1e-12);
    }

    #[test]
    fn electrical_validation_catches_errors() {
        let mut e = ElectricalParams::paper_defaults();
        e.switching_factor = 0.0;
        assert!(e.validate().is_err());

        let mut e = ElectricalParams::paper_defaults();
        e.switching_factor = 1.5;
        assert!(e.validate().is_err());

        let mut e = ElectricalParams::paper_defaults();
        e.freq_ghz = -1.0;
        assert!(e.validate().is_err());
    }

    #[test]
    fn defaults_match_paper_defaults() {
        assert_eq!(OpticalLib::default(), OpticalLib::paper_defaults());
        assert_eq!(
            ElectricalParams::default(),
            ElectricalParams::paper_defaults()
        );
    }
}
