//! Power accounting — Eqs. (1) and (6) of the paper.

use crate::{ElectricalParams, OpticalLib};

/// Optical power of a route, Eq. (1): `p_o = p_mod·n_mod + p_det·n_det`.
///
/// At a 1 Gbit/s line rate, pJ/bit energies translate one-to-one to mW, so
/// the result is in milliwatts (matching
/// [`ElectricalParams::power_mw_per_cm`]).
///
/// # Examples
///
/// ```
/// use operon_optics::{optical_power_mw, OpticalLib};
///
/// let lib = OpticalLib::paper_defaults();
/// // One modulator and two detectors (a 1-to-2 optical net):
/// let p = optical_power_mw(&lib, 1, 2);
/// assert!((p - (0.511 + 2.0 * 0.374)).abs() < 1e-12);
/// ```
pub fn optical_power_mw(lib: &OpticalLib, n_mod: usize, n_det: usize) -> f64 {
    lib.p_mod_pj_per_bit * n_mod as f64 + lib.p_det_pj_per_bit * n_det as f64
}

/// Total EO+OE conversion energy for a single modulator/detector pair, in
/// pJ per bit.
///
/// Useful as the break-even constant: an electrical wire longer than
/// `conversion_energy_pj / pe_per_cm` centimeters costs more power than an
/// optical hop.
///
/// # Examples
///
/// ```
/// use operon_optics::{conversion_energy_pj, OpticalLib};
///
/// let lib = OpticalLib::paper_defaults();
/// assert!((conversion_energy_pj(&lib) - 0.885).abs() < 1e-12);
/// ```
pub fn conversion_energy_pj(lib: &OpticalLib) -> f64 {
    lib.p_mod_pj_per_bit + lib.p_det_pj_per_bit
}

/// Electrical dynamic power of `wirelength_cm` of wire, Eq. (6), in
/// milliwatts.
///
/// # Examples
///
/// ```
/// use operon_optics::{electrical_power_mw, ElectricalParams};
///
/// let e = ElectricalParams::paper_defaults();
/// assert!((electrical_power_mw(&e, 2.5) - 5.0).abs() < 1e-12);
/// ```
///
/// # Panics
///
/// Panics if `wirelength_cm` is negative.
pub fn electrical_power_mw(params: &ElectricalParams, wirelength_cm: f64) -> f64 {
    assert!(
        wirelength_cm >= 0.0,
        "wirelength must be non-negative, got {wirelength_cm}"
    );
    params.power_mw_per_cm() * wirelength_cm
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn optical_power_zero_devices_is_zero() {
        let lib = OpticalLib::paper_defaults();
        assert_eq!(optical_power_mw(&lib, 0, 0), 0.0);
    }

    #[test]
    fn optical_power_is_linear_in_devices() {
        let lib = OpticalLib::paper_defaults();
        let one = optical_power_mw(&lib, 1, 1);
        let ten = optical_power_mw(&lib, 10, 10);
        assert!((ten - 10.0 * one).abs() < 1e-12);
    }

    #[test]
    fn conversion_energy_is_mod_plus_det() {
        let lib = OpticalLib::paper_defaults();
        assert!(
            (conversion_energy_pj(&lib) - (lib.p_mod_pj_per_bit + lib.p_det_pj_per_bit)).abs()
                < 1e-15
        );
    }

    #[test]
    fn electrical_power_zero_length_is_zero() {
        let e = ElectricalParams::paper_defaults();
        assert_eq!(electrical_power_mw(&e, 0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn electrical_power_rejects_negative_length() {
        let e = ElectricalParams::paper_defaults();
        let _ = electrical_power_mw(&e, -0.1);
    }

    #[test]
    fn break_even_distance_is_under_one_cm_at_defaults() {
        // The motivating property: beyond ~0.9 cm, optical wins on power.
        let lib = OpticalLib::paper_defaults();
        let e = ElectricalParams::paper_defaults();
        let break_even = conversion_energy_pj(&lib) / e.power_mw_per_cm();
        assert!(break_even < 1.0, "break-even {break_even} cm");
        assert!(
            electrical_power_mw(&e, 1.0) > optical_power_mw(&lib, 1, 1),
            "1 cm of wire should cost more than one conversion pair"
        );
    }

    proptest! {
        #[test]
        fn electrical_power_is_monotone(a in 0.0f64..100.0, b in 0.0f64..100.0) {
            let e = ElectricalParams::paper_defaults();
            if a <= b {
                prop_assert!(electrical_power_mw(&e, a) <= electrical_power_mw(&e, b));
            }
        }

        #[test]
        fn optical_power_monotone_in_detectors(n in 0usize..100) {
            let lib = OpticalLib::paper_defaults();
            prop_assert!(
                optical_power_mw(&lib, 1, n + 1) > optical_power_mw(&lib, 1, n)
            );
        }
    }
}
