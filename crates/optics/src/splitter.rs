//! Y-branch splitter cascade simulation (paper Fig. 3(b)).
//!
//! The paper motivates the splitting-loss term with a simulation of two
//! cascaded 50-50 Y-branch splitters: each branch halves the input power
//! on its output arms. This module reproduces that experiment analytically:
//! a binary cascade of [`YBranch`] stages propagates a normalized input
//! power of 1.0 to the leaves.
//!
//! # Examples
//!
//! ```
//! use operon_optics::splitter::{cascade_outputs, YBranch};
//!
//! // Two cascaded ideal 50-50 splitters -> four arms at 1/4 power each.
//! let outs = cascade_outputs(&YBranch::ideal(), 2);
//! assert_eq!(outs.len(), 4);
//! assert!(outs.iter().all(|&p| (p - 0.25).abs() < 1e-12));
//! ```

/// A 1×2 Y-branch splitter.
///
/// `split_ratio` is the fraction of (post-excess-loss) power sent to the
/// first arm; the second arm receives the remainder. `excess_loss_db`
/// models the non-ideal insertion loss of a real device.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct YBranch {
    /// Fraction of power routed to the first arm, in `(0, 1)`.
    pub split_ratio: f64,
    /// Excess (insertion) loss of the device in dB, `>= 0`.
    pub excess_loss_db: f64,
}

impl YBranch {
    /// An ideal, lossless 50-50 splitter.
    pub fn ideal() -> Self {
        Self {
            split_ratio: 0.5,
            excess_loss_db: 0.0,
        }
    }

    /// A 50-50 splitter with the given excess loss in dB.
    ///
    /// # Panics
    ///
    /// Panics if `excess_loss_db` is negative.
    pub fn with_excess_loss(excess_loss_db: f64) -> Self {
        assert!(
            excess_loss_db >= 0.0,
            "excess loss must be non-negative, got {excess_loss_db}"
        );
        Self {
            split_ratio: 0.5,
            excess_loss_db,
        }
    }

    /// Splits `input` power into the two output arm powers.
    ///
    /// # Panics
    ///
    /// Panics if the split ratio is outside `(0, 1)` or input is negative.
    pub fn split(&self, input: f64) -> (f64, f64) {
        assert!(
            self.split_ratio > 0.0 && self.split_ratio < 1.0,
            "split ratio must be in (0, 1), got {}",
            self.split_ratio
        );
        assert!(input >= 0.0, "input power must be non-negative");
        let through = input * 10f64.powf(-self.excess_loss_db / 10.0);
        (
            through * self.split_ratio,
            through * (1.0 - self.split_ratio),
        )
    }

    /// The per-arm loss of a single stage in dB (for a 50-50 device this
    /// is `3.01 + excess` dB).
    pub fn arm_loss_db(&self) -> f64 {
        -10.0 * self.split_ratio.max(1.0 - self.split_ratio).log10() + self.excess_loss_db
    }
}

impl Default for YBranch {
    fn default() -> Self {
        Self::ideal()
    }
}

/// Propagates a normalized input power of 1.0 through `stages` cascaded
/// levels of identical Y-branches and returns the power on each of the
/// `2^stages` output arms.
///
/// `stages == 0` returns the input unchanged (single arm).
///
/// # Panics
///
/// Panics if `stages > 20` (guard against runaway exponential output).
pub fn cascade_outputs(branch: &YBranch, stages: usize) -> Vec<f64> {
    assert!(stages <= 20, "cascade depth {stages} is unreasonably deep");
    let mut powers = vec![1.0];
    for _ in 0..stages {
        let mut next = Vec::with_capacity(powers.len() * 2);
        for p in powers {
            let (a, b) = branch.split(p);
            next.push(a);
            next.push(b);
        }
        powers = next;
    }
    powers
}

/// The normalized power distribution table of Fig. 3(b): input, the two
/// mid-stage arms, and the four final arms of two cascaded 50-50 splitters.
///
/// Each row is `(label, normalized_power)`.
pub fn fig3b_table(branch: &YBranch) -> Vec<(&'static str, f64)> {
    let mid = cascade_outputs(branch, 1);
    let out = cascade_outputs(branch, 2);
    vec![
        ("input", 1.0),
        ("stage1.arm0", mid[0]),
        ("stage1.arm1", mid[1]),
        ("stage2.arm0", out[0]),
        ("stage2.arm1", out[1]),
        ("stage2.arm2", out[2]),
        ("stage2.arm3", out[3]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ideal_split_halves_power() {
        let (a, b) = YBranch::ideal().split(1.0);
        assert!((a - 0.5).abs() < 1e-12 && (b - 0.5).abs() < 1e-12);
    }

    #[test]
    fn uneven_split_respects_ratio() {
        let br = YBranch {
            split_ratio: 0.7,
            excess_loss_db: 0.0,
        };
        let (a, b) = br.split(2.0);
        assert!((a - 1.4).abs() < 1e-12 && (b - 0.6).abs() < 1e-12);
    }

    #[test]
    fn excess_loss_attenuates_both_arms() {
        let br = YBranch::with_excess_loss(3.0103); // ≈ halve
        let (a, b) = br.split(1.0);
        assert!((a + b - 0.5).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_excess_loss_rejected() {
        let _ = YBranch::with_excess_loss(-1.0);
    }

    #[test]
    #[should_panic(expected = "split ratio")]
    fn degenerate_ratio_rejected() {
        let br = YBranch {
            split_ratio: 1.0,
            excess_loss_db: 0.0,
        };
        let _ = br.split(1.0);
    }

    #[test]
    fn arm_loss_of_ideal_is_3db() {
        assert!((YBranch::ideal().arm_loss_db() - 3.0103).abs() < 1e-3);
    }

    #[test]
    fn cascade_depth_zero_is_identity() {
        assert_eq!(cascade_outputs(&YBranch::ideal(), 0), vec![1.0]);
    }

    #[test]
    fn fig3b_ideal_matches_paper_figure() {
        // "each reduces the input light power into one half on the output
        // sides": mid arms at 1/2, final arms at 1/4.
        let rows = fig3b_table(&YBranch::ideal());
        assert_eq!(rows[0].1, 1.0);
        assert!((rows[1].1 - 0.5).abs() < 1e-12);
        assert!((rows[2].1 - 0.5).abs() < 1e-12);
        for row in &rows[3..] {
            assert!((row.1 - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn cascade_loss_matches_splitting_loss_model() {
        // The analytic splitting-loss model of Eq. (2) must agree with the
        // simulated cascade for ideal devices.
        let outs = cascade_outputs(&YBranch::ideal(), 3);
        let model_db = crate::splitting_loss_db(&[2, 2, 2]);
        let sim_db = -10.0 * outs[0].log10();
        assert!((model_db - sim_db).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "unreasonably deep")]
    fn runaway_cascade_rejected() {
        let _ = cascade_outputs(&YBranch::ideal(), 21);
    }

    proptest! {
        #[test]
        fn lossless_cascade_conserves_power(stages in 0usize..10) {
            let outs = cascade_outputs(&YBranch::ideal(), stages);
            let total: f64 = outs.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
            prop_assert_eq!(outs.len(), 1 << stages);
        }

        #[test]
        fn lossy_cascade_loses_power(stages in 1usize..10, loss in 0.01f64..2.0) {
            let outs = cascade_outputs(&YBranch::with_excess_loss(loss), stages);
            let total: f64 = outs.iter().sum();
            prop_assert!(total < 1.0);
        }

        #[test]
        fn split_conserves_power_modulo_excess(input in 0.0f64..10.0, ratio in 0.01f64..0.99) {
            let br = YBranch { split_ratio: ratio, excess_loss_db: 0.0 };
            let (a, b) = br.split(input);
            prop_assert!((a + b - input).abs() < 1e-9);
        }
    }
}
