//! Optical link budgets: the physics behind the `l_m` constraint.
//!
//! The paper's detection constraint (3c) bounds the source-to-sink loss
//! by an abstract maximum `l_m`. Physically, `l_m` is the difference
//! between the launch power a laser/modulator puts into the waveguide and
//! the weakest signal the receiver can detect at the target error rate:
//!
//! ```text
//! l_m = P_launch(dBm) - S_receiver(dBm) - M_system(dB)
//! ```
//!
//! with a system margin `M` held back for aging, temperature drift, and
//! model error. This module computes budgets from device numbers and,
//! inversely, the laser power a finished route actually requires — the
//! "wall-plug" view used to sanity-check a device library before a run.
//!
//! # Examples
//!
//! ```
//! use operon_optics::linkbudget::LinkBudget;
//!
//! let b = LinkBudget::paper_defaults();
//! // The derived budget backs the default OpticalLib::max_loss_db.
//! assert!((b.max_loss_db() - 25.0).abs() < 1e-9);
//! ```

use serde::{Deserialize, Serialize};

/// Launch/receive parameters of an optical link.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LinkBudget {
    /// Optical power launched into the waveguide per channel, dBm.
    pub launch_dbm: f64,
    /// Receiver sensitivity at the target BER, dBm.
    pub sensitivity_dbm: f64,
    /// System margin held in reserve, dB.
    pub margin_db: f64,
    /// Laser wall-plug efficiency, fraction in `(0, 1]` — converts the
    /// optical launch power into electrical laser power.
    pub wall_plug_efficiency: f64,
}

impl LinkBudget {
    /// The device point backing this reproduction's default 25 dB budget:
    /// 7 dBm launch, −21 dBm sensitivity, 3 dB margin, 10% wall-plug.
    pub fn paper_defaults() -> Self {
        Self {
            launch_dbm: 7.0,
            sensitivity_dbm: -21.0,
            margin_db: 3.0,
            wall_plug_efficiency: 0.1,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant: a
    /// non-positive budget or an efficiency outside `(0, 1]`.
    pub fn validate(&self) -> Result<(), String> {
        if self.margin_db < 0.0 {
            return Err(format!(
                "margin must be non-negative, got {}",
                self.margin_db
            ));
        }
        if self.max_loss_db() <= 0.0 {
            return Err(format!(
                "budget is non-positive ({:.1} dB): launch {} dBm cannot reach \
                 sensitivity {} dBm with margin {} dB",
                self.max_loss_db(),
                self.launch_dbm,
                self.sensitivity_dbm,
                self.margin_db
            ));
        }
        if !(0.0..=1.0).contains(&self.wall_plug_efficiency) || self.wall_plug_efficiency == 0.0 {
            return Err(format!(
                "wall-plug efficiency must be in (0, 1], got {}",
                self.wall_plug_efficiency
            ));
        }
        Ok(())
    }

    /// The loss budget this link closes: `launch − sensitivity − margin`,
    /// dB. Feed this into [`crate::OpticalLib::max_loss_db`].
    pub fn max_loss_db(&self) -> f64 {
        self.launch_dbm - self.sensitivity_dbm - self.margin_db
    }

    /// The launch power (dBm) required to close a link with `loss_db` of
    /// path loss at the configured sensitivity and margin.
    pub fn required_launch_dbm(&self, loss_db: f64) -> f64 {
        self.sensitivity_dbm + self.margin_db + loss_db
    }

    /// The *electrical* laser power (mW) behind one channel launched at
    /// the power needed for `loss_db` of path loss.
    ///
    /// `P_elec = 10^(dBm/10) / efficiency` (dBm → mW, then wall-plug).
    pub fn laser_power_mw(&self, loss_db: f64) -> f64 {
        let optical_mw = 10f64.powf(self.required_launch_dbm(loss_db) / 10.0);
        optical_mw / self.wall_plug_efficiency
    }

    /// Remaining margin (dB) of a link with `loss_db` of path loss at the
    /// configured launch power; negative means the link does not close.
    pub fn headroom_db(&self, loss_db: f64) -> f64 {
        self.max_loss_db() - loss_db
    }
}

impl Default for LinkBudget {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn defaults_back_the_25db_budget() {
        let b = LinkBudget::paper_defaults();
        assert!((b.max_loss_db() - 25.0).abs() < 1e-12);
        assert!(b.validate().is_ok());
    }

    #[test]
    fn validation_catches_impossible_links() {
        let mut b = LinkBudget::paper_defaults();
        b.launch_dbm = -30.0; // weaker than the sensitivity
        assert!(b.validate().is_err());

        let mut b = LinkBudget::paper_defaults();
        b.wall_plug_efficiency = 0.0;
        assert!(b.validate().is_err());

        let mut b = LinkBudget::paper_defaults();
        b.margin_db = -1.0;
        assert!(b.validate().is_err());
    }

    #[test]
    fn required_launch_tracks_loss_one_to_one() {
        let b = LinkBudget::paper_defaults();
        let p10 = b.required_launch_dbm(10.0);
        let p11 = b.required_launch_dbm(11.0);
        assert!((p11 - p10 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn laser_power_is_exponential_in_loss() {
        let b = LinkBudget::paper_defaults();
        // +10 dB of loss costs 10x the laser power.
        let ratio = b.laser_power_mw(20.0) / b.laser_power_mw(10.0);
        assert!((ratio - 10.0).abs() < 1e-9);
    }

    #[test]
    fn headroom_signs_detection() {
        let b = LinkBudget::paper_defaults();
        assert!(b.headroom_db(20.0) > 0.0);
        assert!(b.headroom_db(30.0) < 0.0);
        assert!((b.headroom_db(25.0)).abs() < 1e-12);
    }

    #[test]
    fn wall_plug_scales_electrical_power() {
        let mut b = LinkBudget::paper_defaults();
        let at_10pct = b.laser_power_mw(10.0);
        b.wall_plug_efficiency = 0.2;
        let at_20pct = b.laser_power_mw(10.0);
        assert!((at_10pct / at_20pct - 2.0).abs() < 1e-9);
    }

    proptest! {
        #[test]
        fn headroom_is_monotone_in_loss(a in 0.0f64..40.0, b in 0.0f64..40.0) {
            let budget = LinkBudget::paper_defaults();
            if a <= b {
                prop_assert!(budget.headroom_db(a) >= budget.headroom_db(b));
            }
        }

        #[test]
        fn laser_power_positive(loss in 0.0f64..40.0) {
            let b = LinkBudget::paper_defaults();
            prop_assert!(b.laser_power_mw(loss) > 0.0);
        }
    }
}
