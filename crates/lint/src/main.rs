//! CLI entry point: `operon-lint --workspace [--changed FILE...]`.

#![forbid(unsafe_code)]

use operon_lint::diagnostics::{render_json, Level};
use operon_lint::driver::{load_config, scan_files, scan_workspace_with, ScanOptions, ScanReport};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    json: bool,
    workspace: bool,
    changed: bool,
    no_cache: bool,
    files: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        json: false,
        workspace: false,
        changed: false,
        no_cache: false,
        files: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => args.workspace = true,
            "--changed" => args.changed = true,
            "--no-cache" => args.no_cache = true,
            "--root" => {
                args.root = PathBuf::from(it.next().ok_or("--root requires a path argument")?);
            }
            "--format" => match it.next().as_deref() {
                Some("json") => args.json = true,
                Some("human") => args.json = false,
                other => {
                    return Err(format!("--format must be `json` or `human`, got {other:?}"));
                }
            },
            "--help" | "-h" => {
                println!(
                    "operon-lint: determinism/robustness static analysis\n\n\
                     USAGE: operon-lint [--root DIR] [--format json|human] [--no-cache]\n\
                            (--workspace | --changed FILE... | FILE...)\n\n\
                     FILEs are workspace-relative .rs paths. Configuration is\n\
                     read from <root>/Lint.toml when present.\n\n\
                     --changed scans the whole workspace but re-analyzes only the\n\
                     listed files, trusting the cache for everything else; the\n\
                     call-graph rules (R003/W001) still see every file, so the\n\
                     changed files' neighborhood refreshes automatically.\n\
                     --no-cache forces a cold scan (output is byte-identical\n\
                     either way)."
                );
                std::process::exit(0);
            }
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag `{flag}`"));
            }
            file => args.files.push(file.to_owned()),
        }
    }
    if args.changed && args.files.is_empty() {
        return Err("--changed requires at least one changed file".to_owned());
    }
    if !args.workspace && !args.changed && args.files.is_empty() {
        return Err("nothing to lint: pass --workspace, --changed FILE..., or FILE...".to_owned());
    }
    Ok(args)
}

fn run() -> Result<ExitCode, String> {
    // operon-lint: allow(D002, reason = "the linter times its own run; it is its own instrumentation boundary")
    let started = std::time::Instant::now();
    let args = parse_args()?;
    let config = load_config(&args.root)?;
    let ScanReport {
        diagnostics,
        files_scanned,
        cache_hits,
        cache_misses,
    } = if args.workspace || args.changed {
        let opts = ScanOptions {
            use_cache: !args.no_cache,
            changed: args.changed.then(|| args.files.clone()),
        };
        scan_workspace_with(&args.root, &config, &opts)?
    } else {
        scan_files(&args.root, &args.files, &config)?
    };

    let deny = diagnostics
        .iter()
        .filter(|d| d.level == Level::Deny)
        .count();
    let warn = diagnostics.len() - deny;

    if args.json {
        print!("{}", render_json(&diagnostics));
    } else {
        for d in &diagnostics {
            println!("{}", d.render_human());
        }
        let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
        println!(
            "operon-lint: {deny} deny, {warn} warn across {files_scanned} files \
             ({cache_hits} cached, {cache_misses} analyzed, {elapsed_ms:.1} ms)"
        );
    }
    Ok(if deny == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("operon-lint: error: {msg}");
            ExitCode::from(2)
        }
    }
}
