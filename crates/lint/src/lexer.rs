//! A hand-rolled Rust lexer, sufficient for token-pattern linting.
//!
//! Produces a flat token stream with 1-based line/column positions. The
//! lexer understands everything that can *hide* source text from a naive
//! substring scan — string literals (plain, raw with any `#` depth, byte,
//! C), char literals vs. lifetimes, nested block comments, doc comments —
//! so rules never fire on text inside a literal or comment, and
//! suppression comments can be parsed reliably.
//!
//! No `syn`, no `proc-macro2`: the workspace policy is fully-offline
//! builds, and token patterns are all the rule set needs.

/// What a token is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`HashMap`, `fn`, `r#raw_ident`).
    Ident,
    /// Any literal: string, raw string, byte string, char, or number.
    Literal,
    /// A single punctuation character (`:`, `.`, `!`, `[`, …).
    Punct,
    /// `// …` (including `///` and `//!` doc comments).
    LineComment,
    /// `/* … */`, nesting respected (including `/** … */`).
    BlockComment,
}

/// One lexed token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// The exact source text of the token.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in characters) of the token's first character.
    pub col: u32,
    /// Byte offset of the token's first character in the source.
    pub start: u32,
    /// Byte offset one past the token's last character.
    pub end: u32,
}

impl Token {
    /// Whether this token is a comment of either flavor.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// Whether this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == name
    }
}

/// Character cursor with line/column tracking.
struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Self {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.src.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else if b & 0xC0 != 0x80 {
            // Count characters, not UTF-8 continuation bytes.
            self.col += 1;
        }
        Some(b)
    }

    fn eof(&self) -> bool {
        self.pos >= self.src.len()
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Tokenizes `src`, returning every token including comments.
///
/// The lexer is lossless about *positions* but not about whitespace:
/// only tokens are returned. Unterminated literals and comments are
/// tolerated (the remainder of the file becomes one token) so a lint run
/// never aborts on a syntactically broken file.
pub fn tokenize(src: &str) -> Vec<Token> {
    let mut cur = Cursor::new(src);
    let mut out = Vec::new();

    while !cur.eof() {
        let b = match cur.peek() {
            Some(b) => b,
            None => break,
        };
        // Skip whitespace.
        if b.is_ascii_whitespace() {
            cur.bump();
            continue;
        }
        let (line, col, start) = (cur.line, cur.col, cur.pos);

        // Comments.
        if b == b'/' && cur.peek_at(1) == Some(b'/') {
            while let Some(c) = cur.peek() {
                if c == b'\n' {
                    break;
                }
                cur.bump();
            }
            push(&mut out, TokenKind::LineComment, &cur, start, line, col);
            continue;
        }
        if b == b'/' && cur.peek_at(1) == Some(b'*') {
            cur.bump();
            cur.bump();
            let mut depth = 1usize;
            while depth > 0 && !cur.eof() {
                if cur.peek() == Some(b'/') && cur.peek_at(1) == Some(b'*') {
                    cur.bump();
                    cur.bump();
                    depth += 1;
                } else if cur.peek() == Some(b'*') && cur.peek_at(1) == Some(b'/') {
                    cur.bump();
                    cur.bump();
                    depth -= 1;
                } else {
                    cur.bump();
                }
            }
            push(&mut out, TokenKind::BlockComment, &cur, start, line, col);
            continue;
        }

        // Identifiers, keywords, and prefixed literals (r"", b'', br#""#,
        // r#ident).
        if is_ident_start(b) {
            while let Some(c) = cur.peek() {
                if is_ident_continue(c) {
                    cur.bump();
                } else {
                    break;
                }
            }
            let ident = &src[start..cur.pos];
            match cur.peek() {
                // Raw string or raw identifier after a known prefix.
                Some(b'"') | Some(b'#') if matches!(ident, "r" | "b" | "br" | "c" | "cr") => {
                    if lex_raw_or_prefixed(&mut cur, ident) {
                        push(&mut out, TokenKind::Literal, &cur, start, line, col);
                        continue;
                    }
                    // `r#ident` — consumed as part of the identifier.
                    push(&mut out, TokenKind::Ident, &cur, start, line, col);
                    continue;
                }
                Some(b'\'') if ident == "b" => {
                    // Byte char literal b'x'.
                    cur.bump();
                    lex_char_body(&mut cur);
                    push(&mut out, TokenKind::Literal, &cur, start, line, col);
                    continue;
                }
                _ => {}
            }
            push(&mut out, TokenKind::Ident, &cur, start, line, col);
            continue;
        }

        // String literal.
        if b == b'"' {
            cur.bump();
            lex_string_body(&mut cur);
            push(&mut out, TokenKind::Literal, &cur, start, line, col);
            continue;
        }

        // Char literal or lifetime.
        if b == b'\'' {
            cur.bump();
            let is_lifetime = match (cur.peek(), cur.peek_at(1)) {
                // 'a followed by anything but a closing quote = lifetime.
                (Some(c), next) if is_ident_start(c) => next != Some(b'\''),
                _ => false,
            };
            if is_lifetime {
                while let Some(c) = cur.peek() {
                    if is_ident_continue(c) {
                        cur.bump();
                    } else {
                        break;
                    }
                }
                push(&mut out, TokenKind::Ident, &cur, start, line, col);
            } else {
                lex_char_body(&mut cur);
                push(&mut out, TokenKind::Literal, &cur, start, line, col);
            }
            continue;
        }

        // Number literal.
        if b.is_ascii_digit() {
            while let Some(c) = cur.peek() {
                // Covers ints, hex/oct/bin, underscores, type suffixes,
                // and exponents; deliberately loose — value is unused.
                if c.is_ascii_alphanumeric() || c == b'_' {
                    cur.bump();
                } else if c == b'.' && cur.peek_at(1).is_some_and(|d| d.is_ascii_digit()) {
                    // `1.5` but not the range `1..n`.
                    cur.bump();
                } else if (c == b'+' || c == b'-')
                    && matches!(src.as_bytes().get(cur.pos - 1), Some(b'e') | Some(b'E'))
                {
                    cur.bump();
                } else {
                    break;
                }
            }
            push(&mut out, TokenKind::Literal, &cur, start, line, col);
            continue;
        }

        // Everything else: single punctuation character.
        cur.bump();
        push(&mut out, TokenKind::Punct, &cur, start, line, col);
    }

    out
}

fn push(out: &mut Vec<Token>, kind: TokenKind, cur: &Cursor, start: usize, line: u32, col: u32) {
    let text = String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned();
    out.push(Token {
        kind,
        text,
        line,
        col,
        start: start as u32,
        end: cur.pos as u32,
    });
}

/// Consumes the body of a `"…"` string (opening quote already consumed).
fn lex_string_body(cur: &mut Cursor) {
    while let Some(c) = cur.peek() {
        cur.bump();
        if c == b'\\' {
            cur.bump(); // escaped character, including \" and \\
        } else if c == b'"' {
            return;
        }
    }
}

/// Consumes the body of a `'…'` char literal (opening quote consumed).
fn lex_char_body(cur: &mut Cursor) {
    while let Some(c) = cur.peek() {
        cur.bump();
        if c == b'\\' {
            cur.bump();
        } else if c == b'\'' || c == b'\n' {
            return;
        }
    }
}

/// After a literal prefix (`r`, `b`, `br`, `c`, `cr`), attempts to consume
/// a raw or plain string. Returns false when the `#` turned out to start a
/// raw identifier (`r#ident`), which is consumed instead.
fn lex_raw_or_prefixed(cur: &mut Cursor, prefix: &str) -> bool {
    let raw = prefix.contains('r');
    if !raw {
        // b"…" / c"…": plain string body.
        if cur.peek() == Some(b'"') {
            cur.bump();
            lex_string_body(cur);
            return true;
        }
        return false;
    }
    // Count the `#`s of r#"…"# / br##"…"##.
    let mut hashes = 0usize;
    while cur.peek_at(hashes) == Some(b'#') {
        hashes += 1;
    }
    match cur.peek_at(hashes) {
        Some(b'"') => {
            for _ in 0..=hashes {
                cur.bump(); // the #s and the opening quote
            }
            // Scan for `"` followed by `hashes` #s.
            'outer: while !cur.eof() {
                if cur.peek() == Some(b'"') {
                    for i in 0..hashes {
                        if cur.peek_at(1 + i) != Some(b'#') {
                            cur.bump();
                            continue 'outer;
                        }
                    }
                    for _ in 0..=hashes {
                        cur.bump();
                    }
                    return true;
                }
                cur.bump();
            }
            true // unterminated: swallow the rest
        }
        Some(c) if hashes == 1 && is_ident_start(c) && prefix == "r" => {
            // Raw identifier r#ident: consume `#` + ident chars.
            cur.bump();
            while let Some(c) = cur.peek() {
                if is_ident_continue(c) {
                    cur.bump();
                } else {
                    break;
                }
            }
            false
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        tokenize(src)
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_and_puncts() {
        let toks = tokenize("let x = a::b;");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, vec!["let", "x", "=", "a", ":", ":", "b", ";"]);
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[0].col, 1);
        assert_eq!(toks[1].col, 5);
    }

    #[test]
    fn line_and_col_track_newlines() {
        let toks = tokenize("a\n  b\nccc d");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
        assert_eq!((toks[2].line, toks[2].col), (3, 1));
        assert_eq!((toks[3].line, toks[3].col), (3, 5));
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = kinds(r#"let s = "HashMap::new() // not a comment";"#);
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::Literal)
                .count(),
            1
        );
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "HashMap"));
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        let toks = kinds(r#""a\"b" x"#);
        assert_eq!(toks[0].0, TokenKind::Literal);
        assert_eq!(toks[0].1, r#""a\"b""#);
        assert_eq!(toks[1].1, "x");
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = kinds(r###"let s = r#"quote " inside"# ; x"###);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Literal && t.starts_with("r#\"")));
        assert!(toks.iter().any(|(_, t)| t == "x"));
    }

    #[test]
    fn raw_string_hides_comment_opener() {
        let toks = kinds("r\"/* not a comment\" y");
        assert_eq!(toks[0].0, TokenKind::Literal);
        assert_eq!(toks[1].1, "y");
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let toks = kinds(r##"b"bytes" br#"raw"# b'x' ok"##);
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::Literal)
                .count(),
            3
        );
        assert!(toks.iter().any(|(_, t)| t == "ok"));
    }

    #[test]
    fn raw_identifier_is_an_ident() {
        let toks = kinds("r#fn x");
        assert_eq!(toks[0], (TokenKind::Ident, "r#fn".to_owned()));
        assert_eq!(toks[1].1, "x");
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("a /* outer /* inner */ still outer */ b");
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[0].1, "a");
        assert_eq!(toks[1].0, TokenKind::BlockComment);
        assert_eq!(toks[2].1, "b");
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = kinds("&'a str 'x' '\\n'");
        assert_eq!(toks[1], (TokenKind::Ident, "'a".to_owned()));
        assert_eq!(toks[3].0, TokenKind::Literal);
        assert_eq!(toks[3].1, "'x'");
        assert_eq!(toks[4].0, TokenKind::Literal);
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let toks = kinds("0..n 1.5 0x1f_u32 1e-3");
        assert_eq!(toks[0].1, "0");
        assert_eq!(toks[1].1, ".");
        assert_eq!(toks[2].1, ".");
        assert_eq!(toks[3].1, "n");
        assert_eq!(toks[4].1, "1.5");
        assert_eq!(toks[5].1, "0x1f_u32");
        assert_eq!(toks[6].1, "1e-3");
    }

    #[test]
    fn line_comment_ends_at_newline() {
        let toks = kinds("x // trailing HashMap\ny");
        assert_eq!(toks[0].1, "x");
        assert_eq!(toks[1].0, TokenKind::LineComment);
        assert_eq!(toks[2].1, "y");
    }

    #[test]
    fn unterminated_string_is_tolerated() {
        let toks = kinds("let s = \"never closed");
        assert_eq!(toks.last().map(|(k, _)| *k), Some(TokenKind::Literal));
    }

    #[test]
    fn utf8_in_comments_and_strings() {
        let toks = tokenize("// ünïcode §\nlet x = \"héllo\";");
        assert_eq!(toks[0].kind, TokenKind::LineComment);
        let x = toks.iter().find(|t| t.text == "x").expect("x token");
        assert_eq!(x.line, 2);
        assert_eq!(x.col, 5);
    }
}
