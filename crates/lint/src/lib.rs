//! operon-lint — dependency-free static analysis for the OPERON
//! workspace.
//!
//! Enforces the determinism, robustness, and no-panic invariants that
//! the executor's bit-identical-reproducibility guarantee rests on. See
//! `DESIGN.md` § "Static analysis & invariants" for the rule catalog and
//! `Lint.toml` for the checked-in configuration.
//!
//! The analyzer is deliberately dependency-free: a hand-rolled lexer
//! (`lexer`), token-pattern rules (`rules`), a minimal `Lint.toml`
//! parser (`config`), and stable human/JSON renderers (`diagnostics`).

#![forbid(unsafe_code)]

pub mod config;
pub mod diagnostics;
pub mod driver;
pub mod lexer;
pub mod rules;

pub use config::Config;
pub use diagnostics::{Diagnostic, Level};
pub use driver::{scan_files, scan_workspace, ScanReport};
pub use rules::{classify, lint_source, FileRole};
