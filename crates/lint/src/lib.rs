//! operon-lint — dependency-free static analysis for the OPERON
//! workspace.
//!
//! Enforces the determinism, robustness, and no-panic invariants that
//! the executor's bit-identical-reproducibility guarantee rests on. See
//! `DESIGN.md` § "Static analysis & invariants" for the rule catalog and
//! `Lint.toml` for the checked-in configuration.
//!
//! v2 pipeline: a hand-rolled lexer (`lexer`) feeds a lightweight item
//! parser (`parse`); per-file facts (`symbols::FileAnalysis`) are
//! produced by the token-pattern rules (`rules`), cached by content hash
//! (`cache`), and joined into a workspace call graph (`callgraph`) for
//! the global rules — R003 panic-reachability and W001 stale-allow.
//! Configuration is a minimal `Lint.toml` parser (`config`); output goes
//! through stable human/JSON renderers (`diagnostics`). The whole crate
//! is deliberately dependency-free.

#![forbid(unsafe_code)]

pub mod cache;
pub mod callgraph;
pub mod config;
pub mod diagnostics;
pub mod driver;
pub mod lexer;
pub mod parse;
pub mod rules;
pub mod symbols;

pub use config::Config;
pub use diagnostics::{Diagnostic, Level};
pub use driver::{scan_files, scan_workspace, scan_workspace_with, ScanOptions, ScanReport};
pub use rules::{classify, lint_source, FileRole};
pub use symbols::FileAnalysis;
