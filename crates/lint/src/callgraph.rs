//! Workspace-level rules over the cross-file call graph.
//!
//! Built from every file's [`FileAnalysis`]: a [`SymbolTable`] resolves
//! each recorded call site to workspace definitions, giving a call graph
//! whose edges this module walks for the two global rules:
//!
//! * **R003 panic-reachability** — a function that contains an
//!   unsanctioned panic-capable site *and* is reachable from the public
//!   API of a solver crate is flagged, with the shortest public→function
//!   call chain rendered in the diagnostic. Sanctioning composes with
//!   the existing allow machinery:
//!   - an `allow(R001, …)` or `allow(R003, …)` covering a panic site's
//!     line vets that site (the workspace's existing reasoned R001
//!     allows therefore carry over);
//!   - an `allow(R003, …)` covering a `fn` definition line makes the
//!     function *opaque*: it is never flagged and its panic potential
//!     does not propagate to callers (reachability still flows through
//!     it — its callees are still called at runtime);
//!   - an `allow(R003, …)` covering a call site's line cuts that edge.
//!
//! * **W001 stale-allow** — an `// operon-lint: allow(…)` that neither
//!   suppressed a local finding nor participated in R003 sanctioning is
//!   itself reported, so dead suppressions cannot accumulate.
//!
//! Method calls resolve by name against every workspace `impl` — a
//!   deliberate over-approximation (no type inference), kept honest by
//! the reasoned-allow escape hatch.

use crate::config::Config;
use crate::diagnostics::Diagnostic;
use crate::rules::{allow_covering, FileRole};
use crate::symbols::{crate_ident, file_module_path, FileAnalysis, FnId, SymbolTable};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Runs the workspace rules (R003, W001) over all analyzed files.
/// Returns the global findings, canonically sorted.
pub fn workspace_rules(files: &[FileAnalysis], config: &Config) -> Vec<Diagnostic> {
    let graph = CallGraph::build(files);
    let mut diags = graph.r003(files, config);
    diags.extend(stale_allows(files, config, &graph.used_allows));
    crate::diagnostics::sort_canonical(&mut diags);
    diags
}

/// The resolved call graph plus per-function panic facts.
struct CallGraph {
    /// Flat function ids, sorted: `order[idx]` is the `FnId`.
    order: Vec<FnId>,
    /// Forward edges (caller idx → callee idxs), sorted and deduped.
    edges: Vec<Vec<usize>>,
    /// Unsanctioned panic sites per function (indices into the fn's
    /// `panics` list).
    sources: Vec<Vec<usize>>,
    /// Functions made opaque by an `allow(R003)` on their `fn` line,
    /// with the sanctioning allow's location.
    opaque: Vec<Option<(usize, usize)>>,
    /// Allows consulted by the global pass that actually sanctioned
    /// something: `(file index, allow index)`.
    used_allows: BTreeSet<(usize, usize)>,
}

impl CallGraph {
    fn build(files: &[FileAnalysis]) -> Self {
        let table = SymbolTable::build(files);
        let mut order: Vec<FnId> = Vec::new();
        for (fi, file) in files.iter().enumerate() {
            for gi in 0..file.fns.len() {
                order.push((fi, gi));
            }
        }
        let index: BTreeMap<FnId, usize> = order
            .iter()
            .enumerate()
            .map(|(idx, id)| (*id, idx))
            .collect();
        let n = order.len();
        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut sources: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut opaque: Vec<Option<(usize, usize)>> = vec![None; n];
        let mut used_allows: BTreeSet<(usize, usize)> = BTreeSet::new();
        // Cut edges awaiting a "did the allow matter" verdict:
        // (callee idx, file idx, allow idx).
        let mut cut_edges: Vec<(usize, usize, usize)> = Vec::new();

        for (idx, &(fi, gi)) in order.iter().enumerate() {
            let file = &files[fi];
            let f = &file.fns[gi];
            // Opaque: allow(R003) covering the fn definition line.
            if let Some(ai) = allow_covering(&file.allows, f.line, "R003") {
                opaque[idx] = Some((fi, ai));
            }
            // Panic sites, minus sanctioned ones.
            for (pi, p) in f.panics.iter().enumerate() {
                let sanction = allow_covering(&file.allows, p.line, "R001")
                    .or_else(|| allow_covering(&file.allows, p.line, "R003"));
                match sanction {
                    Some(ai) => {
                        used_allows.insert((fi, ai));
                    }
                    None => sources[idx].push(pi),
                }
            }
            // Call edges.
            let module = {
                let mut m = file_module_path(&file.path);
                m.extend(f.module_path.iter().cloned());
                m
            };
            for call in &f.calls {
                let targets =
                    table.resolve(call, &file.crate_name, &module, f.impl_type.as_deref());
                if targets.is_empty() {
                    continue;
                }
                let cut = allow_covering(&file.allows, call.line, "R003");
                for id in targets {
                    let Some(&t) = index.get(&id) else { continue };
                    if t == idx {
                        continue; // self-recursion adds nothing
                    }
                    match cut {
                        Some(ai) => cut_edges.push((t, fi, ai)),
                        None => edges[idx].push(t),
                    }
                }
            }
            edges[idx].sort_unstable();
            edges[idx].dedup();
        }

        // Fixpoint: can_panic flows callee → caller, but an opaque
        // function's potential never escapes it.
        let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (caller, callees) in edges.iter().enumerate() {
            for &callee in callees {
                rev[callee].push(caller);
            }
        }
        let mut can_panic: Vec<bool> = sources.iter().map(|s| !s.is_empty()).collect();
        let mut queue: VecDeque<usize> = (0..n)
            .filter(|&i| can_panic[i] && opaque[i].is_none())
            .collect();
        while let Some(i) = queue.pop_front() {
            for &caller in &rev[i] {
                if !can_panic[caller] {
                    can_panic[caller] = true;
                    if opaque[caller].is_none() {
                        queue.push_back(caller);
                    }
                }
            }
        }
        // An opaque allow is "used" when it actually contains something;
        // a cut-edge allow is "used" when the callee had potential.
        for (i, o) in opaque.iter().enumerate() {
            if let Some(mark) = o {
                if can_panic[i] {
                    used_allows.insert(*mark);
                }
            }
        }
        for (callee, fi, ai) in cut_edges {
            if can_panic[callee] && opaque[callee].is_none() {
                used_allows.insert((fi, ai));
            }
        }

        CallGraph {
            order,
            edges,
            sources,
            opaque,
            used_allows,
        }
    }

    /// Whether `id` is a public-API root: a `pub fn` in the library code
    /// of a configured solver crate, outside test gates.
    fn is_root(&self, files: &[FileAnalysis], config: &Config, id: FnId) -> bool {
        let file = &files[id.0];
        let f = &file.fns[id.1];
        f.is_pub
            && !f.is_test
            && file.role == Some(FileRole::Lib)
            && config.solver_crates.iter().any(|c| c == &file.crate_name)
    }

    /// R003: flag reachable panic-bearing functions, rendering the
    /// shortest public→function chain.
    fn r003(&self, files: &[FileAnalysis], config: &Config) -> Vec<Diagnostic> {
        let Some(level) = config.level("R003") else {
            return Vec::new();
        };
        // BFS from all roots at once gives every function its shortest
        // chain from *some* public entry point; iteration order over the
        // sorted `order` keeps parents (and thus chains) deterministic.
        let n = self.order.len();
        let mut parent: Vec<Option<usize>> = vec![None; n];
        let mut reached: Vec<bool> = vec![false; n];
        let mut queue: VecDeque<usize> = VecDeque::new();
        for (idx, &id) in self.order.iter().enumerate() {
            if self.is_root(files, config, id) {
                reached[idx] = true;
                queue.push_back(idx);
            }
        }
        while let Some(i) = queue.pop_front() {
            for &callee in &self.edges[i] {
                if !reached[callee] {
                    reached[callee] = true;
                    parent[callee] = Some(i);
                    queue.push_back(callee);
                }
            }
        }

        let mut out = Vec::new();
        for (idx, &(fi, gi)) in self.order.iter().enumerate() {
            if !reached[idx] || self.sources[idx].is_empty() || self.opaque[idx].is_some() {
                continue;
            }
            let file = &files[fi];
            let f = &file.fns[gi];
            if f.is_test {
                continue;
            }
            if config.path_allowed("R003", &file.path)
                || config.path_out_of_scope("R003", &file.path)
            {
                continue;
            }
            // Render the chain root → … → this fn.
            let mut chain_idx: Vec<usize> = vec![idx];
            let mut cur = idx;
            while let Some(p) = parent[cur] {
                chain_idx.push(p);
                cur = p;
            }
            chain_idx.reverse();
            let chain: Vec<String> = chain_idx
                .iter()
                .map(|&i| self.qualified_name(files, self.order[i]))
                .collect();
            let first = &f.panics[self.sources[idx][0]];
            let extra = match self.sources[idx].len() {
                1 => String::new(),
                more => format!(" (and {} more panic-capable sites)", more - 1),
            };
            let via = if chain.len() == 1 {
                format!("`{}` is itself public solver API", chain[0])
            } else {
                format!(
                    "reachable from public solver API via `{}`",
                    chain.join(" -> ")
                )
            };
            out.push(Diagnostic {
                rule: "R003",
                level,
                file: file.path.clone(),
                line: f.line,
                col: f.col,
                message: format!(
                    "`{}` can panic: {} at line {}{extra}; {via}; return a typed \
                     error, or vet the site with `// operon-lint: allow(R001, \
                     reason = ...)` / make the function opaque with \
                     `// operon-lint: allow(R003, reason = ...)` on the `fn` line",
                    self.qualified_name(files, (fi, gi)),
                    first.what,
                    first.line,
                ),
            });
        }
        out
    }

    /// `operon_mcmf::McmfGraph::solve`-style display name.
    fn qualified_name(&self, files: &[FileAnalysis], id: FnId) -> String {
        let file = &files[id.0];
        let f = &file.fns[id.1];
        let mut parts: Vec<String> = vec![crate_ident(&file.crate_name)];
        parts.extend(file_module_path(&file.path));
        parts.extend(f.module_path.iter().cloned());
        if let Some(ty) = &f.impl_type {
            parts.push(ty.clone());
        }
        parts.push(f.name.clone());
        parts.join("::")
    }
}

/// W001: report every allow that suppressed nothing — locally during the
/// per-file pass, and globally during R003 sanctioning.
fn stale_allows(
    files: &[FileAnalysis],
    config: &Config,
    global_used: &BTreeSet<(usize, usize)>,
) -> Vec<Diagnostic> {
    let Some(level) = config.level("W001") else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for (fi, file) in files.iter().enumerate() {
        if file.role.is_none() {
            continue;
        }
        if config.path_allowed("W001", &file.path) || config.path_out_of_scope("W001", &file.path) {
            continue;
        }
        for (ai, allow) in file.allows.iter().enumerate() {
            if allow.used || global_used.contains(&(fi, ai)) {
                continue;
            }
            out.push(Diagnostic {
                rule: "W001",
                level,
                file: file.path.clone(),
                line: allow.line,
                col: allow.col,
                message: format!(
                    "stale suppression: `allow({})` no longer suppresses any \
                     finding on line {}; delete the comment (or fix the rule \
                     list if it was meant to cover something else)",
                    allow.rules.join(", "),
                    allow.target_line,
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::analyze_source;

    fn analyze_all(sources: &[(&str, &str)], config: &Config) -> Vec<FileAnalysis> {
        sources
            .iter()
            .map(|(path, src)| analyze_source(path, src, config))
            .collect()
    }

    #[test]
    fn r003_flags_transitive_panic_with_chain() {
        let config = Config::default();
        let files = analyze_all(
            &[
                (
                    "crates/core/src/session.rs",
                    "pub fn warm_solve(x: Option<u32>) -> u32 { crate::lr::price(x) }\n",
                ),
                (
                    "crates/core/src/lr.rs",
                    // Not pub: only reachable through warm_solve. The
                    // helper lives in exec, a non-solver crate, so R001
                    // never sees it — only R003 can.
                    "fn price(x: Option<u32>) -> u32 { operon_exec::join_all(x) }\n",
                ),
                (
                    "crates/exec/src/lib.rs",
                    "pub fn join_all(x: Option<u32>) -> u32 { x.unwrap() }\n",
                ),
            ],
            &config,
        );
        let diags = workspace_rules(&files, &config);
        let r003: Vec<_> = diags.iter().filter(|d| d.rule == "R003").collect();
        assert_eq!(r003.len(), 1, "{diags:?}");
        assert_eq!(r003[0].file, "crates/exec/src/lib.rs");
        assert!(r003[0].message.contains("`.unwrap()`"));
        assert!(
            r003[0].message.contains(
                "operon::session::warm_solve -> operon::lr::price -> operon_exec::join_all"
            ),
            "{}",
            r003[0].message
        );
    }

    #[test]
    fn r003_ignores_unreachable_and_sanctioned_panics() {
        let config = Config::default();
        let files = analyze_all(
            &[
                // Private fn, never called: not reachable.
                (
                    "crates/exec/src/lib.rs",
                    "fn orphan(x: Option<u32>) -> u32 { x.unwrap() }\n",
                ),
                // Reachable but the site carries a reasoned R001 allow.
                (
                    "crates/core/src/flow.rs",
                    "pub fn api(x: Option<u32>) -> u32 {\n    // operon-lint: allow(R001, reason = \"guarded above\")\n    x.unwrap()\n}\n",
                ),
            ],
            &config,
        );
        let diags = workspace_rules(&files, &config);
        assert!(diags.iter().all(|d| d.rule != "R003"), "{diags:?}");
    }

    #[test]
    fn r003_opaque_fn_suppresses_and_allow_counts_as_used() {
        let config = Config::default();
        let files = analyze_all(
            &[(
                "crates/core/src/flow.rs",
                "// operon-lint: allow(R003, reason = \"bounded retry; panic is a can't-happen invariant\")\npub fn api(x: Option<u32>) -> u32 { x.unwrap() }\n",
            )],
            &config,
        );
        let diags = workspace_rules(&files, &config);
        // The unwrap is also a local R001 finding — check the R003/W001 side.
        assert!(diags.iter().all(|d| d.rule != "R003"), "{diags:?}");
        assert!(diags.iter().all(|d| d.rule != "W001"), "{diags:?}");
    }

    #[test]
    fn w001_reports_dead_allows() {
        let config = Config::default();
        let files = analyze_all(
            &[(
                "crates/core/src/flow.rs",
                "// operon-lint: allow(R001, reason = \"was an unwrap here once\")\npub fn fine(x: u32) -> u32 { x + 1 }\n",
            )],
            &config,
        );
        let diags = workspace_rules(&files, &config);
        let w: Vec<_> = diags.iter().filter(|d| d.rule == "W001").collect();
        assert_eq!(w.len(), 1, "{diags:?}");
        assert!(w[0].message.contains("allow(R001)"));
    }

    #[test]
    fn w001_keeps_working_allows() {
        let config = Config::default();
        let files = analyze_all(
            &[(
                "crates/core/src/flow.rs",
                "pub fn api(x: Option<u32>) -> u32 {\n    // operon-lint: allow(R001, reason = \"guarded\")\n    x.unwrap()\n}\n",
            )],
            &config,
        );
        let diags = workspace_rules(&files, &config);
        assert!(diags.iter().all(|d| d.rule != "W001"), "{diags:?}");
    }

    #[test]
    fn method_calls_resolve_by_name_across_crates() {
        let config = Config::default();
        let files = analyze_all(
            &[
                (
                    "crates/core/src/wdm/mod.rs",
                    "pub fn plan(exec: &Executor) { exec.run_waves(3); }\n",
                ),
                (
                    "crates/exec/src/executor.rs",
                    "impl Executor { pub fn run_waves(&self, n: u32) -> u32 { inner(n) } }\nfn inner(n: u32) -> u32 { if n > 2 { panic!(\"depth\") } else { n } }\n",
                ),
            ],
            &config,
        );
        let diags = workspace_rules(&files, &config);
        let r003: Vec<_> = diags.iter().filter(|d| d.rule == "R003").collect();
        assert_eq!(r003.len(), 1, "{diags:?}");
        assert!(r003[0].message.contains("`panic!`"));
        assert!(
            r003[0]
                .message
                .contains("Executor::run_waves -> operon_exec::executor::inner"),
            "{}",
            r003[0].message
        );
    }
}
