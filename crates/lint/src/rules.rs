//! The rule engine: token-pattern rules over one file, plus the
//! per-file summaries the workspace-level rules (`callgraph`) consume.
//!
//! | Rule | Invariant it protects |
//! |------|----------------------|
//! | D001 | No `HashMap`/`HashSet` in solver-crate library code — seed-dependent iteration order breaks bit-identical reproducibility. |
//! | D002 | No `Instant::now`/`SystemTime` outside `exec::metrics` and the bench crate — wall-clock reads stay centralized (`operon_exec::Stopwatch`). |
//! | D003 | No `std::thread::spawn`/`scope` outside `operon-exec` — all parallelism goes through the ordered executor. |
//! | R001 | No `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/`unimplemented!` in solver-crate library code — hot paths return typed errors. |
//! | R002 | No direct indexing into a call result (`f(x)[i]`) in configured hot paths — prefer `get()` with an error path. |
//! | P001 | No `.clone()` of a solver network/graph (`g`, `*graph`, `net`, `*network`) inside a loop body — per-iteration network copies are the hot-path cost the transactional undo log (`checkout()`/`rollback()`) exists to remove. |
//! | P002 | No per-iteration allocation (`Vec::new`/`vec!`/`format!`/`Box::new`/`.collect()`/`.to_vec()`) inside loop bodies of scoped solver hot paths — buffers are hoisted and reused (the flat-arena pattern). |
//! | N001 | No order-sensitive accumulation inside closures passed to `Executor::par_map`/`wave_map`/`par_map_coarse`: compound assignment onto captured state, mutating a captured collection, or reading state some parallel closure mutates — merge order is the one thing the ordered executor cannot fix. |
//! | L000 | Suppressions themselves: `// operon-lint: allow(RULE, reason = "…")` requires a rule list and a non-empty reason. |
//!
//! Workspace-level rules R003 (panic-reachability over the call graph)
//! and W001 (stale allows) live in [`crate::callgraph`]; this module
//! contributes the per-file facts they run on.
//!
//! Rules skip `#[cfg(test)]` modules and `#[test]` functions; D001,
//! R001, P001 and P002 additionally apply only to library
//! (non-`src/bin`) code of the configured solver crates. P002 alone
//! also fires in non-solver crates on files named explicitly in its
//! `only_paths` — hot-path kernels hosted by infrastructure crates
//! (the geom sweep builder) opt into the allocation gate that way.

use crate::config::Config;
use crate::diagnostics::{Diagnostic, Level};
use crate::lexer::{tokenize, Token, TokenKind};
use crate::parse::{self, RawCallee};
use crate::symbols::{AllowSite, CallRef, FileAnalysis, FnSummary, PanicSite};
use std::collections::BTreeSet;

/// How a file participates in its crate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileRole {
    /// Library code (`src/**` except `src/bin` and `src/main.rs`).
    Lib,
    /// Binary code (`src/bin/**`, `src/main.rs`).
    Bin,
    /// Tests, benches, examples — not scanned.
    Other,
}

/// Classifies `path` (workspace-relative, forward slashes) into its crate
/// name and role. Returns `None` for non-`.rs` files.
pub fn classify(path: &str) -> Option<(String, FileRole)> {
    if !path.ends_with(".rs") {
        return None;
    }
    let (crate_name, rest) = if let Some(rest) = path.strip_prefix("crates/") {
        let (name, tail) = rest.split_once('/')?;
        (name.to_owned(), tail)
    } else {
        ("operon-repro".to_owned(), path)
    };
    let role = if rest.starts_with("tests/")
        || rest.starts_with("benches/")
        || rest.starts_with("examples/")
    {
        FileRole::Other
    } else if rest.starts_with("src/bin/") || rest == "src/main.rs" {
        FileRole::Bin
    } else if rest.starts_with("src/") {
        FileRole::Lib
    } else {
        FileRole::Other
    };
    Some((crate_name, role))
}

/// The executor's deterministic-map combinators: closures passed to
/// these run concurrently, so their captures are what N001 polices.
const PAR_COMBINATORS: &[&str] = &[
    "par_map",
    "par_map_coarse",
    "par_map_indexed",
    "par_map_indexed_min",
    "wave_map",
];

/// Methods that mutate their receiver in a merge-order-sensitive way.
const N001_MUTATORS: &[&str] = &["append", "extend", "insert", "push", "push_str"];

/// Lints one file's source. `path` is the workspace-relative path used
/// for reporting and configuration matching.
///
/// This is the local (single-file) view; workspace rules (R003/W001)
/// additionally need [`analyze_source`]'s summaries from every file.
pub fn lint_source(path: &str, source: &str, config: &Config) -> Vec<Diagnostic> {
    analyze_source(path, source, config).diags
}

/// Analyzes one file: local findings plus the function/call/panic/allow
/// summaries the workspace phases consume.
pub fn analyze_source(path: &str, source: &str, config: &Config) -> FileAnalysis {
    let mut analysis = FileAnalysis {
        path: path.to_owned(),
        ..FileAnalysis::default()
    };
    let Some((crate_name, role)) = classify(path) else {
        return analysis;
    };
    analysis.crate_name = crate_name.clone();
    if role == FileRole::Other || config.excluded(path) {
        return analysis;
    }
    analysis.role = Some(role);

    let tokens = tokenize(source);
    let code: Vec<&Token> = tokens.iter().filter(|t| !t.is_comment()).collect();
    let in_test = test_regions(&code);
    let in_loop = loop_regions(&code);
    let pairs = parse::matching_pairs(&code);
    let parsed = parse::parse_file(&code);
    let (mut allows, mut diags) = parse_allows(path, &tokens, &code);
    let solver = config.solver_crates.iter().any(|c| c == &crate_name);
    // P002 also gates files of non-solver crates when they are named
    // explicitly in its `only_paths` — hot-path kernels living in
    // infrastructure crates (e.g. `crates/geom/src/sweep.rs`) carry the
    // same no-per-iteration-allocation contract as solver code.
    let p002_opt_in = config.path_explicitly_scoped("P002", path);

    let fire = |rule: &'static str,
                line: u32,
                col: u32,
                message: String,
                allows: &mut [AllowSite],
                diags: &mut Vec<Diagnostic>| {
        let Some(level) = config.level(rule) else {
            return;
        };
        if config.path_allowed(rule, path) || config.path_out_of_scope(rule, path) {
            return;
        }
        if let Some(i) = allow_covering(allows, line, rule) {
            allows[i].used = true;
            return;
        }
        diags.push(Diagnostic {
            rule,
            level,
            file: path.to_owned(),
            line,
            col,
            message,
        });
    };

    for (i, tok) in code.iter().enumerate() {
        if in_test[i] {
            continue;
        }
        let next = |off: usize| code.get(i + off).copied();
        let followed_by_path_sep = |at: usize| {
            next(at).is_some_and(|t| t.is_punct(':'))
                && next(at + 1).is_some_and(|t| t.is_punct(':'))
        };

        // D001 — hash collections in solver-crate library code.
        if solver
            && role == FileRole::Lib
            && tok.kind == TokenKind::Ident
            && (tok.text == "HashMap" || tok.text == "HashSet")
        {
            let replacement = if tok.text == "HashMap" {
                "BTreeMap"
            } else {
                "BTreeSet"
            };
            fire(
                "D001",
                tok.line,
                tok.col,
                format!(
                    "`{}` in solver-crate library code: iteration order is \
                     seed-dependent and breaks bit-identical reproducibility; \
                     use `{}` or iterate over sorted keys",
                    tok.text, replacement
                ),
                &mut allows,
                &mut diags,
            );
        }

        // D002 — ad-hoc wall-clock reads.
        if tok.is_ident("Instant")
            && followed_by_path_sep(1)
            && next(3).is_some_and(|t| t.is_ident("now"))
        {
            fire(
                "D002",
                tok.line,
                tok.col,
                "`Instant::now()` outside `exec::metrics`/bench: route timing \
                 through `operon_exec::Stopwatch` so clock reads stay centralized"
                    .to_owned(),
                &mut allows,
                &mut diags,
            );
        }
        if tok.is_ident("SystemTime") {
            fire(
                "D002",
                tok.line,
                tok.col,
                "`SystemTime` outside `exec::metrics`/bench: wall-clock reads \
                 must go through `operon_exec` instrumentation"
                    .to_owned(),
                &mut allows,
                &mut diags,
            );
        }

        // D003 — raw thread creation.
        if tok.is_ident("thread") && followed_by_path_sep(1) {
            if let Some(t) = next(3) {
                if t.is_ident("spawn") || t.is_ident("scope") {
                    fire(
                        "D003",
                        tok.line,
                        tok.col,
                        format!(
                            "`thread::{}` outside `operon-exec`: all parallelism \
                             must go through the ordered executor (`Executor::par_map`)",
                            t.text
                        ),
                        &mut allows,
                        &mut diags,
                    );
                }
            }
        }

        // R001 — panic family in solver-crate library code.
        if solver && role == FileRole::Lib {
            let method_call =
                i > 0 && code[i - 1].is_punct('.') && next(1).is_some_and(|t| t.is_punct('('));
            if method_call && (tok.text == "unwrap" || tok.text == "expect") {
                fire(
                    "R001",
                    tok.line,
                    tok.col,
                    format!(
                        "`.{}()` in solver-crate library code: return a typed \
                         `operon::error` variant, or annotate the provably-infallible \
                         case with `// operon-lint: allow(R001, reason = ...)`",
                        tok.text
                    ),
                    &mut allows,
                    &mut diags,
                );
            }
            let bang_macro = next(1).is_some_and(|t| t.is_punct('!'));
            if bang_macro
                && matches!(
                    tok.text.as_str(),
                    "panic" | "unreachable" | "todo" | "unimplemented"
                )
            {
                fire(
                    "R001",
                    tok.line,
                    tok.col,
                    format!(
                        "`{}!` in solver-crate library code: return a typed error \
                         instead of panicking, or annotate with \
                         `// operon-lint: allow(R001, reason = ...)`",
                        tok.text
                    ),
                    &mut allows,
                    &mut diags,
                );
            }
        }

        // P001 — cloning a solver network inside a loop body.
        if solver
            && role == FileRole::Lib
            && in_loop[i]
            && tok.is_ident("clone")
            && i >= 2
            && code[i - 1].is_punct('.')
            && code[i - 2].kind == TokenKind::Ident
            && graph_receiver(&code[i - 2].text)
            && next(1).is_some_and(|t| t.is_punct('('))
            && next(2).is_some_and(|t| t.is_punct(')'))
        {
            fire(
                "P001",
                tok.line,
                tok.col,
                format!(
                    "`{}.clone()` inside a loop body: per-iteration copies of a \
                     solver network are the hot-path cost the transactional undo \
                     log removes; use `checkout()`/`rollback()` (or a \
                     `clone_from`-synced scratch replica outside the loop), or \
                     annotate with `// operon-lint: allow(P001, reason = ...)`",
                    code[i - 2].text
                ),
                &mut allows,
                &mut diags,
            );
        }

        // P002 — per-iteration allocation inside loop bodies.
        if (solver || p002_opt_in)
            && role == FileRole::Lib
            && in_loop[i]
            && tok.kind == TokenKind::Ident
        {
            let pattern: Option<String> = if (tok.text == "vec" || tok.text == "format")
                && next(1).is_some_and(|t| t.is_punct('!'))
            {
                Some(format!("{}!", tok.text))
            } else if (tok.text == "Vec" || tok.text == "Box")
                && followed_by_path_sep(1)
                && next(3).is_some_and(|t| t.is_ident("new"))
                && next(4).is_some_and(|t| t.is_punct('('))
            {
                Some(format!("{}::new()", tok.text))
            } else if (tok.text == "collect" || tok.text == "to_vec")
                && i > 0
                && code[i - 1].is_punct('.')
                && next(1).is_some_and(|t| t.is_punct('(') || t.is_punct(':'))
            {
                Some(format!(".{}()", tok.text))
            } else {
                None
            };
            if let Some(pattern) = pattern {
                fire(
                    "P002",
                    tok.line,
                    tok.col,
                    format!(
                        "per-iteration allocation `{pattern}` inside a loop body on \
                         a solver hot path: hoist the buffer out of the loop and \
                         reuse it across iterations (the flat-arena pattern), or \
                         annotate with `// operon-lint: allow(P002, reason = ...)`"
                    ),
                    &mut allows,
                    &mut diags,
                );
            }
        }

        // R002 — indexing straight into a call result in hot paths.
        if role == FileRole::Lib && tok.is_punct(')') {
            if let Some(bracket) = next(1) {
                if bracket.is_punct('[') {
                    fire(
                        "R002",
                        bracket.line,
                        bracket.col,
                        "indexing directly into a call result in a hot path: \
                         prefer `.get()` with an explicit error path over `[...]`"
                            .to_owned(),
                        &mut allows,
                        &mut diags,
                    );
                }
            }
        }
    }

    // N001 — order-sensitive accumulation inside parallel closures.
    for f in &parsed.fns {
        let Some((open, close)) = f.body else {
            continue;
        };
        if open < in_test.len() && in_test[open] {
            continue;
        }
        n001_check(
            path,
            &code,
            &pairs,
            open,
            close,
            config,
            &mut allows,
            &mut diags,
        );
    }

    // Function summaries for the workspace phases.
    for f in &parsed.fns {
        let (calls, panics) = match f.body {
            Some((open, close)) => parse::body_calls(&code, open, close, &parsed.uses),
            None => (Vec::new(), Vec::new()),
        };
        let kw_in_test = f
            .body
            .map(|(open, _)| open < in_test.len() && in_test[open])
            .unwrap_or(false);
        analysis.fns.push(FnSummary {
            name: f.name.clone(),
            module_path: f.module_path.clone(),
            impl_type: f.impl_type.clone(),
            is_pub: f.is_pub,
            is_test: kw_in_test,
            line: f.line,
            col: f.col,
            calls: calls
                .into_iter()
                .map(|c| match c.callee {
                    RawCallee::Path(segs) => CallRef {
                        segs,
                        method: false,
                        line: c.line,
                        col: c.col,
                    },
                    RawCallee::Method(name) => CallRef {
                        segs: vec![name],
                        method: true,
                        line: c.line,
                        col: c.col,
                    },
                })
                .collect(),
            panics: panics
                .into_iter()
                .map(|p| PanicSite {
                    what: p.what,
                    line: p.line,
                    col: p.col,
                })
                .collect(),
        });
    }

    crate::diagnostics::sort_canonical(&mut diags);
    analysis.diags = diags;
    analysis.allows = allows;
    analysis
}

/// The index of an allow that covers `(line, rule)`, if any.
pub fn allow_covering(allows: &[AllowSite], line: u32, rule: &str) -> Option<usize> {
    allows
        .iter()
        .position(|a| a.target_line == line && a.rules.iter().any(|r| r == rule))
}

/// One closure argument to a parallel combinator.
struct ParClosure {
    /// Combinator name (`par_map`, …).
    combinator: String,
    /// Half-open token range of the closure body interior.
    body: (usize, usize),
    /// Names bound inside the closure (params, `let`s, `for`s, nested
    /// closure params) — everything else is captured.
    locals: BTreeSet<String>,
}

/// N001 over one function body: find parallel-combinator closures, flag
/// writes to captured state, then flag reads of state any parallel
/// closure in the same function writes.
#[allow(clippy::too_many_arguments)]
fn n001_check(
    path: &str,
    code: &[&Token],
    pairs: &[usize],
    open: usize,
    close: usize,
    config: &Config,
    allows: &mut [AllowSite],
    diags: &mut Vec<Diagnostic>,
) {
    let mut closures: Vec<ParClosure> = Vec::new();
    let mut i = open + 1;
    while i < close {
        let t = code[i];
        if t.kind == TokenKind::Ident
            && PAR_COMBINATORS.contains(&t.text.as_str())
            && i > 0
            && code[i - 1].is_punct('.')
            && code.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            let call_open = i + 1;
            let call_close = pairs[call_open].min(close);
            collect_closures(code, pairs, call_open, call_close, &t.text, &mut closures);
            i = call_open + 1;
            continue;
        }
        i += 1;
    }
    if closures.is_empty() {
        return;
    }

    let mut fire = |line: u32, col: u32, message: String, allows: &mut [AllowSite]| {
        let Some(level) = config.level("N001") else {
            return;
        };
        if config.path_allowed("N001", path) || config.path_out_of_scope("N001", path) {
            return;
        }
        if let Some(i) = allow_covering(allows, line, "N001") {
            allows[i].used = true;
            return;
        }
        diags.push(Diagnostic {
            rule: "N001",
            level,
            file: path.to_owned(),
            line,
            col,
            message,
        });
    };

    // Pass 1: writes to captured state.
    let mut tainted: BTreeSet<String> = BTreeSet::new();
    let mut write_roots: BTreeSet<usize> = BTreeSet::new();
    for c in &closures {
        let (lo, hi) = c.body;
        for j in lo..hi.min(code.len()) {
            let t = code[j];
            // Compound assignment: `root += …`, `root *= …`, ….
            if (t.is_punct('+') || t.is_punct('-') || t.is_punct('*') || t.is_punct('/'))
                && code.get(j + 1).is_some_and(|n| n.is_punct('='))
                && !code.get(j + 2).is_some_and(|n| n.is_punct('='))
            {
                if let Some(root) = receiver_root(code, pairs, j) {
                    if !c.locals.contains(&code[root].text) {
                        tainted.insert(code[root].text.clone());
                        write_roots.insert(root);
                        fire(
                            t.line,
                            t.col,
                            format!(
                                "order-sensitive accumulation `{} {}= …` onto captured \
                                 state inside a closure passed to `Executor::{}`: merge \
                                 order across items is the one thing the ordered executor \
                                 cannot fix; return per-item values and reduce them \
                                 sequentially after the map, or annotate with \
                                 `// operon-lint: allow(N001, reason = ...)`",
                                code[root].text, t.text, c.combinator
                            ),
                            allows,
                        );
                    }
                }
            }
            // Mutating method on captured state: `root.push(…)`, ….
            if t.kind == TokenKind::Ident
                && N001_MUTATORS.contains(&t.text.as_str())
                && j > 0
                && code[j - 1].is_punct('.')
                && code.get(j + 1).is_some_and(|n| n.is_punct('('))
            {
                if let Some(root) = receiver_root(code, pairs, j - 1) {
                    if !c.locals.contains(&code[root].text) {
                        tainted.insert(code[root].text.clone());
                        write_roots.insert(root);
                        fire(
                            t.line,
                            t.col,
                            format!(
                                "`{}.{}(…)` mutates a captured collection inside a \
                                 closure passed to `Executor::{}`: the merge order of \
                                 concurrent pushes is unspecified; collect per-item \
                                 results and combine them sequentially after the map, or \
                                 annotate with `// operon-lint: allow(N001, reason = ...)`",
                                code[root].text, t.text, c.combinator
                            ),
                            allows,
                        );
                    }
                }
            }
        }
    }

    // Pass 2: reads of state some parallel closure writes (loop-carried
    // taint): one finding per (closure, name).
    if tainted.is_empty() {
        return;
    }
    for c in &closures {
        let (lo, hi) = c.body;
        let mut reported: BTreeSet<&str> = BTreeSet::new();
        for (j, t) in code.iter().enumerate().take(hi.min(code.len())).skip(lo) {
            if t.kind == TokenKind::Ident
                && tainted.contains(&t.text)
                && !write_roots.contains(&j)
                && !c.locals.contains(&t.text)
                && !reported.contains(t.text.as_str())
            {
                reported.insert(&t.text);
                fire(
                    t.line,
                    t.col,
                    format!(
                        "read of `{}` inside a closure passed to `Executor::{}`, but \
                         `{}` is mutated by a parallel closure in this function: the \
                         read/write interleaving across items is merge-order dependent; \
                         snapshot the value before the map or restructure the \
                         accumulation, or annotate with \
                         `// operon-lint: allow(N001, reason = ...)`",
                        t.text, c.combinator, t.text
                    ),
                    allows,
                );
            }
        }
    }
}

/// Collects the closure arguments of one combinator call
/// (`(call_open, call_close)` are the call's parens).
fn collect_closures(
    code: &[&Token],
    pairs: &[usize],
    call_open: usize,
    call_close: usize,
    combinator: &str,
    out: &mut Vec<ParClosure>,
) {
    let mut j = call_open + 1;
    while j < call_close {
        let t = code[j];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            j = pairs[j].max(j) + 1;
            continue;
        }
        let starts_closure = t.is_punct('|')
            && j > 0
            && (code[j - 1].is_punct('(')
                || code[j - 1].is_punct(',')
                || code[j - 1].is_ident("move"));
        if !starts_closure {
            j += 1;
            continue;
        }
        // Parameter list: up to the next `|` (immediately for `||`).
        let params_end = if code.get(j + 1).is_some_and(|n| n.is_punct('|')) {
            j + 1
        } else {
            let mut k = j + 1;
            while k < call_close && !code[k].is_punct('|') {
                k += 1;
            }
            k
        };
        let mut locals = BTreeSet::new();
        collect_param_names(code, j + 1, params_end, &mut locals);
        // Body: a brace block or an expression up to the next top-level
        // `,` / the call's `)`.
        let (lo, hi) = match code.get(params_end + 1) {
            Some(b) if b.is_punct('{') => (params_end + 2, pairs[params_end + 1]),
            _ => {
                let mut k = params_end + 1;
                let mut end = call_close;
                while k < call_close {
                    let u = code[k];
                    if u.is_punct('(') || u.is_punct('[') || u.is_punct('{') {
                        k = pairs[k].max(k) + 1;
                        continue;
                    }
                    if u.is_punct(',') {
                        end = k;
                        break;
                    }
                    k += 1;
                }
                (params_end + 1, end)
            }
        };
        collect_body_bindings(code, lo, hi, &mut locals);
        out.push(ParClosure {
            combinator: combinator.to_owned(),
            body: (lo, hi),
            locals,
        });
        j = hi + 1;
    }
}

/// Adds the identifiers bound by a closure parameter list (skipping type
/// annotations after `:`).
fn collect_param_names(code: &[&Token], lo: usize, hi: usize, out: &mut BTreeSet<String>) {
    let mut in_type = false;
    for t in code.iter().take(hi.min(code.len())).skip(lo) {
        if t.is_punct(':') {
            in_type = true;
        } else if t.is_punct(',') {
            in_type = false;
        } else if !in_type
            && t.kind == TokenKind::Ident
            && !parse::is_keyword(&t.text)
            && t.text != "mut"
            && t.text != "ref"
        {
            out.insert(t.text.clone());
        }
    }
}

/// Adds names bound inside a closure body: `let` patterns, `for`
/// variables, and nested-closure parameters.
fn collect_body_bindings(code: &[&Token], lo: usize, hi: usize, out: &mut BTreeSet<String>) {
    let mut j = lo;
    while j < hi.min(code.len()) {
        let t = code[j];
        if t.is_ident("let") || t.is_ident("for") {
            let stop_in = t.is_ident("for");
            let mut k = j + 1;
            let mut in_type = false;
            while k < hi.min(code.len()) {
                let u = code[k];
                if u.is_punct('=') || u.is_punct(';') || (stop_in && u.is_ident("in")) {
                    break;
                }
                if u.is_punct(':') {
                    in_type = true;
                } else if u.is_punct(',') || u.is_punct('(') || u.is_punct('|') {
                    in_type = false;
                } else if !in_type
                    && u.kind == TokenKind::Ident
                    && !parse::is_keyword(&u.text)
                    && u.text != "mut"
                    && u.text != "ref"
                    && !u
                        .text
                        .chars()
                        .next()
                        .is_some_and(|c| c.is_ascii_uppercase())
                {
                    out.insert(u.text.clone());
                }
                k += 1;
            }
            j = k;
            continue;
        }
        // Nested closure parameters.
        let nested_closure = t.is_punct('|')
            && j > 0
            && (code[j - 1].is_punct('(')
                || code[j - 1].is_punct(',')
                || code[j - 1].is_punct('{')
                || code[j - 1].is_punct(';')
                || code[j - 1].is_punct('=')
                || code[j - 1].is_ident("move"));
        if nested_closure {
            let params_end = if code.get(j + 1).is_some_and(|n| n.is_punct('|')) {
                j + 1
            } else {
                let mut k = j + 1;
                while k < hi.min(code.len()) && !code[k].is_punct('|') {
                    k += 1;
                }
                k
            };
            collect_param_names(code, j + 1, params_end, out);
            j = params_end + 1;
            continue;
        }
        j += 1;
    }
}

/// Walks back from token index `at` (exclusive) over a `recv.field[i]`
/// chain to its root identifier. Returns the root's token index.
fn receiver_root(code: &[&Token], pairs: &[usize], at: usize) -> Option<usize> {
    let mut j = at.checked_sub(1)?;
    loop {
        let t = code[j];
        if t.is_punct(']') {
            // Jump to the matching `[`.
            let open = (0..j)
                .rev()
                .find(|&k| pairs[k] == j && code[k].is_punct('['))?;
            j = open.checked_sub(1)?;
            continue;
        }
        if t.kind == TokenKind::Ident && !parse::is_keyword(&t.text) || t.is_ident("self") {
            if j >= 2 && code[j - 1].is_punct('.') {
                j -= 2;
                continue;
            }
            return Some(j);
        }
        return None;
    }
}

/// Whether an identifier names a solver residual network or graph — the
/// receivers P001 polices. Matches the workspace's naming convention
/// (`g`, `*graph`, `net`, `*network` and suffixed forms like
/// `committed_net` or `trial_graph`) rather than attempting type
/// resolution; a bare `net`-suffixed word like `planet` stays exempt
/// because only the `_`-separated suffix counts.
fn graph_receiver(name: &str) -> bool {
    matches!(name, "g" | "graph" | "net" | "network")
        || name.ends_with("_g")
        || name.ends_with("_net")
        || name.ends_with("graph")
        || name.ends_with("network")
}

/// Marks code-token indices inside `for`/`while`/`loop` bodies (nested
/// closures included: work inside a closure that is called per item of a
/// loop is still per-iteration work).
///
/// A loop body is the first `{` at paren/bracket depth 0 after the
/// keyword; for `for` the header must also contain a depth-0 `in`, which
/// keeps `impl Trait for Type { … }` and `for<'a>` bounds from being
/// mistaken for loops.
fn loop_regions(code: &[&Token]) -> Vec<bool> {
    let mut in_loop = vec![false; code.len()];
    let close = matching_braces(code);
    for (i, t) in code.iter().enumerate() {
        let is_for = t.is_ident("for");
        if !(is_for || t.is_ident("while") || t.is_ident("loop")) {
            continue;
        }
        let mut depth = 0usize;
        let mut saw_in = false;
        let mut j = i + 1;
        while j < code.len() {
            let tok = code[j];
            if tok.is_punct('(') || tok.is_punct('[') {
                depth += 1;
            } else if tok.is_punct(')') || tok.is_punct(']') {
                depth = depth.saturating_sub(1);
            } else if depth == 0 {
                if tok.is_ident("in") {
                    saw_in = true;
                } else if tok.is_punct('{') {
                    if !is_for || saw_in {
                        for slot in in_loop.iter_mut().take(close[j] + 1).skip(j) {
                            *slot = true;
                        }
                    }
                    break;
                } else if tok.is_punct(';') || tok.is_punct('}') {
                    break; // not a loop header after all
                }
            }
            j += 1;
        }
    }
    in_loop
}

/// Marks code-token indices inside `#[cfg(test)]` / `#[test]` /
/// `#[should_panic]`-gated items (the `{ … }` that follows the attribute).
fn test_regions(code: &[&Token]) -> Vec<bool> {
    let mut in_test = vec![false; code.len()];
    let close = matching_braces(code);

    let mut i = 0usize;
    while i < code.len() {
        if code[i].is_punct('#') && code.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            // Collect the attribute's tokens up to the matching `]`.
            let mut depth = 0usize;
            let mut j = i + 1;
            let mut idents: Vec<&str> = Vec::new();
            while j < code.len() {
                let t = code[j];
                if t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if t.kind == TokenKind::Ident {
                    idents.push(&t.text);
                }
                j += 1;
            }
            let is_test_attr = match idents.first().copied() {
                Some("test") | Some("should_panic") => true,
                Some("cfg") => idents.contains(&"test"),
                _ => false,
            };
            if is_test_attr {
                // The gated item's body: first `{` before any `;` at the
                // item level (a gated `use …;` or `fn …;` has no body).
                let mut k = j + 1;
                while k < code.len() {
                    let t = code[k];
                    if t.is_punct('{') {
                        let end = close[k];
                        for slot in in_test.iter_mut().take(end + 1).skip(i) {
                            *slot = true;
                        }
                        break;
                    }
                    if t.is_punct(';') {
                        for slot in in_test.iter_mut().take(k + 1).skip(i) {
                            *slot = true;
                        }
                        break;
                    }
                    k += 1;
                }
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
    in_test
}

/// For each `{` code-token index, the index of its matching `}` (or the
/// last token when unbalanced).
fn matching_braces(code: &[&Token]) -> Vec<usize> {
    let mut close = vec![code.len().saturating_sub(1); code.len()];
    let mut stack: Vec<usize> = Vec::new();
    for (i, t) in code.iter().enumerate() {
        if t.is_punct('{') {
            stack.push(i);
        } else if t.is_punct('}') {
            if let Some(open) = stack.pop() {
                close[open] = i;
            }
        }
    }
    close
}

/// Parses every `// operon-lint: allow(...)` comment. Returns the
/// suppression sites plus L000 diagnostics for malformed ones.
fn parse_allows(
    path: &str,
    tokens: &[Token],
    code: &[&Token],
) -> (Vec<AllowSite>, Vec<Diagnostic>) {
    let mut allows: Vec<AllowSite> = Vec::new();
    let mut diags = Vec::new();

    for tok in tokens {
        if tok.kind != TokenKind::LineComment {
            continue;
        }
        let body = tok.text.trim_start_matches('/').trim();
        let Some(rest) = body.strip_prefix("operon-lint:") else {
            continue;
        };
        let bad = |message: &str, diags: &mut Vec<Diagnostic>| {
            diags.push(Diagnostic {
                rule: "L000",
                level: Level::Deny,
                file: path.to_owned(),
                line: tok.line,
                col: tok.col,
                message: message.to_owned(),
            });
        };
        let rest = rest.trim();
        let Some(args) = rest
            .strip_prefix("allow(")
            .and_then(|a| a.strip_suffix(')'))
        else {
            bad(
                "malformed suppression: expected `operon-lint: allow(RULE, reason = \"...\")`",
                &mut diags,
            );
            continue;
        };
        let Some(rules) = parse_allow_args(args) else {
            bad(
                "suppression without a reason: every `allow` must carry \
                 `reason = \"...\"` explaining why the invariant holds",
                &mut diags,
            );
            continue;
        };
        // Trailing comment suppresses its own line; a standalone comment
        // suppresses the next line that has code on it.
        let own_line = code.iter().any(|t| t.line == tok.line && t.col < tok.col);
        let target_line = if own_line {
            tok.line
        } else {
            match code.iter().find(|t| t.line > tok.line) {
                Some(t) => t.line,
                None => continue, // allow at EOF: nothing to suppress
            }
        };
        allows.push(AllowSite {
            line: tok.line,
            col: tok.col,
            target_line,
            rules,
            used: false,
        });
    }
    (allows, diags)
}

/// Parses `R001, D001, reason = "why"` into the listed rule ids.
/// Returns `None` when no rule is listed or the reason is missing/empty.
fn parse_allow_args(args: &str) -> Option<Vec<String>> {
    let mut rules = Vec::new();
    let mut reason: Option<String> = None;
    // Split on commas outside quotes.
    let mut parts: Vec<String> = Vec::new();
    let mut current = String::new();
    let mut in_string = false;
    for c in args.chars() {
        match c {
            '"' => {
                in_string = !in_string;
                current.push(c);
            }
            ',' if !in_string => {
                parts.push(std::mem::take(&mut current));
            }
            _ => current.push(c),
        }
    }
    parts.push(current);

    for part in parts {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        if let Some(value) = part.strip_prefix("reason") {
            let value = value.trim().strip_prefix('=')?.trim();
            let inner = value.strip_prefix('"')?.strip_suffix('"')?;
            if inner.trim().is_empty() {
                return None;
            }
            reason = Some(inner.to_owned());
        } else if part.chars().all(|c| c.is_ascii_alphanumeric()) {
            rules.push(part.to_owned());
        } else {
            return None;
        }
    }
    if rules.is_empty() || reason.is_none() {
        return None;
    }
    Some(rules)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_as(path: &str, src: &str) -> Vec<Diagnostic> {
        lint_source(path, src, &Config::default())
    }

    #[test]
    fn classify_roles() {
        assert_eq!(
            classify("crates/core/src/flow.rs"),
            Some(("core".to_owned(), FileRole::Lib))
        );
        assert_eq!(
            classify("crates/core/src/bin/operon_route.rs"),
            Some(("core".to_owned(), FileRole::Bin))
        );
        assert_eq!(
            classify("crates/lint/tests/golden.rs"),
            Some(("lint".to_owned(), FileRole::Other))
        );
        assert_eq!(
            classify("src/lib.rs"),
            Some(("operon-repro".to_owned(), FileRole::Lib))
        );
        assert_eq!(classify("README.md"), None);
    }

    #[test]
    fn d001_fires_in_solver_lib_only() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(lint_as("crates/core/src/x.rs", src).len(), 1);
        assert_eq!(lint_as("crates/exec/src/x.rs", src).len(), 0);
        assert_eq!(lint_as("crates/core/src/bin/x.rs", src).len(), 0);
    }

    #[test]
    fn d001_skips_strings_comments_and_tests() {
        let src = r#"
// HashMap in a comment
const S: &str = "HashMap";
#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    fn f() { let _m: HashMap<u32, u32> = HashMap::new(); }
}
"#;
        assert!(lint_as("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn d002_matches_instant_now_and_systemtime() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        let d = lint_as("crates/core/src/x.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "D002");
        // `Instant` alone (e.g. storing a start passed in) is fine.
        assert!(lint_as("crates/core/src/x.rs", "fn f(t: Instant) {}\n").is_empty());
        assert_eq!(
            lint_as(
                "crates/core/src/x.rs",
                "fn f() { let _ = SystemTime::UNIX_EPOCH; }\n"
            )
            .len(),
            1
        );
    }

    #[test]
    fn d003_matches_spawn_and_scope() {
        let src = "fn f() { std::thread::spawn(|| {}); }\n";
        let d = lint_as("crates/core/src/x.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "D003");
        let d = lint_as(
            "crates/geom/src/x.rs",
            "fn f() { thread::scope(|s| {}); }\n",
        );
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn r001_matches_panic_family() {
        let src = r#"
fn f(x: Option<u32>) -> u32 {
    let a = x.unwrap();
    let b = x.expect("msg");
    if a > b { panic!("boom"); }
    unreachable!()
}
"#;
        let d = lint_as("crates/steiner/src/x.rs", src);
        let rules: Vec<_> = d.iter().map(|d| d.rule).collect();
        assert_eq!(rules, vec!["R001"; 4]);
        // Non-solver crates keep their panics (e.g. netlist synth config).
        assert!(lint_as("crates/netlist/src/x.rs", src).is_empty());
    }

    #[test]
    fn r001_ignores_expect_err_and_standalone_idents() {
        let src = "fn f(r: Result<u32, u32>) { let _ = r.expect_err(\"e\"); }\n";
        assert!(lint_as("crates/core/src/x.rs", src).is_empty());
        // A function *named* unwrap, not a method call.
        assert!(lint_as("crates/core/src/x.rs", "fn unwrap() {}\n").is_empty());
    }

    #[test]
    fn p001_flags_network_clones_in_loop_bodies() {
        let src = "fn f(g: &McmfGraph) { for wi in 0..3 { let t = g.clone(); } }\n";
        let d = lint_as("crates/mcmf/src/x.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "P001");
        // Suffixed receivers and `while` loops count too.
        let src = "fn f() { while go() { let t = committed_graph.clone(); } }\n";
        assert_eq!(lint_as("crates/core/src/x.rs", src).len(), 1);
        // A clone inside a closure that a loop invokes per item is still
        // per-iteration work.
        let src = "fn f() { loop { run(|| net.clone()); } }\n";
        assert_eq!(lint_as("crates/core/src/x.rs", src).len(), 1);
    }

    #[test]
    fn p001_ignores_non_loops_and_non_network_receivers() {
        // Outside a loop body.
        assert!(lint_as(
            "crates/mcmf/src/x.rs",
            "fn f(g: &G) { let t = g.clone(); }\n"
        )
        .is_empty());
        // Receiver is not network-named.
        assert!(lint_as(
            "crates/core/src/x.rs",
            "fn f() { for i in 0..3 { let t = items.clone(); } }\n"
        )
        .is_empty());
        // `impl … for …` and `planet` must not pattern-match.
        assert!(lint_as(
            "crates/mcmf/src/x.rs",
            "impl Clone for Foo { fn clone(&self) -> Foo { Foo { g: self.g.clone() } } }\n"
        )
        .is_empty());
        assert!(lint_as(
            "crates/core/src/x.rs",
            "fn f() { for i in 0..3 { let t = planet.clone(); } }\n"
        )
        .is_empty());
        // `clone_from` is the sanctioned replica-refresh idiom.
        assert!(lint_as(
            "crates/core/src/x.rs",
            "fn f() { for i in 0..3 { scratch.g.clone_from(&committed.g); } }\n"
        )
        .is_empty());
        // Solver crates only.
        assert!(lint_as(
            "crates/exec/src/x.rs",
            "fn f() { for i in 0..3 { let t = g.clone(); } }\n"
        )
        .is_empty());
    }

    #[test]
    fn p001_respects_reasoned_allows() {
        let src = "fn f() {\n    for i in 0..3 {\n        // operon-lint: allow(P001, reason = \"cold oracle intentionally copies\")\n        let t = g.clone();\n    }\n}\n";
        assert!(lint_as("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn p002_flags_per_iteration_allocation() {
        let src = r#"
fn f(n: usize) {
    for i in 0..n {
        let mut row: Vec<u32> = Vec::new();
        let b = Box::new(i);
        let v = vec![0u8; 4];
        let s = format!("{i}");
        let c: Vec<u32> = (0..4).collect();
        let t = c.to_vec();
    }
}
"#;
        let d = lint_as("crates/core/src/x.rs", src);
        let rules: Vec<_> = d.iter().map(|d| d.rule).collect();
        assert_eq!(rules, vec!["P002"; 6]);
        // Outside a loop: fine.
        assert!(lint_as("crates/core/src/x.rs", "fn f() { let v = Vec::new(); }\n").is_empty());
        // Non-solver crates: fine.
        assert!(lint_as("crates/exec/src/x.rs", src).is_empty());
        // Turbofish collect still fires.
        let src = "fn f() { for i in 0..3 { let v = it.collect::<Vec<_>>(); } }\n";
        assert_eq!(lint_as("crates/core/src/x.rs", src).len(), 1);
    }

    #[test]
    fn p002_respects_allows_and_tests() {
        let src = "fn f() {\n    for i in 0..3 {\n        // operon-lint: allow(P002, reason = \"cold path, runs once per design\")\n        let v: Vec<u32> = Vec::new();\n    }\n}\n";
        assert!(lint_as("crates/core/src/x.rs", src).is_empty());
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { for i in 0..3 { let v: Vec<u32> = Vec::new(); } }\n}\n";
        assert!(lint_as("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn n001_flags_captured_accumulation() {
        let src = r#"
fn f(exec: &Executor, items: &[f64]) -> f64 {
    let mut total = 0.0;
    exec.par_map(items, |x| {
        total += x;
    });
    total
}
"#;
        let d = lint_as("crates/core/src/x.rs", src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "N001");
        assert!(d[0].message.contains("total"));
    }

    #[test]
    fn n001_flags_captured_pushes_and_tainted_reads() {
        let src = r#"
fn f(exec: &Executor, items: &[u32]) {
    let mut out = Vec::new();
    exec.par_map_coarse(items, |x| {
        out.push(*x);
    });
    exec.wave_map(items, |x| {
        let y = out.len() + *x as usize;
        y
    });
}
"#;
        let d = lint_as("crates/core/src/x.rs", src);
        let rules: Vec<_> = d.iter().map(|d| d.rule).collect();
        assert_eq!(rules, vec!["N001"; 2], "{d:?}");
        assert!(d[0].message.contains("out.push"));
        assert!(d[1].message.contains("read of `out`"));
    }

    #[test]
    fn n001_ignores_local_state_and_sequential_loops() {
        // Accumulation onto closure-local state is fine.
        let src = r#"
fn f(exec: &Executor, items: &[Vec<f64>]) -> Vec<f64> {
    exec.par_map(items, |xs| {
        let mut acc = 0.0;
        for x in xs {
            acc += x;
        }
        acc
    })
}
"#;
        assert!(lint_as("crates/core/src/x.rs", src).is_empty());
        // Sequential accumulation outside any parallel closure is fine.
        let src = "fn f(items: &[f64]) -> f64 { let mut t = 0.0; for x in items { t += x; } t }\n";
        assert!(lint_as("crates/core/src/x.rs", src).is_empty());
        // Reading a captured immutable is fine.
        let src = "fn f(exec: &Executor, items: &[f64], scale: f64) -> Vec<f64> { exec.par_map(items, |x| x * scale) }\n";
        assert!(lint_as("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn n001_expression_closures_and_params_are_local() {
        // Param named like outer state shadows it.
        let src = r#"
fn f(exec: &Executor, items: &[f64]) {
    let mut acc = 0.0;
    exec.par_map(items, |acc| acc + 1.0);
    acc += 1.0;
}
"#;
        assert!(lint_as("crates/core/src/x.rs", src).is_empty());
        // Expression-body closure with captured compound assignment.
        let src = "fn f(exec: &Executor, items: &[f64]) { let mut t = 0.0; exec.par_map(items, |x| t += x); }\n";
        let d = lint_as("crates/core/src/x.rs", src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "N001");
    }

    #[test]
    fn n001_respects_reasoned_allows() {
        let src = "fn f(exec: &Executor, items: &[u32]) {\n    let mut slots = Slots::new();\n    exec.par_map_coarse(items, |x| {\n        // operon-lint: allow(N001, reason = \"each worker writes a disjoint slot\")\n        slots.push(*x);\n    });\n}\n";
        assert!(lint_as("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn r002_fires_only_in_scoped_paths() {
        let mut config = Config::default();
        config
            .rules
            .get_mut("R002")
            .expect("R002 configured")
            .only_paths = vec!["crates/core/src/hot.rs".to_owned()];
        let src = "fn f() { let x = items()[0]; }\n";
        assert_eq!(lint_source("crates/core/src/hot.rs", src, &config).len(), 1);
        assert!(lint_source("crates/core/src/cold.rs", src, &config).is_empty());
    }

    #[test]
    fn p002_fires_in_explicitly_scoped_non_solver_paths() {
        let mut config = Config::default();
        config
            .rules
            .get_mut("P002")
            .expect("P002 configured")
            .only_paths = vec![
            "crates/core/src/lr.rs".to_owned(),
            "crates/geom/src/sweep.rs".to_owned(),
        ];
        let src = "fn f(n: u32) {\n    for _ in 0..n {\n        let v: Vec<u32> = Vec::new();\n        drop(v);\n    }\n}\n";
        // Named explicitly in only_paths: the allocation gate applies
        // even though geom is not a solver crate.
        let d = lint_source("crates/geom/src/sweep.rs", src, &config);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "P002");
        // Geom files the scope does not name stay exempt.
        assert!(lint_source("crates/geom/src/poly.rs", src, &config).is_empty());
    }

    #[test]
    fn inline_allow_suppresses_with_reason() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    // operon-lint: allow(R001, reason = \"checked by caller\")\n    x.unwrap()\n}\n";
        assert!(lint_as("crates/core/src/x.rs", src).is_empty());
        let trailing = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap() // operon-lint: allow(R001, reason = \"checked\")\n}\n";
        assert!(lint_as("crates/core/src/x.rs", trailing).is_empty());
    }

    #[test]
    fn allow_without_reason_is_a_deny_finding() {
        let src =
            "fn f(x: Option<u32>) -> u32 {\n    // operon-lint: allow(R001)\n    x.unwrap()\n}\n";
        let d = lint_as("crates/core/src/x.rs", src);
        let rules: Vec<_> = d.iter().map(|d| d.rule).collect();
        // The malformed allow suppresses nothing, so R001 still fires.
        assert!(rules.contains(&"L000"));
        assert!(rules.contains(&"R001"));
    }

    #[test]
    fn allow_only_covers_listed_rules() {
        let src = "fn f() {\n    // operon-lint: allow(D002, reason = \"not the right rule\")\n    let m = std::collections::HashMap::<u32, u32>::new();\n}\n";
        let d = lint_as("crates/core/src/x.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "D001");
    }

    #[test]
    fn test_fn_attribute_skips_body() {
        let src = "#[test]\nfn t() { let x: Option<u32> = None; x.unwrap(); }\nfn lib(x: Option<u32>) { x.unwrap(); }\n";
        let d = lint_as("crates/core/src/x.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn analysis_summarizes_fns_and_allow_usage() {
        let src = r#"
// operon-lint: allow(R001, reason = "bounded by caller")
pub fn api(x: Option<u32>) -> u32 { helper(x).unwrap() }
fn helper(x: Option<u32>) -> Option<u32> { x }
"#;
        let a = analyze_source("crates/core/src/x.rs", src, &Config::default());
        assert!(a.diags.is_empty());
        assert_eq!(a.fns.len(), 2);
        assert!(a.fns[0].is_pub);
        assert!(!a.fns[1].is_pub);
        assert_eq!(a.fns[0].calls.len(), 1);
        assert_eq!(a.fns[0].calls[0].segs, vec!["helper"]);
        assert_eq!(a.fns[0].panics.len(), 1);
        assert_eq!(a.fns[0].panics[0].what, "`.unwrap()`");
        assert_eq!(a.allows.len(), 1);
        assert!(a.allows[0].used, "allow suppressed the R001 finding");
    }
}
