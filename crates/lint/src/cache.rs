//! Incremental scan cache.
//!
//! Persists every file's [`FileAnalysis`] under `target/operon-lint/`,
//! keyed by an FNV-1a content hash, so a warm re-scan skips lexing,
//! parsing and the token-pattern rules for unchanged files entirely.
//! The workspace phases (symbol table → call graph → R003/W001) always
//! re-run over the full summary set — they are cheap, and re-deriving
//! them from cached per-file facts is what makes a cached scan
//! byte-identical to a cold one.
//!
//! The whole cache is invalidated when the configuration or the rule
//! engine changes: entries are stored under a fingerprint combining
//! [`RULES_VERSION`] with a hash of the parsed `Lint.toml`.
//!
//! The on-disk format is a plain line-oriented text file (one record per
//! line, free-text field last) — dependency-free, diffable, and
//! deterministic. Any parse surprise drops the entry (or the whole
//! file), degrading to a cold scan rather than wrong output.

use crate::config::Config;
use crate::diagnostics::{Diagnostic, Level};
use crate::rules::FileRole;
use crate::symbols::{AllowSite, CallRef, FileAnalysis, FnSummary, PanicSite};
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

/// Bumped whenever rule logic changes in a way that affects per-file
/// analysis output, invalidating every cached entry.
pub const RULES_VERSION: u32 = 2;

const HEADER: &str = "OPERON-LINT-CACHE v1";

/// FNV-1a, 64-bit. Stable across platforms and runs (unlike
/// `DefaultHasher`), and fast enough that hashing is never the
/// bottleneck next to I/O.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fingerprint of everything that affects per-file analysis besides the
/// file contents: the parsed configuration and the rule-engine version.
pub fn config_fingerprint(config: &Config) -> u64 {
    // `Config` is all `String`s, `Vec`s and `BTreeMap`s, so its Debug
    // form is deterministic.
    fnv1a(format!("v{RULES_VERSION}:{config:?}").as_bytes())
}

/// The in-memory cache: path → (content hash, analysis).
#[derive(Default)]
pub struct Cache {
    fingerprint: u64,
    entries: BTreeMap<String, (u64, FileAnalysis)>,
}

/// Location of the cache file under a workspace root.
pub fn cache_path(root: &Path) -> PathBuf {
    root.join("target").join("operon-lint").join("cache.v1")
}

impl Cache {
    /// An empty cache for `config`.
    pub fn new(config: &Config) -> Self {
        Cache {
            fingerprint: config_fingerprint(config),
            entries: BTreeMap::new(),
        }
    }

    /// Loads the cache for `root`, discarding it wholesale when missing,
    /// unreadable, or written under a different fingerprint.
    pub fn load(root: &Path, config: &Config) -> Self {
        let mut cache = Cache::new(config);
        let Ok(text) = fs::read_to_string(cache_path(root)) else {
            return cache;
        };
        let mut lines = text.lines();
        if lines.next() != Some(HEADER) {
            return cache;
        }
        let Some(fp) = lines.next().and_then(|l| l.parse::<u64>().ok()) else {
            return cache;
        };
        if fp != cache.fingerprint {
            return cache;
        }
        let mut lines = lines.peekable();
        while lines.peek().is_some() {
            let Some((path, hash, analysis)) = parse_entry(&mut lines) else {
                // A malformed entry poisons only the remainder; what was
                // parsed so far is still valid.
                break;
            };
            cache.entries.insert(path, (hash, analysis));
        }
        cache
    }

    /// The cached analysis for `path` at exactly `hash`, if present.
    pub fn lookup(&self, path: &str, hash: u64) -> Option<&FileAnalysis> {
        self.entries
            .get(path)
            .filter(|(h, _)| *h == hash)
            .map(|(_, a)| a)
    }

    /// The cached analysis for `path` regardless of content hash — the
    /// `--changed` fast path, where the caller asserts the file is clean
    /// and the cache skips even reading it.
    pub fn lookup_path(&self, path: &str) -> Option<&FileAnalysis> {
        self.entries.get(path).map(|(_, a)| a)
    }

    /// Like [`Self::lookup_path`], with the stored content hash (so a
    /// trusted entry can be carried forward into the next cache).
    pub fn get(&self, path: &str) -> Option<(u64, &FileAnalysis)> {
        self.entries.get(path).map(|(h, a)| (*h, a))
    }

    /// Records `analysis` for `path` at `hash`.
    pub fn insert(&mut self, path: &str, hash: u64, analysis: FileAnalysis) {
        self.entries.insert(path.to_owned(), (hash, analysis));
    }

    /// Moves the cached analysis for `path` at exactly `hash` out of the
    /// cache. The warm-scan fast path: a hit transfers ownership instead
    /// of cloning, and whatever is left after the scan loop is exactly
    /// the stale remainder (deleted files, changed content).
    pub fn take(&mut self, path: &str, hash: u64) -> Option<FileAnalysis> {
        match self.entries.get(path) {
            Some((h, _)) if *h == hash => self.entries.remove(path).map(|(_, a)| a),
            _ => None,
        }
    }

    /// Like [`Self::take`], but trusting the entry regardless of content
    /// hash — the `--changed` fast path, where the caller asserts the
    /// file is clean and the cache skips even reading it.
    pub fn take_path(&mut self, path: &str) -> Option<(u64, FileAnalysis)> {
        self.entries.remove(path)
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Writes the cache under `root` (atomically: temp file + rename).
    /// Failures are reported but safe to ignore — the next scan is
    /// merely cold.
    pub fn store(&self, root: &Path) -> std::io::Result<()> {
        store_entries(
            root,
            self.fingerprint,
            self.entries.iter().map(|(f, (h, a))| (f.as_str(), *h, a)),
        )
    }
}

/// Writes a cache file from borrowed entries, without requiring them to
/// live in a [`Cache`] (the scan pipeline owns its analyses directly).
/// Entries must arrive in ascending path order for deterministic output.
pub fn store_entries<'a>(
    root: &Path,
    fingerprint: u64,
    entries: impl Iterator<Item = (&'a str, u64, &'a FileAnalysis)>,
) -> std::io::Result<()> {
    let path = cache_path(root);
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir)?;
    }
    let mut out = String::new();
    out.push_str(HEADER);
    out.push('\n');
    out.push_str(&format!("{fingerprint}\n"));
    for (file, hash, analysis) in entries {
        serialize_entry(&mut out, file, hash, analysis);
    }
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, out)?;
    fs::rename(&tmp, &path)
}

/// Interns a rule name back to the `&'static str` diagnostics carry.
/// Unknown names (a cache written by a future version) fail the entry.
fn static_rule(name: &str) -> Option<&'static str> {
    Some(match name {
        "D001" => "D001",
        "D002" => "D002",
        "D003" => "D003",
        "R001" => "R001",
        "R002" => "R002",
        "R003" => "R003",
        "P001" => "P001",
        "P002" => "P002",
        "N001" => "N001",
        "W001" => "W001",
        "L000" => "L000",
        _ => return None,
    })
}

/// Strips anything that would break the one-record-per-line format.
/// Cached strings never legitimately contain newlines; this is a
/// belt-and-braces guard, not an escape scheme.
fn clean(s: &str) -> String {
    if s.contains('\n') || s.contains('\r') {
        s.replace(['\n', '\r'], " ")
    } else {
        s.to_owned()
    }
}

fn serialize_entry(out: &mut String, file: &str, hash: u64, a: &FileAnalysis) {
    out.push_str(&format!("ENTRY {hash} {}\n", clean(file)));
    out.push_str(&format!("C {}\n", clean(&a.crate_name)));
    let role = match a.role {
        Some(FileRole::Lib) => "Lib",
        Some(FileRole::Bin) => "Bin",
        Some(FileRole::Other) => "Other",
        None => "-",
    };
    out.push_str(&format!("R {role}\n"));
    for d in &a.diags {
        out.push_str(&format!(
            "D {}|{}|{}|{}|{}\n",
            d.rule,
            d.level.as_str(),
            d.line,
            d.col,
            clean(&d.message)
        ));
    }
    for f in &a.fns {
        out.push_str(&format!(
            "F {}|{}|{}|{}|{}|{}|{}\n",
            f.line,
            f.col,
            u8::from(f.is_pub),
            u8::from(f.is_test),
            clean(&f.module_path.join("/")),
            clean(f.impl_type.as_deref().unwrap_or("-")),
            clean(&f.name),
        ));
        for c in &f.calls {
            out.push_str(&format!(
                "  CALL {}|{}|{}|{}\n",
                u8::from(c.method),
                c.line,
                c.col,
                clean(&c.segs.join("::"))
            ));
        }
        for p in &f.panics {
            out.push_str(&format!("  PAN {}|{}|{}\n", p.line, p.col, clean(&p.what)));
        }
    }
    for al in &a.allows {
        out.push_str(&format!(
            "A {}|{}|{}|{}|{}\n",
            al.line,
            al.col,
            al.target_line,
            u8::from(al.used),
            clean(&al.rules.join(","))
        ));
    }
    out.push_str("END\n");
}

/// Splits off `n - 1` leading `|`-separated fields, leaving the free-text
/// remainder as the `n`-th.
fn fields(line: &str, n: usize) -> Option<Vec<&str>> {
    let mut out: Vec<&str> = Vec::with_capacity(n);
    let mut rest = line;
    for _ in 0..n - 1 {
        let (head, tail) = rest.split_once('|')?;
        out.push(head);
        rest = tail;
    }
    out.push(rest);
    Some(out)
}

fn parse_entry<'a, I: Iterator<Item = &'a str>>(
    lines: &mut std::iter::Peekable<I>,
) -> Option<(String, u64, FileAnalysis)> {
    let head = lines.next()?;
    let rest = head.strip_prefix("ENTRY ")?;
    let (hash, path) = rest.split_once(' ')?;
    let hash: u64 = hash.parse().ok()?;
    let mut a = FileAnalysis {
        path: path.to_owned(),
        ..FileAnalysis::default()
    };
    a.crate_name = lines.next()?.strip_prefix("C ")?.to_owned();
    a.role = match lines.next()?.strip_prefix("R ")? {
        "Lib" => Some(FileRole::Lib),
        "Bin" => Some(FileRole::Bin),
        "Other" => Some(FileRole::Other),
        "-" => None,
        _ => return None,
    };
    loop {
        let line = lines.next()?;
        if line == "END" {
            return Some((path.to_owned(), hash, a));
        }
        if let Some(body) = line.strip_prefix("D ") {
            let f = fields(body, 5)?;
            a.diags.push(Diagnostic {
                rule: static_rule(f[0])?,
                level: match f[1] {
                    "deny" => Level::Deny,
                    "warn" => Level::Warn,
                    _ => return None,
                },
                file: path.to_owned(),
                line: f[2].parse().ok()?,
                col: f[3].parse().ok()?,
                message: f[4].to_owned(),
            });
        } else if let Some(body) = line.strip_prefix("F ") {
            let f = fields(body, 7)?;
            a.fns.push(FnSummary {
                line: f[0].parse().ok()?,
                col: f[1].parse().ok()?,
                is_pub: f[2] == "1",
                is_test: f[3] == "1",
                module_path: if f[4].is_empty() {
                    Vec::new()
                } else {
                    f[4].split('/').map(str::to_owned).collect()
                },
                impl_type: if f[5] == "-" {
                    None
                } else {
                    Some(f[5].to_owned())
                },
                name: f[6].to_owned(),
                calls: Vec::new(),
                panics: Vec::new(),
            });
        } else if let Some(body) = line.strip_prefix("  CALL ") {
            let f = fields(body, 4)?;
            a.fns.last_mut()?.calls.push(CallRef {
                method: f[0] == "1",
                line: f[1].parse().ok()?,
                col: f[2].parse().ok()?,
                segs: f[3].split("::").map(str::to_owned).collect(),
            });
        } else if let Some(body) = line.strip_prefix("  PAN ") {
            let f = fields(body, 3)?;
            a.fns.last_mut()?.panics.push(PanicSite {
                line: f[0].parse().ok()?,
                col: f[1].parse().ok()?,
                what: f[2].to_owned(),
            });
        } else if let Some(body) = line.strip_prefix("A ") {
            let f = fields(body, 5)?;
            a.allows.push(AllowSite {
                line: f[0].parse().ok()?,
                col: f[1].parse().ok()?,
                target_line: f[2].parse().ok()?,
                used: f[3] == "1",
                rules: f[4].split(',').map(str::to_owned).collect(),
            });
        } else {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::analyze_source;

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }

    #[test]
    fn round_trips_a_real_analysis() {
        let src = r#"
// operon-lint: allow(R001, reason = "caller guarantees Some")
pub fn api(x: Option<u32>) -> u32 { crate::inner::go(x).unwrap() }
mod inner {
    pub fn go(x: Option<u32>) -> Option<u32> { operon_mcmf::relabel(x) }
}
fn loops() { for i in 0..3 { let v: Vec<u32> = Vec::new(); } }
"#;
        let config = Config::default();
        let a = analyze_source("crates/core/src/x.rs", src, &config);
        assert!(!a.fns.is_empty());
        assert!(!a.allows.is_empty());
        assert!(!a.diags.is_empty(), "the P002 in loops() should fire");

        let mut cache = Cache::new(&config);
        cache.insert("crates/core/src/x.rs", 42, a.clone());
        let mut out = String::new();
        serialize_entry(&mut out, "crates/core/src/x.rs", 42, &a);
        let mut lines = out.lines().peekable();
        let (path, hash, back) = parse_entry(&mut lines).expect("parses back");
        assert_eq!(path, "crates/core/src/x.rs");
        assert_eq!(hash, 42);
        assert_eq!(back.crate_name, a.crate_name);
        assert_eq!(back.role, a.role);
        assert_eq!(back.diags, a.diags);
        assert_eq!(back.fns, a.fns);
        assert_eq!(back.allows, a.allows);
    }

    #[test]
    fn store_and_load_via_disk() {
        let config = Config::default();
        let root =
            std::env::temp_dir().join(format!("operon-lint-cache-test-{}", std::process::id()));
        let a = analyze_source("crates/core/src/y.rs", "pub fn f() {}\n", &config);
        let mut cache = Cache::new(&config);
        cache.insert("crates/core/src/y.rs", fnv1a(b"pub fn f() {}\n"), a);
        cache.store(&root).expect("store succeeds");

        let loaded = Cache::load(&root, &config);
        assert!(loaded
            .lookup("crates/core/src/y.rs", fnv1a(b"pub fn f() {}\n"))
            .is_some());
        assert!(loaded.lookup("crates/core/src/y.rs", 7).is_none());
        assert!(loaded.lookup_path("crates/core/src/y.rs").is_some());

        // A different config fingerprint discards everything.
        let mut other = config.clone();
        other.solver_crates.push("bench".to_owned());
        let discarded = Cache::load(&root, &other);
        assert!(discarded.lookup_path("crates/core/src/y.rs").is_none());

        let _ = fs::remove_dir_all(&root);
    }
}
