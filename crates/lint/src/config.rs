//! `Lint.toml` parsing and path-glob matching.
//!
//! The parser covers exactly the TOML subset the checked-in `Lint.toml`
//! uses — top-level `key = value`, `[rules.<ID>]` tables, strings, and
//! string arrays — hand-rolled to keep the linter dependency-free.

use crate::diagnostics::Level;
use std::collections::BTreeMap;

/// Per-rule configuration.
#[derive(Clone, Debug)]
pub struct RuleConfig {
    /// `deny`, `warn`, or disabled (`off`) entirely.
    pub level: Option<Level>,
    /// Globs (workspace-relative) where the rule never fires.
    pub allow_paths: Vec<String>,
    /// Globs that *scope* the rule: when non-empty, the rule only fires
    /// inside matching files (used by R002's hot-path list).
    pub only_paths: Vec<String>,
}

impl RuleConfig {
    fn new(level: Level) -> Self {
        Self {
            level: Some(level),
            allow_paths: Vec::new(),
            only_paths: Vec::new(),
        }
    }
}

/// The full lint configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Crate names whose library code the solver-scoped rules
    /// (D001, R001) apply to.
    pub solver_crates: Vec<String>,
    /// Globs never scanned at all.
    pub exclude: Vec<String>,
    /// Per-rule settings, keyed by rule id.
    pub rules: BTreeMap<String, RuleConfig>,
}

impl Default for Config {
    /// The built-in defaults, matching the checked-in `Lint.toml`.
    fn default() -> Self {
        let mut rules = BTreeMap::new();
        rules.insert("D001".to_owned(), RuleConfig::new(Level::Deny));
        rules.insert("D002".to_owned(), RuleConfig::new(Level::Deny));
        rules.insert("D003".to_owned(), RuleConfig::new(Level::Deny));
        rules.insert("R001".to_owned(), RuleConfig::new(Level::Deny));
        rules.insert("P001".to_owned(), RuleConfig::new(Level::Deny));
        rules.insert("P002".to_owned(), RuleConfig::new(Level::Deny));
        rules.insert("R003".to_owned(), RuleConfig::new(Level::Deny));
        rules.insert("N001".to_owned(), RuleConfig::new(Level::Deny));
        rules.insert("W001".to_owned(), RuleConfig::new(Level::Warn));
        let mut r002 = RuleConfig::new(Level::Warn);
        r002.only_paths = Vec::new();
        rules.insert("R002".to_owned(), r002);
        Self {
            solver_crates: ["core", "steiner", "ilp", "mcmf", "optics"]
                .map(str::to_owned)
                .to_vec(),
            exclude: vec!["target/**".to_owned(), "shims/**".to_owned()],
            rules,
        }
    }
}

impl Config {
    /// The configured level of `rule`, or `None` when disabled.
    pub fn level(&self, rule: &str) -> Option<Level> {
        self.rules.get(rule).and_then(|r| r.level)
    }

    /// Whether `rule` is suppressed for `path` by its `allow_paths`.
    pub fn path_allowed(&self, rule: &str, path: &str) -> bool {
        self.rules
            .get(rule)
            .is_some_and(|r| r.allow_paths.iter().any(|g| glob_match(g, path)))
    }

    /// Whether `rule` is scoped to a path list that excludes `path`.
    pub fn path_out_of_scope(&self, rule: &str, path: &str) -> bool {
        self.rules.get(rule).is_some_and(|r| {
            !r.only_paths.is_empty() && !r.only_paths.iter().any(|g| glob_match(g, path))
        })
    }

    /// Whether `rule` names `path` explicitly in its `only_paths`.
    ///
    /// Solver-scoped rules use this to opt individual files of
    /// non-solver crates into the gate — e.g. P002 on the geom sweep
    /// kernel, which is hot-path code in an infrastructure crate.
    pub fn path_explicitly_scoped(&self, rule: &str, path: &str) -> bool {
        self.rules
            .get(rule)
            .is_some_and(|r| r.only_paths.iter().any(|g| glob_match(g, path)))
    }

    /// Whether `path` is excluded from scanning entirely.
    pub fn excluded(&self, path: &str) -> bool {
        self.exclude.iter().any(|g| glob_match(g, path))
    }

    /// Parses a `Lint.toml` document. Unknown keys are rejected so typos
    /// cannot silently disable a gate.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut config = Config::default();
        // Start rules from scratch: the file is the source of truth.
        config.rules.clear();
        let mut section: Option<String> = None;

        // Join multi-line arrays: a `key = [` opener accumulates lines
        // until the closing `]`.
        let mut lines: Vec<(usize, String)> = Vec::new();
        let mut pending: Option<(usize, String)> = None;
        for (idx, raw) in text.lines().enumerate() {
            let piece = strip_comment(raw).trim().to_owned();
            if piece.is_empty() {
                continue;
            }
            match pending.take() {
                Some((start, mut acc)) => {
                    acc.push(' ');
                    acc.push_str(&piece);
                    if piece.ends_with(']') {
                        lines.push((start, acc));
                    } else {
                        pending = Some((start, acc));
                    }
                }
                None => {
                    if piece.contains('[') && piece.contains('=') && !piece.ends_with(']') {
                        pending = Some((idx + 1, piece));
                    } else {
                        lines.push((idx + 1, piece));
                    }
                }
            }
        }
        if let Some((start, _)) = pending {
            return Err(format!("Lint.toml:{start}: unterminated array"));
        }

        for (lineno, line) in lines {
            let line = line.as_str();
            if let Some(rest) = line.strip_prefix('[') {
                let name = rest
                    .strip_suffix(']')
                    .ok_or_else(|| format!("Lint.toml:{lineno}: unterminated table header"))?
                    .trim();
                let rule = name
                    .strip_prefix("rules.")
                    .ok_or_else(|| format!("Lint.toml:{lineno}: unknown table `{name}`"))?;
                config
                    .rules
                    .entry(rule.to_owned())
                    .or_insert_with(|| RuleConfig::new(Level::Deny));
                section = Some(rule.to_owned());
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("Lint.toml:{lineno}: expected `key = value`"))?;
            let (key, value) = (key.trim(), value.trim());
            match &section {
                None => match key {
                    "solver_crates" => config.solver_crates = parse_string_array(value, lineno)?,
                    "exclude" => config.exclude = parse_string_array(value, lineno)?,
                    other => {
                        return Err(format!("Lint.toml:{lineno}: unknown key `{other}`"));
                    }
                },
                Some(rule) => {
                    let rc = config.rules.get_mut(rule).ok_or("rule table must exist")?;
                    match key {
                        "level" => {
                            rc.level = match parse_string(value, lineno)?.as_str() {
                                "deny" => Some(Level::Deny),
                                "warn" => Some(Level::Warn),
                                "off" => None,
                                other => {
                                    return Err(format!(
                                        "Lint.toml:{lineno}: level must be deny/warn/off, got `{other}`"
                                    ));
                                }
                            }
                        }
                        "allow_paths" => rc.allow_paths = parse_string_array(value, lineno)?,
                        "only_paths" => rc.only_paths = parse_string_array(value, lineno)?,
                        other => {
                            return Err(format!("Lint.toml:{lineno}: unknown rule key `{other}`"));
                        }
                    }
                }
            }
        }
        Ok(config)
    }
}

/// Strips a trailing `# comment`, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_string => escaped = !escaped,
            '"' if !escaped => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => escaped = false,
        }
    }
    line
}

fn parse_string(value: &str, lineno: usize) -> Result<String, String> {
    let inner = value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .ok_or_else(|| format!("Lint.toml:{lineno}: expected a quoted string, got `{value}`"))?;
    Ok(inner.to_owned())
}

fn parse_string_array(value: &str, lineno: usize) -> Result<Vec<String>, String> {
    let inner = value
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or_else(|| format!("Lint.toml:{lineno}: expected an array, got `{value}`"))?;
    let mut out = Vec::new();
    for item in inner.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue; // tolerate trailing commas
        }
        out.push(parse_string(item, lineno)?);
    }
    Ok(out)
}

/// Minimal glob matcher: `*` matches within a path segment, `**` matches
/// across segments, everything else is literal.
pub fn glob_match(glob: &str, path: &str) -> bool {
    fn inner(g: &[u8], p: &[u8]) -> bool {
        if g.is_empty() {
            return p.is_empty();
        }
        match g[0] {
            b'*' => {
                if g.len() >= 2 && g[1] == b'*' {
                    // `**`: swallow an optional following `/`, match any
                    // (possibly empty) path remainder.
                    let rest = if g.len() >= 3 && g[2] == b'/' {
                        &g[3..]
                    } else {
                        &g[2..]
                    };
                    (0..=p.len()).any(|i| inner(rest, &p[i..]))
                } else {
                    // `*`: any run of non-separator characters.
                    (0..=p.len())
                        .take_while(|&i| i == 0 || p[i - 1] != b'/')
                        .any(|i| inner(&g[1..], &p[i..]))
                }
            }
            c => !p.is_empty() && p[0] == c && inner(&g[1..], &p[1..]),
        }
    }
    inner(glob.as_bytes(), path.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glob_star_stays_in_segment() {
        assert!(glob_match("crates/*/src", "crates/core/src"));
        assert!(!glob_match("crates/*/src", "crates/core/sub/src"));
        assert!(glob_match("*.rs", "lib.rs"));
        assert!(!glob_match("*.rs", "src/lib.rs"));
    }

    #[test]
    fn glob_double_star_crosses_segments() {
        assert!(glob_match(
            "crates/bench/**",
            "crates/bench/src/bin/fig8.rs"
        ));
        assert!(glob_match(
            "**/fixtures/**",
            "crates/lint/tests/fixtures/d001.rs"
        ));
        assert!(glob_match("target/**", "target/release/deps/x.d"));
        assert!(!glob_match("target/**", "crates/target-ish/x.rs"));
    }

    #[test]
    fn glob_exact_file() {
        assert!(glob_match(
            "crates/exec/src/metrics.rs",
            "crates/exec/src/metrics.rs"
        ));
        assert!(!glob_match(
            "crates/exec/src/metrics.rs",
            "crates/exec/src/executor.rs"
        ));
    }

    #[test]
    fn parses_the_full_shape() {
        let text = r#"
# workspace config
solver_crates = ["core", "steiner"]
exclude = ["target/**", "shims/**"]

[rules.D001]
level = "deny"

[rules.D002]
level = "deny"
allow_paths = ["crates/exec/src/metrics.rs", "crates/bench/**"]

[rules.R002]
level = "warn"
only_paths = ["crates/core/src/lr.rs"]

[rules.X999]
level = "off"
"#;
        let c = Config::parse(text).expect("parses");
        assert_eq!(c.solver_crates, vec!["core", "steiner"]);
        assert_eq!(c.level("D001"), Some(Level::Deny));
        assert_eq!(c.level("R002"), Some(Level::Warn));
        assert_eq!(c.level("X999"), None);
        assert!(c.path_allowed("D002", "crates/bench/src/bin/fig8.rs"));
        assert!(!c.path_allowed("D002", "crates/core/src/flow.rs"));
        assert!(c.path_out_of_scope("R002", "crates/core/src/flow.rs"));
        assert!(!c.path_out_of_scope("R002", "crates/core/src/lr.rs"));
        assert!(!c.path_out_of_scope("D001", "anything.rs"));
    }

    #[test]
    fn unknown_keys_are_rejected() {
        assert!(Config::parse("solvercrates = []").is_err());
        assert!(Config::parse("[rules.D001]\nlvl = \"deny\"").is_err());
        assert!(Config::parse("[other.table]").is_err());
        assert!(Config::parse("[rules.D001]\nlevel = \"strict\"").is_err());
    }

    #[test]
    fn multi_line_arrays_are_joined() {
        let c = Config::parse(
            "[rules.R002]\nlevel = \"warn\"\nonly_paths = [\n    \"a.rs\", # hot\n    \"b.rs\",\n]",
        )
        .expect("parses");
        assert_eq!(
            c.rules.get("R002").expect("present").only_paths,
            vec!["a.rs", "b.rs"]
        );
        assert!(Config::parse("exclude = [\n  \"a.rs\",").is_err());
    }

    #[test]
    fn comments_and_trailing_commas_tolerated() {
        let c = Config::parse(
            "exclude = [\"a/**\", \"b#not-comment/**\",] # trailing\n[rules.D001] # tbl\nlevel = \"warn\"",
        )
        .expect("parses");
        assert_eq!(c.exclude, vec!["a/**", "b#not-comment/**"]);
        assert_eq!(c.level("D001"), Some(Level::Warn));
    }
}
