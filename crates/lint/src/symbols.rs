//! Cross-file symbol information.
//!
//! [`FileAnalysis`] is the per-file unit of work: everything the
//! workspace-level rules need, with the token stream already thrown
//! away. It is what the incremental cache persists — re-running the
//! global phases (symbol table → call graph → R003/W001) over cached
//! `FileAnalysis` values is byte-identical to a cold scan.
//!
//! [`SymbolTable`] indexes every recognized function in the workspace
//! by module path, impl type, and bare method name, so the call graph
//! can resolve workspace-local call paths without type information.

use crate::diagnostics::Diagnostic;
use crate::rules::FileRole;
use std::collections::BTreeMap;

/// A call site, normalized against the file's `use` map.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CallRef {
    /// Path segments (`["crate", "wdm", "plan"]`) — or the bare method
    /// name when `method` is true.
    pub segs: Vec<String>,
    /// Whether this was a `.method(…)` call (resolved by name against
    /// every workspace impl).
    pub method: bool,
    /// 1-based line of the callee name.
    pub line: u32,
    /// 1-based column of the callee name.
    pub col: u32,
}

/// A site inside a function body that can panic at runtime.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PanicSite {
    /// Human description (`` `.unwrap()` ``, `` `panic!` ``, `index into
    /// a call result`).
    pub what: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// One function, summarized for the call graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FnSummary {
    /// Name of the function.
    pub name: String,
    /// In-file module path (file-level path is added by the table).
    pub module_path: Vec<String>,
    /// Self type of the enclosing impl block, if any.
    pub impl_type: Option<String>,
    /// Whether the item carries a `pub` marker.
    pub is_pub: bool,
    /// Whether the function is test-gated (`#[test]`/`#[cfg(test)]`).
    pub is_test: bool,
    /// 1-based position of the `fn` keyword.
    pub line: u32,
    /// 1-based column of the `fn` keyword.
    pub col: u32,
    /// Call sites in the body, in source order.
    pub calls: Vec<CallRef>,
    /// Panic-capable sites in the body, in source order.
    pub panics: Vec<PanicSite>,
}

/// One `// operon-lint: allow(…)` suppression comment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AllowSite {
    /// 1-based line of the comment itself.
    pub line: u32,
    /// 1-based column of the comment itself.
    pub col: u32,
    /// The line whose findings this allow suppresses (its own line for a
    /// trailing comment, the next code line for a standalone one).
    pub target_line: u32,
    /// Rules listed in the allow.
    pub rules: Vec<String>,
    /// Whether the allow suppressed at least one same-file finding.
    /// Workspace rules (R003) may additionally mark an allow used during
    /// the global phase.
    pub used: bool,
}

/// Everything the workspace phases need to know about one file.
#[derive(Clone, Debug, Default)]
pub struct FileAnalysis {
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// Owning crate (directory name under `crates/`).
    pub crate_name: String,
    /// Library / binary role.
    pub role: Option<FileRole>,
    /// Local findings (token-pattern rules), already suppressed and
    /// level-filtered.
    pub diags: Vec<Diagnostic>,
    /// Recognized functions.
    pub fns: Vec<FnSummary>,
    /// Suppression comments, with local usage already marked.
    pub allows: Vec<AllowSite>,
}

/// A function's global identity: (file index, fn index within file).
pub type FnId = (usize, usize);

/// The crate ident used in source paths for a crate directory name
/// (`mcmf` → `operon_mcmf`, `core` → `operon`).
pub fn crate_ident(crate_name: &str) -> String {
    match crate_name {
        "core" => "operon".to_owned(),
        "operon-repro" => "operon_repro".to_owned(),
        other => format!("operon_{other}"),
    }
}

/// The module path a file's items live under within its crate
/// (`crates/core/src/wdm/mod.rs` → `["wdm"]`, `src/lib.rs` → `[]`).
pub fn file_module_path(path: &str) -> Vec<String> {
    let rest = path
        .strip_prefix("crates/")
        .and_then(|r| r.split_once('/'))
        .map_or(path, |(_, tail)| tail);
    let Some(in_src) = rest.strip_prefix("src/") else {
        return Vec::new();
    };
    let mut parts: Vec<&str> = in_src.split('/').collect();
    let Some(last) = parts.pop() else {
        return Vec::new();
    };
    // Binaries are separate crate roots; their items live at the root.
    if parts.first() == Some(&"bin") {
        return Vec::new();
    }
    let mut out: Vec<String> = parts.iter().map(|s| (*s).to_owned()).collect();
    match last.strip_suffix(".rs") {
        Some("lib") | Some("main") | Some("mod") | None => {}
        Some(stem) => out.push(stem.to_owned()),
    }
    out
}

/// Index over every recognized workspace function.
pub struct SymbolTable {
    /// `(crate, module path, fn name)` → definitions.
    by_module: BTreeMap<(String, Vec<String>, String), Vec<FnId>>,
    /// `(crate, impl type, fn name)` → definitions.
    by_impl: BTreeMap<(String, String, String), Vec<FnId>>,
    /// Bare method name → every impl-block definition in the workspace.
    by_method: BTreeMap<String, Vec<FnId>>,
    /// crate ident (`operon_mcmf`) → crate name (`mcmf`).
    idents: BTreeMap<String, String>,
}

impl SymbolTable {
    /// Builds the table over all analyzed files.
    pub fn build(files: &[FileAnalysis]) -> Self {
        let mut table = SymbolTable {
            by_module: BTreeMap::new(),
            by_impl: BTreeMap::new(),
            by_method: BTreeMap::new(),
            idents: BTreeMap::new(),
        };
        for (fi, file) in files.iter().enumerate() {
            table
                .idents
                .insert(crate_ident(&file.crate_name), file.crate_name.clone());
            let base = file_module_path(&file.path);
            for (gi, f) in file.fns.iter().enumerate() {
                let id: FnId = (fi, gi);
                let mut module = base.clone();
                module.extend(f.module_path.iter().cloned());
                table
                    .by_module
                    .entry((file.crate_name.clone(), module, f.name.clone()))
                    .or_default()
                    .push(id);
                if let Some(ty) = &f.impl_type {
                    table
                        .by_impl
                        .entry((file.crate_name.clone(), ty.clone(), f.name.clone()))
                        .or_default()
                        .push(id);
                    table.by_method.entry(f.name.clone()).or_default().push(id);
                }
            }
        }
        table
    }

    /// The crate name for a leading path segment that names a workspace
    /// crate (`operon_mcmf` → `mcmf`), if any.
    pub fn crate_of_ident(&self, ident: &str) -> Option<&str> {
        self.idents.get(ident).map(String::as_str)
    }

    /// All impl-block definitions of a bare method name.
    pub fn methods_named(&self, name: &str) -> &[FnId] {
        self.by_method.get(name).map_or(&[], Vec::as_slice)
    }

    /// Definitions of `name` as a free function in `module` of `crate`.
    pub fn fn_in_module(&self, crate_name: &str, module: &[String], name: &str) -> &[FnId] {
        self.by_module
            .get(&(crate_name.to_owned(), module.to_vec(), name.to_owned()))
            .map_or(&[], Vec::as_slice)
    }

    /// Definitions of `Type::name` in `crate` (any module).
    pub fn fn_in_impl(&self, crate_name: &str, ty: &str, name: &str) -> &[FnId] {
        self.by_impl
            .get(&(crate_name.to_owned(), ty.to_owned(), name.to_owned()))
            .map_or(&[], Vec::as_slice)
    }

    /// Resolves one call from `(crate, module, impl type)` context to
    /// workspace definitions. Returns an empty list for std/extern
    /// calls. The result is deterministic (sorted, deduped).
    pub fn resolve(
        &self,
        call: &CallRef,
        from_crate: &str,
        from_module: &[String],
        from_impl: Option<&str>,
    ) -> Vec<FnId> {
        let mut out: Vec<FnId> = Vec::new();
        if call.method {
            out.extend_from_slice(self.methods_named(&call.segs[0]));
            out.sort_unstable();
            out.dedup();
            return out;
        }
        let segs = &call.segs;
        let (target_crate, rel): (&str, Vec<String>) = match segs[0].as_str() {
            "crate" => (from_crate, segs[1..].to_vec()),
            "self" => {
                let mut m: Vec<String> = from_module.to_vec();
                m.extend(segs[1..].iter().cloned());
                (from_crate, m)
            }
            "super" => {
                let mut m: Vec<String> = from_module.to_vec();
                m.pop();
                m.extend(segs[1..].iter().cloned());
                (from_crate, m)
            }
            "Self" => {
                if let (Some(ty), true) = (from_impl, segs.len() == 2) {
                    out.extend_from_slice(self.fn_in_impl(from_crate, ty, &segs[1]));
                }
                out.sort_unstable();
                out.dedup();
                return out;
            }
            head => match self.crate_of_ident(head) {
                Some(c) => (c, segs[1..].to_vec()),
                None => {
                    // Unqualified: search the current module chain, then
                    // the crate root, then `Type::name` in this crate.
                    if segs.len() == 1 {
                        let mut m = from_module.to_vec();
                        loop {
                            let hit = self.fn_in_module(from_crate, &m, &segs[0]);
                            if !hit.is_empty() {
                                out.extend_from_slice(hit);
                                break;
                            }
                            if m.pop().is_none() {
                                break;
                            }
                        }
                    } else {
                        // Module-relative or root-relative path.
                        let mut m = from_module.to_vec();
                        m.extend(segs[..segs.len() - 1].iter().cloned());
                        out.extend_from_slice(self.fn_in_module(
                            from_crate,
                            &m,
                            &segs[segs.len() - 1],
                        ));
                        if out.is_empty() {
                            out.extend_from_slice(self.fn_in_module(
                                from_crate,
                                &segs[..segs.len() - 1],
                                &segs[segs.len() - 1],
                            ));
                        }
                        if out.is_empty() && segs.len() >= 2 {
                            out.extend_from_slice(self.fn_in_impl(
                                from_crate,
                                &segs[segs.len() - 2],
                                &segs[segs.len() - 1],
                            ));
                        }
                    }
                    out.sort_unstable();
                    out.dedup();
                    return out;
                }
            },
        };
        if rel.is_empty() {
            return out;
        }
        let name = &rel[rel.len() - 1];
        let module = &rel[..rel.len() - 1];
        out.extend_from_slice(self.fn_in_module(target_crate, module, name));
        if out.is_empty() && !module.is_empty() {
            // `path::Type::name` — an associated function.
            out.extend_from_slice(self.fn_in_impl(target_crate, &module[module.len() - 1], name));
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_fn(name: &str, module: &[&str], impl_type: Option<&str>) -> FnSummary {
        FnSummary {
            name: name.to_owned(),
            module_path: module.iter().map(|s| (*s).to_owned()).collect(),
            impl_type: impl_type.map(str::to_owned),
            is_pub: true,
            is_test: false,
            line: 1,
            col: 1,
            calls: Vec::new(),
            panics: Vec::new(),
        }
    }

    fn fake_file(path: &str, crate_name: &str, fns: Vec<FnSummary>) -> FileAnalysis {
        FileAnalysis {
            path: path.to_owned(),
            crate_name: crate_name.to_owned(),
            role: Some(FileRole::Lib),
            diags: Vec::new(),
            fns,
            allows: Vec::new(),
        }
    }

    #[test]
    fn file_module_paths() {
        assert!(file_module_path("crates/core/src/lib.rs").is_empty());
        assert_eq!(file_module_path("crates/core/src/lr.rs"), vec!["lr"]);
        assert_eq!(file_module_path("crates/core/src/wdm/mod.rs"), vec!["wdm"]);
        assert_eq!(
            file_module_path("crates/core/src/wdm/residual.rs"),
            vec!["wdm", "residual"]
        );
        assert!(file_module_path("crates/core/src/bin/operon_route.rs").is_empty());
        assert_eq!(file_module_path("src/power.rs"), vec!["power"]);
    }

    #[test]
    fn resolves_cross_crate_and_local_calls() {
        let files = vec![
            fake_file(
                "crates/mcmf/src/lib.rs",
                "mcmf",
                vec![
                    fake_fn("shortest_path", &[], None),
                    fake_fn("solve", &[], Some("McmfGraph")),
                ],
            ),
            fake_file(
                "crates/core/src/wdm/mod.rs",
                "core",
                vec![fake_fn("plan", &[], None)],
            ),
        ];
        let table = SymbolTable::build(&files);

        let call = |segs: &[&str]| CallRef {
            segs: segs.iter().map(|s| (*s).to_owned()).collect(),
            method: false,
            line: 1,
            col: 1,
        };
        // Cross-crate free fn.
        assert_eq!(
            table.resolve(&call(&["operon_mcmf", "shortest_path"]), "core", &[], None),
            vec![(0, 0)]
        );
        // Cross-crate associated fn.
        assert_eq!(
            table.resolve(
                &call(&["operon_mcmf", "McmfGraph", "solve"]),
                "core",
                &[],
                None
            ),
            vec![(0, 1)]
        );
        // crate:: path from within core.
        assert_eq!(
            table.resolve(&call(&["crate", "wdm", "plan"]), "core", &[], None),
            vec![(1, 0)]
        );
        // Same-module unqualified call.
        assert_eq!(
            table.resolve(&call(&["plan"]), "core", &["wdm".to_owned()], None),
            vec![(1, 0)]
        );
        // Method-name fallback.
        let m = CallRef {
            segs: vec!["solve".to_owned()],
            method: true,
            line: 1,
            col: 1,
        };
        assert_eq!(table.resolve(&m, "core", &[], None), vec![(0, 1)]);
        // std calls resolve to nothing.
        assert!(table
            .resolve(&call(&["std", "mem", "take"]), "core", &[], None)
            .is_empty());
    }
}
