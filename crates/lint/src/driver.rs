//! Workspace walker and scan pipeline.
//!
//! A scan has two phases. The per-file phase (lex → parse → local rules
//! → [`FileAnalysis`]) is cached under `target/operon-lint/` keyed by
//! content hash; the workspace phase (symbol table → call graph →
//! R003/W001) always re-runs over the full summary set, which is what
//! makes a warm scan byte-identical to a cold one.

use crate::cache::{config_fingerprint, fnv1a, store_entries, Cache};
use crate::callgraph::workspace_rules;
use crate::config::Config;
use crate::diagnostics::{sort_canonical, Diagnostic};
use crate::rules::analyze_source;
use crate::symbols::FileAnalysis;
use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

/// Outcome of a workspace scan.
pub struct ScanReport {
    /// All findings, sorted by (file, line, col, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Number of files actually linted (classified Lib/Bin, not excluded).
    pub files_scanned: usize,
    /// Files whose per-file analysis came from the cache.
    pub cache_hits: usize,
    /// Files analyzed from source this run.
    pub cache_misses: usize,
}

/// Knobs for a scan.
pub struct ScanOptions {
    /// Load/store the on-disk cache (workspace scans only).
    pub use_cache: bool,
    /// `--changed` mode: paths in this list are re-analyzed from source;
    /// every other file is trusted to its cached entry without even
    /// re-reading it. The workspace phases still run over everything, so
    /// the changed files' call-graph neighborhood (callers whose R003
    /// chains pass through them, allows they sanctioned) refreshes
    /// automatically.
    pub changed: Option<Vec<String>>,
}

impl Default for ScanOptions {
    fn default() -> Self {
        ScanOptions {
            use_cache: true,
            changed: None,
        }
    }
}

/// Directory names never descended into, independent of `Lint.toml`.
const SKIP_DIRS: &[&str] = &["target", ".git", "node_modules"];

/// Collects every `.rs` path under `root`, workspace-relative with
/// forward slashes, in deterministic (sorted) order.
pub fn collect_rs_files(root: &Path) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    let mut stack: Vec<PathBuf> = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries = fs::read_dir(&dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("read_dir entry in {}: {e}", dir.display()))?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                let rel = path
                    .strip_prefix(root)
                    .map_err(|e| format!("strip_prefix: {e}"))?;
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Scans the workspace rooted at `root` with `config` and the default
/// options (cache on).
pub fn scan_workspace(root: &Path, config: &Config) -> Result<ScanReport, String> {
    scan_workspace_with(root, config, &ScanOptions::default())
}

/// Scans the workspace rooted at `root` with explicit options.
pub fn scan_workspace_with(
    root: &Path,
    config: &Config,
    opts: &ScanOptions,
) -> Result<ScanReport, String> {
    let files = collect_rs_files(root)?;
    run_scan(root, &files, config, opts)
}

/// Lints an explicit list of workspace-relative files. No cache: a
/// partial file list is a partial workspace view (R003 reachability and
/// W001 usage are computed over just these files).
pub fn scan_files(root: &Path, files: &[String], config: &Config) -> Result<ScanReport, String> {
    run_scan(
        root,
        files,
        config,
        &ScanOptions {
            use_cache: false,
            changed: None,
        },
    )
}

fn run_scan(
    root: &Path,
    files: &[String],
    config: &Config,
    opts: &ScanOptions,
) -> Result<ScanReport, String> {
    let mut cache = if opts.use_cache {
        Cache::load(root, config)
    } else {
        Cache::new(config)
    };
    let changed: Option<BTreeSet<&str>> = opts
        .changed
        .as_ref()
        .map(|c| c.iter().map(String::as_str).collect());

    // Hits are *moved* out of the loaded cache (no clone); `hashes`
    // stays aligned with `analyses` so the cache can be rewritten from
    // borrows. `files` is sorted, so the pair is in ascending path order.
    let mut hashes: Vec<u64> = Vec::new();
    let mut analyses: Vec<FileAnalysis> = Vec::new();
    let mut cache_hits = 0usize;
    let mut cache_misses = 0usize;

    for rel in files {
        if config.excluded(rel) {
            continue;
        }
        // `--changed` fast path: trust the cached entry without reading.
        if let Some(changed) = &changed {
            if !changed.contains(rel.as_str()) {
                if let Some((hash, a)) = cache.take_path(rel) {
                    cache_hits += 1;
                    hashes.push(hash);
                    analyses.push(a);
                    continue;
                }
            }
        }
        let source = fs::read_to_string(root.join(rel)).map_err(|e| format!("read {rel}: {e}"))?;
        let hash = fnv1a(source.as_bytes());
        match cache.take(rel, hash) {
            Some(a) => {
                cache_hits += 1;
                hashes.push(hash);
                analyses.push(a);
            }
            None => {
                cache_misses += 1;
                hashes.push(hash);
                analyses.push(analyze_source(rel, &source, config));
            }
        }
    }
    // Leftover entries are stale (deleted files, superseded content);
    // a fully-warm scan with no leftovers needs no rewrite at all.
    if opts.use_cache && (cache_misses > 0 || !cache.is_empty()) {
        // Store *before* the workspace phase so cached entries never
        // carry global allow-usage marks; a failure just means the next
        // scan is cold.
        let _ = store_entries(
            root,
            config_fingerprint(config),
            analyses
                .iter()
                .zip(&hashes)
                .map(|(a, &h)| (a.path.as_str(), h, a)),
        );
    }

    let mut diagnostics: Vec<Diagnostic> = analyses.iter().flat_map(|a| a.diags.clone()).collect();
    diagnostics.extend(workspace_rules(&analyses, config));
    sort_canonical(&mut diagnostics);
    let files_scanned = analyses.iter().filter(|a| a.role.is_some()).count();
    Ok(ScanReport {
        diagnostics,
        files_scanned,
        cache_hits,
        cache_misses,
    })
}

/// Loads `Lint.toml` from `root` when present, else the built-in
/// defaults.
pub fn load_config(root: &Path) -> Result<Config, String> {
    let path = root.join("Lint.toml");
    match fs::read_to_string(&path) {
        Ok(text) => Config::parse(&text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Config::default()),
        Err(e) => Err(format!("read {}: {e}", path.display())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The workspace root, two levels up from this crate's manifest.
    fn workspace_root() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .expect("workspace root exists")
    }

    #[test]
    fn collects_known_files_in_sorted_order() {
        let files = collect_rs_files(&workspace_root()).expect("walk succeeds");
        assert!(files.iter().any(|f| f == "crates/core/src/flow.rs"));
        assert!(files.iter().any(|f| f == "crates/lint/src/driver.rs"));
        assert!(files.windows(2).all(|w| w[0] < w[1]));
        // target/ and .git/ are never walked.
        assert!(files.iter().all(|f| !f.starts_with("target/")));
    }
}
