//! Workspace walker: finds every `.rs` file, classifies it, and runs the
//! rule engine, producing one canonically-sorted finding list.

use crate::config::Config;
use crate::diagnostics::{sort_canonical, Diagnostic};
use crate::rules::lint_source;
use std::fs;
use std::path::{Path, PathBuf};

/// Outcome of a workspace scan.
pub struct ScanReport {
    /// All findings, sorted by (file, line, col, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Number of files actually linted (classified Lib/Bin, not excluded).
    pub files_scanned: usize,
}

/// Directory names never descended into, independent of `Lint.toml`.
const SKIP_DIRS: &[&str] = &["target", ".git", "node_modules"];

/// Collects every `.rs` path under `root`, workspace-relative with
/// forward slashes, in deterministic (sorted) order.
pub fn collect_rs_files(root: &Path) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    let mut stack: Vec<PathBuf> = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries = fs::read_dir(&dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("read_dir entry in {}: {e}", dir.display()))?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                let rel = path
                    .strip_prefix(root)
                    .map_err(|e| format!("strip_prefix: {e}"))?;
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Scans the workspace rooted at `root` with `config`.
pub fn scan_workspace(root: &Path, config: &Config) -> Result<ScanReport, String> {
    let files = collect_rs_files(root)?;
    scan_files(root, &files, config)
}

/// Lints an explicit list of workspace-relative files.
pub fn scan_files(root: &Path, files: &[String], config: &Config) -> Result<ScanReport, String> {
    let mut diagnostics = Vec::new();
    let mut files_scanned = 0usize;
    for rel in files {
        if config.excluded(rel) {
            continue;
        }
        let source = fs::read_to_string(root.join(rel)).map_err(|e| format!("read {rel}: {e}"))?;
        diagnostics.extend(lint_source(rel, &source, config));
        if crate::rules::classify(rel)
            .is_some_and(|(_, role)| role != crate::rules::FileRole::Other)
        {
            files_scanned += 1;
        }
    }
    sort_canonical(&mut diagnostics);
    Ok(ScanReport {
        diagnostics,
        files_scanned,
    })
}

/// Loads `Lint.toml` from `root` when present, else the built-in
/// defaults.
pub fn load_config(root: &Path) -> Result<Config, String> {
    let path = root.join("Lint.toml");
    match fs::read_to_string(&path) {
        Ok(text) => Config::parse(&text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Config::default()),
        Err(e) => Err(format!("read {}: {e}", path.display())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The workspace root, two levels up from this crate's manifest.
    fn workspace_root() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .expect("workspace root exists")
    }

    #[test]
    fn collects_known_files_in_sorted_order() {
        let files = collect_rs_files(&workspace_root()).expect("walk succeeds");
        assert!(files.iter().any(|f| f == "crates/core/src/flow.rs"));
        assert!(files.iter().any(|f| f == "crates/lint/src/driver.rs"));
        assert!(files.windows(2).all(|w| w[0] < w[1]));
        // target/ and .git/ are never walked.
        assert!(files.iter().all(|f| !f.starts_with("target/")));
    }
}
