//! Findings and their human/JSON renderings.

use std::fmt;

/// Severity of a finding, as configured per rule in `Lint.toml`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Reported but never fails the run.
    Warn,
    /// Fails the run (nonzero exit).
    Deny,
}

impl Level {
    /// The lowercase name used in configuration and output.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Warn => "warn",
            Level::Deny => "deny",
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding at a source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule identifier (`D001`, `R001`, or `L000` for malformed
    /// suppressions).
    pub rule: &'static str,
    /// Severity after configuration.
    pub level: Level,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// `file:line:col: level[rule] message` — the clickable terminal form.
    pub fn render_human(&self) -> String {
        format!(
            "{}:{}:{}: {}[{}] {}",
            self.file, self.line, self.col, self.level, self.rule, self.message
        )
    }
}

/// Sorts findings into the canonical (file, line, col, rule) order so
/// output is byte-stable across runs and platforms.
pub fn sort_canonical(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
}

/// Escapes a string for inclusion in a JSON document.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the full finding list as a stable, pretty-printed JSON
/// document (the `--format json` output).
pub fn render_json(diags: &[Diagnostic]) -> String {
    let deny = diags.iter().filter(|d| d.level == Level::Deny).count();
    let warn = diags.len() - deny;
    let mut out = String::from("{\n  \"findings\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"level\": \"{}\", \"file\": \"{}\", \"line\": {}, \"col\": {}, \"message\": \"{}\"}}",
            d.rule,
            d.level,
            escape_json(&d.file),
            d.line,
            d.col,
            escape_json(&d.message)
        ));
    }
    if !diags.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str(&format!(
        "],\n  \"deny\": {deny},\n  \"warn\": {warn}\n}}\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(rule: &'static str, file: &str, line: u32, col: u32, level: Level) -> Diagnostic {
        Diagnostic {
            rule,
            level,
            file: file.to_owned(),
            line,
            col,
            message: format!("finding from {rule}"),
        }
    }

    #[test]
    fn human_rendering_is_clickable() {
        let d = diag("D001", "crates/core/src/flow.rs", 12, 5, Level::Deny);
        assert_eq!(
            d.render_human(),
            "crates/core/src/flow.rs:12:5: deny[D001] finding from D001"
        );
    }

    #[test]
    fn canonical_sort_orders_by_position() {
        let mut v = vec![
            diag("R001", "b.rs", 1, 1, Level::Deny),
            diag("D001", "a.rs", 9, 2, Level::Warn),
            diag("D001", "a.rs", 9, 1, Level::Warn),
        ];
        sort_canonical(&mut v);
        assert_eq!(v[0].file, "a.rs");
        assert_eq!(v[0].col, 1);
        assert_eq!(v[2].file, "b.rs");
    }

    #[test]
    fn json_counts_levels_and_escapes() {
        let mut d = diag("D002", "x.rs", 1, 1, Level::Deny);
        d.message = "say \"hi\"\npath\\here".to_owned();
        let json = render_json(&[d, diag("R002", "y.rs", 2, 2, Level::Warn)]);
        assert!(json.contains("\"deny\": 1"));
        assert!(json.contains("\"warn\": 1"));
        assert!(json.contains("say \\\"hi\\\"\\npath\\\\here"));
    }

    #[test]
    fn empty_findings_render_empty_array() {
        let json = render_json(&[]);
        assert!(json.contains("\"findings\": []"));
        assert!(json.contains("\"deny\": 0"));
    }
}
