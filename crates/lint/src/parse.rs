//! A lightweight item parser on top of the lexer.
//!
//! Turns a file's code-token stream into just enough structure for
//! workspace-level analysis: a brace tree, the module/impl scope every
//! `fn` lives in, `use` declarations (so call paths can be normalized
//! against workspace-local imports), and — per function body — the raw
//! call sites and panic-capable sites the call-graph rules consume.
//!
//! This is deliberately not a Rust grammar. It is a token-pattern
//! recognizer that never fails: unknown constructs are skipped, broken
//! files degrade to fewer recognized items, and every recognizer is
//! bounded by the brace tree so a confused scan cannot run away.

use crate::lexer::Token;
use crate::lexer::TokenKind;
use std::collections::BTreeMap;

/// Keywords that look like `ident (` but are never calls.
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "static", "struct", "trait", "type", "unsafe", "use", "where", "while",
    "yield",
];

/// Whether `name` is a Rust keyword (of the subset that matters here).
pub fn is_keyword(name: &str) -> bool {
    KEYWORDS.binary_search(&name).is_ok()
}

/// One `{ … }` region, by code-token index.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BraceNode {
    /// Code-token index of the `{`.
    pub open: usize,
    /// Code-token index of the matching `}` (last token when unbalanced).
    pub close: usize,
    /// Directly nested brace regions, in source order.
    pub children: Vec<BraceNode>,
}

/// A function item.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FnDef {
    /// The function's name.
    pub name: String,
    /// Enclosing `mod` names within the file, outermost first.
    pub module_path: Vec<String>,
    /// The `impl` block's self type (last path segment), when inside one.
    pub impl_type: Option<String>,
    /// Whether the item carries any `pub` marker (`pub`, `pub(crate)`, …).
    pub is_pub: bool,
    /// 1-based position of the `fn` keyword.
    pub line: u32,
    /// 1-based column of the `fn` keyword.
    pub col: u32,
    /// Code-token indices of the body's `{` and `}`; `None` for
    /// body-less trait declarations.
    pub body: Option<(usize, usize)>,
}

/// What a call site refers to, before symbol resolution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RawCallee {
    /// `a::b::f(…)` or `f(…)` — path segments after local `use`
    /// normalization.
    Path(Vec<String>),
    /// `recv.m(…)` — resolved later by method name against every
    /// workspace `impl`.
    Method(String),
}

/// One call site inside a function body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RawCall {
    /// The callee reference.
    pub callee: RawCallee,
    /// 1-based line of the callee name.
    pub line: u32,
    /// 1-based column of the callee name.
    pub col: u32,
}

/// One site that can panic at runtime.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RawPanic {
    /// Human description: `.unwrap()`, `panic!`, `index into a call
    /// result`, …
    pub what: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// Parse result for one file.
#[derive(Clone, Debug, Default)]
pub struct ParsedFile {
    /// The brace forest over code tokens.
    pub tree: Vec<BraceNode>,
    /// Every recognized `fn` item, in source order.
    pub fns: Vec<FnDef>,
    /// `use` aliases: local name → full path segments.
    pub uses: BTreeMap<String, Vec<String>>,
}

/// Builds the brace forest over `code` (comment-free tokens).
/// Unbalanced braces are tolerated: stray `}` are ignored, unterminated
/// `{` close at the last token.
pub fn brace_forest(code: &[&Token]) -> Vec<BraceNode> {
    let mut roots: Vec<BraceNode> = Vec::new();
    let mut stack: Vec<BraceNode> = Vec::new();
    let attach =
        |node: BraceNode, stack: &mut Vec<BraceNode>, roots: &mut Vec<BraceNode>| match stack
            .last_mut()
        {
            Some(parent) => parent.children.push(node),
            None => roots.push(node),
        };
    for (i, t) in code.iter().enumerate() {
        if t.is_punct('{') {
            stack.push(BraceNode {
                open: i,
                close: usize::MAX,
                children: Vec::new(),
            });
        } else if t.is_punct('}') {
            if let Some(mut node) = stack.pop() {
                node.close = i;
                attach(node, &mut stack, &mut roots);
            }
        }
    }
    while let Some(mut node) = stack.pop() {
        node.close = code.len().saturating_sub(1);
        attach(node, &mut stack, &mut roots);
    }
    roots
}

/// For each code-token index of a `(`/`[`/`{`, the index of its matching
/// closer (or the last token when unbalanced). Other indices map to
/// themselves.
pub fn matching_pairs(code: &[&Token]) -> Vec<usize> {
    let mut close: Vec<usize> = (0..code.len()).collect();
    let mut stack: Vec<(char, usize)> = Vec::new();
    for (i, t) in code.iter().enumerate() {
        for (open, shut) in [('(', ')'), ('[', ']'), ('{', '}')] {
            if t.is_punct(open) {
                stack.push((shut, i));
            } else if t.is_punct(shut) {
                // Pop through mismatched entries so one stray bracket
                // cannot desynchronize the rest of the file.
                while let Some((want, at)) = stack.pop() {
                    if want == shut {
                        close[at] = i;
                        break;
                    }
                    close[at] = code.len().saturating_sub(1);
                }
            }
        }
    }
    for (_, at) in stack {
        close[at] = code.len().saturating_sub(1);
    }
    close
}

/// Scope kinds tracked while walking items.
#[derive(Clone, Debug)]
enum Scope {
    Module(String),
    Impl(String),
}

/// Parses `code` into items. Never fails.
pub fn parse_file(code: &[&Token]) -> ParsedFile {
    let tree = brace_forest(code);
    let pairs = matching_pairs(code);
    let mut fns = Vec::new();
    let mut uses = BTreeMap::new();
    // (scope, close-token index) — popped once the walk passes `close`.
    let mut scopes: Vec<(Scope, usize)> = Vec::new();

    let mut i = 0usize;
    while i < code.len() {
        while let Some((_, close)) = scopes.last() {
            if i > *close {
                scopes.pop();
            } else {
                break;
            }
        }
        let t = code[i];

        // `mod name { … }` — inline module. (`mod name;` has no body and
        // contributes nothing here; the file walker supplies the
        // file-level module path.)
        if t.is_ident("mod") {
            if let (Some(name), Some(brace)) = (code.get(i + 1), code.get(i + 2)) {
                if name.kind == TokenKind::Ident && brace.is_punct('{') {
                    scopes.push((Scope::Module(name.text.clone()), pairs[i + 2]));
                    i += 3;
                    continue;
                }
            }
        }

        // `impl … { … }` — find the self type and enter the block.
        if t.is_ident("impl") {
            if let Some((ty, open)) = parse_impl_header(code, i) {
                scopes.push((Scope::Impl(ty), pairs[open]));
                i = open + 1;
                continue;
            }
        }

        // `use path::{…};`
        if t.is_ident("use") {
            let end = parse_use(code, i + 1, &mut uses);
            i = end;
            continue;
        }

        // `fn name … { … }` or `fn name …;`
        if t.is_ident("fn") {
            if let Some(name_tok) = code.get(i + 1) {
                if name_tok.kind == TokenKind::Ident && !is_keyword(&name_tok.text) {
                    let (module_path, impl_type) = scope_context(&scopes);
                    let body = parse_fn_body(code, &pairs, i);
                    fns.push(FnDef {
                        name: name_tok.text.clone(),
                        module_path,
                        impl_type,
                        is_pub: has_pub_marker(code, i),
                        line: t.line,
                        col: t.col,
                        body,
                    });
                    // Continue scanning *inside* the body too: nested fns
                    // and closures containing items are rare but legal.
                    i += 2;
                    continue;
                }
            }
        }

        i += 1;
    }

    ParsedFile { tree, fns, uses }
}

/// The current module path and impl type from the scope stack.
fn scope_context(scopes: &[(Scope, usize)]) -> (Vec<String>, Option<String>) {
    let mut modules = Vec::new();
    let mut impl_type = None;
    for (scope, _) in scopes {
        match scope {
            Scope::Module(name) => modules.push(name.clone()),
            Scope::Impl(ty) => impl_type = Some(ty.clone()),
        }
    }
    (modules, impl_type)
}

/// From the `impl` keyword at `at`, finds the self type's last path
/// segment and the body's `{` index. Returns `None` for malformed or
/// body-less (`impl Trait for Type;`) headers.
fn parse_impl_header(code: &[&Token], at: usize) -> Option<(String, usize)> {
    let mut angle = 0i32;
    let mut last_ident_at_depth0: Option<&str> = None;
    let mut after_for: Option<&str> = None;
    let mut saw_for = false;
    let mut j = at + 1;
    while j < code.len() {
        let t = code[j];
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            // `->` never appears in an impl header before the `{`.
            angle = (angle - 1).max(0);
        } else if angle == 0 {
            if t.is_punct('{') {
                let ty = after_for.or(last_ident_at_depth0)?;
                return Some((ty.to_owned(), j));
            }
            if t.is_punct(';') {
                return None;
            }
            if t.is_ident("for") {
                saw_for = true;
                after_for = None;
            } else if t.kind == TokenKind::Ident && !is_keyword(&t.text) {
                last_ident_at_depth0 = Some(&t.text);
                if saw_for {
                    after_for = Some(&t.text);
                }
            }
        }
        j += 1;
    }
    None
}

/// From the `fn` keyword at `at`, finds the body braces. Walks the
/// signature angle-aware so `-> Vec<Node<'a>>` cannot derail the scan.
fn parse_fn_body(code: &[&Token], pairs: &[usize], at: usize) -> Option<(usize, usize)> {
    // Skip to the parameter list, stepping over `<generics>`.
    let mut j = at + 2;
    let mut angle = 0i32;
    while j < code.len() {
        let t = code[j];
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle -= 1;
        } else if angle <= 0 && t.is_punct('(') {
            break;
        } else if t.is_punct('{') || t.is_punct(';') {
            return None; // not a function signature after all
        }
        j += 1;
    }
    if j >= code.len() {
        return None;
    }
    // Past the parameters; scan the return type / where clause.
    let mut k = pairs[j] + 1;
    let mut angle = 0i32;
    while k < code.len() {
        let t = code[k];
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            // Either a generic closer or the `>` of `->`; both only
            // ever *decrease* pending generic depth here.
            angle = (angle - 1).max(0);
        } else if t.is_punct('(') || t.is_punct('[') {
            k = pairs[k];
        } else if t.is_punct('{') {
            return Some((k, pairs[k]));
        } else if t.is_punct(';') || t.is_punct('}') {
            return None;
        }
        k += 1;
    }
    None
}

/// Whether the item keyword at `at` carries a `pub` marker. Walks back
/// over the qualifiers that may sit between (`const`, `unsafe`, `async`,
/// `extern "C"`, `pub(crate)`, …).
fn has_pub_marker(code: &[&Token], at: usize) -> bool {
    let mut j = at;
    while j > 0 {
        j -= 1;
        let t = code[j];
        if t.is_ident("pub") {
            return true;
        }
        let qualifier = matches!(t.text.as_str(), "const" | "unsafe" | "async" | "extern")
            || t.kind == TokenKind::Literal // the "C" of `extern "C"`
            || t.is_punct(')')
            || t.is_punct('(')
            || t.is_ident("crate")
            || t.is_ident("super")
            || t.is_ident("self")
            || t.is_ident("in");
        if !qualifier {
            return false;
        }
    }
    false
}

/// Parses one `use` declaration starting after the `use` keyword,
/// recording `alias → full path` entries. Returns the index just past
/// the terminating `;`.
fn parse_use(code: &[&Token], start: usize, uses: &mut BTreeMap<String, Vec<String>>) -> usize {
    let mut end = start;
    while end < code.len() && !code[end].is_punct(';') {
        end += 1;
    }
    parse_use_tree(code, start, end, &[], uses);
    end + 1
}

/// Recursive descent over a use tree: `prefix::{a, b as c, d::e::*}`.
fn parse_use_tree(
    code: &[&Token],
    start: usize,
    end: usize,
    prefix: &[String],
    uses: &mut BTreeMap<String, Vec<String>>,
) {
    let mut path: Vec<String> = prefix.to_vec();
    let mut i = start;
    while i < end {
        let t = code[i];
        if t.kind == TokenKind::Ident && t.text != "as" {
            path.push(t.text.clone());
            i += 1;
        } else if t.is_punct(':') {
            i += 1; // `::` separators
        } else if t.is_punct('{') {
            // Group: split on top-level commas, recurse per entry.
            let mut depth = 0i32;
            let mut entry_start = i + 1;
            let mut j = i + 1;
            while j < end {
                let u = code[j];
                if u.is_punct('{') {
                    depth += 1;
                } else if u.is_punct('}') {
                    if depth == 0 {
                        parse_use_tree(code, entry_start, j, &path, uses);
                        break;
                    }
                    depth -= 1;
                } else if u.is_punct(',') && depth == 0 {
                    parse_use_tree(code, entry_start, j, &path, uses);
                    entry_start = j + 1;
                }
                j += 1;
            }
            return;
        } else if t.is_ident("as") {
            if let Some(alias) = code.get(i + 1) {
                if alias.kind == TokenKind::Ident && !path.is_empty() {
                    uses.insert(alias.text.clone(), path.clone());
                }
            }
            return;
        } else if t.is_punct('*') {
            return; // glob imports resolve nothing
        } else {
            i += 1;
        }
    }
    if path.len() > prefix.len() {
        if let Some(last) = path.last() {
            uses.insert(last.clone(), path.clone());
        }
    }
}

/// Extracts call sites and panic-capable sites from the body token range
/// `(open, close)` (exclusive of the braces themselves). `uses` is the
/// file's import map, applied so returned paths are pre-normalized.
pub fn body_calls(
    code: &[&Token],
    open: usize,
    close: usize,
    uses: &BTreeMap<String, Vec<String>>,
) -> (Vec<RawCall>, Vec<RawPanic>) {
    let mut calls = Vec::new();
    let mut panics = Vec::new();
    let lo = open + 1;
    let hi = close.min(code.len());

    for i in lo..hi {
        let t = code[i];
        let prev = |off: usize| i.checked_sub(off).map(|j| code[j]);
        let next = |off: usize| code.get(i + off).copied();

        // Panic-family macros.
        if t.kind == TokenKind::Ident
            && matches!(
                t.text.as_str(),
                "panic" | "unreachable" | "todo" | "unimplemented"
            )
            && next(1).is_some_and(|n| n.is_punct('!'))
        {
            panics.push(RawPanic {
                what: format!("`{}!`", t.text),
                line: t.line,
                col: t.col,
            });
            continue;
        }

        // Indexing straight into a call result: `f(…)[…]`.
        if t.is_punct('[') && prev(1).is_some_and(|p| p.is_punct(')')) {
            panics.push(RawPanic {
                what: "index into a call result".to_owned(),
                line: t.line,
                col: t.col,
            });
            continue;
        }

        if t.kind != TokenKind::Ident || !next(1).is_some_and(|n| n.is_punct('(')) {
            continue;
        }
        // `ident (` — a call, a definition, or a control-flow keyword.
        if is_keyword(&t.text) {
            continue;
        }
        if prev(1).is_some_and(|p| p.is_ident("fn") || p.is_punct('!') || p.is_punct('|')) {
            continue; // definition, macro call, or closure parameter
        }
        if prev(1).is_some_and(|p| p.is_punct('.')) {
            // Method call. `.unwrap()` / `.expect()` are panic sites, not
            // workspace calls.
            if t.text == "unwrap" || t.text == "expect" {
                panics.push(RawPanic {
                    what: format!("`.{}()`", t.text),
                    line: t.line,
                    col: t.col,
                });
            } else {
                calls.push(RawCall {
                    callee: RawCallee::Method(t.text.clone()),
                    line: t.line,
                    col: t.col,
                });
            }
            continue;
        }
        // Path call: walk back over `seg::seg::` pairs.
        let mut segs = vec![t.text.clone()];
        let mut j = i;
        while j >= 3
            && code[j - 1].is_punct(':')
            && code[j - 2].is_punct(':')
            && code[j - 3].kind == TokenKind::Ident
        {
            segs.insert(0, code[j - 3].text.clone());
            j -= 3;
        }
        if j >= 1 && code[j - 1].is_punct('.') {
            // `recv.assoc::call()` cannot happen; `x.mod::f()` is not
            // valid Rust — but `.collect::<Vec<_>>()` puts a path after a
            // dot via turbofish handled below; treat a dotted head as a
            // method chain and skip.
            continue;
        }
        // Single-segment uppercase names are tuple-struct / enum
        // constructors (`Some(…)`, `PairKey(…)`), not function calls.
        if segs.len() == 1
            && segs[0]
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_uppercase())
        {
            continue;
        }
        // Apply the file's `use` map to the leading segment.
        if let Some(full) = uses.get(&segs[0]) {
            if full.last() == Some(&segs[0]) {
                let mut spliced = full.clone();
                spliced.extend(segs.drain(1..));
                segs = spliced;
            }
        }
        calls.push(RawCall {
            callee: RawCallee::Path(segs),
            line: t.line,
            col: t.col,
        });
    }
    (calls, panics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn parsed(src: &str) -> (Vec<Token>, ParsedFile) {
        let tokens = tokenize(src);
        let code: Vec<&Token> = tokens.iter().filter(|t| !t.is_comment()).collect();
        let file = parse_file(&code);
        (tokens.clone(), file)
    }

    #[test]
    fn finds_fns_with_scopes() {
        let src = r#"
pub fn top() {}
mod inner {
    pub(crate) fn nested() {}
    impl Widget {
        pub fn method(&self) -> u32 { 1 }
        fn private_method(&self) {}
    }
}
impl fmt::Display for OperonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result { Ok(()) }
}
"#;
        let (_, file) = parsed(src);
        let names: Vec<(&str, &[String], Option<&str>, bool)> = file
            .fns
            .iter()
            .map(|f| {
                (
                    f.name.as_str(),
                    f.module_path.as_slice(),
                    f.impl_type.as_deref(),
                    f.is_pub,
                )
            })
            .collect();
        assert_eq!(names.len(), 5);
        assert_eq!(names[0], ("top", &[][..], None, true));
        assert_eq!(names[1].0, "nested");
        assert_eq!(names[1].1, &["inner".to_owned()][..]);
        assert!(names[1].3, "pub(crate) counts as pub");
        assert_eq!(
            names[2],
            ("method", &["inner".to_owned()][..], Some("Widget"), true)
        );
        assert_eq!(
            names[3],
            (
                "private_method",
                &["inner".to_owned()][..],
                Some("Widget"),
                false
            )
        );
        assert_eq!(names[4].0, "fmt");
        assert_eq!(names[4].2, Some("OperonError"));
        assert!(!names[4].3);
    }

    #[test]
    fn generic_signatures_do_not_derail_bodies() {
        let src = "fn f<T: Into<String>>(x: Vec<Node<'static>>) -> BTreeMap<u32, Vec<u8>> where T: Clone { body() }";
        let (_, file) = parsed(src);
        assert_eq!(file.fns.len(), 1);
        let body = file.fns[0].body.expect("has body");
        assert!(body.0 < body.1);
    }

    #[test]
    fn trait_decls_have_no_body() {
        let (_, file) =
            parsed("trait T { fn required(&self) -> u32; fn given(&self) -> u32 { 1 } }");
        assert_eq!(file.fns.len(), 2);
        assert!(file.fns[0].body.is_none());
        assert!(file.fns[1].body.is_some());
    }

    #[test]
    fn use_groups_and_aliases() {
        let src = "use std::collections::{BTreeMap, BTreeSet};\nuse operon_mcmf::McmfGraph as Graph;\nuse crate::lr::select_lr_with;\n";
        let (_, file) = parsed(src);
        assert_eq!(
            file.uses.get("BTreeMap").unwrap(),
            &["std", "collections", "BTreeMap"]
        );
        assert_eq!(
            file.uses.get("Graph").unwrap(),
            &["operon_mcmf", "McmfGraph"]
        );
        assert_eq!(
            file.uses.get("select_lr_with").unwrap(),
            &["crate", "lr", "select_lr_with"]
        );
    }

    #[test]
    fn brace_forest_nests() {
        let src = "fn a() { if x { y(); } } mod m { fn b() {} }";
        let tokens = tokenize(src);
        let code: Vec<&Token> = tokens.iter().filter(|t| !t.is_comment()).collect();
        let forest = brace_forest(&code);
        assert_eq!(forest.len(), 2);
        assert_eq!(forest[0].children.len(), 1);
        assert_eq!(forest[1].children.len(), 1);
        for root in &forest {
            assert!(code[root.open].is_punct('{'));
            assert!(code[root.close].is_punct('}'));
        }
    }

    #[test]
    fn calls_and_panics_extracted() {
        let src = r#"
use crate::wdm::plan;
fn f(x: Option<u32>) {
    helper(1);
    plan(x);
    operon_mcmf::solve(x);
    McmfGraph::with_nodes(3);
    let v = x.unwrap();
    recv.price(v);
    let w = lookup(v)[0];
    panic!("boom");
    Some(3);
}
"#;
        let (_, file) = parsed(src);
        let body = file.fns[0].body.expect("body");
        let tokens = tokenize(src);
        let code: Vec<&Token> = tokens.iter().filter(|t| !t.is_comment()).collect();
        let (calls, panics) = body_calls(&code, body.0, body.1, &file.uses);
        let rendered: Vec<String> = calls
            .iter()
            .map(|c| match &c.callee {
                RawCallee::Path(p) => p.join("::"),
                RawCallee::Method(m) => format!(".{m}"),
            })
            .collect();
        assert_eq!(
            rendered,
            vec![
                "helper",
                "crate::wdm::plan",
                "operon_mcmf::solve",
                "McmfGraph::with_nodes",
                ".price",
                "lookup",
            ]
        );
        let whats: Vec<&str> = panics.iter().map(|p| p.what.as_str()).collect();
        assert_eq!(
            whats,
            vec!["`.unwrap()`", "index into a call result", "`panic!`"]
        );
    }

    #[test]
    fn keywords_and_ctors_are_not_calls() {
        let src =
            "fn f() { if cond(x) { return Some(1); } while check() {} match probe() { _ => {} } }";
        let (_, file) = parsed(src);
        let body = file.fns[0].body.expect("body");
        let tokens = tokenize(src);
        let code: Vec<&Token> = tokens.iter().filter(|t| !t.is_comment()).collect();
        let (calls, _) = body_calls(&code, body.0, body.1, &file.uses);
        let names: Vec<String> = calls
            .iter()
            .map(|c| match &c.callee {
                RawCallee::Path(p) => p.join("::"),
                RawCallee::Method(m) => m.clone(),
            })
            .collect();
        assert_eq!(names, vec!["cond", "check", "probe"]);
    }
}
