//! Golden-file tests: each fixture under `tests/fixtures/` is linted as
//! if it lived at `crates/core/src/<fixture>.rs` (solver-crate library
//! code, so every rule is in scope) and the exact JSON output is
//! compared against the checked-in `<fixture>.json`.
//!
//! Regenerate goldens after an intentional output change with:
//!
//! ```text
//! BLESS=1 cargo test -p operon-lint --test golden
//! ```

use operon_lint::callgraph::workspace_rules;
use operon_lint::diagnostics::render_json;
use operon_lint::rules::analyze_source;
use operon_lint::{lint_source, Config};
use std::path::{Path, PathBuf};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Lints `<fixture>.rs` under the default config and compares the JSON
/// rendering to `<fixture>.json`.
fn check(fixture: &str) {
    let label = format!("crates/core/src/{fixture}.rs");
    compare(fixture, |source| {
        lint_source(&label, source, &Config::default())
    });
}

/// Like [`check`], but additionally runs the workspace rules (R003
/// panic-reachability, W001 stale-allow) over the single-file
/// "workspace" the fixture forms — its `pub fn`s are the roots.
fn check_global(fixture: &str) {
    let label = format!("crates/core/src/{fixture}.rs");
    compare(fixture, |source| {
        let config = Config::default();
        let analysis = analyze_source(&label, source, &config);
        let mut diags = analysis.diags.clone();
        diags.extend(workspace_rules(&[analysis], &config));
        diags
    });
}

fn compare(fixture: &str, lint: impl FnOnce(&str) -> Vec<operon_lint::Diagnostic>) {
    let rs = fixture_dir().join(format!("{fixture}.rs"));
    let golden = fixture_dir().join(format!("{fixture}.json"));
    let source = std::fs::read_to_string(&rs).expect("fixture source exists");

    // Fixtures are labeled as solver-crate library code so every rule
    // applies; the default config has no path scoping.
    let mut diags = lint(&source);
    operon_lint::diagnostics::sort_canonical(&mut diags);
    let got = render_json(&diags);

    if std::env::var_os("BLESS").is_some() {
        std::fs::write(&golden, &got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&golden)
        .unwrap_or_else(|_| panic!("golden {} missing — run with BLESS=1", golden.display()));
    assert_eq!(
        got, want,
        "fixture {fixture} diverged from its golden; run with BLESS=1 if intentional"
    );
}

#[test]
fn d001_hash_collections() {
    check("d001");
}

#[test]
fn d002_wall_clock_reads() {
    check("d002");
}

#[test]
fn d003_raw_threads() {
    check("d003");
}

#[test]
fn r001_panic_family() {
    check("r001");
}

#[test]
fn r002_index_into_call() {
    check("r002");
}

#[test]
fn p001_network_clones_in_loops() {
    check("p001");
}

#[test]
fn allow_with_reason_suppresses() {
    check("allow_ok");
}

#[test]
fn allow_without_reason_is_denied() {
    check("allow_bad");
}

#[test]
fn lexer_tricky_cases() {
    check("lexer_tricky");
}

#[test]
fn r003_panic_reachability() {
    check_global("r003");
}

#[test]
fn n001_parallel_order_taint() {
    check("n001");
}

#[test]
fn p002_allocation_in_loop() {
    check("p002");
}

#[test]
fn w001_stale_allow() {
    check_global("w001");
}
