//! Cache correctness: a cached re-scan must render byte-identical JSON
//! to a cold scan — including after one file changes, when every other
//! file's per-file analysis comes from the cache but the workspace
//! phases (R003 reachability, W001 usage) recompute over the full set.

use operon_lint::diagnostics::render_json;
use operon_lint::driver::scan_workspace_with;
use operon_lint::{Config, ScanOptions};
use std::fs;
use std::path::{Path, PathBuf};

const CALLER_V1: &str = "\
//! Caller half of the two-file workspace.
use crate::helper::pick;

/// Public root: reaches `pick`'s unwrap through the call graph.
pub fn solve(xs: &[u64]) -> u64 {
    pick(xs)
}
";

const HELPER_PANICKY: &str = "\
//! Helper half — panic-capable.

pub(crate) fn pick(xs: &[u64]) -> u64 {
    xs.first().copied().unwrap()
}
";

const HELPER_FIXED: &str = "\
//! Helper half — panic-free after the fix.

pub(crate) fn pick(xs: &[u64]) -> u64 {
    xs.first().copied().unwrap_or(0)
}
";

/// Builds a throwaway two-file workspace under the test temp dir.
fn mini_workspace(tag: &str) -> PathBuf {
    let root = PathBuf::from(env!("CARGO_TARGET_TMPDIR"))
        .join(format!("cache-roundtrip-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    fs::create_dir_all(root.join("crates/core/src")).expect("mkdir workspace");
    fs::write(root.join("crates/core/src/caller.rs"), CALLER_V1).expect("write caller");
    fs::write(root.join("crates/core/src/helper.rs"), HELPER_PANICKY).expect("write helper");
    root
}

fn scan_json(root: &Path, opts: &ScanOptions) -> (String, usize, usize) {
    let config = Config::default();
    let report = scan_workspace_with(root, &config, opts).expect("scan succeeds");
    (
        render_json(&report.diagnostics),
        report.cache_hits,
        report.cache_misses,
    )
}

#[test]
fn cached_rescan_is_byte_identical_after_touching_one_file() {
    let root = mini_workspace("touch");
    let cached = ScanOptions::default();
    let uncached = ScanOptions {
        use_cache: false,
        changed: None,
    };

    // Cold scan populates the cache; the unwrap is R001 + R003 material.
    let (cold, hits, misses) = scan_json(&root, &cached);
    assert_eq!(hits, 0, "first scan must be fully cold");
    assert_eq!(misses, 2);
    assert!(
        cold.contains("\"rule\": \"R003\""),
        "chain finding expected:\n{cold}"
    );

    // Warm scan with nothing changed: all hits, byte-identical.
    let (warm, hits, misses) = scan_json(&root, &cached);
    assert_eq!((hits, misses), (2, 0), "second scan must be fully cached");
    assert_eq!(cold, warm, "warm scan diverged from cold");

    // Touch one file (the fix removes the panic). The cached scan must
    // match a from-scratch scan byte for byte: helper re-analyzed,
    // caller served from cache, R003 recomputed over both.
    fs::write(root.join("crates/core/src/helper.rs"), HELPER_FIXED).expect("rewrite helper");
    let (after_cached, hits, misses) = scan_json(&root, &cached);
    assert_eq!((hits, misses), (1, 1), "only the touched file re-analyzes");
    let (after_cold, _, _) = scan_json(&root, &uncached);
    assert_eq!(
        after_cached, after_cold,
        "cached scan after touch diverged from cold scan"
    );
    assert!(
        !after_cached.contains("\"rule\": \"R003\""),
        "fix must clear the reachability finding:\n{after_cached}"
    );

    let _ = fs::remove_dir_all(&root);
}

#[test]
fn changed_mode_matches_cold_scan() {
    let root = mini_workspace("changed");
    let cached = ScanOptions::default();

    // Populate the cache, then edit the helper and re-scan in
    // `--changed` mode naming only the edited file.
    let (_, _, _) = scan_json(&root, &cached);
    fs::write(root.join("crates/core/src/helper.rs"), HELPER_FIXED).expect("rewrite helper");
    let changed = ScanOptions {
        use_cache: true,
        changed: Some(vec!["crates/core/src/helper.rs".to_string()]),
    };
    let (via_changed, _, misses) = scan_json(&root, &changed);
    assert_eq!(misses, 1, "only the listed file re-analyzes");

    let uncached = ScanOptions {
        use_cache: false,
        changed: None,
    };
    let (cold, _, _) = scan_json(&root, &uncached);
    assert_eq!(via_changed, cold, "--changed scan diverged from cold scan");

    let _ = fs::remove_dir_all(&root);
}
