//! Property tests for the brace-tree parser.
//!
//! Random balanced nestings are rendered to source interleaved with
//! noise whose braces must NOT count — string literals, char literals,
//! and comments. The forest built by [`brace_forest`] must round-trip
//! the exact pairing a reference stack computes over the code tokens,
//! and [`matching_pairs`] must agree with it token-for-token.

use operon_lint::lexer::{tokenize, Token};
use operon_lint::parse::{brace_forest, matching_pairs, BraceNode};
use proptest::prelude::*;

/// Renders one op of the generated program. Ops 0–1 open a brace, 2
/// closes one (when the depth allows), 3–6 emit noise that contains
/// brace characters only inside tokens the lexer must skip.
fn render(ops: &[u8]) -> String {
    let mut src = String::new();
    let mut depth = 0usize;
    for &op in ops {
        match op {
            0 | 1 => {
                src.push_str("mod m {\n");
                depth += 1;
            }
            2 => {
                if depth > 0 {
                    src.push_str("}\n");
                    depth -= 1;
                }
            }
            3 => src.push_str("let x = 1;\n"),
            4 => src.push_str("let s = \"{ not } a { brace\";\n"),
            5 => src.push_str("// { comment braces } don't count\n"),
            6 => src.push_str("let c = '{'; let d = '}';\n"),
            _ => src.push_str("/* { block } */ call();\n"),
        }
    }
    for _ in 0..depth {
        src.push_str("}\n");
    }
    src
}

/// Flattens the forest into `(open, close)` spans, depth-first in
/// source order.
fn flatten(nodes: &[BraceNode], out: &mut Vec<(usize, usize)>) {
    for n in nodes {
        out.push((n.open, n.close));
        flatten(&n.children, out);
    }
}

/// The pairing an independent stack computes over the code tokens — the
/// ground truth the forest must reproduce.
fn reference_pairs(code: &[&Token]) -> Vec<(usize, usize)> {
    let mut stack = Vec::new();
    let mut pairs = Vec::new();
    for (i, t) in code.iter().enumerate() {
        if t.is_punct('{') {
            stack.push(i);
        } else if t.is_punct('}') {
            if let Some(open) = stack.pop() {
                pairs.push((open, i));
            }
        }
    }
    pairs.sort_unstable();
    pairs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The brace forest round-trips the token spans of every generated
    /// nesting: same pair set as the reference stack, properly nested
    /// children, and agreement with `matching_pairs`.
    #[test]
    fn brace_forest_round_trips_spans(
        ops in proptest::collection::vec(0u8..8, 0..80),
    ) {
        let src = render(&ops);
        let tokens = tokenize(&src);
        let code: Vec<&Token> = tokens.iter().filter(|t| !t.is_comment()).collect();

        let forest = brace_forest(&code);
        let mut spans = Vec::new();
        flatten(&forest, &mut spans);
        spans.sort_unstable();

        // Round-trip: the forest's spans are exactly the reference pairing.
        prop_assert_eq!(&spans, &reference_pairs(&code));

        // Every span is a real brace pair in token space.
        for &(open, close) in &spans {
            prop_assert!(open < close, "span {open}..{close} inverted");
            prop_assert!(code[open].is_punct('{'));
            prop_assert!(code[close].is_punct('}'));
        }

        // Children sit strictly inside their parent, in source order.
        fn well_nested(nodes: &[BraceNode]) -> bool {
            nodes.windows(2).all(|w| w[0].close < w[1].open)
                && nodes.iter().all(|n| {
                    n.children
                        .iter()
                        .all(|c| n.open < c.open && c.close < n.close)
                        && well_nested(&n.children)
                })
        }
        prop_assert!(well_nested(&forest));

        // matching_pairs agrees with the forest on every brace token.
        let pairs = matching_pairs(&code);
        for &(open, close) in &spans {
            prop_assert_eq!(pairs[open], close);
        }
    }
}
