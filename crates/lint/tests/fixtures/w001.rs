//! W001 fixture: allows that no longer suppress anything.

/// This allow earns its keep: it suppresses the R001 finding on the
/// unwrap below (and sanctions the site for R003 reachability).
pub fn active(xs: &[u64]) -> u64 {
    // operon-lint: allow(R001, R003, reason = "caller guarantees non-empty input")
    xs.first().copied().unwrap()
}

/// This allow is stale — the unwrap it once covered was refactored into
/// `unwrap_or`, so the allow suppresses nothing and W001 flags it.
pub fn stale(xs: &[u64]) -> u64 {
    // operon-lint: allow(R001, reason = "left behind after a refactor")
    xs.first().copied().unwrap_or(0)
}
