//! P002 fixture: per-iteration allocation in solver-crate loops.

/// Fresh `Vec` per iteration — flagged; the buffer should be hoisted.
pub fn per_iter_vec(nets: &[Net]) -> f64 {
    let mut acc = 0.0;
    for n in nets {
        let mut tmp = Vec::new();
        for &w in n.weights() {
            tmp.push(w * 2.0);
        }
        acc += tmp.len() as f64;
    }
    acc
}

/// `format!` allocates a `String` every iteration — flagged.
pub fn per_iter_format(nets: &[Net]) -> Vec<String> {
    let mut out = Vec::new();
    for (i, _) in nets.iter().enumerate() {
        out.push(format!("net-{i}"));
    }
    out
}

/// Hoisted scratch buffer refilled in place — fine.
pub fn hoisted(nets: &[Net]) -> f64 {
    let mut scratch = vec![0.0f64; 8];
    let mut acc = 0.0;
    for n in nets {
        scratch.iter_mut().for_each(|s| *s = 0.0);
        acc += n.load(&mut scratch);
    }
    acc
}

/// A reasoned allow keeps an intentional per-iteration allocation —
/// rows escape to the caller, so there is nothing to reuse.
pub fn sanctioned(nets: &[Net]) -> Vec<Vec<f64>> {
    let mut rows = Vec::new();
    for n in nets {
        // operon-lint: allow(P002, reason = "rows are returned to the caller; no reuse possible")
        rows.push(n.weights().to_vec());
    }
    rows
}
