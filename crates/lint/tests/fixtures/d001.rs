// Fixture: D001 fires on hash collections in solver library code, but
// never inside #[cfg(test)] modules or string literals.
use std::collections::HashMap;
use std::collections::HashSet;

pub fn build() -> HashMap<u32, u32> {
    let _names = "HashMap inside a string is fine";
    HashMap::new()
}

pub fn seen() -> HashSet<u32> {
    HashSet::new()
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn in_tests_hash_is_fine() {
        let _m: HashMap<u32, u32> = HashMap::new();
    }
}
