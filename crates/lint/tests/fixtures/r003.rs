//! R003 fixture: panic-reachability over the call graph.
//!
//! Linted as `crates/core/src/r003.rs`, so every `pub fn` here is a
//! solver-API reachability root.

/// Reachability root: public solver-crate API.
pub fn solve(xs: &[u64]) -> u64 {
    stage_one(xs)
}

fn stage_one(xs: &[u64]) -> u64 {
    deep_helper(xs)
}

/// Directly panic-capable and reachable from `solve` — flagged, with the
/// shortest call chain rendered in the message.
fn deep_helper(xs: &[u64]) -> u64 {
    xs.first().copied().unwrap()
}

/// Panic-capable but unreachable from any public root — R003 stays
/// quiet. (R001 still fires on the raw unwrap; both appear below.)
fn orphan(xs: &[u64]) -> u64 {
    xs.iter().copied().max().unwrap()
}

/// A site-level allow sanctions the panic for both the local R001 pass
/// and the global R003 reachability pass.
pub fn sanctioned(xs: &[u64]) -> u64 {
    // operon-lint: allow(R001, R003, reason = "caller guarantees non-empty input")
    xs.first().copied().unwrap()
}
