// Fixture: D003 fires on raw thread creation outside operon-exec.
pub fn fan_out() {
    let handle = std::thread::spawn(|| 41 + 1);
    let _ = handle.join();
    std::thread::scope(|s| {
        s.spawn(|| ());
    });
}
