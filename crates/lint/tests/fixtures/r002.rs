// Fixture: R002 (warn) flags indexing straight into a call result.
pub fn hot(items: &[u32]) -> u32 {
    let first = neighbors(items)[0];
    let safe = neighbors(items).first().copied().unwrap_or_default();
    first + safe
}

fn neighbors(items: &[u32]) -> Vec<u32> {
    items.to_vec()
}
