// Fixture: P001 — cloning a solver network/graph inside a loop body.

fn deletion_loop(candidates: &[usize], committed: &Net) {
    for wi in candidates {
        let trial_graph = graph.clone(); // fires: suffixed receiver in `for`
        let scratch = committed_net.clone(); // fires
        run(trial_graph, scratch, *wi);
    }
    while keep_going() {
        let n = net.clone(); // fires: `while` bodies count
        run2(n);
    }
    loop {
        evaluate(|| g.clone()); // fires: closures inside loops still pay per iteration
        break;
    }
}

fn fine(committed: &Net) {
    // Outside any loop: a one-time copy is not the reduction hot path.
    let snapshot = network.clone();
    for i in 0..3 {
        let items = list.clone(); // non-network receiver
        scratch.g.clone_from(&committed.g); // sanctioned replica refresh
        // operon-lint: allow(P001, reason = "cold oracle keeps an intentional per-trial copy")
        let oracle = g.clone();
        run3(snapshot, items, oracle, i);
    }
}

impl Clone for Holder {
    fn clone(&self) -> Holder {
        // `impl … for …` is not a loop header.
        Holder { g: self.g.clone() }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_clone_freely() {
        for _ in 0..2 {
            let copy = g.clone();
            drop(copy);
        }
    }
}
