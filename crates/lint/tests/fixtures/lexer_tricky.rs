// Fixture: lexer edge cases. Violations quoted in strings, raw strings,
// char literals, or comments must NOT fire; the one real violation at
// the end must be reported at the exact line and column.
pub fn tricky<'a>(s: &'a str) -> usize {
    let plain = "HashMap::new() and Instant::now() in a string";
    let raw = r#"std::thread::spawn(|| x.unwrap()) inside r#""#;
    let deep = r##"nested "r#" raw string with HashSet"##;
    let escaped = "escaped quote \" then HashMap";
    let ch = '"';
    let _lifetime: &'a str = s;
    /* block comment: SystemTime::now()
       /* nested block comment: panic!("no") */
       still inside the outer comment: x.unwrap() */
    plain.len() + raw.len() + deep.len() + escaped.len() + ch.len_utf8()
}

pub fn real() -> std::collections::HashSet<u8> {
    std::collections::HashSet::new()
}
