// Fixture: D002 fires on ad-hoc wall-clock reads anywhere outside the
// metrics boundary; storing an Instant passed in is fine.
use std::time::{Instant, SystemTime};

pub fn timed() -> f64 {
    let start = Instant::now();
    start.elapsed().as_secs_f64()
}

pub fn wall() -> SystemTime {
    SystemTime::now()
}

pub fn keep(start: Instant) -> Instant {
    start
}
