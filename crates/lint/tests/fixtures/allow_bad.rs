// Fixture: a suppression without a reason is itself a deny finding
// (L000) and suppresses nothing, so the underlying rule still fires.
pub fn unjustified(x: Option<u32>) -> u32 {
    // operon-lint: allow(R001)
    x.unwrap()
}

pub fn empty_reason(x: Option<u32>) -> u32 {
    // operon-lint: allow(R001, reason = "  ")
    x.unwrap()
}

pub fn not_even_allow(x: Option<u32>) -> u32 {
    // operon-lint: silence(R001)
    x.unwrap()
}
