// Fixture: R001 fires on the panic family in solver library code, but
// not on #[test] functions or idents that merely share a name.
pub fn risky(x: Option<u32>, r: Result<u32, u32>) -> u32 {
    let a = x.unwrap();
    let b = r.expect("value");
    if a > b {
        panic!("a exceeded b");
    }
    match a {
        0 => unreachable!("zero was filtered upstream"),
        n => n,
    }
}

pub fn expect_err_is_different(r: Result<u32, u32>) -> u32 {
    r.expect_err("only fires on expect/unwrap")
}

#[test]
fn tests_may_unwrap() {
    let v: Option<u32> = Some(3);
    assert_eq!(v.unwrap(), 3);
}
