//! N001 fixture: order-sensitive accumulation inside parallel closures.

/// Sequential accumulation over a parallel map's result — fine.
pub fn total_ok(exec: &Executor, nets: &[f64]) -> f64 {
    let parts = exec.par_map(nets, |n| n * 2.0);
    let mut total = 0.0;
    for p in &parts {
        total += p;
    }
    total
}

/// Compound-assignment onto a captured accumulator inside the parallel
/// closure — flagged: the reduction order depends on scheduling.
pub fn total_racy(exec: &Executor, nets: &[f64]) -> f64 {
    let mut total = 0.0;
    exec.par_map(nets, |n| {
        total += n;
        0.0
    });
    total
}

/// Mutator call (`push`) onto a captured collection — flagged.
pub fn collect_racy(exec: &Executor, nets: &[f64]) -> Vec<f64> {
    let mut out = Vec::new();
    exec.wave_map(nets, |n| {
        out.push(n * 2.0);
        0.0
    });
    out
}

/// Closure-local accumulator — fine: each item owns its own state.
pub fn local_ok(exec: &Executor, rows: &[f64]) -> Vec<f64> {
    exec.par_map_coarse(rows, |row| {
        let mut s = 0.0;
        s += row;
        s
    })
}
