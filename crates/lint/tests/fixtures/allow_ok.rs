// Fixture: well-formed suppressions silence their target line only.
pub fn checked(x: Option<u32>) -> u32 {
    // operon-lint: allow(R001, reason = "guarded by the caller's is_some check")
    x.unwrap()
}

pub fn trailing(x: Option<u32>) -> u32 {
    x.unwrap() // operon-lint: allow(R001, reason = "invariant: x set during construction")
}

pub fn multi_rule() {
    // operon-lint: allow(D001, D002, reason = "fixture exercising a multi-rule allow")
    let _pair = (std::collections::HashMap::<u32, u32>::new(), std::time::Instant::now());
}
