//! The linter's most important test: the real workspace, under the real
//! checked-in `Lint.toml`, must have zero deny findings. This is the
//! same invariant `ci.sh` enforces via the binary; running it as a test
//! keeps `cargo test` sufficient to catch regressions.

use operon_lint::driver::{load_config, scan_workspace};
use operon_lint::{lint_source, Level};
use std::path::Path;

fn workspace_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists")
}

#[test]
fn workspace_has_zero_deny_findings() {
    let root = workspace_root();
    let config = load_config(&root).expect("Lint.toml parses");
    let report = scan_workspace(&root, &config).expect("scan succeeds");

    let deny: Vec<String> = report
        .diagnostics
        .iter()
        .filter(|d| d.level == Level::Deny)
        .map(|d| d.render_human())
        .collect();
    assert!(
        deny.is_empty(),
        "workspace has {} deny finding(s):\n{}",
        deny.len(),
        deny.join("\n")
    );
    // Sanity: the scan actually covered the workspace.
    assert!(
        report.files_scanned > 40,
        "suspiciously few files scanned: {}",
        report.files_scanned
    );
}

#[test]
fn checked_in_config_pins_the_contract() {
    let config = load_config(&workspace_root()).expect("Lint.toml parses");
    // The determinism and robustness gates must stay deny — loosening
    // them is an intentional, reviewed change to this test.
    for rule in [
        "D001", "D002", "D003", "R001", "P001", "P002", "R003", "N001",
    ] {
        assert_eq!(config.level(rule), Some(Level::Deny), "rule {rule}");
    }
    assert_eq!(config.level("R002"), Some(Level::Warn));
    assert_eq!(config.level("W001"), Some(Level::Warn));
    for solver in ["core", "steiner", "ilp", "mcmf", "optics"] {
        assert!(
            config.solver_crates.iter().any(|c| c == solver),
            "{solver} must stay under the solver-crate contract"
        );
    }
}

/// The sweep driver fans groups out through `par_map_coarse`, so the
/// executor-closure rule must cover `crates/explore` under the real
/// checked-in config: a racy accumulation attributed to the sweep
/// module has to come back as an N001 deny, and the crate's hot files
/// sit inside R002's indexing scope.
#[test]
fn n001_covers_the_explore_sweep_crate() {
    let config = load_config(&workspace_root()).expect("Lint.toml parses");

    let racy = r#"
pub fn merge_fronts(exec: &Executor, groups: &[Group]) -> Vec<Point> {
    let mut merged = Vec::new();
    exec.par_map_coarse(groups, |group| {
        merged.extend(group.points.clone());
        group.points.len()
    });
    merged
}
"#;
    let diags = lint_source("crates/explore/src/sweep.rs", racy, &config);
    assert!(
        diags
            .iter()
            .any(|d| d.rule == "N001" && d.level == Level::Deny),
        "racy par_map_coarse accumulation in crates/explore must trip N001, got: {:?}",
        diags.iter().map(|d| d.rule).collect::<Vec<_>>()
    );

    // The same snippet written as an ordered scatter over the returned
    // vector is the pattern sweep.rs actually uses — clean.
    let ordered = r#"
pub fn merge_fronts(exec: &Executor, groups: &[Group]) -> Vec<Point> {
    let evaluated = exec.par_map_coarse(groups, |group| group.points.clone());
    let mut merged = Vec::new();
    for points in evaluated {
        merged.extend(points);
    }
    merged
}
"#;
    let diags = lint_source("crates/explore/src/sweep.rs", ordered, &config);
    assert!(
        !diags.iter().any(|d| d.rule == "N001"),
        "ordered post-join merge must stay clean"
    );

    for hot in [
        "crates/explore/src/sweep.rs",
        "crates/explore/src/pareto.rs",
    ] {
        assert!(
            !config.path_out_of_scope("R002", hot),
            "{hot} must sit inside R002's hot-path scope"
        );
    }
}
