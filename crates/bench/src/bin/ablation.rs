//! Ablation study over OPERON's design choices, run on the I1 substitute:
//!
//! * **crossing sharing** — charging crossing loss per physical waveguide
//!   (the WDM-sharing discount) vs per logical net pair,
//! * **topology family size** — BI1S-only vs the full baseline family,
//! * **candidate budget** — how many co-design candidates per net the
//!   selection may choose from,
//! * **LR iterations** — one pricing round vs the paper's ten.
//!
//! ```text
//! cargo run -p operon-bench --release --bin ablation
//! ```

use operon::config::OperonConfig;
use operon::flow::OperonFlow;
use operon_bench::instance;
use operon_netlist::synth::paper_benchmark;

struct Variant {
    label: &'static str,
    config: OperonConfig,
}

fn main() {
    let synth = paper_benchmark("I1").expect("I1 exists");
    let design = instance(&synth);

    let base = OperonConfig::default();
    let variants = vec![
        Variant {
            label: "baseline (paper settings)",
            config: base.clone(),
        },
        Variant {
            label: "no crossing sharing",
            config: OperonConfig {
                auto_crossing_sharing: false,
                ..base.clone()
            },
        },
        Variant {
            label: "RSMT topology only",
            config: OperonConfig {
                max_topologies: 1,
                ..base.clone()
            },
        },
        Variant {
            label: "2 candidates per net",
            config: OperonConfig {
                max_candidates: 2,
                ..base.clone()
            },
        },
        Variant {
            label: "single LR iteration",
            config: OperonConfig {
                lr_max_iters: 1,
                ..base.clone()
            },
        },
    ];

    println!(
        "{:<28} {:>11} {:>9} {:>9} {:>8} {:>8}",
        "variant", "power(mW)", "optical", "electr.", "WDMs", "CPU(s)"
    );
    let mut baseline_power = None;
    for v in variants {
        let result = OperonFlow::new(v.config).run(&design).expect("flow");
        let power = result.total_power_mw();
        let delta = match baseline_power {
            None => {
                baseline_power = Some(power);
                String::new()
            }
            Some(base) => format!("  ({:+.1}%)", 100.0 * (power - base) / base),
        };
        println!(
            "{:<28} {:>11.1} {:>9} {:>9} {:>8} {:>8.1}{delta}",
            v.label,
            power,
            result.optical_net_count(),
            result.electrical_net_count(),
            result.wdm.final_count(),
            result.times.selection.as_secs_f64(),
        );
    }
    println!("\n(positive deltas = the ablated variant costs more power; the");
    println!(" no-sharing variant shows crossing loss charged per logical net");
    println!(" pair pushing nets off the optical layer)");
}
