//! Measures the tile-sharded flow against the monolithic flow on
//! die-scale designs, and writes `BENCH_shard.json` at the repository
//! root.
//!
//! ```text
//! cargo run -p operon-bench --release --bin shard_bench
//! cargo run -p operon-bench --release --bin shard_bench -- --smoke
//! ```
//!
//! Fixtures are `SynthConfig::die_scale` designs at 10k, 50k, and 100k
//! signal bits on a 5 cm die, seeded with [`HARNESS_SEED`]. Three
//! criteria:
//!
//! 1. **Identity**: `OperonFlow::run_sharded` must reproduce
//!    `OperonFlow::run` byte for byte — asserted in-process at the
//!    smallest size (candidate choices, power bits, WDM plan), and via
//!    plan fingerprints across every measured child process.
//! 2. **Peak memory**: at the largest size the sharded run's peak RSS
//!    (`VmHWM`) must be strictly below the unsharded run's. `VmHWM` is
//!    a monotone per-process high-water mark, so every (variant, size)
//!    cell re-executes this binary as a fresh child process
//!    (`--measure`) and reports its own peak.
//! 3. **Ratio floors are same-run**: every asserted ratio compares two
//!    measurements from this invocation — nothing is gated on numbers
//!    from another machine or an earlier commit.
//!
//! `--smoke` checks identity on a shrunken die-scale instance at tile
//! grids {2x2, 4x4} and thread counts {1, 2}, skipping the child
//! processes and the JSON write — the cheap CI gate. `--probe
//! <variant> <bits>` runs one cell in-process and prints the executor
//! run report (per-stage wall + peak RSS) — the memory-attribution
//! tool this benchmark's acceptance bound was tuned with.
//!
//! Numbers in the committed `BENCH_shard.json` come from whatever
//! machine last ran this binary; `hardware_threads` records the truth.

use operon::config::OperonConfig;
use operon::flow::{FlowResult, OperonFlow};
use operon_bench::HARNESS_SEED;
use operon_exec::json::{self, Value};
use operon_exec::{peak_rss_kib, Stopwatch};
use operon_netlist::synth::{generate, SynthConfig};

/// Tile grid used for every sharded measurement.
const TILES: (usize, usize) = (4, 4);
/// Die-scale sizes, in signal bits ("#Net" of the paper's Table 1).
const SIZES: [usize; 3] = [10_000, 50_000, 100_000];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--measure") {
        return measure_child(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("--probe") {
        let variant = args.get(1).expect("--probe <variant> <bits>").clone();
        let bits: usize = args.get(2).and_then(|s| s.parse().ok()).expect("bits");
        let design = generate(&SynthConfig::die_scale(bits), HARNESS_SEED);
        let flow = OperonFlow::new(OperonConfig::default());
        let _ = match variant.as_str() {
            "sharded" => flow.run_sharded(&design, TILES),
            _ => flow.run(&design),
        }
        .expect("flow");
        println!("{}", flow.executor().report().to_json());
        return;
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    if smoke {
        return run_smoke();
    }
    run_full();
}

/// FNV-1a over everything the plan exposes: one number that two runs
/// share iff their routed results are byte-identical.
fn fingerprint(result: &FlowResult) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for &choice in &result.selection.choice {
        eat(choice as u64);
    }
    eat(result.selection.power_mw.to_bits());
    eat(result.total_power_mw().to_bits());
    eat(result.wdm.connections.len() as u64);
    eat(result.wdm.initial_count as u64);
    eat(result.wdm.final_count() as u64);
    for w in &result.wdm.wdms {
        eat(w.track as u64);
        eat(w.assigned.len() as u64);
        for &(conn, channels) in &w.assigned {
            eat(conn as u64);
            eat(channels as u64);
        }
    }
    h
}

fn run_variant(variant: &str, bits: usize) -> FlowResult {
    let design = generate(&SynthConfig::die_scale(bits), HARNESS_SEED);
    let flow = OperonFlow::new(OperonConfig::default());
    match variant {
        "sharded" => flow.run_sharded(&design, TILES),
        "unsharded" => flow.run(&design),
        other => panic!("unknown variant {other:?}"),
    }
    .expect("die-scale flow succeeds")
}

/// Child mode: route one (variant, size) cell and print a JSON line
/// with wall time, this process's peak RSS, and the plan fingerprint.
fn measure_child(args: &[String]) {
    let variant = args.first().expect("--measure <variant> <bits>");
    let bits: usize = args
        .get(1)
        .and_then(|s| s.parse().ok())
        .expect("--measure <variant> <bits>");
    let sw = Stopwatch::start();
    let result = run_variant(variant, bits);
    let wall_s = sw.elapsed().as_secs_f64();
    let line = Value::object(vec![
        ("variant", Value::from(variant.as_str())),
        ("bits", Value::from(bits)),
        ("wall_s", Value::from(wall_s)),
        ("peak_rss_kib", Value::from(peak_rss_kib())),
        (
            "fingerprint",
            Value::from(format!("{:016x}", fingerprint(&result))),
        ),
    ]);
    println!("{}", line.compact());
}

/// Spawns a fresh child for one (variant, size) cell and parses its
/// report.
fn spawn_cell(variant: &str, bits: usize) -> (f64, u64, String) {
    let exe = std::env::current_exe().expect("own executable path");
    let out = std::process::Command::new(exe)
        .args(["--measure", variant, &bits.to_string()])
        .output()
        .expect("spawn measurement child");
    assert!(
        out.status.success(),
        "child {variant}/{bits} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("child output is UTF-8");
    let line = stdout.lines().last().expect("child printed a report");
    let v = json::parse(line).expect("child report is valid JSON");
    let wall = v.get("wall_s").and_then(Value::as_f64).expect("wall_s");
    let rss = v
        .get("peak_rss_kib")
        .and_then(Value::as_i64)
        .expect("peak_rss_kib") as u64;
    let fp = match v.get("fingerprint") {
        Some(Value::Str(s)) => s.clone(),
        other => panic!("fingerprint missing: {other:?}"),
    };
    (wall, rss, fp)
}

fn assert_identity(bits: usize, tiles: (usize, usize), threads: usize) {
    let design = generate(&SynthConfig::die_scale(bits), HARNESS_SEED);
    let reference = OperonFlow::new(OperonConfig::default())
        .with_threads(1)
        .run(&design)
        .expect("reference flow");
    let sharded = OperonFlow::new(OperonConfig::default())
        .with_threads(threads)
        .run_sharded(&design, tiles)
        .expect("sharded flow");
    assert_eq!(
        fingerprint(&reference),
        fingerprint(&sharded),
        "sharded plan diverged at {bits} bits, tiles {tiles:?}, {threads} threads"
    );
    assert_eq!(reference.selection.choice, sharded.selection.choice);
    assert_eq!(reference.wdm.wdms, sharded.wdm.wdms);
    assert_eq!(reference.hyper_nets, sharded.hyper_nets);
}

fn run_smoke() {
    for tiles in [(2, 2), (4, 4)] {
        for threads in [1, 2] {
            assert_identity(2_000, tiles, threads);
        }
    }
    println!("shard_bench --smoke: all identity checks passed");
}

fn run_full() {
    let hardware = std::thread::available_parallelism().map_or(1, usize::from);

    // Criterion 1, in-process: byte identity at the smallest size.
    assert_identity(SIZES[0], TILES, 0);

    let mut rows: Vec<Value> = Vec::new();
    let mut last_ratio = f64::NAN;
    for (pos, &bits) in SIZES.iter().enumerate() {
        let (wall_un, rss_un, fp_un) = spawn_cell("unsharded", bits);
        let (wall_sh, rss_sh, fp_sh) = spawn_cell("sharded", bits);
        assert_eq!(
            fp_un, fp_sh,
            "{bits} bits: sharded child's plan diverged from unsharded"
        );
        let rss_ratio = rss_sh as f64 / rss_un as f64;
        println!(
            "{bits} bits: wall {wall_un:.2} s -> {wall_sh:.2} s, \
             peak RSS {rss_un} KiB -> {rss_sh} KiB ({rss_ratio:.3}x)"
        );
        if pos == SIZES.len() - 1 {
            // Criterion 2, same-run: the acceptance bound at 100k.
            assert!(
                rss_sh < rss_un,
                "at {bits} bits the sharded peak RSS ({rss_sh} KiB) must be \
                 strictly below the unsharded run's ({rss_un} KiB)"
            );
            last_ratio = rss_ratio;
        }
        rows.push(Value::object(vec![
            ("nets", Value::from(bits)),
            ("unsharded_wall_s", Value::from(wall_un)),
            ("sharded_wall_s", Value::from(wall_sh)),
            ("unsharded_peak_rss_kib", Value::from(rss_un as usize)),
            ("sharded_peak_rss_kib", Value::from(rss_sh as usize)),
            ("peak_rss_ratio", Value::from(rss_ratio)),
            ("wall_ratio", Value::from(wall_sh / wall_un)),
            ("fingerprint", Value::from(fp_sh)),
        ]));
    }

    let out = Value::object(vec![
        ("benchmark", Value::from("tile_sharded_flow")),
        ("hardware_threads", Value::from(hardware)),
        (
            "tiles",
            Value::Array(vec![Value::Int(TILES.0 as i64), Value::Int(TILES.1 as i64)]),
        ),
        ("seed", Value::from(HARNESS_SEED as usize)),
        ("sizes", Value::Array(rows)),
        ("identical_results", Value::from(true)),
        ("peak_rss_ratio_at_largest", Value::from(last_ratio)),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_shard.json");
    std::fs::write(path, out.pretty() + "\n").expect("write BENCH_shard.json");
    println!("wrote {path}");
}
