//! Sensitivity sweeps over the physical parameters: how the
//! optical/electrical split and the total power react to the detection
//! budget `l_m`, the WDM capacity, and the crossing loss β.
//!
//! These are the "knob" experiments a user of the tool runs before
//! committing to a device library — and they expose the crossover
//! structure the paper's model implies.
//!
//! ```text
//! cargo run -p operon-bench --release --bin sweep
//! ```

use operon::config::OperonConfig;
use operon::flow::OperonFlow;
use operon_bench::instance;
use operon_netlist::synth::paper_benchmark;
use operon_netlist::Design;

fn run(design: &Design, config: OperonConfig) -> (f64, usize, usize, usize) {
    let r = OperonFlow::new(config).run(design).expect("flow");
    (
        r.total_power_mw(),
        r.optical_net_count(),
        r.hyper_nets.len(),
        r.wdm.final_count(),
    )
}

fn main() {
    let synth = paper_benchmark("I1").expect("I1 exists");
    let design = instance(&synth);
    let base = OperonConfig::default();
    println!("benchmark: I1 substitute ({} bits)\n", design.bit_count());

    println!("-- detection budget l_m (dB) --");
    println!(
        "{:>6} {:>11} {:>12} {:>7}",
        "l_m", "power(mW)", "optical", "WDMs"
    );
    for lm in [5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 40.0] {
        let mut config = base.clone();
        config.optical.max_loss_db = lm;
        let (p, opt, total, wdms) = run(&design, config);
        println!("{lm:>6} {p:>11.1} {opt:>8}/{total:<3} {wdms:>7}");
    }

    println!("\n-- WDM capacity (channels) --");
    println!(
        "{:>6} {:>11} {:>12} {:>7}",
        "cap", "power(mW)", "optical", "WDMs"
    );
    for cap in [8usize, 16, 32, 64] {
        let config = base.clone().with_wdm_capacity(cap);
        let (p, opt, total, wdms) = run(&design, config);
        println!("{cap:>6} {p:>11.1} {opt:>8}/{total:<3} {wdms:>7}");
    }

    println!("\n-- crossing loss beta (dB per crossing) --");
    println!(
        "{:>6} {:>11} {:>12} {:>7}",
        "beta", "power(mW)", "optical", "WDMs"
    );
    for beta in [0.1, 0.3, 0.52, 1.0, 2.0] {
        let mut config = base.clone();
        config.optical.beta_db_per_crossing = beta;
        let (p, opt, total, wdms) = run(&design, config);
        println!("{beta:>6} {p:>11.1} {opt:>8}/{total:<3} {wdms:>7}");
    }

    println!("\nexpected shapes: power falls and the optical share rises with l_m");
    println!("and capacity; both degrade as beta grows.");
}
