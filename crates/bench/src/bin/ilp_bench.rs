//! Measures the wave-synchronous parallel branch-and-bound selector and
//! writes `BENCH_ilp.json` at the repository root.
//!
//! ```text
//! cargo run -p operon-bench --release --bin ilp_bench
//! ```
//!
//! Three measurements:
//!
//! 1. **Threads × waves matrix** — the full ILP selection
//!    (`select_ilp_with`) over two crossing-bound fixtures, every
//!    combination of `threads ∈ {1, 2, 8}` and `wave_size ∈ {1, 8}`:
//!    best wall time, explored nodes, and nodes/second. Results at a
//!    fixed wave size must be bit-identical for every thread count
//!    (asserted), and all runs solve to proven optimality so every
//!    configuration must land on the same power (asserted).
//! 2. **Wave-1 regression guard** — the shipped `Model::solve` at
//!    `wave_size = 1` on one thread versus the pre-wave reference loop
//!    (`Model::solve_reference`) over a battery of random models; the
//!    wave path must stay within 5% of the old sequential solver
//!    (asserted; warm starts usually make it faster).
//! 3. **Warm-start effect** — total simplex iterations over the same
//!    battery with parent-basis rest hints on versus off.
//!
//! Numbers in the committed `BENCH_ilp.json` come from whatever machine
//! last ran this binary — on a 1-CPU container the threads>1 rows
//! measure overhead, not speedup; `hardware_threads` records the truth.

use operon::config::OperonConfig;
use operon::formulation::select_ilp_with;
use operon::lr::select_lr;
use operon::CrossingIndex;
use operon_cluster::build_hyper_nets;
use operon_exec::json::Value;
use operon_exec::{Executor, Stopwatch};
use operon_ilp::{Model, SolveOptions, VarId};
use operon_netlist::synth::{generate, SynthConfig};
use std::time::Duration;

const ITERS: u32 = 3;
const THREADS: [usize; 3] = [1, 2, 8];
const WAVES: [usize; 2] = [1, 8];

fn main() {
    let hardware = std::thread::available_parallelism().map_or(1, usize::from);
    let mut fixtures = Vec::new();
    for (name, synth, seed) in [
        ("I1_small_seed42", SynthConfig::small(), 42u64),
        ("I2_medium_seed3", SynthConfig::medium(), 3),
    ] {
        fixtures.push(bench_fixture(name, &synth, seed));
    }
    let (ratio, reference_ms, wave1_ms) = bench_wave1_vs_reference();
    let (warm_iters, cold_iters) = bench_warm_start();
    assert!(
        warm_iters < cold_iters,
        "warm-start hints must cut simplex iterations ({warm_iters} vs {cold_iters})"
    );

    let report = Value::object(vec![
        ("benchmark", Value::from("ilp_wave_search")),
        ("iters_per_point", Value::from(u64::from(ITERS))),
        ("hardware_threads", Value::from(hardware)),
        ("fixtures", Value::Array(fixtures)),
        (
            "wave1_vs_reference",
            Value::object(vec![
                ("reference_best_ms", Value::from(reference_ms)),
                ("wave1_best_ms", Value::from(wave1_ms)),
                ("ratio", Value::from(ratio)),
                ("criterion", Value::from("wave1 <= 1.05 * reference")),
            ]),
        ),
        (
            "warm_start",
            Value::object(vec![
                ("warm_simplex_iterations", Value::from(warm_iters)),
                ("cold_simplex_iterations", Value::from(cold_iters)),
                (
                    "iteration_ratio",
                    Value::from(warm_iters as f64 / cold_iters as f64),
                ),
            ]),
        ),
        ("identical_results", Value::from(true)),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ilp.json");
    std::fs::write(path, report.pretty() + "\n").expect("write BENCH_ilp.json");
    println!("wrote {path}");
}

/// Times `select_ilp_with` over the threads × waves matrix on one
/// crossing-bound fixture and asserts the determinism contract.
fn bench_fixture(name: &str, synth: &SynthConfig, seed: u64) -> Value {
    // A loss budget tight enough that crossing constraints bind, so the
    // selector genuinely branches instead of presolving everything away.
    let mut config = OperonConfig::default();
    config.optical.max_loss_db = 4.0;

    let design = generate(synth, seed);
    let nets = build_hyper_nets(&design, &config.cluster);
    let config = config.resolved_for(nets.iter().map(|n| n.bit_count()));
    let candidates: Vec<_> = nets
        .iter()
        .enumerate()
        .map(|(i, n)| operon::codesign::generate_candidates(n, i, &config))
        .collect();
    let crossings = CrossingIndex::build(&candidates);
    let warm = select_lr(&candidates, &crossings, &config);

    let mut runs: Vec<Value> = Vec::new();
    let mut power_bits: Option<u64> = None;
    for wave_size in WAVES {
        let mut wave_fingerprint: Option<(Vec<usize>, u64)> = None;
        for threads in THREADS {
            let exec = Executor::new(threads);
            let mut best_ms = f64::INFINITY;
            let mut last = None;
            for _ in 0..ITERS {
                let sw = Stopwatch::start();
                let sel = select_ilp_with(
                    &candidates,
                    &crossings,
                    &config.optical,
                    Duration::from_secs(600),
                    Some(&warm.choice),
                    wave_size,
                    &exec,
                )
                .expect("selection succeeds");
                best_ms = best_ms.min(sw.elapsed().as_secs_f64() * 1e3);
                last = Some(sel);
            }
            let sel = last.expect("at least one iteration");
            assert!(sel.proven_optimal, "{name}: budget must suffice");
            let stats = sel.ilp_stats.expect("ILP path carries stats");
            assert!(stats.nodes_explored > 0, "{name}: fixture must search");

            let fingerprint = (sel.choice.clone(), sel.power_mw.to_bits());
            match &wave_fingerprint {
                None => wave_fingerprint = Some(fingerprint),
                Some(base) => assert_eq!(
                    *base, fingerprint,
                    "{name}: wave {wave_size} diverged at {threads} threads"
                ),
            }
            match power_bits {
                None => power_bits = Some(sel.power_mw.to_bits()),
                Some(bits) => assert_eq!(
                    bits,
                    sel.power_mw.to_bits(),
                    "{name}: optimum differs at wave {wave_size}"
                ),
            }

            let nodes_per_sec = stats.nodes_explored as f64 / (best_ms / 1e3);
            println!(
                "{name} wave={wave_size} threads={threads}: {nodes} nodes, \
                 best of {ITERS} = {best_ms:.1} ms, {nodes_per_sec:.0} nodes/s",
                nodes = stats.nodes_explored,
            );
            runs.push(Value::object(vec![
                ("wave_size", Value::from(wave_size)),
                ("threads", Value::from(threads)),
                ("best_wall_ms", Value::from(best_ms)),
                ("nodes_explored", Value::from(stats.nodes_explored)),
                ("lp_solves", Value::from(stats.lp_solves)),
                ("waves", Value::from(stats.waves)),
                ("simplex_iterations", Value::from(stats.simplex_iterations)),
                ("nodes_per_sec", Value::from(nodes_per_sec)),
            ]));
        }
    }
    Value::object(vec![
        ("name", Value::from(name)),
        ("hyper_nets", Value::from(nets.len())),
        ("runs", Value::Array(runs)),
    ])
}

/// xorshift64* — a tiny deterministic generator so the model battery
/// needs no external RNG crate.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[0, n)`.
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A battery of random covering/packing models that genuinely branch.
fn battery() -> Vec<Model> {
    let mut rng = XorShift(0x9E37_79B9_7F4A_7C15);
    let mut models = Vec::new();
    for _ in 0..24 {
        let n = 12 + rng.below(6) as usize;
        let mut m = Model::new();
        let vars: Vec<VarId> = (0..n).map(|i| m.add_binary(format!("x{i}"))).collect();
        // Packing: a few knapsacks over random subsets.
        for _ in 0..4 {
            let mut expr: Vec<(f64, VarId)> = Vec::new();
            for &v in &vars {
                if rng.below(10) < 6 {
                    expr.push((1.0 + rng.below(5) as f64, v));
                }
            }
            if expr.is_empty() {
                continue;
            }
            let cap: f64 = expr.iter().map(|&(c, _)| c).sum::<f64>() / 2.0;
            m.add_le(expr, cap.floor());
        }
        // Covering: force some structure so all-zeros is infeasible.
        for _ in 0..2 {
            let mut expr: Vec<(f64, VarId)> = Vec::new();
            for &v in &vars {
                if rng.below(10) < 5 {
                    expr.push((1.0, v));
                }
            }
            if expr.len() >= 2 {
                m.add_ge(expr, 2.0);
            }
        }
        let obj: Vec<(f64, VarId)> = vars
            .iter()
            .map(|&v| (rng.below(19) as f64 - 9.0, v))
            .collect();
        m.set_objective(obj);
        models.push(m);
    }
    models
}

/// Compares the shipped wave-1 sequential solve against the pre-wave
/// reference loop and asserts the 5% regression criterion.
fn bench_wave1_vs_reference() -> (f64, f64, f64) {
    let models = battery();
    let opts = SolveOptions {
        wave_size: 1,
        executor: Executor::sequential(),
        ..SolveOptions::default()
    };
    let mut reference_ms = f64::INFINITY;
    let mut wave1_ms = f64::INFINITY;
    for _ in 0..ITERS {
        let sw = Stopwatch::start();
        for m in &models {
            let _ = m.solve_reference(&opts);
        }
        reference_ms = reference_ms.min(sw.elapsed().as_secs_f64() * 1e3);

        let sw = Stopwatch::start();
        for m in &models {
            let _ = m.solve(&opts);
        }
        wave1_ms = wave1_ms.min(sw.elapsed().as_secs_f64() * 1e3);
    }
    let ratio = wave1_ms / reference_ms;
    println!("wave1 vs reference: {wave1_ms:.2} ms vs {reference_ms:.2} ms (ratio {ratio:.3})");
    assert!(
        ratio <= 1.05,
        "wave-1 solve regressed beyond 5% of the reference loop ({ratio:.3})"
    );
    (ratio, reference_ms, wave1_ms)
}

/// Totals simplex iterations over the battery with warm-start rest hints
/// on versus off.
fn bench_warm_start() -> (u64, u64) {
    let models = battery();
    let mut totals = [0u64; 2];
    for (slot, warm) in [(0usize, true), (1, false)] {
        let opts = SolveOptions {
            warm_start_basis: warm,
            ..SolveOptions::default()
        };
        for m in &models {
            totals[slot] += m.solve(&opts).stats().simplex_iterations;
        }
    }
    println!(
        "simplex iterations: warm {} vs cold {}",
        totals[0], totals[1]
    );
    (totals[0], totals[1])
}
