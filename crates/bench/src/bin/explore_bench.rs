//! Measures the warm-artifact sweep driver against cold-per-point
//! evaluation on a 64-point config lattice, and writes
//! `BENCH_explore.json` at the repository root.
//!
//! ```text
//! cargo run -p operon-bench --release --bin explore_bench
//! cargo run -p operon-bench --release --bin explore_bench -- --smoke
//! ```
//!
//! The fixture lattice crosses a co-design knob (`max_delay`, 4
//! values) with a selection knob (`lr_iters`, 4 values) and a WDM knob
//! (`wdm_displacement`, 4 values) on the medium synthetic die: 64
//! points in 4 warm groups of 16, so the warm driver pays 4 cold
//! pipelines and 60 selection- or WDM-tier suffixes where the cold
//! baseline pays 64 full pipelines. `max_delay` trades launch power
//! against thermal tuning and `wdm_displacement` trades wavelength
//! count, so the sweep lands on a genuine front (16 distinct objective
//! vectors, 16 front members). Three criteria:
//!
//! 1. **Identity**: the warm sweep's objective vectors are bitwise
//!    equal to the cold sweep's, point by point (asserted always).
//! 2. **Front determinism**: the Pareto front is identical at 1, 2 and
//!    8 threads (1 and 2 under `--smoke`), warm and cold.
//! 3. **Warm speed**: on one worker thread (schedule parity), the warm
//!    sweep must evaluate at least 2x more points per second than
//!    cold-per-point — the PR's acceptance criterion, asserted
//!    in-process from the same run that writes the JSON.
//!
//! `--smoke` shrinks the lattice, keeps every identity assertion, and
//! skips the timing criterion and the JSON write — the cheap CI gate.
//!
//! Numbers in the committed `BENCH_explore.json` come from whatever
//! machine last ran this binary; `hardware_threads` records the truth.

use operon_exec::json::Value;
use operon_exec::{Executor, Stopwatch};
use operon_explore::lattice::{Axis, Lattice};
use operon_explore::sweep::{sweep, SweepOptions, SweepResult};
use operon_netlist::synth::{generate, SynthConfig};

fn lattice(smoke: bool) -> Lattice {
    let (delay, iters, displacement) = if smoke {
        (
            "max_delay=260,300",
            "lr_iters=6,12",
            "wdm_displacement=60,600",
        )
    } else {
        (
            "max_delay=240,260,280,300",
            "lr_iters=6,8,10,12",
            "wdm_displacement=30,60,120,600",
        )
    };
    Lattice::new(
        vec![],
        vec![
            Axis::parse(delay).expect("valid axis"),
            Axis::parse(iters).expect("valid axis"),
            Axis::parse(displacement).expect("valid axis"),
        ],
    )
    .expect("valid lattice")
}

fn assert_identical(warm: &SweepResult, cold: &SweepResult, what: &str) {
    assert_eq!(warm.points.len(), cold.points.len(), "{what}: point count");
    for (w, c) in warm.points.iter().zip(&cold.points) {
        assert_eq!(w.index, c.index);
        assert_eq!(w.fingerprint, c.fingerprint);
        let (wv, cv) = (w.objectives.vector(), c.objectives.vector());
        for (k, (x, y)) in wv.iter().zip(&cv).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{what}: objective {k} of point {} diverged",
                w.index
            );
        }
    }
    assert_eq!(warm.front, cold.front, "{what}: Pareto front diverged");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let hardware = std::thread::available_parallelism().map_or(1, usize::from);

    let design = generate(&SynthConfig::medium(), 42);
    let lattice = lattice(smoke);
    let n = lattice.len();
    let warm_opts = SweepOptions::default();
    let cold_opts = SweepOptions {
        cold: true,
        ..SweepOptions::default()
    };

    // Criterion 3 (and the identity fixture): timed on ONE worker
    // thread so warm-vs-cold compares pipeline work, not scheduling.
    let exec = Executor::new(1);
    let sw = Stopwatch::start();
    let warm = sweep(&design, &lattice, &exec, &warm_opts).expect("warm sweep");
    let warm_s = sw.elapsed().as_secs_f64();
    let sw = Stopwatch::start();
    let cold = sweep(&design, &lattice, &exec, &cold_opts).expect("cold sweep");
    let cold_s = sw.elapsed().as_secs_f64();

    // Criterion 1: bitwise objective identity, warm vs cold.
    assert_identical(&warm, &cold, "warm vs cold");
    assert_eq!(cold.stages_reused, 0);
    assert!(
        warm.stages_rerun < cold.stages_rerun,
        "warm sweep must re-run strictly fewer whole stages"
    );

    // Criterion 2: the front never moves with the thread count or the
    // schedule seed.
    let thread_counts: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 8] };
    for &threads in thread_counts {
        let exec = Executor::new(threads);
        let replay = sweep(
            &design,
            &lattice,
            &exec,
            &SweepOptions {
                seed: 7 + threads as u64,
                ..SweepOptions::default()
            },
        )
        .expect("replay sweep");
        assert_identical(&warm, &replay, &format!("warm at {threads} threads"));
    }

    if smoke {
        println!(
            "explore_bench --smoke: {n} points, {} groups, all identity checks passed",
            warm.groups
        );
        return;
    }

    let warm_pps = n as f64 / warm_s;
    let cold_pps = n as f64 / cold_s;
    let speedup = warm_pps / cold_pps;
    assert!(
        speedup >= 2.0,
        "warm sweep must evaluate at least 2x more points/sec than \
         cold-per-point (got {speedup:.2}x: warm {warm_s:.3} s vs cold {cold_s:.3} s \
         over {n} points)"
    );
    println!(
        "explore: {n} points in {g} groups, warm {warm_s:.3} s ({warm_pps:.2} pts/s) vs \
         cold {cold_s:.3} s ({cold_pps:.2} pts/s) = {speedup:.2}x; front {f} points; \
         stages {r}/{t} reused",
        g = warm.groups,
        f = warm.front.len(),
        r = warm.stages_reused,
        t = warm.stages_reused + warm.stages_rerun,
    );

    let out = Value::object(vec![
        ("benchmark", Value::from("explore_warm_sweep")),
        ("hardware_threads", Value::from(hardware)),
        ("lattice_points", Value::from(n)),
        ("warm_groups", Value::from(warm.groups)),
        ("warm_total_s", Value::from(warm_s)),
        ("cold_total_s", Value::from(cold_s)),
        ("warm_points_per_s", Value::from(warm_pps)),
        ("cold_points_per_s", Value::from(cold_pps)),
        ("speedup", Value::from(speedup)),
        ("front_size", Value::from(warm.front.len())),
        (
            "front",
            Value::Array(warm.front.iter().map(|&i| Value::Int(i as i64)).collect()),
        ),
        ("stages_reused", Value::from(warm.stages_reused)),
        (
            "stages_total",
            Value::from(warm.stages_reused + warm.stages_rerun),
        ),
        (
            "replay_thread_counts",
            Value::Array(vec![Value::Int(1), Value::Int(2), Value::Int(8)]),
        ),
        ("identical_results", Value::from(true)),
        ("peak_rss_kib", Value::from(operon_exec::peak_rss_kib())),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_explore.json");
    std::fs::write(path, out.pretty() + "\n").expect("write BENCH_explore.json");
    println!("wrote {path}");
}
