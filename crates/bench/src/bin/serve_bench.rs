//! Measures the `operon-serve` warm-session daemon against one-shot
//! cold routing on a synthetic ECO trace, and writes `BENCH_serve.json`
//! at the repository root.
//!
//! ```text
//! cargo run -p operon-bench --release --bin serve_bench
//! cargo run -p operon-bench --release --bin serve_bench -- --smoke
//! ```
//!
//! The fixture is a synthesized design plus a request trace of
//! `eco_move_pins` requests cycling through its groups (each group
//! alternately nudged away from and back to its home position, so every
//! ECO is feasible), with periodic `report` requests. Three criteria:
//!
//! 1. **Identity**: every warm ECO response's `power_mw` must equal —
//!    bitwise, through the JSON round-trip — the power of a fresh
//!    cold `OperonFlow::run` on the identically-mutated design
//!    (asserted per request).
//! 2. **Replay determinism**: the whole trace replayed through servers
//!    at 1, 2 and 8 worker threads must produce byte-identical response
//!    streams (asserted in-process).
//! 3. **Warm speed**: serving the trace warm must be at least 3x faster
//!    than routing every request cold (asserted, non-smoke only — the
//!    PR's acceptance criterion).
//!
//! `--smoke` shrinks the trace, keeps every identity assertion, and
//! skips the timing criteria and the JSON write — the cheap CI gate.
//!
//! Numbers in the committed `BENCH_serve.json` come from whatever
//! machine last ran this binary; `hardware_threads` records the truth.

use operon::config::OperonConfig;
use operon::flow::OperonFlow;
use operon_exec::json::{self, Value};
use operon_exec::{Executor, Stopwatch};
use operon_geom::Point;
use operon_netlist::synth::{generate, SynthConfig};
use operon_netlist::{Bit, Design, SignalGroup};
use operon_serve::Server;

const REPORT_EVERY: usize = 100;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let hardware = std::thread::available_parallelism().map_or(1, usize::from);
    let requests = if smoke { 40 } else { 1000 };

    let design = generate(&SynthConfig::small(), 42);
    let moves = plan_moves(&design, requests);
    let trace = build_trace(&design, &moves);

    // Criterion 2: byte-identical replay at every thread count.
    let thread_counts: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 8] };
    let reference = Server::new(Executor::new(1), 1).run_trace(&trace);
    for &threads in &thread_counts[1..] {
        let replay = Server::new(Executor::new(threads), threads).run_trace(&trace);
        assert_eq!(
            replay, reference,
            "replay diverged at {threads} worker threads"
        );
    }

    // Criterion 1 + warm timing: one request at a time through a
    // single-threaded server, cold-checked against a fresh flow run on
    // the identically-mutated design.
    let mut server = Server::new(Executor::new(1), 1);
    let mut mutated = design.clone();
    let mut warm_total = 0.0f64;
    let mut cold_total = 0.0f64;
    let mut latencies_ms: Vec<f64> = Vec::new();
    for (pos, line) in trace.lines().enumerate() {
        let sw = Stopwatch::start();
        let response = server.handle_line(line);
        let elapsed = sw.elapsed().as_secs_f64();
        warm_total += elapsed;
        assert!(
            response.contains("\"ok\":true"),
            "request {pos} failed: {response}"
        );
        let Some((group, delta)) = eco_of(line, &moves) else {
            continue;
        };
        latencies_ms.push(elapsed * 1e3);
        mutated = shifted(&mutated, group, delta);
        let sw = Stopwatch::start();
        let cold = OperonFlow::new(OperonConfig::default())
            .run(&mutated)
            .expect("cold flow feasible");
        cold_total += sw.elapsed().as_secs_f64();
        let warm_power = json::parse(&response)
            .expect("response is valid JSON")
            .get("power_mw")
            .and_then(Value::as_f64)
            .expect("ECO response carries power_mw");
        assert_eq!(
            warm_power.to_bits(),
            cold.selection.power_mw.to_bits(),
            "request {pos}: warm power diverged from the cold reference"
        );
    }

    let report = server.handle_line("{\"op\":\"report\",\"session\":\"bench\"}");
    assert!(
        report.contains("\"wdm_networks_cloned\":0"),
        "warm sessions must never clone a flow network: {report}"
    );

    if smoke {
        println!("serve_bench --smoke: all identity checks passed");
        return;
    }

    let speedup = cold_total / warm_total;
    assert!(
        speedup >= 3.0,
        "warm sessions must be at least 3x faster than one-shot cold \
         routing (got {speedup:.2}x: warm {warm_total:.3} s vs cold {cold_total:.3} s)"
    );

    latencies_ms.sort_by(f64::total_cmp);
    let pct = |p: f64| latencies_ms[((latencies_ms.len() - 1) as f64 * p) as usize];
    let p50 = pct(0.50);
    let p99 = pct(0.99);
    let rps = trace.lines().count() as f64 / warm_total;
    println!(
        "serve: {n} requests, warm {warm_total:.3} s vs cold {cold_total:.3} s \
         ({speedup:.2}x), {rps:.0} req/s, ECO p50 {p50:.3} ms p99 {p99:.3} ms",
        n = trace.lines().count(),
    );

    let out = Value::object(vec![
        ("benchmark", Value::from("serve_warm_sessions")),
        ("hardware_threads", Value::from(hardware)),
        ("requests", Value::from(trace.lines().count())),
        ("eco_requests", Value::from(latencies_ms.len())),
        ("warm_total_s", Value::from(warm_total)),
        ("cold_total_s", Value::from(cold_total)),
        ("speedup", Value::from(speedup)),
        ("rps_warm", Value::from(rps)),
        ("eco_p50_ms", Value::from(p50)),
        ("eco_p99_ms", Value::from(p99)),
        (
            "replay_thread_counts",
            Value::Array(vec![Value::Int(1), Value::Int(2), Value::Int(8)]),
        ),
        ("identical_results", Value::from(true)),
        ("peak_rss_kib", Value::from(operon_exec::peak_rss_kib())),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(path, out.pretty() + "\n").expect("write BENCH_serve.json");
    println!("wrote {path}");
}

/// Plans `count` feasible pin moves cycling through the design's
/// groups: each group gets a fixed nudge direction that provably stays
/// on the die, applied and undone alternately so pins orbit their home
/// positions. Returns `(group, (dx, dy))` per ECO request.
fn plan_moves(design: &Design, count: usize) -> Vec<(usize, (i64, i64))> {
    const NUDGE: i64 = 24;
    let die = design.die();
    let mut directions: Vec<Option<(i64, i64)>> = Vec::new();
    for group in design.groups() {
        let fits = |dx: i64, dy: i64| {
            group.bits().iter().all(|b| {
                b.pins()
                    .all(|p| die.contains(Point::new(p.x + dx, p.y + dy)))
            })
        };
        directions.push(
            [(NUDGE, 0), (-NUDGE, 0), (0, NUDGE), (0, -NUDGE)]
                .into_iter()
                .find(|&(dx, dy)| fits(dx, dy)),
        );
    }
    let mut out = Vec::new();
    let mut away: Vec<bool> = vec![true; directions.len()];
    let mut group = 0usize;
    while out.len() < count {
        if let Some((dx, dy)) = directions[group] {
            let sign = if away[group] { 1 } else { -1 };
            out.push((group, (sign * dx, sign * dy)));
            away[group] = !away[group];
        }
        group = (group + 1) % directions.len();
    }
    out
}

/// Renders the bench request trace: open, first (cold) route, the
/// planned ECOs with a `report` heartbeat every [`REPORT_EVERY`]
/// requests.
fn build_trace(design: &Design, moves: &[(usize, (i64, i64))]) -> String {
    let mut trace = String::new();
    trace.push_str(
        &Value::object(vec![
            ("op", "open_design".into()),
            ("session", "bench".into()),
            ("design", operon_netlist::io::write_design(design).into()),
        ])
        .compact(),
    );
    trace.push('\n');
    trace.push_str("{\"op\":\"route\",\"session\":\"bench\"}\n");
    for (pos, (group, (dx, dy))) in moves.iter().enumerate() {
        trace.push_str(
            &Value::object(vec![
                ("op", "eco_move_pins".into()),
                ("session", "bench".into()),
                ("group", Value::Int(*group as i64)),
                ("dx", Value::Int(*dx)),
                ("dy", Value::Int(*dy)),
            ])
            .compact(),
        );
        trace.push('\n');
        if (pos + 1) % REPORT_EVERY == 0 {
            trace.push_str("{\"op\":\"report\",\"session\":\"bench\"}\n");
        }
    }
    trace
}

/// Maps a trace line back to its planned move (None for non-ECO lines).
fn eco_of(line: &str, moves: &[(usize, (i64, i64))]) -> Option<(usize, (i64, i64))> {
    if !line.contains("eco_move_pins") {
        return None;
    }
    let value = json::parse(line).expect("trace lines are valid JSON");
    let group = value.get("group").and_then(Value::as_i64)? as usize;
    let dx = value.get("dx").and_then(Value::as_i64)?;
    let dy = value.get("dy").and_then(Value::as_i64)?;
    debug_assert!(moves.contains(&(group, (dx, dy))));
    Some((group, (dx, dy)))
}

/// The cold-reference mutation: the same pin translation the daemon's
/// `eco_move_pins` applies, rebuilt as a standalone design.
fn shifted(design: &Design, group: usize, (dx, dy): (i64, i64)) -> Design {
    let mut next = Design::new(design.name(), design.die());
    for g in design.groups() {
        if g.id().index() == group {
            let bits = g
                .bits()
                .iter()
                .map(|b| {
                    Bit::new(
                        b.id(),
                        Point::new(b.source().x + dx, b.source().y + dy),
                        b.sinks()
                            .iter()
                            .map(|&s| Point::new(s.x + dx, s.y + dy))
                            .collect(),
                    )
                })
                .collect();
            next.push_group(SignalGroup::new(g.id(), g.name(), bits));
        } else {
            next.push_group(g.clone());
        }
    }
    next
}
