//! Measures the PR-5 transactional WDM re-solve machinery — undo-log
//! trials against the clone-per-trial pattern they replace, and the
//! end-to-end warm planner against the all-cold reference — and writes
//! `BENCH_wdm.json` at the repository root.
//!
//! ```text
//! cargo run -p operon-bench --release --bin wdm_bench
//! cargo run -p operon-bench --release --bin wdm_bench -- --smoke
//! ```
//!
//! Two measurements:
//!
//! 1. **Clone-style vs transactional deletion sweeps** on an
//!    assignment network in the WDM-reduction shape: every
//!    single-waveguide tentative deletion evaluated (a) the pre-PR way —
//!    copy the committed network, withdraw, warm re-solve, drop the
//!    copy — and (b) transactionally — `checkout()`, withdraw, warm
//!    re-solve, `rollback()` on the shared committed network. Per-trial
//!    results must agree exactly (asserted); the clone counters must
//!    read one-copy-per-trial before and zero after (asserted).
//! 2. **Warm vs cold WDM planning** on synthesized designs: wall time
//!    of `wdm::plan` against the retained `wdm::plan_cold_reference`,
//!    with plans asserted byte-identical at 1, 2 and 8 threads, zero
//!    warm fallbacks, zero networks cloned, and one rollback per warm
//!    trial (all asserted). On the I2-class fixture the warm planner
//!    must beat the cold reference in wall time (asserted) — the
//!    ROADMAP gap this PR closes.
//!
//! `--smoke` shrinks every fixture, keeps every identity assertion, and
//! skips the timing criteria and the JSON write — the cheap CI gate.
//!
//! Numbers in the committed `BENCH_wdm.json` come from whatever machine
//! last ran this binary; `hardware_threads` records the truth.

use operon::codesign::{generate_candidates, NetCandidates};
use operon::config::OperonConfig;
use operon::lr::select_lr_with;
use operon::wdm;
use operon::CrossingIndex;
use operon_cluster::build_hyper_nets;
use operon_exec::json::Value;
use operon_exec::{Executor, Stopwatch};
use operon_mcmf::{EdgeId, FlowResult, McmfGraph, McmfStats, NodeId};
use operon_netlist::synth::{generate, SynthConfig};

const ITERS: u32 = 3;
const THREADS: [usize; 3] = [1, 2, 8];

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let hardware = std::thread::available_parallelism().map_or(1, usize::from);

    let styles = bench_trial_styles(smoke);
    let plans = bench_plans(smoke);

    if smoke {
        println!("wdm_bench --smoke: all identity checks passed");
        return;
    }

    let report = Value::object(vec![
        ("benchmark", Value::from("wdm_transactional")),
        ("iters_per_point", Value::from(u64::from(ITERS))),
        ("hardware_threads", Value::from(hardware)),
        ("trial_styles", styles),
        ("wdm_plan", Value::Array(plans)),
        ("identical_results", Value::from(true)),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_wdm.json");
    std::fs::write(path, report.pretty() + "\n").expect("write BENCH_wdm.json");
    println!("wrote {path}");
}

// ---------------------------------------------------------------------------
// 1. Clone-style vs transactional deletion sweeps
// ---------------------------------------------------------------------------

/// An assignment network in the WDM-reduction shape: `conns` connections
/// of `bits` channels each, `wdms` waveguides of `capacity`, assignment
/// arcs costed by track distance. Same fixture family as
/// `crossing_bench`'s warm-MCMF section.
struct Reduction {
    g: McmfGraph,
    idx: RedIndex,
}

/// Edge handles of the reduction network, immutable once built — split
/// from the network so trials can mutably borrow `g` while reading the
/// handles, mirroring the planner's own layout.
struct RedIndex {
    conns: usize,
    wdm_edges: Vec<EdgeId>,
    s: NodeId,
    t: NodeId,
}

fn build_reduction(conns: usize, wdms: usize, bits: i64, capacity: i64) -> Reduction {
    let mut g = McmfGraph::new(2 + conns + wdms);
    let s = g.node(0);
    let t = g.node(1 + conns + wdms);
    let mut wdm_edges = Vec::new();
    for i in 0..conns {
        g.add_edge(s, g.node(1 + i), bits, 0);
    }
    for i in 0..conns {
        for w in 0..wdms {
            let cost = (i as i64 - (w as i64 * conns as i64 / wdms as i64)).abs();
            g.add_edge(g.node(1 + i), g.node(1 + conns + w), bits, cost);
        }
    }
    for w in 0..wdms {
        wdm_edges.push(g.add_edge(g.node(1 + conns + w), t, capacity, 10));
    }
    Reduction {
        g,
        idx: RedIndex {
            conns,
            wdm_edges,
            s,
            t,
        },
    }
}

/// One tentative-deletion trial, the way the planner runs it: withdraw
/// the deleted waveguide's sink-edge flow, zero its capacity, and
/// re-route the displaced units from the waveguide node to the sink.
fn reroute_trial(g: &mut McmfGraph, idx: &RedIndex, deleted: usize, prior: &[i64]) -> FlowResult {
    let sink = idx.wdm_edges[deleted];
    let f = g.flow(sink);
    if f > 0 {
        g.withdraw_edge_flow(sink, f);
    }
    g.set_edge_capacity(sink, 0);
    let w = g.node(1 + idx.conns + deleted);
    g.min_cost_reroute(w, idx.t, f, prior)
}

/// The pre-PR trial pattern: copy the committed network per deletion,
/// run the trial on the copy, drop it.
fn clone_sweep(committed: &Reduction, prior: &[i64]) -> (Vec<FlowResult>, McmfStats) {
    let mut results = Vec::new();
    let mut stats = McmfStats::default();
    for deleted in 0..committed.idx.wdm_edges.len() {
        let base = committed.g.stats();
        let mut warm = committed.g.clone();
        results.push(reroute_trial(&mut warm, &committed.idx, deleted, prior));
        stats.accumulate(&warm.stats().delta_since(&base));
    }
    (results, stats)
}

/// The transactional trial pattern this PR introduces: checkout, trial,
/// rollback — all on the shared committed network, which returns to its
/// pre-trial state bitwise.
fn txn_sweep(committed: &mut Reduction, prior: &[i64]) -> (Vec<FlowResult>, McmfStats) {
    let mut results = Vec::new();
    let mut stats = McmfStats::default();
    for deleted in 0..committed.idx.wdm_edges.len() {
        let base = committed.g.stats();
        let mut txn = committed.g.checkout();
        let r = reroute_trial(&mut txn, &committed.idx, deleted, prior);
        results.push(r);
        txn.rollback();
        stats.accumulate(&committed.g.stats().delta_since(&base));
    }
    (results, stats)
}

fn bench_trial_styles(smoke: bool) -> Value {
    let (conns, wdms, bits, capacity) = if smoke {
        (6, 3, 10, 32)
    } else {
        (24, 8, 20, 96)
    };
    let mut committed = build_reduction(conns, wdms, bits, capacity);
    let full = committed
        .g
        .min_cost_max_flow(committed.idx.s, committed.idx.t);
    assert_eq!(
        full.flow,
        conns as i64 * bits,
        "committed solve must route all"
    );
    let prior = committed.g.potentials().to_vec();

    let (clone_results, clone_stats) = clone_sweep(&committed, &prior);
    let mut clone_ms = f64::INFINITY;
    for _ in 0..ITERS {
        let sw = Stopwatch::start();
        let (r, _) = clone_sweep(&committed, &prior);
        clone_ms = clone_ms.min(sw.elapsed().as_secs_f64() * 1e3);
        assert_eq!(r, clone_results, "clone sweep unstable");
    }

    let (txn_results, txn_stats) = txn_sweep(&mut committed, &prior);
    let mut txn_ms = f64::INFINITY;
    for _ in 0..ITERS {
        let sw = Stopwatch::start();
        let (r, _) = txn_sweep(&mut committed, &prior);
        txn_ms = txn_ms.min(sw.elapsed().as_secs_f64() * 1e3);
        assert_eq!(r, txn_results, "transactional sweep unstable");
    }

    assert_eq!(
        txn_results, clone_results,
        "transactional and clone-style trials must agree on every deletion"
    );
    assert_eq!(
        clone_stats.networks_cloned, wdms as u64,
        "the pre-PR pattern copies the network once per trial"
    );
    assert_eq!(
        txn_stats.networks_cloned, 0,
        "transactional trials must not copy the network"
    );
    assert_eq!(
        txn_stats.rollbacks, wdms as u64,
        "one rollback per transactional trial"
    );
    assert!(
        txn_stats.undo_entries > 0,
        "trials must write through the undo log"
    );
    // After the sweeps, the committed network must still re-solve to a
    // no-op: rollback really did restore it.
    let again = committed
        .g
        .min_cost_max_flow(committed.idx.s, committed.idx.t);
    assert_eq!(
        again,
        FlowResult { flow: 0, cost: 0 },
        "rollback left residual work behind"
    );

    println!(
        "trials: {wdms} deletions on {conns}x{wdms} network, clone-style \
         {clone_ms:.3} ms ({c} copies) vs transactional {txn_ms:.3} ms \
         (0 copies, {u} undo entries)",
        c = clone_stats.networks_cloned,
        u = txn_stats.undo_entries,
    );
    Value::object(vec![
        ("connections", Value::from(conns)),
        ("waveguides", Value::from(wdms)),
        ("deletion_trials", Value::from(wdms)),
        ("clone_style_best_ms", Value::from(clone_ms)),
        ("transactional_best_ms", Value::from(txn_ms)),
        ("speedup", Value::from(clone_ms / txn_ms)),
        (
            "networks_cloned_before",
            Value::from(clone_stats.networks_cloned),
        ),
        (
            "networks_cloned_after",
            Value::from(txn_stats.networks_cloned),
        ),
        ("undo_entries", Value::from(txn_stats.undo_entries)),
        ("rollbacks", Value::from(txn_stats.rollbacks)),
    ])
}

// ---------------------------------------------------------------------------
// 2. Warm vs cold WDM planning, end to end
// ---------------------------------------------------------------------------

fn bench_plans(smoke: bool) -> Vec<Value> {
    let mut fixtures = vec![("I1_small_seed42", SynthConfig::small(), 42u64, false)];
    if !smoke {
        // The I2-class fixture carries the PR's acceptance criterion:
        // warm planning must now beat the cold reference it trailed
        // before the transactional rework.
        fixtures.push(("I2_medium_seed3", SynthConfig::medium(), 3, true));
    }
    let mut out = Vec::new();
    for (name, synth, seed, must_beat_cold) in fixtures {
        let config = OperonConfig::default();
        let design = generate(&synth, seed);
        let nets = build_hyper_nets(&design, &config.cluster);
        let config = config.resolved_for(nets.iter().map(|n| n.bit_count()));
        let candidates: Vec<NetCandidates> = nets
            .iter()
            .enumerate()
            .map(|(i, n)| generate_candidates(n, i, &config))
            .collect();
        let crossings = CrossingIndex::build(&candidates);
        let choice = select_lr_with(&candidates, &crossings, &config, &Executor::sequential());

        let mut cold_ms = f64::INFINITY;
        let mut cold_plan = None;
        for _ in 0..ITERS {
            let sw = Stopwatch::start();
            let p = wdm::plan_cold_reference(&candidates, &choice.choice, &config.optical)
                .expect("plan feasible");
            cold_ms = cold_ms.min(sw.elapsed().as_secs_f64() * 1e3);
            cold_plan = Some(p);
        }
        let cold_plan = cold_plan.expect("at least one iteration");

        let mut warm_ms = f64::INFINITY;
        let mut warm_plan = None;
        for _ in 0..ITERS {
            let sw = Stopwatch::start();
            let p = wdm::plan(&candidates, &choice.choice, &config.optical).expect("plan feasible");
            warm_ms = warm_ms.min(sw.elapsed().as_secs_f64() * 1e3);
            warm_plan = Some(p);
        }
        let warm_plan = warm_plan.expect("at least one iteration");

        assert_eq!(
            warm_plan.wdms, cold_plan.wdms,
            "{name}: warm planner must reproduce the cold reference plan"
        );
        assert_eq!(
            warm_plan.initial_count, cold_plan.initial_count,
            "{name}: initial waveguide count"
        );
        // Same plan for every thread count, byte for byte.
        for threads in THREADS {
            let p = wdm::plan_with(
                &candidates,
                &choice.choice,
                &config.optical,
                &Executor::new(threads),
            )
            .expect("plan feasible");
            assert_eq!(
                p.wdms, cold_plan.wdms,
                "{name}: plan diverged at {threads} threads"
            );
            assert_eq!(
                p.stats, warm_plan.stats,
                "{name}: stats diverged at {threads} threads"
            );
        }
        let stats = &warm_plan.stats;
        assert_eq!(
            stats.mcmf.warm_fallbacks, 0,
            "{name}: no warm trial may fall back to a cold solve"
        );
        assert_eq!(
            stats.mcmf.networks_cloned, 0,
            "{name}: the warm trial loop must not copy any network"
        );
        assert_eq!(
            stats.mcmf.rollbacks, stats.warm_trials,
            "{name}: one rollback per warm trial"
        );
        if must_beat_cold {
            assert!(
                warm_ms < cold_ms,
                "{name}: transactional warm planning must beat the cold \
                 reference ({warm_ms:.2} ms vs {cold_ms:.2} ms)"
            );
        }

        println!(
            "wdm {name}: {w} waveguides, cold {cold_ms:.2} ms vs warm \
             {warm_ms:.2} ms, {trials} warm trials, {u} undo entries, \
             0 clones",
            w = warm_plan.wdms.len(),
            trials = stats.warm_trials,
            u = stats.mcmf.undo_entries,
        );
        out.push(Value::object(vec![
            ("name", Value::from(name)),
            ("waveguides", Value::from(warm_plan.wdms.len())),
            ("cold_reference_best_ms", Value::from(cold_ms)),
            ("warm_best_ms", Value::from(warm_ms)),
            ("speedup", Value::from(cold_ms / warm_ms)),
            ("cold_solves", Value::from(stats.cold_solves)),
            ("warm_trials", Value::from(stats.warm_trials)),
            ("dijkstra_passes", Value::from(stats.mcmf.dijkstra_passes)),
            ("repair_rounds", Value::from(stats.mcmf.repair_rounds)),
            ("warm_fallbacks", Value::from(stats.mcmf.warm_fallbacks)),
            ("undo_entries", Value::from(stats.mcmf.undo_entries)),
            ("rollbacks", Value::from(stats.mcmf.rollbacks)),
            ("networks_cloned", Value::from(stats.mcmf.networks_cloned)),
        ]));
    }
    out
}
