//! Regenerates the paper's **Fig. 8**: for each benchmark, the number of
//! optical connections, the WDMs right after the sweep placement, and the
//! WDMs after the min-cost max-flow assignment — normalized to the
//! connection count, as in the paper's bar chart.
//!
//! ```text
//! cargo run -p operon-bench --release --bin fig8
//! ```

use operon_bench::{benchmarks, run_flow};

fn bar(pct: f64) -> String {
    "#".repeat((pct / 2.5).round() as usize)
}

fn main() {
    println!(
        "{:<6} {:>8} {:>9} {:>8} {:>9} {:>8}",
        "Bench", "#Conn", "#Initial", "(%)", "#Final", "(%)"
    );
    let mut reductions = Vec::new();
    let mut chart: Vec<(String, f64, f64)> = Vec::new();
    for cfg in benchmarks() {
        let result = run_flow(&cfg);
        let conn = result.wdm.connections.len().max(1);
        let initial = result.wdm.initial_count;
        let final_count = result.wdm.final_count();
        let ipct = 100.0 * initial as f64 / conn as f64;
        let fpct = 100.0 * final_count as f64 / conn as f64;
        println!(
            "{:<6} {:>8} {:>9} {:>7.1}% {:>9} {:>7.1}%",
            cfg.name, conn, initial, ipct, final_count, fpct
        );
        if initial > 0 {
            reductions.push(1.0 - final_count as f64 / initial as f64);
        }
        chart.push((cfg.name.clone(), ipct, fpct));
    }
    let avg = 100.0 * reductions.iter().sum::<f64>() / reductions.len().max(1) as f64;
    println!("\naverage WDM reduction by the flow assignment: {avg:.1}% (paper: 8.9%)");

    println!("\nnormalized WDM counts (connections = 100%):");
    for (name, ipct, fpct) in chart {
        println!("{name:<4} connections  {:<42} 100.0%", bar(100.0));
        println!("{:<4} initial WDMs {:<42} {ipct:.1}%", "", bar(ipct));
        println!("{:<4} final WDMs   {:<42} {fpct:.1}%", "", bar(fpct));
    }
}
