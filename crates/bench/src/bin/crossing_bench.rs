//! Measures the crossing/pricing kernels — the spatial crossing builds
//! (grid and Bentley–Ottmann sweep), the incremental LR pricing loop,
//! and the warm-started MCMF re-solves — and writes
//! `BENCH_crossing.json` at the repository root.
//!
//! ```text
//! cargo run -p operon-bench --release --bin crossing_bench
//! cargo run -p operon-bench --release --bin crossing_bench -- --smoke
//! ```
//!
//! Three measurements:
//!
//! 1. **Grid and sweep vs brute-force crossing build** over three
//!    segment-density regimes (sparse scattered nets, far-apart
//!    clusters, a crowded core where every bounding box overlaps every
//!    other). Both spatial builds must be byte-identical to
//!    `CrossingIndex::build_reference` on every fixture — the grid at 1,
//!    2, and 8 threads, the (sequential) sweep once — and the
//!    `Auto` heuristic's pick is recorded and must match one of them
//!    (asserted). Timing criteria are same-run ratios, so they hold on
//!    noisy shared hardware: the dense fixture's grid build at least 5×
//!    over brute force, and the sweep at least 1.3× over the grid on
//!    `dense_core`, whose die-spanning chords defeat uniform cells
//!    (asserted; 1.5–2.3× observed). On `clustered_hotspots` the grid
//!    legitimately wins — segments are short and uniform within each
//!    cluster — and the `Auto` heuristic picks it, so no sweep floor is
//!    asserted there.
//! 2. **Incremental vs reference LR pricing** on synthesized designs:
//!    wall time of `select_lr_in` (persistent workspace, as a resident
//!    session runs it) against the retained `select_lr_reference`
//!    full-recomputation loop, plus the priced/reused work counters.
//!    Choices and power must be bit-identical (asserted), the dirty
//!    sets must actually reuse some pricing or loaded-loss work
//!    (asserted), and the incremental loop must be at least as fast as
//!    the reference on the binding-budget I2 fixture (`speedup >= 1.0`,
//!    asserted; the other fixtures price in tens of microseconds,
//!    below scheduling noise) so the PR-4 bookkeeping regression can
//!    never silently return.
//! 3. **Warm vs cold MCMF re-solves**: the WDM tentative-deletion
//!    pattern on an assignment network — every single-waveguide deletion
//!    re-solved cold on a fresh network and warm from the committed flow
//!    and potentials. Flows and costs must match exactly and the warm
//!    path must run strictly fewer Dijkstra passes in total (asserted).
//!    The end-to-end `wdm::plan` vs `wdm::plan_cold_reference` wall
//!    times and work counters ride along.
//!
//! `--smoke` shrinks every fixture, keeps every identity assertion
//! (including sweep-vs-reference and the deterministic strategy/parallel
//! provenance checks), and skips the timing criteria and the JSON write
//! — the cheap CI gate.
//!
//! Numbers in the committed `BENCH_crossing.json` come from whatever
//! machine last ran this binary; `hardware_threads` records the truth.

use operon::codesign::{analyze_assignment, generate_candidates, EdgeMedium, NetCandidates};
use operon::config::OperonConfig;
use operon::lr::{select_lr_in, select_lr_reference, select_lr_with, LrWorkspace};
use operon::wdm;
use operon::{BuildStrategy, ChosenBuild, CrossingIndex};
use operon_cluster::build_hyper_nets;
use operon_exec::json::Value;
use operon_exec::{Executor, Stopwatch};
use operon_geom::Point;
use operon_mcmf::{EdgeId, McmfGraph};
use operon_netlist::synth::{generate, SynthConfig};
use operon_optics::{ElectricalParams, OpticalLib};
use operon_steiner::{NodeKind, RouteTree};

const ITERS: u32 = 3;
/// The LR pricing fixtures run in tens of microseconds, so their
/// best-of-N needs far more repetitions than the millisecond-scale
/// builds for the minimum to converge under scheduler noise.
const LR_ITERS: u32 = 40;
const THREADS: [usize; 3] = [1, 2, 8];

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let hardware = std::thread::available_parallelism().map_or(1, usize::from);

    let builds = bench_crossing_builds(smoke);
    let lr = bench_lr_pricing(smoke);
    let (mcmf, plans) = bench_warm_mcmf(smoke);

    if smoke {
        println!("crossing_bench --smoke: all identity checks passed (brute/grid/sweep)");
        return;
    }

    let report = Value::object(vec![
        ("benchmark", Value::from("crossing_kernels")),
        ("iters_per_point", Value::from(u64::from(ITERS))),
        ("hardware_threads", Value::from(hardware)),
        ("crossing_build", Value::Array(builds)),
        ("lr_pricing", Value::Array(lr)),
        ("mcmf_warm_resolve", mcmf),
        ("wdm_plan", Value::Array(plans)),
        ("identical_results", Value::from(true)),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_crossing.json");
    std::fs::write(path, report.pretty() + "\n").expect("write BENCH_crossing.json");
    println!("wrote {path}");
}

// ---------------------------------------------------------------------------
// Fixture synthesis
// ---------------------------------------------------------------------------

/// xorshift64* — the same tiny deterministic generator `ilp_bench` uses,
/// so fixtures need no external RNG crate.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[0, n)`.
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A net whose single candidate is an optical chain through `pts`.
fn chain_net(net_index: usize, pts: &[Point]) -> NetCandidates {
    let mut tree = RouteTree::new(pts[0]);
    let mut prev = tree.root();
    for (i, &p) in pts.iter().enumerate().skip(1) {
        let kind = if i + 1 == pts.len() {
            NodeKind::Terminal
        } else {
            NodeKind::Steiner
        };
        prev = tree.add_child(prev, p, kind);
    }
    let cand = analyze_assignment(
        &tree,
        &vec![EdgeMedium::Optical; pts.len() - 1],
        1,
        &OpticalLib::paper_defaults(),
        &ElectricalParams::paper_defaults(),
    );
    NetCandidates {
        net_index,
        bits: 1,
        candidates: vec![cand],
        electrical_idx: 0,
        fanout_power_mw: 0.0,
    }
}

/// Sparse regime: short diagonals scattered over the whole die, so most
/// net-pair bounding boxes are disjoint and the reference prefilter is at
/// its best. The grid must merely not lose here.
fn sparse_nets(count: usize) -> Vec<NetCandidates> {
    let mut rng = XorShift(0xD1E5_4A11_5EED_0001);
    (0..count)
        .map(|i| {
            let x = rng.below(19_000) as i64;
            let y = rng.below(19_000) as i64;
            let dx = 200 + rng.below(600) as i64;
            let dy = 200 + rng.below(600) as i64;
            chain_net(i, &[Point::new(x, y), Point::new(x + dx, y + dy)])
        })
        .collect()
}

/// Clustered regime: hotspot groups of mutually crossing diagonals, with
/// the groups far apart — the bbox prefilter prunes inter-cluster pairs
/// but pays the full quadratic cost inside each hotspot.
fn clustered_nets(clusters: usize, per_cluster: usize) -> Vec<NetCandidates> {
    let mut rng = XorShift(0xC105_7E4E_D5EE_D002);
    let mut nets = Vec::new();
    for c in 0..clusters {
        let cx = (c as i64 % 4) * 6000;
        let cy = (c as i64 / 4) * 6000;
        for _ in 0..per_cluster {
            let i = nets.len();
            let x0 = cx + rng.below(900) as i64;
            let y0 = cy + rng.below(900) as i64;
            let x1 = cx + rng.below(900) as i64;
            let y1 = cy + rng.below(900) as i64;
            nets.push(chain_net(i, &[Point::new(x0, y0), Point::new(x1, y1)]));
        }
    }
    nets
}

/// Dense regime: concentric rectangular rings (12 segments each, so the
/// per-pair segment test is expensive) threaded by a few die-spanning
/// chords. Every bounding box contains the die center and overlaps every
/// other, so the reference build degenerates to all candidate pairs ×
/// all segment pairs while almost no pair actually crosses — the regime
/// the grid exists for. This is the fixture the ≥5× criterion runs on.
fn dense_nets(rings: usize, chords: usize) -> Vec<NetCandidates> {
    let size = 17_000i64;
    let inset_step = (size / 2 - 200) / rings as i64;
    let mut nets = Vec::new();
    for k in 0..rings {
        let a = k as i64 * inset_step;
        let b = size - a;
        let third = (b - a) / 3;
        // Walk the perimeter with each side split in three; stop one
        // third short of closing so the chain has no duplicate point.
        let pts = vec![
            Point::new(a, a),
            Point::new(a + third, a),
            Point::new(a + 2 * third, a),
            Point::new(b, a),
            Point::new(b, a + third),
            Point::new(b, a + 2 * third),
            Point::new(b, b),
            Point::new(b - third, b),
            Point::new(b - 2 * third, b),
            Point::new(a, b),
            Point::new(a, b - third),
            Point::new(a, b - 2 * third),
            Point::new(a, a + third),
        ];
        nets.push(chain_net(nets.len(), &pts));
    }
    let mut rng = XorShift(0xDE25_E5EE_D000_0003);
    for _ in 0..chords {
        let x0 = 301 + rng.below((size - 600) as u64) as i64;
        let x1 = 301 + rng.below((size - 600) as u64) as i64;
        nets.push(chain_net(
            nets.len(),
            &[Point::new(x0, -100), Point::new(x1, size + 100)],
        ));
    }
    nets
}

// ---------------------------------------------------------------------------
// 1. Grid and sweep vs brute-force crossing build
// ---------------------------------------------------------------------------

fn assert_index_eq(a: &CrossingIndex, b: &CrossingIndex, label: &str) {
    assert_eq!(a.len(), b.len(), "{label}: pair count");
    for ((ka, va), (kb, vb)) in a.iter().zip(b.iter()) {
        assert_eq!(ka, kb, "{label}: keys");
        assert_eq!(va, vb, "{label}: records");
    }
}

fn strategy_name(chosen: ChosenBuild) -> &'static str {
    match chosen {
        ChosenBuild::BruteForce => "brute_force",
        ChosenBuild::Grid => "grid",
        ChosenBuild::Sweep => "sweep",
        ChosenBuild::Delta => "delta",
        ChosenBuild::Sharded => "sharded",
    }
}

fn bench_crossing_builds(smoke: bool) -> Vec<Value> {
    let scale = if smoke { 4 } else { 1 };
    // (name, nets, grid ≥5× vs brute?, sweep-vs-grid floor)
    let fixtures: Vec<(&str, Vec<NetCandidates>, bool, Option<f64>)> = vec![
        ("sparse_scattered", sparse_nets(240 / scale), false, None),
        (
            "clustered_hotspots",
            clustered_nets(8, 28 / scale),
            false,
            None,
        ),
        (
            "dense_core",
            dense_nets(320 / scale, 12),
            !smoke,
            (!smoke).then_some(1.3),
        ),
    ];
    let mut out = Vec::new();
    for (name, nets, must_speed_up, sweep_floor) in fixtures {
        let reference = CrossingIndex::build_reference(&nets);
        let mut reference_ms = f64::INFINITY;
        for _ in 0..ITERS {
            let sw = Stopwatch::start();
            let r = CrossingIndex::build_reference(&nets);
            reference_ms = reference_ms.min(sw.elapsed().as_secs_f64() * 1e3);
            assert_eq!(r.len(), reference.len(), "{name}: reference unstable");
        }

        let exec1 = Executor::new(1);
        let mut grid_seq_ms = f64::INFINITY;
        let mut per_thread = Vec::new();
        for threads in THREADS {
            let exec = Executor::new(threads);
            let mut best_ms = f64::INFINITY;
            for _ in 0..ITERS {
                let sw = Stopwatch::start();
                let grid = CrossingIndex::build_with_strategy(&nets, &exec, BuildStrategy::Grid);
                best_ms = best_ms.min(sw.elapsed().as_secs_f64() * 1e3);
                assert_index_eq(
                    &grid,
                    &reference,
                    &format!("{name}, grid threads={threads}"),
                );
            }
            if threads == 1 {
                grid_seq_ms = best_ms;
            }
            per_thread.push(Value::object(vec![
                ("threads", Value::from(threads)),
                ("best_wall_ms", Value::from(best_ms)),
            ]));
        }

        let mut sweep_ms = f64::INFINITY;
        for _ in 0..ITERS {
            let sw = Stopwatch::start();
            let sweep = CrossingIndex::build_with_strategy(&nets, &exec1, BuildStrategy::Sweep);
            sweep_ms = sweep_ms.min(sw.elapsed().as_secs_f64() * 1e3);
            assert_index_eq(&sweep, &reference, &format!("{name}, sweep"));
        }

        // The Auto heuristic's pick is a pure function of the candidate
        // set: record it, re-check identity, and make sure it resolved to
        // one of the two spatial builds (never brute force).
        let auto = CrossingIndex::build_with(&nets, &exec1);
        assert_index_eq(&auto, &reference, &format!("{name}, auto"));
        let auto_info = auto.build_info();
        assert!(
            matches!(auto_info.strategy, ChosenBuild::Grid | ChosenBuild::Sweep),
            "{name}: auto heuristic must pick a spatial build, got {:?}",
            auto_info.strategy
        );
        let auto_strategy = strategy_name(auto_info.strategy);

        let speedup = reference_ms / grid_seq_ms;
        let sweep_speedup_vs_brute = reference_ms / sweep_ms;
        let sweep_speedup_vs_grid = grid_seq_ms / sweep_ms;
        println!(
            "crossing {name}: {nets} nets, {pairs} pairs, brute {reference_ms:.2} ms, \
             grid {grid_seq_ms:.2} ms ({speedup:.1}x), sweep {sweep_ms:.2} ms \
             ({sweep_speedup_vs_grid:.1}x vs grid), auto={auto_strategy}",
            nets = nets.len(),
            pairs = reference.len(),
        );
        if must_speed_up {
            assert!(
                speedup >= 5.0,
                "{name}: grid build must be at least 5x faster than brute \
                 force ({speedup:.1}x)"
            );
        }
        if let Some(floor) = sweep_floor {
            assert!(
                sweep_speedup_vs_grid >= floor,
                "{name}: sweep build must be at least {floor}x faster than \
                 the grid ({sweep_speedup_vs_grid:.2}x)"
            );
        }
        out.push(Value::object(vec![
            ("name", Value::from(name)),
            ("nets", Value::from(nets.len())),
            ("crossing_pairs", Value::from(reference.len())),
            ("brute_force_best_ms", Value::from(reference_ms)),
            ("grid_best_ms", Value::from(grid_seq_ms)),
            ("speedup", Value::from(speedup)),
            ("sweep_best_ms", Value::from(sweep_ms)),
            (
                "sweep_speedup_vs_brute",
                Value::from(sweep_speedup_vs_brute),
            ),
            ("sweep_speedup_vs_grid", Value::from(sweep_speedup_vs_grid)),
            ("auto_strategy", Value::from(auto_strategy)),
            ("grid_by_threads", Value::Array(per_thread)),
        ]));
    }
    out
}

// ---------------------------------------------------------------------------
// 2. Incremental vs reference LR pricing
// ---------------------------------------------------------------------------

fn bench_lr_pricing(smoke: bool) -> Vec<Value> {
    // The tightened 4 dB loss budget makes crossing constraints bind, so
    // the pricing loop runs its full iteration budget instead of
    // converging immediately. On the medium design at that budget every
    // net couples to a moving neighbor, so no pricing is reusable — the
    // honest worst case; it rides along at the default budget too, where
    // the dirty sets pay off.
    let mut fixtures = vec![(
        "I1_small_seed42_4db",
        SynthConfig::small(),
        42u64,
        Some(4.0),
    )];
    if !smoke {
        fixtures.push(("I2_medium_seed3_4db", SynthConfig::medium(), 3, Some(4.0)));
        fixtures.push(("I2_medium_seed3", SynthConfig::medium(), 3, None));
    }
    let mut out = Vec::new();
    for (name, synth, seed, budget) in fixtures {
        let mut config = OperonConfig::default();
        if let Some(db) = budget {
            config.optical.max_loss_db = db;
        }
        let design = generate(&synth, seed);
        let nets = build_hyper_nets(&design, &config.cluster);
        let config = config.resolved_for(nets.iter().map(|n| n.bit_count()));
        let candidates: Vec<NetCandidates> = nets
            .iter()
            .enumerate()
            .map(|(i, n)| generate_candidates(n, i, &config))
            .collect();
        let crossings = CrossingIndex::build(&candidates);

        let reference = select_lr_reference(&candidates, &crossings, &config);

        // A persistent workspace, as `WarmSession` holds one across
        // routes — reuse must never change the answer, only skip the
        // allocation cost, so every iteration is asserted identical.
        // Both loops finish in tens of microseconds, so the two timings
        // are interleaved over many repetitions and the minima compared:
        // machine-load drift then hits both sides equally instead of
        // whichever loop happened to run during a noisy stretch.
        let exec = Executor::sequential();
        let mut ws = LrWorkspace::new();
        let mut reference_ms = f64::INFINITY;
        let mut incremental_ms = f64::INFINITY;
        let mut last = None;
        for _ in 0..LR_ITERS {
            let sw = Stopwatch::start();
            let r = select_lr_reference(&candidates, &crossings, &config);
            reference_ms = reference_ms.min(sw.elapsed().as_secs_f64() * 1e3);
            assert_eq!(r.choice, reference.choice, "{name}: reference unstable");

            let sw = Stopwatch::start();
            let r = select_lr_in(&candidates, &crossings, &config, &exec, &mut ws);
            incremental_ms = incremental_ms.min(sw.elapsed().as_secs_f64() * 1e3);
            last = Some(r);
        }
        let incremental = last.expect("at least one iteration");
        assert_eq!(
            incremental.choice, reference.choice,
            "{name}: incremental pricing diverged from the reference loop"
        );
        assert_eq!(
            incremental.power_mw.to_bits(),
            reference.power_mw.to_bits(),
            "{name}: power bits diverged"
        );
        let stats = incremental.lr_stats.expect("LR path carries stats");
        assert!(
            stats.reused_prices + stats.reused_loads > 0,
            "{name}: the dirty sets must reuse some pricing or load work"
        );
        assert_eq!(
            stats.priced_nets + stats.reused_prices,
            stats.iterations * candidates.len() as u64,
            "{name}: every net priced or reused each iteration"
        );

        let speedup = reference_ms / incremental_ms;
        let total = stats.priced_nets + stats.reused_prices;
        println!(
            "lr {name}: {n} nets, reference {reference_ms:.2} ms vs \
             incremental {incremental_ms:.2} ms ({speedup:.2}x), \
             priced {p}/{total} ({reused} reused)",
            n = candidates.len(),
            p = stats.priced_nets,
            reused = stats.reused_prices,
        );
        // The floor is asserted on the binding-budget I2 fixture only —
        // the one whose pricing loop runs its full iteration budget, so
        // the ratio is dominated by pricing work. The I1 design and the
        // default-budget I2 (which converges in two iterations) price
        // in tens of microseconds, where scheduling noise swamps the
        // ratio even with the interleaved best-of-N above.
        if !smoke && name.starts_with("I2") && name.ends_with("_4db") {
            assert!(
                speedup >= 1.0,
                "{name}: incremental LR pricing must be at least as fast as \
                 the reference loop ({speedup:.2}x) — the arena port exists \
                 to keep this true"
            );
        }
        out.push(Value::object(vec![
            ("name", Value::from(name)),
            ("hyper_nets", Value::from(candidates.len())),
            ("reference_best_ms", Value::from(reference_ms)),
            ("incremental_best_ms", Value::from(incremental_ms)),
            ("speedup", Value::from(speedup)),
            ("iterations", Value::from(stats.iterations)),
            ("priced_nets", Value::from(stats.priced_nets)),
            ("reused_prices", Value::from(stats.reused_prices)),
            ("load_evals", Value::from(stats.load_evals)),
            ("reused_loads", Value::from(stats.reused_loads)),
        ]));
    }
    out
}

// ---------------------------------------------------------------------------
// 3. Warm vs cold MCMF re-solves
// ---------------------------------------------------------------------------

/// An assignment network in the WDM-reduction shape: `conns` connections
/// of `bits` channels each, `wdms` waveguides of `capacity`, assignment
/// arcs costed by track distance.
struct Reduction {
    g: McmfGraph,
    conn_edges: Vec<EdgeId>,
    assign_edges: Vec<(usize, usize, EdgeId)>,
    wdm_edges: Vec<EdgeId>,
    demand: i64,
}

fn build_reduction(conns: usize, wdms: usize, bits: i64, capacity: i64) -> Reduction {
    let mut g = McmfGraph::new(2 + conns + wdms);
    let s = g.node(0);
    let t = g.node(1 + conns + wdms);
    let mut conn_edges = Vec::new();
    let mut assign_edges = Vec::new();
    let mut wdm_edges = Vec::new();
    for i in 0..conns {
        conn_edges.push(g.add_edge(s, g.node(1 + i), bits, 0));
    }
    for i in 0..conns {
        for w in 0..wdms {
            let cost = (i as i64 - (w as i64 * conns as i64 / wdms as i64)).abs();
            assign_edges.push((
                i,
                w,
                g.add_edge(g.node(1 + i), g.node(1 + conns + w), bits, cost),
            ));
        }
    }
    for w in 0..wdms {
        wdm_edges.push(g.add_edge(g.node(1 + conns + w), t, capacity, 10));
    }
    Reduction {
        g,
        conn_edges,
        assign_edges,
        wdm_edges,
        demand: conns as i64 * bits,
    }
}

/// Runs every single-waveguide tentative deletion cold and warm, asserts
/// the results identical, and returns the benchmark record.
fn bench_warm_mcmf(smoke: bool) -> (Value, Vec<Value>) {
    let (conns, wdms, bits, capacity) = if smoke {
        (6, 3, 10, 32)
    } else {
        (24, 8, 20, 96)
    };
    let mut committed = build_reduction(conns, wdms, bits, capacity);
    let s = committed.g.node(0);
    let t = committed.g.node(1 + conns + wdms);
    let full = committed.g.min_cost_max_flow(s, t);
    assert_eq!(
        full.flow, committed.demand,
        "committed solve must route all"
    );
    let prior = committed.g.potentials().to_vec();

    let mut cold_passes = 0u64;
    let mut warm_passes = 0u64;
    let mut warm_fallbacks = 0u64;
    let mut feasible_trials = 0u64;
    for deleted in 0..wdms {
        // Cold: fresh network with the waveguide's sink edge zeroed.
        let mut cold = build_reduction(conns, wdms, bits, capacity);
        cold.g.set_edge_capacity(cold.wdm_edges[deleted], 0);
        let cold_result = cold.g.min_cost_max_flow(s, t);
        cold_passes += cold.g.stats().dijkstra_passes;

        // Warm: withdraw the committed flow through the waveguide and
        // re-solve from the committed potentials.
        let mut warm = committed.g.clone();
        warm.reset_stats();
        for &(i, w, e) in &committed.assign_edges {
            if w != deleted {
                continue;
            }
            let f = warm.flow(e);
            if f > 0 {
                warm.withdraw_edge_flow(e, f);
                warm.withdraw_edge_flow(committed.conn_edges[i], f);
                warm.withdraw_edge_flow(committed.wdm_edges[deleted], f);
            }
        }
        warm.set_edge_capacity(committed.wdm_edges[deleted], 0);
        let warm_result = warm.min_cost_max_flow_warm(s, t, &prior);
        warm_passes += warm.stats().dijkstra_passes;
        warm_fallbacks += warm.stats().warm_fallbacks;

        assert_eq!(
            warm_result, cold_result,
            "deletion {deleted}: warm and cold re-solves must agree"
        );
        if cold_result.flow == committed.demand {
            feasible_trials += 1;
        }
    }
    assert!(
        warm_passes < cold_passes,
        "warm re-solves must run strictly fewer Dijkstra passes \
         ({warm_passes} vs {cold_passes})"
    );
    println!(
        "mcmf warm: {wdms} deletions ({feasible_trials} feasible), \
         {warm_passes} warm vs {cold_passes} cold Dijkstra passes \
         ({warm_fallbacks} fallbacks)"
    );
    let mcmf = Value::object(vec![
        ("connections", Value::from(conns)),
        ("waveguides", Value::from(wdms)),
        ("deletion_trials", Value::from(wdms)),
        ("feasible_trials", Value::from(feasible_trials)),
        ("warm_dijkstra_passes", Value::from(warm_passes)),
        ("cold_dijkstra_passes", Value::from(cold_passes)),
        (
            "pass_ratio",
            Value::from(warm_passes as f64 / cold_passes as f64),
        ),
        ("warm_fallbacks", Value::from(warm_fallbacks)),
    ]);

    // End-to-end: the warm-started WDM planner against the all-cold
    // reference on synthesized designs.
    let mut fixtures = vec![("I1_small_seed42", SynthConfig::small(), 42u64)];
    if !smoke {
        fixtures.push(("I2_medium_seed3", SynthConfig::medium(), 3));
    }
    let mut plans = Vec::new();
    for (name, synth, seed) in fixtures {
        let config = OperonConfig::default();
        let design = generate(&synth, seed);
        let nets = build_hyper_nets(&design, &config.cluster);
        let config = config.resolved_for(nets.iter().map(|n| n.bit_count()));
        let candidates: Vec<NetCandidates> = nets
            .iter()
            .enumerate()
            .map(|(i, n)| generate_candidates(n, i, &config))
            .collect();
        let crossings = CrossingIndex::build(&candidates);
        let choice = select_lr_with(&candidates, &crossings, &config, &Executor::sequential());

        let mut cold_ms = f64::INFINITY;
        let mut cold_plan = None;
        for _ in 0..ITERS {
            let sw = Stopwatch::start();
            let p = wdm::plan_cold_reference(&candidates, &choice.choice, &config.optical)
                .expect("plan feasible");
            cold_ms = cold_ms.min(sw.elapsed().as_secs_f64() * 1e3);
            cold_plan = Some(p);
        }
        let cold_plan = cold_plan.expect("at least one iteration");

        let mut warm_ms = f64::INFINITY;
        let mut warm_plan = None;
        for _ in 0..ITERS {
            let sw = Stopwatch::start();
            let p = wdm::plan(&candidates, &choice.choice, &config.optical).expect("plan feasible");
            warm_ms = warm_ms.min(sw.elapsed().as_secs_f64() * 1e3);
            warm_plan = Some(p);
        }
        let warm_plan = warm_plan.expect("at least one iteration");

        assert_eq!(
            warm_plan.wdms, cold_plan.wdms,
            "{name}: warm planner must reproduce the cold reference plan"
        );
        assert_eq!(
            warm_plan.initial_count, cold_plan.initial_count,
            "{name}: initial waveguide count"
        );
        assert_eq!(
            warm_plan.stats.mcmf.warm_fallbacks, 0,
            "{name}: no warm trial may fall back to a cold solve"
        );
        println!(
            "wdm {name}: {w} waveguides, cold {cold_ms:.2} ms vs warm \
             {warm_ms:.2} ms, {trials} warm trials, {passes} Dijkstra passes",
            w = warm_plan.wdms.len(),
            trials = warm_plan.stats.warm_trials,
            passes = warm_plan.stats.mcmf.dijkstra_passes,
        );
        plans.push(Value::object(vec![
            ("name", Value::from(name)),
            ("waveguides", Value::from(warm_plan.wdms.len())),
            ("cold_reference_best_ms", Value::from(cold_ms)),
            ("warm_best_ms", Value::from(warm_ms)),
            ("cold_solves", Value::from(warm_plan.stats.cold_solves)),
            ("warm_trials", Value::from(warm_plan.stats.warm_trials)),
            (
                "dijkstra_passes",
                Value::from(warm_plan.stats.mcmf.dijkstra_passes),
            ),
            (
                "repair_rounds",
                Value::from(warm_plan.stats.mcmf.repair_rounds),
            ),
            (
                "warm_fallbacks",
                Value::from(warm_plan.stats.mcmf.warm_fallbacks),
            ),
        ]));
    }
    (mcmf, plans)
}
