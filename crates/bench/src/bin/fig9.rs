//! Regenerates the paper's **Fig. 9**: normalized power hotspot maps of
//! the I2 benchmark, optical and electrical layer, GLOW vs OPERON.
//!
//! The paper's observations to verify:
//! (a)/(c) — the *optical* maps of GLOW and OPERON are distributed very
//! similarly (both dominated by the same EO/OE conversion sites);
//! (b)/(d) — OPERON's *electrical* map is visibly cooler than GLOW's.
//!
//! ```text
//! cargo run -p operon-bench --release --bin fig9
//! ```

use operon::config::OperonConfig;
use operon::flow::OperonFlow;
use operon::report::power_maps;
use operon_bench::instance;
use operon_netlist::synth::paper_benchmark;

fn main() {
    let synth = paper_benchmark("I2").expect("I2 exists");
    let design = instance(&synth);
    let config = OperonConfig::default();
    let flow = OperonFlow::new(config.clone());

    let operon_result = flow.run(&design).expect("flow");
    let glow = flow.run_glow(&design).expect("glow");

    let cells = 48;
    let glow_maps = power_maps(
        design.die(),
        cells,
        &glow.nets,
        &glow.selection.choice,
        &config.optical,
        &config.electrical,
    );
    let operon_maps = power_maps(
        design.die(),
        cells,
        &operon_result.candidates,
        &operon_result.selection.choice,
        &config.optical,
        &config.electrical,
    );

    println!(
        "(a) GLOW optical layer — {:.1} mW total",
        glow_maps.optical.total()
    );
    print!("{}", glow_maps.optical.normalized());
    println!(
        "\n(b) GLOW electrical layer — {:.1} mW total",
        glow_maps.electrical.total()
    );
    print!("{}", glow_maps.electrical.normalized());
    println!(
        "\n(c) OPERON optical layer — {:.1} mW total",
        operon_maps.optical.total()
    );
    print!("{}", operon_maps.optical.normalized());
    println!(
        "\n(d) OPERON electrical layer — {:.1} mW total",
        operon_maps.electrical.total()
    );
    print!("{}", operon_maps.electrical.normalized());

    // Quantify the two observations.
    let optical_sim = map_correlation(&glow_maps.optical, &operon_maps.optical);
    println!("\noptical-map correlation GLOW vs OPERON: {optical_sim:.2} (paper: 'very similar')");
    println!(
        "electrical-layer power: GLOW {:.1} mW vs OPERON {:.1} mW",
        glow_maps.electrical.total(),
        operon_maps.electrical.total()
    );

    // The physically decisive difference the maps cannot show: GLOW's
    // split-blind feasibility check leaves optical links whose *true*
    // loss (with splitting) violates the detection budget — the
    // "potential malfunction" the paper's introduction warns about.
    let resolved = config.resolved_for(glow.nets.iter().map(|n| n.bits));
    let glow_crossings = operon::CrossingIndex::build(&glow.nets);
    let mut undetectable = 0usize;
    let mut glow_optical = 0usize;
    for (i, nc) in glow.nets.iter().enumerate() {
        if glow.selection.choice[i] == nc.electrical_idx {
            continue;
        }
        glow_optical += 1;
        let loads = operon::formulation::loaded_path_losses(
            &glow.nets,
            &glow_crossings,
            &glow.selection.choice,
            i,
            &resolved.optical,
        );
        if loads
            .into_iter()
            .any(|l| l > resolved.optical.max_loss_db + 1e-9)
        {
            undetectable += 1;
        }
    }
    println!(
        "GLOW optical links violating the true detection budget: {undetectable}/{glow_optical}"
    );
    println!("OPERON optical links violating the budget: 0 (feasible by construction)");
}

/// Pearson correlation between two equally-sized grids.
fn map_correlation(a: &operon_geom::Grid, b: &operon_geom::Grid) -> f64 {
    let av: Vec<f64> = a.iter().map(|(_, v)| v).collect();
    let bv: Vec<f64> = b.iter().map(|(_, v)| v).collect();
    assert_eq!(av.len(), bv.len());
    let n = av.len() as f64;
    let (ma, mb) = (av.iter().sum::<f64>() / n, bv.iter().sum::<f64>() / n);
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (x, y) in av.iter().zip(&bv) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va == 0.0 || vb == 0.0 {
        return 0.0;
    }
    cov / (va.sqrt() * vb.sqrt())
}
