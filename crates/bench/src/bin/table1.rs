//! Regenerates the paper's **Table 1**: performance comparison among the
//! pure-electrical design (Streak-like), the optical-only design
//! (GLOW-like), OPERON with the exact ILP, and OPERON with the LR
//! speed-up, over the I1–I5 benchmark substitutes.
//!
//! ```text
//! cargo run -p operon-bench --release --bin table1 [--ilp-limit SECS | --no-ilp]
//! ```
//!
//! The default ILP budget is 300 s per benchmark; like the paper's
//! Gurobi runs (capped at 3000 s), large instances are expected to hit
//! the limit and report their best incumbent.

use operon_bench::{benchmarks, fmt_power, run_table1_row, BenchRow};
use operon_exec::Executor;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let ilp_limit = parse_ilp_limit(&args);

    match ilp_limit {
        Some(l) => println!("ILP budget: {} s per benchmark", l.as_secs()),
        None => println!("ILP disabled (--no-ilp): ILP columns mirror LR"),
    }
    println!();

    // Benchmarks run in parallel; each row is independent, and the
    // ordered executor keeps the output rows in benchmark order.
    let configs = benchmarks();
    let exec = Executor::new(configs.len().max(1));
    let rows: Vec<BenchRow> = exec.par_map_coarse(&configs, |cfg| run_table1_row(cfg, ilp_limit));

    println!(
        "{:<6} {:>6} {:>6} {:>6} | {:>12} {:>12} | {:>12} {:>9} | {:>12} {:>9}",
        "Bench",
        "#Net",
        "#HNet",
        "#HPin",
        "Electrical",
        "Optical",
        "OPERON(ILP)",
        "CPU(s)",
        "OPERON(LR)",
        "CPU(s)",
    );
    println!("{}", "-".to_string().repeat(110));
    let mut sums = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for row in &rows {
        let ilp_cpu = if row.ilp_optimal {
            format!("{:.1}", row.ilp_cpu.as_secs_f64())
        } else {
            format!(">{:.0}", row.ilp_cpu.as_secs_f64())
        };
        println!(
            "{:<6} {:>6} {:>6} {:>6} | {:>12} {:>12} | {:>12} {:>9} | {:>12} {:>9.1}",
            row.name,
            row.nets,
            row.hnets,
            row.hpins,
            fmt_power(row.electrical_mw),
            fmt_power(row.optical_mw),
            fmt_power(row.ilp_mw),
            ilp_cpu,
            fmt_power(row.lr_mw),
            row.lr_cpu.as_secs_f64(),
        );
        sums.0 += row.electrical_mw;
        sums.1 += row.optical_mw;
        sums.2 += row.ilp_mw;
        sums.3 += row.lr_mw;
    }
    let n = rows.len() as f64;
    println!("{}", "-".to_string().repeat(110));
    println!(
        "{:<27} | {:>12} {:>12} | {:>12} {:>9} | {:>12}",
        "average",
        fmt_power(sums.0 / n),
        fmt_power(sums.1 / n),
        fmt_power(sums.2 / n),
        "",
        fmt_power(sums.3 / n),
    );
    println!(
        "{:<27} | {:>12.3} {:>12.3} | {:>12.3} {:>9} | {:>12.3}",
        "ratio (vs Optical)",
        sums.0 / sums.1,
        1.0,
        sums.2 / sums.1,
        "",
        sums.3 / sums.1,
    );
    println!(
        "\npaper's ratios: Electrical 3.565, Optical 1.000, OPERON(ILP) 0.860, OPERON(LR) 0.889"
    );
    println!("(power unit: W at the calibration in EXPERIMENTS.md; shapes, not absolutes, are the target)");
}

fn parse_ilp_limit(args: &[String]) -> Option<Duration> {
    if args.iter().any(|a| a == "--no-ilp") {
        return None;
    }
    if let Some(pos) = args.iter().position(|a| a == "--ilp-limit") {
        let secs: u64 = args
            .get(pos + 1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| {
                eprintln!("--ilp-limit requires a positive integer (seconds)");
                std::process::exit(2);
            });
        return Some(Duration::from_secs(secs.max(1)));
    }
    Some(Duration::from_secs(300))
}
