//! Regenerates the paper's **Fig. 3(b)**: the simulated normalized power
//! distribution of two cascaded 50-50 Y-branch splitters — the
//! motivation for modeling splitting loss at all.
//!
//! ```text
//! cargo run -p operon-bench --release --bin fig3b
//! ```

use operon_optics::splitter::{cascade_outputs, fig3b_table, YBranch};
use operon_optics::splitting_loss_db;

fn bar(frac: f64) -> String {
    let width = (frac * 40.0).round() as usize;
    "#".repeat(width)
}

fn main() {
    println!("ideal 50-50 Y-branch cascade (normalized input power 1.0):\n");
    println!("{:<14} {:>8}  ", "node", "power");
    for (label, p) in fig3b_table(&YBranch::ideal()) {
        println!("{label:<14} {p:>8.3}  {}", bar(p));
    }

    println!("\nwith 0.3 dB excess loss per branch:\n");
    for (label, p) in fig3b_table(&YBranch::with_excess_loss(0.3)) {
        println!("{label:<14} {p:>8.3}  {}", bar(p));
    }

    // Cross-check the analytic splitting-loss model of Eq. (2) against the
    // simulated cascade, stage by stage.
    println!("\nEq. (2) splitting-loss model vs simulated cascade (ideal devices):");
    println!("{:<8} {:>12} {:>12}", "stages", "model (dB)", "sim (dB)");
    for stages in 1..=4 {
        let arms = vec![2usize; stages];
        let model = splitting_loss_db(&arms);
        let sim = -10.0 * cascade_outputs(&YBranch::ideal(), stages)[0].log10();
        println!("{stages:<8} {model:>12.3} {sim:>12.3}");
    }
}
