//! Measures the operon-lint v2 workspace scan cold vs cached and writes
//! `BENCH_lint.json` at the repository root.
//!
//! ```text
//! cargo run -p operon-bench --release --bin lint_bench
//! cargo run -p operon-bench --release --bin lint_bench -- --smoke
//! ```
//!
//! Three criteria:
//!
//! 1. **Zero deny**: the workspace under the checked-in `Lint.toml`
//!    must have no deny findings (asserted, also enforced by `ci.sh`
//!    via the binary and by the `self_check` test).
//! 2. **Cache identity**: the cached re-scan's JSON rendering must be
//!    byte-identical to the cold scan's (asserted per run).
//! 3. **Cache speed**: the cached full-workspace re-scan must be at
//!    least 3x faster than cold — the per-file phase collapses to
//!    content-hash lookups, leaving only the workspace call-graph
//!    phase (asserted, non-smoke only — the PR's acceptance
//!    criterion).
//!
//! `--smoke` keeps the identity assertions, skips the timing criterion
//! and the JSON write — the cheap CI gate.
//!
//! Numbers in the committed `BENCH_lint.json` come from whatever
//! machine last ran this binary; `hardware_threads` records the truth.

use operon_exec::json::Value;
use operon_exec::Stopwatch;
use operon_lint::diagnostics::render_json;
use operon_lint::driver::{load_config, scan_workspace_with};
use operon_lint::{Level, ScanOptions, ScanReport};
use std::path::{Path, PathBuf};

const ITERS: usize = 3;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let hardware = std::thread::available_parallelism().map_or(1, usize::from);
    let root = workspace_root();
    let config = load_config(&root).expect("Lint.toml parses");
    let opts = ScanOptions::default();

    // Cold: drop the on-disk cache, then scan. Best-of-N to keep the
    // committed numbers stable across page-cache noise.
    let mut cold_ms = f64::INFINITY;
    let mut cold: Option<(String, ScanReport)> = None;
    for _ in 0..ITERS {
        let _ = std::fs::remove_dir_all(root.join("target/operon-lint"));
        let sw = Stopwatch::start();
        let report = scan_workspace_with(&root, &config, &opts).expect("cold scan succeeds");
        cold_ms = cold_ms.min(sw.elapsed().as_secs_f64() * 1e3);
        assert_eq!(report.cache_hits, 0, "cold scan must not hit the cache");
        cold = Some((render_json(&report.diagnostics), report));
    }
    let (cold_json, cold_report) = cold.expect("at least one cold iteration");

    // Criterion 1: zero deny findings.
    let deny = count(&cold_report, Level::Deny);
    let warn = count(&cold_report, Level::Warn);
    assert_eq!(deny, 0, "workspace must stay at zero deny findings");

    // Cached: same scan again, now served from target/operon-lint/.
    let mut cached_ms = f64::INFINITY;
    let mut cached: Option<(String, ScanReport)> = None;
    for _ in 0..ITERS {
        let sw = Stopwatch::start();
        let report = scan_workspace_with(&root, &config, &opts).expect("cached scan succeeds");
        cached_ms = cached_ms.min(sw.elapsed().as_secs_f64() * 1e3);
        assert_eq!(report.cache_misses, 0, "warm scan must be fully cached");
        cached = Some((render_json(&report.diagnostics), report));
    }
    let (cached_json, cached_report) = cached.expect("at least one cached iteration");

    // Criterion 2: byte-identical output.
    assert_eq!(
        cold_json, cached_json,
        "cached scan output diverged from cold scan"
    );

    if smoke {
        println!(
            "lint_bench --smoke: {deny} deny, {warn} warn, cached output \
             byte-identical ({hits} hits)",
            hits = cached_report.cache_hits,
        );
        return;
    }

    // Criterion 3: the cache must actually pay for itself.
    let speedup = cold_ms / cached_ms;
    assert!(
        speedup >= 3.0,
        "cached re-scan must be at least 3x faster than cold \
         (got {speedup:.2}x: cold {cold_ms:.1} ms vs cached {cached_ms:.1} ms)"
    );

    println!(
        "lint: {files} files, cold {cold_ms:.1} ms vs cached {cached_ms:.1} ms \
         ({speedup:.1}x), {hits} cache hits, {deny} deny {warn} warn",
        files = cold_report.files_scanned,
        hits = cached_report.cache_hits,
    );

    let out = Value::object(vec![
        ("benchmark", Value::from("operon-lint --workspace")),
        ("iters", Value::from(ITERS)),
        ("hardware_threads", Value::from(hardware)),
        ("files_scanned", Value::from(cold_report.files_scanned)),
        ("cold_best_wall_ms", Value::from(cold_ms)),
        ("cached_best_wall_ms", Value::from(cached_ms)),
        ("cache_speedup", Value::from(speedup)),
        ("cache_hits", Value::from(cached_report.cache_hits)),
        ("cache_misses_cold", Value::from(cold_report.cache_misses)),
        ("deny", Value::from(deny)),
        ("warn", Value::from(warn)),
        ("identical_output", Value::from(true)),
        (
            "note",
            Value::from(
                "v2 workspace scan (lex + parse + local rules + call graph + \
                 R003/N001/P002/W001), release build; cached scan re-runs only \
                 the workspace phase over content-hash-cached per-file analyses",
            ),
        ),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_lint.json");
    std::fs::write(path, out.pretty() + "\n").expect("write BENCH_lint.json");
    println!("wrote {path}");
}

fn count(report: &ScanReport, level: Level) -> usize {
    report
        .diagnostics
        .iter()
        .filter(|d| d.level == level)
        .count()
}

/// The workspace root, two levels up from the bench crate's manifest.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists")
}
