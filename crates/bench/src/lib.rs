//! Shared harness for regenerating the OPERON paper's tables and figures.
//!
//! Binaries:
//!
//! * `table1` — the power/runtime comparison of Table 1,
//! * `fig3b` — the cascaded Y-branch splitter power distribution,
//! * `fig8` — WDM counts before placement / before assignment / after,
//! * `fig9` — optical & electrical power hotspot maps, GLOW vs OPERON.
//!
//! Criterion benches (`cargo bench -p operon-bench`) time the LR-vs-ILP
//! selection, the individual flow stages, and the algorithmic substrates.

use operon::baselines::{electrical_power_mw, BaselineSelection};
use operon::config::{OperonConfig, Selector};
use operon::flow::{FlowResult, OperonFlow};
use operon_netlist::synth::{generate, paper_suite, SynthConfig};
use operon_netlist::Design;
use std::time::Duration;

/// The fixed seed all harness binaries use, so every figure is
/// regenerated from the identical benchmark instances.
pub const HARNESS_SEED: u64 = 2018;

/// One row of the Table 1 comparison.
#[derive(Clone, Debug)]
pub struct BenchRow {
    /// Benchmark name (I1–I5).
    pub name: String,
    /// Signal bits ("#Net").
    pub nets: usize,
    /// Hyper nets ("#HNet").
    pub hnets: usize,
    /// Hyper pins ("#HPin").
    pub hpins: usize,
    /// Pure-electrical power (Streak-like), mW.
    pub electrical_mw: f64,
    /// GLOW-like optical power, mW.
    pub optical_mw: f64,
    /// OPERON power with the ILP selector, mW.
    pub ilp_mw: f64,
    /// Whether the ILP proved optimality within its budget.
    pub ilp_optimal: bool,
    /// ILP selection runtime.
    pub ilp_cpu: Duration,
    /// OPERON power with the LR selector, mW.
    pub lr_mw: f64,
    /// LR selection runtime.
    pub lr_cpu: Duration,
}

/// Loads one benchmark instance.
pub fn instance(config: &SynthConfig) -> Design {
    generate(config, HARNESS_SEED)
}

/// The five paper-benchmark substitutes.
pub fn benchmarks() -> Vec<SynthConfig> {
    paper_suite()
}

/// Runs the full Table 1 column set on one benchmark.
///
/// `ilp_limit` caps the exact solver per benchmark (the paper capped
/// Gurobi at 3000 s). `None` skips the ILP columns entirely (useful for
/// quick runs), reporting the LR values there.
pub fn run_table1_row(synth: &SynthConfig, ilp_limit: Option<Duration>) -> BenchRow {
    let design = instance(synth);
    let config = OperonConfig::default();

    let electrical_mw = electrical_power_mw(&design, &config.electrical);

    let flow = OperonFlow::new(config.clone());
    let glow = flow.run_glow(&design).expect("glow baseline");

    let lr_result = flow.run(&design).expect("LR flow");

    let (ilp_mw, ilp_optimal, ilp_cpu) = match ilp_limit {
        Some(limit) => {
            let mut ilp_config = config.clone();
            ilp_config.selector = Selector::Ilp {
                time_limit_secs: limit.as_secs().max(1),
            };
            let r = OperonFlow::new(ilp_config).run(&design).expect("ILP flow");
            (
                r.total_power_mw(),
                r.selection.proven_optimal,
                r.selection.elapsed,
            )
        }
        None => (
            lr_result.total_power_mw(),
            false,
            lr_result.selection.elapsed,
        ),
    };

    BenchRow {
        name: synth.name.clone(),
        nets: design.bit_count(),
        hnets: lr_result.hyper_nets.len(),
        hpins: lr_result.hyper_pin_count(),
        electrical_mw,
        optical_mw: glow.selection.power_mw,
        ilp_mw,
        ilp_optimal,
        ilp_cpu,
        lr_mw: lr_result.total_power_mw(),
        lr_cpu: lr_result.selection.elapsed,
    }
}

/// Runs the OPERON LR flow on one benchmark (for the figure harnesses).
pub fn run_flow(synth: &SynthConfig) -> FlowResult {
    let design = instance(synth);
    OperonFlow::new(OperonConfig::default())
        .run(&design)
        .expect("flow")
}

/// Runs the GLOW baseline on one benchmark.
pub fn run_glow(synth: &SynthConfig) -> BaselineSelection {
    let design = instance(synth);
    OperonFlow::new(OperonConfig::default())
        .run_glow(&design)
        .expect("glow")
}

/// Formats a milliwatt value in the paper's "relative" style with one
/// decimal in watts-scale units (the paper's Table 1 prints small
/// numbers; absolute units differ between testbeds).
pub fn fmt_power(mw: f64) -> String {
    format!("{:.2}", mw / 1000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmarks_are_the_paper_suite() {
        let names: Vec<String> = benchmarks().into_iter().map(|c| c.name).collect();
        assert_eq!(names, vec!["I1", "I2", "I3", "I4", "I5"]);
    }

    #[test]
    fn table1_row_without_ilp_is_consistent() {
        // Use a reduced instance for test speed: shrink I3 to 10% size.
        let mut cfg = benchmarks().remove(2);
        cfg.target_bits = 500;
        let row = run_table1_row(&cfg, None);
        assert_eq!(row.nets, 500);
        assert!(row.electrical_mw > 0.0);
        assert!(row.optical_mw > 0.0);
        assert!(row.lr_mw > 0.0);
        assert_eq!(row.ilp_mw, row.lr_mw);
        // Table 1 ordering.
        assert!(row.optical_mw < row.electrical_mw);
        assert!(row.lr_mw <= row.optical_mw * 1.05);
    }

    #[test]
    fn fmt_power_scales_to_watts() {
        assert_eq!(fmt_power(12_345.0), "12.35");
    }
}
