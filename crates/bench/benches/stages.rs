//! Per-stage benches of the OPERON flow: clustering, co-design candidate
//! generation, crossing-index construction, and the WDM stage — plus a
//! sequential-vs-parallel comparison of the whole flow on the
//! `operon-exec` executor, recorded to `BENCH_exec.json` at the repo
//! root.

use criterion::{criterion_group, criterion_main, Criterion};
use operon::codesign::{generate_candidates, NetCandidates};
use operon::config::OperonConfig;
use operon::flow::OperonFlow;
use operon::wdm;
use operon::CrossingIndex;
use operon_cluster::{build_hyper_nets, HyperNet};
use operon_exec::json::Value;
use operon_netlist::synth::{generate, SynthConfig};
use operon_netlist::Design;
use std::time::Instant;

fn design() -> Design {
    generate(&SynthConfig::medium(), 3)
}

fn bench_stages(c: &mut Criterion) {
    let design = design();
    let base = OperonConfig::default();

    c.bench_function("stage_clustering_400bits", |b| {
        b.iter(|| build_hyper_nets(&design, &base.cluster))
    });

    let nets: Vec<HyperNet> = build_hyper_nets(&design, &base.cluster);
    let config = base.resolved_for(nets.iter().map(|n| n.bit_count()));

    c.bench_function("stage_codesign_400bits", |b| {
        b.iter(|| {
            nets.iter()
                .enumerate()
                .map(|(i, n)| generate_candidates(n, i, &config))
                .collect::<Vec<_>>()
        })
    });

    let candidates: Vec<NetCandidates> = nets
        .iter()
        .enumerate()
        .map(|(i, n)| generate_candidates(n, i, &config))
        .collect();

    c.bench_function("stage_crossing_index_400bits", |b| {
        b.iter(|| CrossingIndex::build(&candidates))
    });

    let crossings = CrossingIndex::build(&candidates);
    let selection = operon::lr::select_lr(&candidates, &crossings, &config);

    let mut group = c.benchmark_group("stage_wdm");
    group.sample_size(10);
    group.bench_function("wdm_400bits", |b| {
        b.iter(|| wdm::plan(&candidates, &selection.choice, &config.optical).expect("feasible"))
    });
    group.finish();
}

/// Times the full flow sequentially and on 2/8 executor workers, checks
/// the results are bit-identical, and writes the measured speedups to
/// `BENCH_exec.json` in the repository root.
fn bench_exec_flow(_c: &mut Criterion) {
    const ITERS: u32 = 3;
    let design = design();
    let hardware = std::thread::available_parallelism().map_or(1, usize::from);

    let mut runs: Vec<Value> = Vec::new();
    let mut walls_ms: Vec<f64> = Vec::new();
    let mut baseline: Option<(Vec<usize>, u64)> = None;
    let mut identical = true;
    for threads in [1usize, 2, 8] {
        let flow = OperonFlow::new(OperonConfig::default()).with_threads(threads);
        let mut best = f64::INFINITY;
        let mut result = None;
        for _ in 0..ITERS {
            let t = Instant::now();
            result = Some(flow.run(&design).expect("flow succeeds"));
            best = best.min(t.elapsed().as_secs_f64() * 1e3);
        }
        let result = result.expect("at least one iteration");
        let fingerprint = (
            result.selection.choice.clone(),
            result.total_power_mw().to_bits(),
        );
        match &baseline {
            None => baseline = Some(fingerprint),
            Some(b) => identical &= *b == fingerprint,
        }
        println!("flow_medium threads={threads}: best of {ITERS} = {best:.1} ms");
        walls_ms.push(best);
        runs.push(Value::object(vec![
            ("threads", Value::from(threads)),
            ("best_wall_ms", Value::from(best)),
        ]));
    }
    assert!(identical, "parallel flow diverged from sequential results");

    let report = Value::object(vec![
        ("benchmark", Value::from("flow_medium_seed3")),
        ("iters_per_point", Value::from(u64::from(ITERS))),
        ("hardware_threads", Value::from(hardware)),
        ("runs", Value::Array(runs)),
        ("speedup_2_vs_1", Value::from(walls_ms[0] / walls_ms[1])),
        ("speedup_8_vs_1", Value::from(walls_ms[0] / walls_ms[2])),
        ("identical_results", Value::from(identical)),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_exec.json");
    std::fs::write(path, report.pretty() + "\n").expect("write BENCH_exec.json");
    println!("wrote {path}");
}

criterion_group!(benches, bench_stages, bench_exec_flow);
criterion_main!(benches);
