//! Per-stage benches of the OPERON flow: clustering, co-design candidate
//! generation, crossing-index construction, and the WDM stage.

use criterion::{criterion_group, criterion_main, Criterion};
use operon::codesign::{generate_candidates, NetCandidates};
use operon::config::OperonConfig;
use operon::wdm;
use operon::CrossingIndex;
use operon_cluster::{build_hyper_nets, HyperNet};
use operon_netlist::synth::{generate, SynthConfig};
use operon_netlist::Design;

fn design() -> Design {
    generate(&SynthConfig::medium(), 3)
}

fn bench_stages(c: &mut Criterion) {
    let design = design();
    let base = OperonConfig::default();

    c.bench_function("stage_clustering_400bits", |b| {
        b.iter(|| build_hyper_nets(&design, &base.cluster))
    });

    let nets: Vec<HyperNet> = build_hyper_nets(&design, &base.cluster);
    let config = base.resolved_for(nets.iter().map(|n| n.bit_count()));

    c.bench_function("stage_codesign_400bits", |b| {
        b.iter(|| {
            nets.iter()
                .enumerate()
                .map(|(i, n)| generate_candidates(n, i, &config))
                .collect::<Vec<_>>()
        })
    });

    let candidates: Vec<NetCandidates> = nets
        .iter()
        .enumerate()
        .map(|(i, n)| generate_candidates(n, i, &config))
        .collect();

    c.bench_function("stage_crossing_index_400bits", |b| {
        b.iter(|| CrossingIndex::build(&candidates))
    });

    let crossings = CrossingIndex::build(&candidates);
    let selection = operon::lr::select_lr(&candidates, &crossings, &config);

    let mut group = c.benchmark_group("stage_wdm");
    group.sample_size(10);
    group.bench_function("wdm_400bits", |b| {
        b.iter(|| wdm::plan(&candidates, &selection.choice, &config.optical))
    });
    group.finish();
}

criterion_group!(benches, bench_stages);
criterion_main!(benches);
