//! Criterion bench behind Table 1's CPU columns: the LR speed-up vs the
//! exact ILP on identical selection instances.
//!
//! The paper's shape: LR is orders of magnitude faster at a few percent
//! power penalty. (The ILP bench uses a down-scaled instance so a single
//! sample stays in the seconds range.)

use criterion::{criterion_group, criterion_main, Criterion};
use operon::codesign::{generate_candidates, NetCandidates};
use operon::config::OperonConfig;
use operon::formulation::select_ilp;
use operon::lr::select_lr;
use operon::CrossingIndex;
use operon_cluster::build_hyper_nets;
use operon_netlist::synth::{generate, SynthConfig};
use std::time::Duration;

/// A selection instance: candidates plus crossing index. `contested`
/// tightens the loss budget and disables the WDM-sharing discount so the
/// detection constraints genuinely bind (otherwise presolve makes the
/// exact solve trivial).
fn selection_instance(
    bits: usize,
    seed: u64,
    contested: bool,
) -> (Vec<NetCandidates>, CrossingIndex, OperonConfig) {
    let mut synth = SynthConfig::medium();
    synth.target_bits = bits;
    if contested {
        synth.bits_per_group = (1, 4);
    }
    let design = generate(&synth, seed);
    let mut base = OperonConfig::default();
    if contested {
        base.auto_crossing_sharing = false;
        base.optical.max_loss_db = 12.0;
    }
    let nets = build_hyper_nets(&design, &base.cluster);
    let config = base.resolved_for(nets.iter().map(|n| n.bit_count()));
    let candidates: Vec<NetCandidates> = nets
        .iter()
        .enumerate()
        .map(|(i, n)| generate_candidates(n, i, &config))
        .collect();
    let crossings = CrossingIndex::build(&candidates);
    (candidates, crossings, config)
}

fn bench_selectors(c: &mut Criterion) {
    let (nets, crossings, config) = selection_instance(600, 1, true);

    let mut group = c.benchmark_group("selection");
    group.sample_size(10);
    group.bench_function("lr_600bits_contested", |b| {
        b.iter(|| select_lr(&nets, &crossings, &config))
    });
    group.bench_function("ilp_600bits_contested_5s_budget", |b| {
        b.iter(|| {
            select_ilp(
                &nets,
                &crossings,
                &config.optical,
                Duration::from_secs(5),
                None,
            )
            .expect("solvable")
        })
    });
    group.finish();

    // LR scaling across instance sizes (paper-default physics).
    let mut group = c.benchmark_group("lr_scaling");
    group.sample_size(10);
    for bits in [100usize, 400, 800] {
        let (nets, crossings, config) = selection_instance(bits, 2, false);
        group.bench_function(format!("lr_{bits}bits"), |b| {
            b.iter(|| select_lr(&nets, &crossings, &config))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_selectors);
criterion_main!(benches);
