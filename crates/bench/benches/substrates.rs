//! Benches of the algorithmic substrates built for this reproduction:
//! BI1S RSMT construction, the min-cost max-flow solver, the
//! capacity-constrained K-Means, and the two-phase simplex.

use criterion::{criterion_group, criterion_main, Criterion};
use operon_cluster::kmeans::{cluster_capacitated, KmeansParams};
use operon_geom::Point;
use operon_ilp::simplex::{solve_lp, LpRow};
use operon_ilp::Cmp;
use operon_mcmf::McmfGraph;
use operon_steiner::{euclidean, rsmt_bi1s, rsmt_exact};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_points(n: usize, seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Point::new(rng.gen_range(0..20_000), rng.gen_range(0..20_000)))
        .collect()
}

fn bench_steiner(c: &mut Criterion) {
    let mut group = c.benchmark_group("steiner");
    for n in [4usize, 6, 8] {
        let pts = random_points(n, 11);
        group.bench_function(format!("rsmt_bi1s_{n}pins"), |b| b.iter(|| rsmt_bi1s(&pts)));
        group.bench_function(format!("euclid_steiner_{n}pins"), |b| {
            b.iter(|| euclidean::steiner_tree(&pts, 1.0))
        });
        group.bench_function(format!("rsmt_exact_{n}pins"), |b| {
            b.iter(|| rsmt_exact(&pts).expect("within terminal limit"))
        });
    }
    group.finish();
}

fn bench_mcmf(c: &mut Criterion) {
    // The WDM assignment network shape: connections x WDMs bipartite.
    let build = |n_conn: usize, n_wdm: usize| {
        let mut g = McmfGraph::new(2 + n_conn + n_wdm);
        let (s, t) = (g.node(0), g.node(1));
        let mut rng = StdRng::seed_from_u64(5);
        for i in 0..n_conn {
            let demand = rng.gen_range(1..=20);
            g.add_edge(s, g.node(2 + i), demand, 0);
            for w in 0..n_wdm {
                if rng.gen_bool(0.2) {
                    g.add_edge(
                        g.node(2 + i),
                        g.node(2 + n_conn + w),
                        demand,
                        rng.gen_range(0..100),
                    );
                }
            }
        }
        for w in 0..n_wdm {
            g.add_edge(g.node(2 + n_conn + w), t, 32, 1);
        }
        g
    };
    let mut group = c.benchmark_group("mcmf");
    for (nc, nw) in [(50usize, 20usize), (200, 80)] {
        group.bench_function(format!("assignment_{nc}x{nw}"), |b| {
            b.iter_batched(
                || build(nc, nw),
                |mut g| g.min_cost_max_flow(g.node(0), g.node(1)),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_kmeans(c: &mut Criterion) {
    let pts = random_points(512, 17);
    let params = KmeansParams {
        capacity: 32,
        ..KmeansParams::default()
    };
    c.bench_function("kmeans_512pts_cap32", |b| {
        b.iter(|| cluster_capacitated(&pts, &params))
    });
}

fn bench_simplex(c: &mut Criterion) {
    // A random dense LP of the size a mid-size B&B node solves.
    let (n, m) = (60usize, 40usize);
    let mut rng = StdRng::seed_from_u64(23);
    let cost: Vec<f64> = (0..n).map(|_| rng.gen_range(-5.0..5.0)).collect();
    let mut rows: Vec<LpRow> = (0..m)
        .map(|_| {
            let coeffs: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..2.0)).collect();
            LpRow::new(coeffs, Cmp::Le, rng.gen_range(5.0..20.0))
        })
        .collect();
    for j in 0..n {
        let mut coeffs = vec![0.0; n];
        coeffs[j] = 1.0;
        rows.push(LpRow::new(coeffs, Cmp::Le, 1.0));
    }
    c.bench_function("simplex_60vars_100rows", |b| {
        b.iter(|| solve_lp(&cost, &rows))
    });
}

criterion_group!(
    benches,
    bench_steiner,
    bench_mcmf,
    bench_kmeans,
    bench_simplex
);
criterion_main!(benches);
