//! Command-line front end for the design-space sweep driver.
//!
//! ```text
//! operon_explore <design.sig> | --synth small|medium[:SEED]
//!                [--spec FILE] [--knob name=v1,v2,...]... [--base name=v]...
//!                [--threads N|auto] [--seed S] [--cold]
//!                [--json FILE] [--svg FILE] [--run-report FILE]
//!                [--emit-trace FILE]
//! ```
//!
//! Declares a config lattice (from a JSON `--spec` file and/or repeated
//! `--knob` axes over `--base` overrides), sweeps it with warm-prefix
//! sharing (`--cold` disables sharing for A/B comparisons — the results
//! are bit-identical either way), and prints the Pareto front.
//! `--json`/`--svg` write the full result and its objective-space
//! rendering, `--emit-trace` writes the sweep as an `operon_serve`
//! JSONL request trace, and `--run-report` dumps the executor's staged
//! instrumentation (including the `"sweep"` reuse counters).

use operon_exec::{Executor, Stopwatch};
use operon_explore::lattice::{Axis, KnobValue, Lattice, KNOBS};
use operon_explore::render::render_front_svg;
use operon_explore::sweep::{sweep, sweep_trace, SweepOptions, OBJECTIVE_NAMES};
use operon_netlist::synth::{generate, SynthConfig};
use operon_netlist::Design;
use std::process::ExitCode;

fn usage() -> ExitCode {
    let knobs: Vec<&str> = KNOBS.iter().map(|(n, _)| *n).collect();
    eprintln!(
        "usage: operon_explore <design.sig> | --synth small|medium[:SEED] \
         [--spec FILE] [--knob name=v1,v2,...]... [--base name=v]... \
         [--threads N|auto] [--seed S] [--cold] [--json FILE] [--svg FILE] \
         [--run-report FILE] [--emit-trace FILE]\n\nknobs: {}",
        knobs.join(", ")
    );
    ExitCode::from(2)
}

/// Parses `--synth small|medium[:SEED]`.
fn parse_synth(spec: &str) -> Option<Design> {
    let (name, seed) = match spec.split_once(':') {
        Some((n, s)) => (n, s.parse::<u64>().ok()?),
        None => (spec, 1),
    };
    let config = match name {
        "small" => SynthConfig::small(),
        "medium" => SynthConfig::medium(),
        _ => return None,
    };
    Some(generate(&config, seed))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();

    let mut design: Option<Design> = None;
    let mut spec_path: Option<String> = None;
    let mut axes: Vec<Axis> = Vec::new();
    let mut base_knobs: Vec<(String, KnobValue)> = Vec::new();
    let mut threads = 0usize;
    let mut opts = SweepOptions::default();
    let mut json_path: Option<String> = None;
    let mut svg_path: Option<String> = None;
    let mut report_path: Option<String> = None;
    let mut trace_path: Option<String> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--synth" => {
                let Some(d) = args.get(i + 1).and_then(|s| parse_synth(s)) else {
                    return usage();
                };
                design = Some(d);
                i += 2;
            }
            "--spec" => {
                let Some(path) = args.get(i + 1) else {
                    return usage();
                };
                spec_path = Some(path.clone());
                i += 2;
            }
            "--knob" => {
                let axis = match args.get(i + 1).map(|s| Axis::parse(s)) {
                    Some(Ok(axis)) => axis,
                    Some(Err(e)) => {
                        eprintln!("{e}");
                        return usage();
                    }
                    None => return usage(),
                };
                axes.push(axis);
                i += 2;
            }
            "--base" => {
                let Some((name, value)) = args.get(i + 1).and_then(|s| s.split_once('=')) else {
                    return usage();
                };
                base_knobs.push((name.to_owned(), KnobValue::parse(value)));
                i += 2;
            }
            "--threads" => {
                let parsed = args.get(i + 1).and_then(|s| {
                    if s == "auto" {
                        Some(0)
                    } else {
                        s.parse::<usize>().ok()
                    }
                });
                let Some(n) = parsed else {
                    return usage();
                };
                threads = n;
                i += 2;
            }
            "--seed" => {
                let Some(s) = args.get(i + 1).and_then(|s| s.parse::<u64>().ok()) else {
                    return usage();
                };
                opts.seed = s;
                i += 2;
            }
            "--cold" => {
                opts.cold = true;
                i += 1;
            }
            "--json" => {
                let Some(path) = args.get(i + 1) else {
                    return usage();
                };
                json_path = Some(path.clone());
                i += 2;
            }
            "--svg" => {
                let Some(path) = args.get(i + 1) else {
                    return usage();
                };
                svg_path = Some(path.clone());
                i += 2;
            }
            "--run-report" => {
                let Some(path) = args.get(i + 1) else {
                    return usage();
                };
                report_path = Some(path.clone());
                i += 2;
            }
            "--emit-trace" => {
                let Some(path) = args.get(i + 1) else {
                    return usage();
                };
                trace_path = Some(path.clone());
                i += 2;
            }
            other if other.starts_with("--") => {
                eprintln!("unknown argument '{other}'");
                return usage();
            }
            path => {
                if design.is_some() {
                    eprintln!("exactly one design, please");
                    return usage();
                }
                let text = match std::fs::read_to_string(path) {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("cannot read {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                match operon_netlist::io::read_design(&text) {
                    Ok(d) => design = Some(d),
                    Err(e) => {
                        eprintln!("{path}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
                i += 1;
            }
        }
    }
    let Some(design) = design else {
        eprintln!("no design given (path or --synth)");
        return usage();
    };

    let lattice = {
        let from_spec = match spec_path {
            Some(path) => {
                let text = match std::fs::read_to_string(&path) {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("cannot read {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                match operon_explore::parse_spec(&text) {
                    Ok(l) => Some(l),
                    Err(e) => {
                        eprintln!("{path}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            None => None,
        };
        // CLI axes/base extend (and come after) the spec's declarations.
        let (mut all_base, mut all_axes) = match from_spec {
            Some(l) => (l.base_knobs().to_vec(), l.axes().to_vec()),
            None => (Vec::new(), Vec::new()),
        };
        all_base.extend(base_knobs);
        all_axes.extend(axes);
        match Lattice::new(all_base, all_axes) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("{e}");
                return usage();
            }
        }
    };

    let exec = Executor::new(threads);
    let watch = Stopwatch::start();
    let result = match sweep(&design, &lattice, &exec, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sweep failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let elapsed = watch.elapsed();

    let n = result.points.len();
    println!(
        "{}: {} lattice points in {} {} ({} cold, {} partial)",
        design.name(),
        n,
        result.groups,
        if result.groups == 1 {
            "group"
        } else {
            "groups"
        },
        result.points.iter().filter(|p| !p.warm).count(),
        result.points.iter().filter(|p| p.warm).count(),
    );
    println!(
        "stage reuse: {} of {} pipeline stages answered warm",
        result.stages_reused,
        result.stages_reused + result.stages_rerun
    );
    println!(
        "swept in {:.2?} ({:.2} points/sec)",
        elapsed,
        n as f64 / elapsed.as_secs_f64().max(1e-9)
    );

    println!("\nPareto front ({} points):", result.front.len());
    println!(
        "{:>6}  {:<34} {:>10} {:>5} {:>10} {:>11}",
        "point", "knobs", OBJECTIVE_NAMES[0], "wdms", "delay(ps)", "thermal(mW)"
    );
    for &idx in &result.front {
        let p = &result.points[idx];
        let knobs: Vec<String> = p.knobs.iter().map(|(k, v)| format!("{k}={v}")).collect();
        let o = &p.objectives;
        println!(
            "{idx:>6}  {:<34} {:>10.2} {:>5} {:>10.0} {:>11.2}",
            knobs.join(" "),
            o.power_mw,
            o.wdm_count,
            o.worst_delay_ps,
            o.thermal_tuning_mw
        );
    }

    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(&path, result.to_json().pretty() + "\n") {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("\nsweep results written to {path}");
    }
    if let Some(path) = svg_path {
        if let Err(e) = std::fs::write(&path, render_front_svg(&result)) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("front rendering written to {path}");
    }
    if let Some(path) = trace_path {
        let trace = match sweep_trace(&design, &lattice) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot emit trace: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = std::fs::write(&path, trace) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("request trace written to {path}");
    }
    if let Some(path) = report_path {
        if let Err(e) = std::fs::write(&path, exec.report().to_json() + "\n") {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("run report written to {path}");
    }
    ExitCode::SUCCESS
}
