//! Warm-artifact Pareto design-space exploration for the OPERON flow.
//!
//! A device-library decision — detection budget, WDM capacity, selector
//! effort — is rarely a single run; it is a sweep over a knob lattice
//! with a Pareto front at the end. Run naively, an N-point lattice
//! costs N cold pipelines. This crate exploits the staged structure of
//! the flow instead: lattice points whose configurations share the
//! clustering + co-design prefix ([`operon::config::OperonConfig::shared_prefix_key`])
//! are walked on one resident [`operon::WarmSession`], so only the
//! first point of each group pays for the full pipeline and every
//! other point re-runs the dirty suffix (selection + WDM, or WDM
//! alone). The partial re-runs are bit-identical to cold runs by the
//! session contract, which makes the speed-up *observable but not
//! measurable in the results*: objective vectors and the Pareto front
//! are byte-equal to the cold-per-point evaluation at any thread count
//! and any schedule seed.
//!
//! Modules:
//!
//! * [`lattice`] — knob table, axis declarations, mixed-radix point
//!   enumeration, JSON spec parsing;
//! * [`sweep`] — the grouped warm driver, objective measurement, and
//!   the serve-protocol trace emitter;
//! * [`pareto`] — incremental dominance filtering with a quadratic
//!   reference oracle;
//! * [`render`] — SVG projection of the objective space.
//!
//! # Examples
//!
//! ```
//! use operon_exec::Executor;
//! use operon_explore::lattice::{Axis, Lattice};
//! use operon_explore::sweep::{sweep, SweepOptions};
//! use operon_netlist::synth::{generate, SynthConfig};
//!
//! let design = generate(&SynthConfig::small(), 7);
//! let lattice = Lattice::new(
//!     vec![],
//!     vec![Axis::parse("max_loss=20,25")?, Axis::parse("lr_iters=6,10")?],
//! )?;
//! let result = sweep(&design, &lattice, &Executor::sequential(), &SweepOptions::default())
//!     .map_err(|e| e.to_string())?;
//! assert_eq!(result.points.len(), 4);
//! assert!(!result.front.is_empty());
//! # Ok::<(), String>(())
//! ```

#![forbid(unsafe_code)]

pub mod lattice;
pub mod pareto;
pub mod render;
pub mod sweep;

pub use lattice::{apply_knob, parse_spec, Axis, KnobValue, Lattice, SweepPoint, KNOBS};
pub use pareto::{dominates, pareto_reference, ParetoFront};
pub use render::render_front_svg;
pub use sweep::{
    sweep, sweep_trace, Objectives, PointRecord, SweepOptions, SweepResult, OBJECTIVE_NAMES,
};
