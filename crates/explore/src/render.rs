//! SVG rendering of a sweep's objective space.
//!
//! Three panels project the 4-dimensional objective space onto
//! power-vs-X scatter plots (X = WDM count, worst delay, thermal
//! tuning). Dominated points draw gray; Pareto-front points draw
//! highlighted with a staircase polyline through the front's 2-D
//! projection. Output is deterministic: byte-equal for byte-equal
//! sweep results.

use crate::sweep::{SweepResult, OBJECTIVE_NAMES};
use std::fmt::Write as _;

const PANEL_W: f64 = 340.0;
const PANEL_H: f64 = 280.0;
const MARGIN: f64 = 52.0;
const GAP: f64 = 28.0;

/// One objective's padded display range over every point.
fn range(values: impl Iterator<Item = f64>) -> (f64, f64) {
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for v in values {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if !lo.is_finite() || !hi.is_finite() {
        return (0.0, 1.0);
    }
    let span = (hi - lo).max(1e-9);
    (lo - 0.05 * span, hi + 0.05 * span)
}

/// Renders the sweep's Pareto front as a standalone SVG document.
pub fn render_front_svg(result: &SweepResult) -> String {
    let panels: [usize; 3] = [1, 2, 3]; // x-objective per panel; y is power (0)
    let width = MARGIN + panels.len() as f64 * (PANEL_W + GAP) + MARGIN - GAP;
    let height = MARGIN + PANEL_H + MARGIN;
    let vectors: Vec<[f64; 4]> = result
        .points
        .iter()
        .map(|p| p.objectives.vector())
        .collect();
    let on_front = |i: usize| result.front.binary_search(&i).is_ok();

    let mut svg = String::with_capacity(16 * 1024);
    let _ = writeln!(
        svg,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width:.0}\" height=\"{height:.0}\" \
         viewBox=\"0 0 {width:.0} {height:.0}\" font-family=\"monospace\" font-size=\"11\">"
    );
    let _ = writeln!(
        svg,
        "<rect width=\"{width:.0}\" height=\"{height:.0}\" fill=\"white\"/>"
    );
    let _ = writeln!(
        svg,
        "<text x=\"{MARGIN}\" y=\"20\" font-size=\"13\">Pareto front: {} of {} points \
         ({} groups)</text>",
        result.front.len(),
        result.points.len(),
        result.groups
    );

    let (y_lo, y_hi) = range(vectors.iter().map(|v| v[0]));
    for (slot, &xi) in panels.iter().enumerate() {
        let x0 = MARGIN + slot as f64 * (PANEL_W + GAP);
        let y0 = MARGIN;
        let (x_lo, x_hi) = range(vectors.iter().map(|v| v[xi]));
        let px = |v: f64| x0 + (v - x_lo) / (x_hi - x_lo) * PANEL_W;
        let py = |v: f64| y0 + PANEL_H - (v - y_lo) / (y_hi - y_lo) * PANEL_H;

        let _ = writeln!(
            svg,
            "<rect x=\"{x0:.1}\" y=\"{y0:.1}\" width=\"{PANEL_W}\" height=\"{PANEL_H}\" \
             fill=\"none\" stroke=\"#555\"/>"
        );
        let _ = writeln!(
            svg,
            "<text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"middle\">{}</text>",
            x0 + PANEL_W / 2.0,
            y0 + PANEL_H + 32.0,
            OBJECTIVE_NAMES[xi]
        );
        if slot == 0 {
            let _ = writeln!(
                svg,
                "<text x=\"{:.1}\" y=\"{:.1}\" transform=\"rotate(-90 {:.1} {:.1})\" \
                 text-anchor=\"middle\">{}</text>",
                x0 - 36.0,
                y0 + PANEL_H / 2.0,
                x0 - 36.0,
                y0 + PANEL_H / 2.0,
                OBJECTIVE_NAMES[0]
            );
        }
        let _ = writeln!(
            svg,
            "<text x=\"{x0:.1}\" y=\"{:.1}\" font-size=\"9\">{x_lo:.2}</text>\
             <text x=\"{:.1}\" y=\"{:.1}\" font-size=\"9\" text-anchor=\"end\">{x_hi:.2}</text>",
            y0 + PANEL_H + 14.0,
            x0 + PANEL_W,
            y0 + PANEL_H + 14.0,
        );
        let _ = writeln!(
            svg,
            "<text x=\"{:.1}\" y=\"{:.1}\" font-size=\"9\" text-anchor=\"end\">{y_hi:.2}</text>\
             <text x=\"{:.1}\" y=\"{:.1}\" font-size=\"9\" text-anchor=\"end\">{y_lo:.2}</text>",
            x0 - 4.0,
            y0 + 8.0,
            x0 - 4.0,
            y0 + PANEL_H,
        );

        // Dominated points first, so front markers draw on top.
        for (i, v) in vectors.iter().enumerate() {
            if !on_front(i) {
                let _ = writeln!(
                    svg,
                    "<circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"3\" fill=\"#9aa\" \
                     fill-opacity=\"0.6\"/>",
                    px(v[xi]),
                    py(v[0])
                );
            }
        }
        // Staircase through the front's (x, power) projection.
        let mut steps: Vec<(f64, f64)> = result
            .front
            .iter()
            .map(|&i| (vectors[i][xi], vectors[i][0]))
            .collect();
        steps.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        if steps.len() > 1 {
            let mut d = String::new();
            for (k, (x, y)) in steps.iter().enumerate() {
                if k == 0 {
                    let _ = write!(d, "M {:.1} {:.1}", px(*x), py(*y));
                } else {
                    let _ = write!(
                        d,
                        " L {:.1} {:.1} L {:.1} {:.1}",
                        px(*x),
                        py(steps[k - 1].1),
                        px(*x),
                        py(*y)
                    );
                }
            }
            let _ = writeln!(
                svg,
                "<path d=\"{d}\" fill=\"none\" stroke=\"#c22\" stroke-width=\"1\" \
                 stroke-dasharray=\"3 2\"/>"
            );
        }
        for &i in &result.front {
            let v = &vectors[i];
            let _ = writeln!(
                svg,
                "<circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"4\" fill=\"#c22\"><title>point {}: \
                 {:.3} mW</title></circle>",
                px(v[xi]),
                py(v[0]),
                i,
                v[0]
            );
        }
    }
    svg.push_str("</svg>\n");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{Objectives, PointRecord};

    fn fake_result() -> SweepResult {
        let mk = |index: usize, power: f64, wdm: usize| PointRecord {
            index,
            knobs: vec![],
            fingerprint: index as u64,
            objectives: Objectives {
                power_mw: power,
                wdm_count: wdm,
                worst_delay_ps: 100.0 + power,
                thermal_tuning_mw: power / 2.0,
            },
            warm: index > 0,
            stages_reused: 0,
            stages_rerun: 5,
        };
        SweepResult {
            points: vec![mk(0, 10.0, 4), mk(1, 8.0, 6), mk(2, 12.0, 8)],
            front: vec![0, 1],
            groups: 1,
            stages_reused: 0,
            stages_rerun: 15,
        }
    }

    #[test]
    fn svg_is_well_formed_and_deterministic() {
        let result = fake_result();
        let a = render_front_svg(&result);
        let b = render_front_svg(&result);
        assert_eq!(a, b);
        assert!(a.starts_with("<svg"));
        assert!(a.trim_end().ends_with("</svg>"));
        assert_eq!(a.matches("<rect").count(), 1 + 3, "backdrop + 3 panels");
        // 2 front markers per panel + 1 dominated point per panel.
        assert_eq!(a.matches("<circle").count(), 3 * 3);
        assert!(a.contains("worst_delay_ps"));
    }
}
