//! The warm-artifact sweep driver.
//!
//! Evaluating a lattice as N independent cold runs repeats the whole
//! pipeline per point. This driver instead groups lattice points by
//! [`operon::config::OperonConfig::shared_prefix_key`] — points that differ only in
//! selection-, WDM- or reporting-tier knobs — and walks each group on
//! one resident [`WarmSession`]: the first point routes cold, every
//! subsequent point re-runs only the dirty pipeline suffix
//! ([`WarmSession::set_config`] + [`WarmSession::route`]). Partial
//! re-runs are bit-identical to cold runs by the session contract, so
//! the sweep's objective vectors — and therefore its Pareto front — are
//! byte-equal to the cold-per-point evaluation, at any thread count and
//! any schedule seed.
//!
//! Groups are shuffled by a seeded Fisher–Yates before scheduling (load
//! balance across the coarse workers); results scatter back by lattice
//! index and the dominance filter consumes them in index order, so
//! neither the seed nor the thread count can move the front.

use crate::lattice::{KnobValue, Lattice};
use crate::pareto::ParetoFront;
use operon::session::RouteSummary;
use operon::{report, timing, OperonError, WarmSession};
use operon_exec::json::Value;
use operon_exec::Executor;
use operon_netlist::Design;
use operon_optics::thermal::ThermalProfile;
use std::collections::BTreeMap;

/// The objective vector's dimension names, in vector order. All four
/// are minimized.
pub const OBJECTIVE_NAMES: [&str; 4] = [
    "power_mw",
    "wdm_count",
    "worst_delay_ps",
    "thermal_tuning_mw",
];

/// One lattice point's objective vector.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Objectives {
    /// Total selection power, mW.
    pub power_mw: f64,
    /// Final WDM waveguide count.
    pub wdm_count: usize,
    /// Worst source-to-sink arrival over every chosen candidate, ps.
    pub worst_delay_ps: f64,
    /// Ring tuning power of the selection under the sweep's thermal
    /// profile, mW.
    pub thermal_tuning_mw: f64,
}

impl Objectives {
    /// The vector form consumed by the dominance filter, ordered as
    /// [`OBJECTIVE_NAMES`].
    pub fn vector(&self) -> [f64; 4] {
        [
            self.power_mw,
            self.wdm_count as f64,
            self.worst_delay_ps,
            self.thermal_tuning_mw,
        ]
    }
}

/// One evaluated lattice point.
#[derive(Clone, Debug)]
pub struct PointRecord {
    /// Dense lattice index.
    pub index: usize,
    /// The point's axis knob assignments.
    pub knobs: Vec<(String, KnobValue)>,
    /// [`operon::config::OperonConfig::fingerprint`] of the exact
    /// configuration routed.
    pub fingerprint: u64,
    /// The measured objective vector.
    pub objectives: Objectives,
    /// Whether warm state served the route (false = cold pipeline).
    pub warm: bool,
    /// Pipeline stages answered from resident artifacts for this point.
    pub stages_reused: u32,
    /// Pipeline stages re-run for this point.
    pub stages_rerun: u32,
}

/// A finished sweep: every point plus the Pareto front over
/// [`OBJECTIVE_NAMES`].
#[derive(Clone, Debug)]
pub struct SweepResult {
    /// Per-point records, in lattice index order.
    pub points: Vec<PointRecord>,
    /// Lattice indices on the Pareto front, ascending.
    pub front: Vec<usize>,
    /// Warm groups the lattice decomposed into (equals the point count
    /// under [`SweepOptions::cold`]).
    pub groups: usize,
    /// Total pipeline stages answered from resident artifacts.
    pub stages_reused: u64,
    /// Total pipeline stages re-run.
    pub stages_rerun: u64,
}

impl SweepResult {
    /// JSON rendering of the whole sweep (points, objectives, front,
    /// reuse totals). Deterministic: byte-equal across thread counts
    /// and schedule seeds.
    pub fn to_json(&self) -> Value {
        let points: Vec<Value> = self
            .points
            .iter()
            .map(|r| {
                let knobs: Vec<(String, Value)> = r
                    .knobs
                    .iter()
                    .map(|(k, v)| (k.clone(), v.to_json()))
                    .collect();
                let objectives: Vec<(String, Value)> = OBJECTIVE_NAMES
                    .iter()
                    .zip(r.objectives.vector())
                    .map(|(name, v)| ((*name).to_owned(), Value::Float(v)))
                    .collect();
                Value::object(vec![
                    ("index".to_owned(), Value::Int(r.index as i64)),
                    ("knobs".to_owned(), Value::object(knobs)),
                    (
                        "config_fingerprint".to_owned(),
                        Value::Str(format!("{:016x}", r.fingerprint)),
                    ),
                    ("objectives".to_owned(), Value::object(objectives)),
                    ("warm".to_owned(), Value::Bool(r.warm)),
                    (
                        "stages_reused".to_owned(),
                        Value::Int(i64::from(r.stages_reused)),
                    ),
                    (
                        "stages_rerun".to_owned(),
                        Value::Int(i64::from(r.stages_rerun)),
                    ),
                ])
            })
            .collect();
        Value::object(vec![
            (
                "objective_names",
                Value::Array(
                    OBJECTIVE_NAMES
                        .iter()
                        .map(|n| Value::Str((*n).to_owned()))
                        .collect(),
                ),
            ),
            ("points", Value::Array(points)),
            (
                "front",
                Value::Array(self.front.iter().map(|&i| Value::Int(i as i64)).collect()),
            ),
            ("groups", Value::Int(self.groups as i64)),
            ("stages_reused", Value::Int(self.stages_reused as i64)),
            ("stages_rerun", Value::Int(self.stages_rerun as i64)),
        ])
    }
}

/// Sweep driver options.
#[derive(Clone, Debug)]
pub struct SweepOptions {
    /// Schedule seed (group shuffle for load balance; never affects
    /// results).
    pub seed: u64,
    /// Evaluate every point on its own cold session instead of sharing
    /// warm prefixes — the baseline the warm driver is benchmarked
    /// against. Results are bit-identical either way.
    pub cold: bool,
    /// Thermal profile pricing the `thermal_tuning_mw` objective.
    pub thermal: ThermalProfile,
}

impl Default for SweepOptions {
    fn default() -> SweepOptions {
        SweepOptions {
            seed: 0x5EED,
            cold: false,
            thermal: ThermalProfile::stressed(2.0),
        }
    }
}

/// splitmix64: the workspace's stock seed-expansion mixer.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Seeded Fisher–Yates shuffle of the group schedule.
fn shuffle<T>(items: &mut [T], seed: u64) {
    let mut state = seed ^ 0x0bad_5eed_0bad_5eed;
    for i in (1..items.len()).rev() {
        let j = (splitmix64(&mut state) % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

/// Measures one routed point's objective vector off the session's
/// resident artifacts. Pure: iteration follows net order, so the fold
/// is deterministic at any thread count.
fn objectives_of(
    session: &WarmSession,
    summary: &RouteSummary,
    thermal: &ThermalProfile,
) -> Result<Objectives, OperonError> {
    let (Some(candidates), Some(selection)) = (session.candidates(), session.selection()) else {
        return Err(OperonError::SelectionFailed(
            "sweep session has no routed state to measure".to_owned(),
        ));
    };
    let delay = &session.config().delay;
    let worst_delay_ps = candidates
        .iter()
        .zip(&selection.choice)
        .map(|(nc, &j)| timing::worst_delay_ps(&nc.candidates[j], delay))
        .fold(0.0, f64::max);
    let thermal_tuning_mw =
        report::thermal_report(candidates, &selection.choice, thermal).tuning_power_mw;
    Ok(Objectives {
        power_mw: summary.power_mw,
        wdm_count: summary.wdm_final,
        worst_delay_ps,
        thermal_tuning_mw,
    })
}

/// Walks one group on a single resident session: the first point routes
/// cold, every later point re-runs only the suffix its diff dirties.
fn eval_group(
    design: &Design,
    exec: &Executor,
    points: &[crate::lattice::SweepPoint],
    opts: &SweepOptions,
) -> Result<Vec<PointRecord>, OperonError> {
    let first = points
        .first()
        .ok_or_else(|| OperonError::InvalidConfig("empty sweep group".to_owned()))?;
    let mut session = WarmSession::open(design.clone(), first.config.clone(), exec.clone())?;
    let mut out = Vec::with_capacity(points.len());
    for (pos, point) in points.iter().enumerate() {
        if pos > 0 {
            session.set_config(point.config.clone())?;
        }
        let summary = session.route()?;
        let objectives = objectives_of(&session, &summary, &opts.thermal)?;
        out.push(PointRecord {
            index: point.index,
            knobs: point.knobs.clone(),
            fingerprint: point.config.fingerprint(),
            objectives,
            warm: summary.warm,
            stages_reused: summary.stages_reused,
            stages_rerun: summary.stages_rerun,
        });
    }
    Ok(out)
}

/// Evaluates every lattice point and streams the objective vectors into
/// a Pareto front (see the module docs for the reuse and determinism
/// story). Emits a `"sweep"` stage with the reuse counters into the
/// executor's run report; per-point attribution rides on the
/// `config_fingerprint` stage labels the sessions stamp.
///
/// # Errors
///
/// Lattice declaration errors surface as
/// [`OperonError::InvalidConfig`]; routing errors propagate from the
/// sessions. When several groups fail, the error of the group holding
/// the smallest lattice index is reported — independent of thread
/// count and schedule seed.
pub fn sweep(
    design: &Design,
    lattice: &Lattice,
    exec: &Executor,
    opts: &SweepOptions,
) -> Result<SweepResult, OperonError> {
    let n = lattice.len();
    let mut points = Vec::with_capacity(n);
    for i in 0..n {
        points.push(lattice.point(i).map_err(OperonError::InvalidConfig)?);
    }

    let mut groups: Vec<Vec<crate::lattice::SweepPoint>> = if opts.cold {
        points.into_iter().map(|p| vec![p]).collect()
    } else {
        let mut by_key: BTreeMap<String, Vec<crate::lattice::SweepPoint>> = BTreeMap::new();
        for p in points {
            by_key
                .entry(p.config.shared_prefix_key())
                .or_default()
                .push(p);
        }
        by_key.into_values().collect()
    };
    // Canonical group order: by smallest member index (points were
    // pushed in index order, so the first member is the smallest).
    groups.sort_by_key(|g| g.first().map_or(usize::MAX, |p| p.index));
    let group_count = groups.len();

    let mut schedule: Vec<&Vec<crate::lattice::SweepPoint>> = groups.iter().collect();
    shuffle(&mut schedule, opts.seed);

    let results = exec.par_map_coarse(&schedule, |group| eval_group(design, exec, group, opts));

    let mut first_error: Option<(usize, OperonError)> = None;
    let mut slots: Vec<Option<PointRecord>> = (0..n).map(|_| None).collect();
    for (group, result) in schedule.iter().zip(results) {
        match result {
            Ok(records) => {
                for record in records {
                    let index = record.index;
                    slots[index] = Some(record);
                }
            }
            Err(e) => {
                let lead = group.first().map_or(usize::MAX, |p| p.index);
                if first_error.as_ref().is_none_or(|(i, _)| lead < *i) {
                    first_error = Some((lead, e));
                }
            }
        }
    }
    if let Some((_, e)) = first_error {
        return Err(e);
    }
    let points: Vec<PointRecord> = slots
        .into_iter()
        .map(|slot| slot.expect("groups partition the lattice"))
        .collect();

    // Offer in lattice index order: the front (and its acceptance
    // history) is a pure function of the lattice, never the schedule.
    let mut front = ParetoFront::new(OBJECTIVE_NAMES.len());
    for record in &points {
        front.offer(record.index, &record.objectives.vector());
    }
    let stages_reused: u64 = points.iter().map(|r| u64::from(r.stages_reused)).sum();
    let stages_rerun: u64 = points.iter().map(|r| u64::from(r.stages_rerun)).sum();
    {
        let mut stage = exec.stage("sweep");
        stage.record("points", n as u64);
        stage.record("groups", group_count as u64);
        stage.record(
            "cold_points",
            points.iter().filter(|r| !r.warm).count() as u64,
        );
        stage.record("stages_reused", stages_reused);
        stage.record("stages_rerun", stages_rerun);
        stage.record("front_size", front.len() as u64);
    }
    Ok(SweepResult {
        points,
        front: front.indices(),
        groups: group_count,
        stages_reused,
        stages_rerun,
    })
}

/// Appends one knob assignment as its `operon_serve` `set_config`
/// protocol field(s).
fn knob_protocol_fields(
    name: &str,
    value: &KnobValue,
    fields: &mut Vec<(String, Value)>,
) -> Result<(), String> {
    match name {
        "capacity" | "max_candidates" | "ilp_wave_size" | "lr_iters" | "wdm_pitch"
        | "wdm_displacement" => {
            let v = value
                .as_int()
                .ok_or_else(|| format!("knob {name:?} needs an integer value, got {value}"))?;
            fields.push((name.to_owned(), Value::Int(v)));
        }
        "max_loss" | "max_delay" | "merge_threshold" | "lr_converge" => {
            let v = value
                .as_f64()
                .ok_or_else(|| format!("knob {name:?} needs a numeric value, got {value}"))?;
            fields.push((name.to_owned(), Value::Float(v)));
        }
        "selector" => match value {
            KnobValue::Text(t) if t == "lr" => {
                fields.push(("selector".to_owned(), Value::Str("lr".to_owned())));
            }
            KnobValue::Text(t) => {
                let secs = t
                    .strip_prefix("ilp:")
                    .and_then(|s| s.parse::<i64>().ok())
                    .ok_or_else(|| {
                        format!("selector value {t:?} is not \"lr\" or \"ilp:<secs>\"")
                    })?;
                fields.push(("selector".to_owned(), Value::Str("ilp".to_owned())));
                fields.push(("ilp_secs".to_owned(), Value::Int(secs)));
            }
            other => return Err(format!("knob \"selector\" needs text, got {other}")),
        },
        other => return Err(format!("knob {other:?} has no serve-protocol mapping")),
    }
    Ok(())
}

/// Renders the whole sweep as an `operon_serve` JSONL request trace:
/// one session, then per lattice point a `set_config` (base knobs +
/// that point's axis assignments, so replay applies each point's exact
/// configuration regardless of the previous point) followed by a
/// `route`, closed by `report` + `close`. Replaying the trace through
/// the daemon doubles a sweep as a service stress workload — and the
/// daemon's per-route `power_mw` digests are bit-equal to the sweep's
/// own objective vectors.
///
/// # Errors
///
/// Lattice declaration errors and knobs without a protocol mapping.
pub fn sweep_trace(design: &Design, lattice: &Lattice) -> Result<String, String> {
    let session = format!("{}-sweep", design.name());
    let mut out = String::new();
    out.push_str(
        &Value::object(vec![
            ("op".to_owned(), Value::Str("open_design".to_owned())),
            ("session".to_owned(), Value::Str(session.clone())),
            (
                "design".to_owned(),
                Value::Str(operon_netlist::io::write_design(design)),
            ),
        ])
        .compact(),
    );
    out.push('\n');
    for i in 0..lattice.len() {
        let point = lattice.point(i)?;
        let mut fields: Vec<(String, Value)> = vec![
            ("op".to_owned(), Value::Str("set_config".to_owned())),
            ("session".to_owned(), Value::Str(session.clone())),
        ];
        for (name, value) in lattice.base_knobs().iter().chain(point.knobs.iter()) {
            knob_protocol_fields(name, value, &mut fields)?;
        }
        out.push_str(&Value::object(fields).compact());
        out.push('\n');
        out.push_str(
            &Value::object(vec![
                ("op".to_owned(), Value::Str("route".to_owned())),
                ("session".to_owned(), Value::Str(session.clone())),
            ])
            .compact(),
        );
        out.push('\n');
    }
    for op in ["report", "close"] {
        out.push_str(
            &Value::object(vec![
                ("op".to_owned(), Value::Str(op.to_owned())),
                ("session".to_owned(), Value::Str(session.clone())),
            ])
            .compact(),
        );
        out.push('\n');
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::Axis;
    use operon_netlist::synth::{generate, SynthConfig};

    fn small_lattice() -> Lattice {
        Lattice::new(
            vec![],
            vec![
                Axis::parse("max_loss=20,25").unwrap(),
                Axis::parse("lr_iters=6,10").unwrap(),
            ],
        )
        .unwrap()
    }

    #[test]
    fn warm_sweep_reuses_prefixes_within_groups() {
        let design = generate(&SynthConfig::small(), 11);
        let lattice = small_lattice();
        let exec = Executor::sequential();
        let result = sweep(&design, &lattice, &exec, &SweepOptions::default()).unwrap();
        assert_eq!(result.points.len(), 4);
        assert_eq!(result.groups, 2, "two max_loss values, two warm groups");
        // Each group: one cold point, one selection-tier partial (3/2).
        let cold = result.points.iter().filter(|p| !p.warm).count();
        assert_eq!(cold, 2);
        assert_eq!(result.stages_reused, 2 * 3);
        assert_eq!(result.stages_rerun, 2 * (5 + 2));
        assert!(!result.front.is_empty());
        for w in result.front.windows(2) {
            assert!(w[0] < w[1], "front indices must be ascending");
        }
    }

    #[test]
    fn cold_mode_isolates_every_point() {
        let design = generate(&SynthConfig::small(), 11);
        let lattice = small_lattice();
        let exec = Executor::sequential();
        let opts = SweepOptions {
            cold: true,
            ..SweepOptions::default()
        };
        let result = sweep(&design, &lattice, &exec, &opts).unwrap();
        assert_eq!(result.groups, 4);
        assert!(result.points.iter().all(|p| !p.warm));
        assert_eq!(result.stages_reused, 0);
        assert_eq!(result.stages_rerun, 4 * 5);
    }

    #[test]
    fn invalid_lattice_points_fail_deterministically() {
        let design = generate(&SynthConfig::small(), 11);
        // Pitch above displacement: every point invalid; the error must
        // name the smallest index (0).
        let lattice =
            Lattice::new(vec![], vec![Axis::parse("wdm_pitch=700,800").unwrap()]).unwrap();
        let err = sweep(
            &design,
            &lattice,
            &Executor::sequential(),
            &SweepOptions::default(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("lattice point 0"), "{err}");
    }

    #[test]
    fn sweep_json_is_self_describing() {
        let design = generate(&SynthConfig::small(), 11);
        let result = sweep(
            &design,
            &small_lattice(),
            &Executor::sequential(),
            &SweepOptions::default(),
        )
        .unwrap();
        let json = result.to_json();
        assert_eq!(
            json.get("points").and_then(Value::as_array).unwrap().len(),
            4
        );
        let p0 = &json.get("points").and_then(Value::as_array).unwrap()[0];
        assert!(p0
            .get("config_fingerprint")
            .and_then(Value::as_str)
            .is_some());
        assert!(p0
            .get("objectives")
            .and_then(|o| o.get("power_mw"))
            .and_then(Value::as_f64)
            .is_some());
        assert!(json.get("front").and_then(Value::as_array).is_some());
    }
}
