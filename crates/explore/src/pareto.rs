//! Incremental dominance filtering for minimization objectives.
//!
//! The sweep driver streams per-point objective vectors through a
//! [`ParetoFront`] as they arrive; the resident front is always exactly
//! the non-dominated subset of everything offered so far, so the final
//! front is independent of the offer order (see
//! [`pareto_reference`] for the quadratic oracle the property tests pin
//! this against).

/// Weak Pareto dominance for minimization: `a` dominates `b` iff `a` is
/// no worse in every objective and strictly better in at least one.
/// Equal vectors dominate neither way (duplicates coexist on a front).
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    debug_assert_eq!(a.len(), b.len(), "objective vectors must share dims");
    let mut strict = false;
    for (x, y) in a.iter().zip(b) {
        if x > y {
            return false;
        }
        if x < y {
            strict = true;
        }
    }
    strict
}

/// An incrementally maintained Pareto front over minimization
/// objectives. Entries carry the caller's point index.
///
/// # Examples
///
/// ```
/// use operon_explore::pareto::ParetoFront;
///
/// let mut front = ParetoFront::new(2);
/// assert!(front.offer(0, &[3.0, 1.0]));
/// assert!(front.offer(1, &[1.0, 3.0])); // incomparable: both stay
/// assert!(front.offer(2, &[1.0, 1.0])); // dominates both
/// assert!(!front.offer(3, &[2.0, 2.0]));
/// assert_eq!(front.indices(), vec![2]);
/// ```
#[derive(Clone, Debug)]
pub struct ParetoFront {
    dims: usize,
    entries: Vec<(usize, Vec<f64>)>,
}

impl ParetoFront {
    /// An empty front over `dims`-dimensional objective vectors.
    pub fn new(dims: usize) -> ParetoFront {
        ParetoFront {
            dims,
            entries: Vec::new(),
        }
    }

    /// Offers one point. Dominated offers are rejected (returns
    /// `false`); an accepted offer evicts every resident entry it
    /// dominates. The resident set after any sequence of offers is
    /// exactly the non-dominated subset of all offered points,
    /// independent of order.
    ///
    /// # Panics
    ///
    /// When `objectives` has the wrong dimension.
    pub fn offer(&mut self, index: usize, objectives: &[f64]) -> bool {
        assert_eq!(
            objectives.len(),
            self.dims,
            "objective vector has {} dims, front expects {}",
            objectives.len(),
            self.dims
        );
        if self
            .entries
            .iter()
            .any(|(_, resident)| dominates(resident, objectives))
        {
            return false;
        }
        self.entries
            .retain(|(_, resident)| !dominates(objectives, resident));
        self.entries.push((index, objectives.to_vec()));
        true
    }

    /// The front's point indices, ascending.
    pub fn indices(&self) -> Vec<usize> {
        let mut out: Vec<usize> = self.entries.iter().map(|(i, _)| *i).collect();
        out.sort_unstable();
        out
    }

    /// The resident entries, in acceptance order.
    pub fn entries(&self) -> &[(usize, Vec<f64>)] {
        &self.entries
    }

    /// Number of resident points.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no point has survived (or been offered).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// O(n²) reference oracle: the ascending indices of all points not
/// dominated by any other point. Duplicates of a non-dominated vector
/// are all reported (weak dominance — equal vectors don't eliminate
/// each other), matching [`ParetoFront`].
pub fn pareto_reference(points: &[Vec<f64>]) -> Vec<usize> {
    (0..points.len())
        .filter(|&i| !points.iter().any(|other| dominates(other, &points[i])))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_is_weak_and_strict_somewhere() {
        assert!(dominates(&[1.0, 2.0], &[1.0, 3.0]));
        assert!(dominates(&[0.5, 2.0], &[1.0, 2.0]));
        assert!(!dominates(&[1.0, 2.0], &[1.0, 2.0]), "equal: no dominance");
        assert!(!dominates(&[0.0, 3.0], &[1.0, 2.0]), "incomparable");
        assert!(!dominates(&[1.0, 3.0], &[1.0, 2.0]));
    }

    #[test]
    fn duplicates_coexist_on_the_front() {
        let mut front = ParetoFront::new(2);
        assert!(front.offer(4, &[1.0, 2.0]));
        assert!(front.offer(7, &[1.0, 2.0]));
        assert_eq!(front.indices(), vec![4, 7]);
        assert!(front.offer(9, &[0.5, 2.0]), "dominates both copies");
        assert_eq!(front.indices(), vec![9]);
    }

    #[test]
    fn incremental_matches_reference_on_a_fixed_set() {
        let points = vec![
            vec![3.0, 1.0, 2.0],
            vec![1.0, 3.0, 2.0],
            vec![2.0, 2.0, 2.0],
            vec![3.0, 3.0, 3.0], // dominated by every other point? no — by [2,2,2]
            vec![2.0, 2.0, 2.0], // duplicate
        ];
        let oracle = pareto_reference(&points);
        let mut front = ParetoFront::new(3);
        for (i, p) in points.iter().enumerate() {
            front.offer(i, p);
        }
        assert_eq!(front.indices(), oracle);
        assert_eq!(oracle, vec![0, 1, 2, 4]);
    }
}
