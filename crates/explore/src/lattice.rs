//! Config-lattice declaration: named knobs, axes, and mixed-radix
//! point enumeration.
//!
//! A [`Lattice`] is the cross product of a base configuration (itself a
//! list of knob assignments over [`OperonConfig::default`]) and one or
//! more [`Axis`] declarations. Every lattice point is a fully validated
//! [`OperonConfig`]; the knob names double as the `operon_serve`
//! `set_config` protocol fields, so any lattice can also be emitted as a
//! replayable request trace (see [`crate::sweep::sweep_trace`]).

use operon::config::{DirtyStage, OperonConfig, Selector};
use operon_exec::json::{self, Value};
use std::fmt;

/// One knob assignment value.
#[derive(Clone, Debug, PartialEq)]
pub enum KnobValue {
    /// Integer-valued knobs (`capacity`, `lr_iters`, `wdm_pitch`, …).
    Int(i64),
    /// Real-valued knobs (`max_loss`, `lr_converge`, …). Integer
    /// literals coerce.
    Float(f64),
    /// Textual knobs (`selector`: `"lr"` or `"ilp:<secs>"`).
    Text(String),
}

impl KnobValue {
    /// Real view of a numeric value.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            KnobValue::Int(v) => Some(*v as f64),
            KnobValue::Float(v) => Some(*v),
            KnobValue::Text(_) => None,
        }
    }

    /// Integer view (floats never coerce down — an integer knob given
    /// `2.5` is a declaration error, not a rounding request).
    pub fn as_int(&self) -> Option<i64> {
        match self {
            KnobValue::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// JSON rendering (used by sweep results and request traces).
    pub fn to_json(&self) -> Value {
        match self {
            KnobValue::Int(v) => Value::Int(*v),
            KnobValue::Float(v) => Value::Float(*v),
            KnobValue::Text(t) => Value::Str(t.clone()),
        }
    }

    /// Parses a CLI token: integer, then real, then text.
    pub fn parse(token: &str) -> KnobValue {
        if let Ok(v) = token.parse::<i64>() {
            return KnobValue::Int(v);
        }
        if let Ok(v) = token.parse::<f64>() {
            return KnobValue::Float(v);
        }
        KnobValue::Text(token.to_owned())
    }

    fn from_json(value: &Value) -> Result<KnobValue, String> {
        match value {
            Value::Int(v) => Ok(KnobValue::Int(*v)),
            Value::Float(v) => Ok(KnobValue::Float(*v)),
            Value::Str(s) => Ok(KnobValue::Text(s.clone())),
            other => Err(format!("knob values must be scalars, got {other:?}")),
        }
    }
}

impl fmt::Display for KnobValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KnobValue::Int(v) => write!(f, "{v}"),
            KnobValue::Float(v) => write!(f, "{v}"),
            KnobValue::Text(t) => write!(f, "{t}"),
        }
    }
}

/// Every sweepable knob with the first pipeline stage a change to it
/// invalidates (mirrors [`OperonConfig::first_dirty_stage`]). The sweep
/// driver groups lattice points that differ only in `Selection`-or-later
/// knobs onto one warm session.
pub const KNOBS: [(&str, DirtyStage); 11] = [
    ("capacity", DirtyStage::Clustering),
    ("merge_threshold", DirtyStage::Clustering),
    ("max_loss", DirtyStage::Codesign),
    ("max_delay", DirtyStage::Codesign),
    ("max_candidates", DirtyStage::Codesign),
    ("selector", DirtyStage::Selection),
    ("ilp_wave_size", DirtyStage::Selection),
    ("lr_iters", DirtyStage::Selection),
    ("lr_converge", DirtyStage::Selection),
    ("wdm_pitch", DirtyStage::Wdm),
    ("wdm_displacement", DirtyStage::Wdm),
];

/// The stage a knob invalidates, or `None` for an unknown name.
pub fn knob_tier(name: &str) -> Option<DirtyStage> {
    KNOBS.iter().find(|(n, _)| *n == name).map(|(_, t)| *t)
}

fn int_field(name: &str, value: &KnobValue) -> Result<i64, String> {
    value
        .as_int()
        .ok_or_else(|| format!("knob {name:?} needs an integer value, got {value}"))
}

fn positive_usize(name: &str, value: &KnobValue) -> Result<usize, String> {
    let v = int_field(name, value)?;
    usize::try_from(v)
        .ok()
        .filter(|&v| v > 0)
        .ok_or_else(|| format!("knob {name:?} needs a positive integer, got {v}"))
}

fn float_field(name: &str, value: &KnobValue) -> Result<f64, String> {
    value
        .as_f64()
        .ok_or_else(|| format!("knob {name:?} needs a numeric value, got {value}"))
}

/// Parses a `selector` knob value: `"lr"` or `"ilp:<secs>"`.
pub fn parse_selector(text: &str) -> Result<Selector, String> {
    if text == "lr" {
        return Ok(Selector::LagrangianRelaxation);
    }
    if let Some(secs) = text
        .strip_prefix("ilp:")
        .and_then(|s| s.parse::<u64>().ok())
    {
        return Ok(Selector::Ilp {
            time_limit_secs: secs,
        });
    }
    Err(format!(
        "selector value {text:?} is not \"lr\" or \"ilp:<secs>\""
    ))
}

/// Applies one knob assignment, returning the updated configuration.
///
/// # Errors
///
/// Unknown knob names and type mismatches; validation of the combined
/// configuration happens per lattice point, not per knob.
pub fn apply_knob(
    config: OperonConfig,
    name: &str,
    value: &KnobValue,
) -> Result<OperonConfig, String> {
    let mut config = config;
    match name {
        "capacity" => return Ok(config.with_wdm_capacity(positive_usize(name, value)?)),
        "merge_threshold" => config.cluster.merge_threshold = float_field(name, value)?,
        "max_loss" => config.optical.max_loss_db = float_field(name, value)?,
        "max_delay" => config.max_delay_ps = Some(float_field(name, value)?),
        "max_candidates" => config.max_candidates = positive_usize(name, value)?,
        "selector" => match value {
            KnobValue::Text(t) => config.selector = parse_selector(t)?,
            other => return Err(format!("knob \"selector\" needs text, got {other}")),
        },
        "ilp_wave_size" => config.ilp_wave_size = positive_usize(name, value)?,
        "lr_iters" => config.lr_max_iters = positive_usize(name, value)?,
        "lr_converge" => config.lr_converge_ratio = float_field(name, value)?,
        "wdm_pitch" => config.optical.wdm_min_pitch = int_field(name, value)?,
        "wdm_displacement" => config.optical.wdm_max_displacement = int_field(name, value)?,
        other => {
            let known: Vec<&str> = KNOBS.iter().map(|(n, _)| *n).collect();
            return Err(format!(
                "unknown knob {other:?} (known: {})",
                known.join(", ")
            ));
        }
    }
    Ok(config)
}

/// One lattice axis: a knob name and the values it sweeps over.
#[derive(Clone, Debug, PartialEq)]
pub struct Axis {
    /// Knob name (see [`KNOBS`]).
    pub knob: String,
    /// The swept values, in declaration order.
    pub values: Vec<KnobValue>,
}

impl Axis {
    /// Parses a CLI axis spec `name=v1,v2,...`.
    ///
    /// # Errors
    ///
    /// Malformed specs (no `=`, empty name or value list).
    pub fn parse(spec: &str) -> Result<Axis, String> {
        let (name, list) = spec
            .split_once('=')
            .ok_or_else(|| format!("axis spec {spec:?} is not name=v1,v2,..."))?;
        if name.is_empty() {
            return Err(format!("axis spec {spec:?} has an empty knob name"));
        }
        let values: Vec<KnobValue> = list
            .split(',')
            .filter(|t| !t.is_empty())
            .map(KnobValue::parse)
            .collect();
        if values.is_empty() {
            return Err(format!("axis spec {spec:?} lists no values"));
        }
        Ok(Axis {
            knob: name.to_owned(),
            values,
        })
    }
}

/// One fully resolved lattice point.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// Dense lattice index (row-major over the axes, last axis fastest).
    pub index: usize,
    /// The axis knob assignments of this point, in axis order.
    pub knobs: Vec<(String, KnobValue)>,
    /// The validated configuration.
    pub config: OperonConfig,
}

/// A declared design-space lattice: base knob assignments plus the
/// cross product of the axes.
///
/// # Examples
///
/// ```
/// use operon_explore::lattice::{Axis, KnobValue, Lattice};
///
/// let lattice = Lattice::new(
///     vec![("capacity".to_owned(), KnobValue::Int(32))],
///     vec![
///         Axis::parse("max_loss=22,25")?,
///         Axis::parse("lr_iters=6,10")?,
///     ],
/// )?;
/// assert_eq!(lattice.len(), 4);
/// let p = lattice.point(3)?;
/// assert_eq!(p.config.optical.max_loss_db, 25.0);
/// assert_eq!(p.config.lr_max_iters, 10);
/// # Ok::<(), String>(())
/// ```
#[derive(Clone, Debug)]
pub struct Lattice {
    base: OperonConfig,
    base_knobs: Vec<(String, KnobValue)>,
    axes: Vec<Axis>,
}

impl Lattice {
    /// Declares a lattice. Knob names are checked eagerly; the combined
    /// per-point configurations are validated lazily by
    /// [`Lattice::point`].
    ///
    /// # Errors
    ///
    /// Unknown knobs, duplicate axis knobs, empty axes, or a base
    /// assignment that fails to apply.
    pub fn new(base_knobs: Vec<(String, KnobValue)>, axes: Vec<Axis>) -> Result<Lattice, String> {
        if axes.is_empty() {
            return Err("a lattice needs at least one axis".to_owned());
        }
        let mut base = OperonConfig::default();
        for (name, value) in &base_knobs {
            base = apply_knob(base, name, value)?;
        }
        for (i, axis) in axes.iter().enumerate() {
            if knob_tier(&axis.knob).is_none() {
                let known: Vec<&str> = KNOBS.iter().map(|(n, _)| *n).collect();
                return Err(format!(
                    "unknown axis knob {:?} (known: {})",
                    axis.knob,
                    known.join(", ")
                ));
            }
            if axis.values.is_empty() {
                return Err(format!("axis {:?} lists no values", axis.knob));
            }
            if axes[..i].iter().any(|a| a.knob == axis.knob) {
                return Err(format!("axis knob {:?} is declared twice", axis.knob));
            }
        }
        Ok(Lattice {
            base,
            base_knobs,
            axes,
        })
    }

    /// Total number of lattice points (product of the axis lengths).
    pub fn len(&self) -> usize {
        self.axes.iter().map(|a| a.values.len()).product()
    }

    /// Whether the lattice is empty (it never is — construction requires
    /// at least one axis with at least one value).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The declared axes.
    pub fn axes(&self) -> &[Axis] {
        &self.axes
    }

    /// The base knob assignments (applied over the default config).
    pub fn base_knobs(&self) -> &[(String, KnobValue)] {
        &self.base_knobs
    }

    /// Resolves lattice point `index` (row-major, last axis fastest) to
    /// its knob assignments and validated configuration.
    ///
    /// # Errors
    ///
    /// Out-of-range indices, knob type mismatches, and configurations
    /// that fail [`OperonConfig::validate`] (the message names the point
    /// so lattice errors are actionable).
    pub fn point(&self, index: usize) -> Result<SweepPoint, String> {
        let n = self.len();
        if index >= n {
            return Err(format!("lattice point {index} out of range (len {n})"));
        }
        let mut digits = vec![0usize; self.axes.len()];
        let mut rest = index;
        for (d, axis) in digits.iter_mut().zip(&self.axes).rev() {
            *d = rest % axis.values.len();
            rest /= axis.values.len();
        }
        let mut config = self.base.clone();
        let mut knobs = Vec::with_capacity(self.axes.len());
        for (axis, &d) in self.axes.iter().zip(&digits) {
            let value = &axis.values[d];
            config = apply_knob(config, &axis.knob, value)?;
            knobs.push((axis.knob.clone(), value.clone()));
        }
        config
            .validate()
            .map_err(|e| format!("lattice point {index} ({knobs:?}) is invalid: {e}"))?;
        Ok(SweepPoint {
            index,
            knobs,
            config,
        })
    }
}

/// Parses a JSON lattice spec:
///
/// ```json
/// {
///   "base": {"capacity": 32},
///   "axes": [
///     {"knob": "max_loss", "values": [22, 25, 26]},
///     {"knob": "lr_iters", "values": [6, 10]}
///   ]
/// }
/// ```
///
/// # Errors
///
/// Parse errors and the declaration errors of [`Lattice::new`].
pub fn parse_spec(text: &str) -> Result<Lattice, String> {
    let root = json::parse(text).map_err(|e| format!("lattice spec: {e}"))?;
    let mut base_knobs = Vec::new();
    if let Some(base) = root.get("base") {
        let Value::Object(pairs) = base else {
            return Err("lattice spec: \"base\" must be an object".to_owned());
        };
        for (name, value) in pairs {
            base_knobs.push((name.clone(), KnobValue::from_json(value)?));
        }
    }
    let axes_value = root
        .get("axes")
        .and_then(Value::as_array)
        .ok_or_else(|| "lattice spec: missing \"axes\" array".to_owned())?;
    let mut axes = Vec::with_capacity(axes_value.len());
    for entry in axes_value {
        let knob = entry
            .get("knob")
            .and_then(Value::as_str)
            .ok_or_else(|| "lattice spec: axis entry misses \"knob\"".to_owned())?;
        let values = entry
            .get("values")
            .and_then(Value::as_array)
            .ok_or_else(|| format!("lattice spec: axis {knob:?} misses \"values\""))?;
        let values: Result<Vec<KnobValue>, String> =
            values.iter().map(KnobValue::from_json).collect();
        axes.push(Axis {
            knob: knob.to_owned(),
            values: values?,
        });
    }
    Lattice::new(base_knobs, axes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_radix_enumeration_covers_the_cross_product() {
        let lattice = Lattice::new(
            vec![],
            vec![
                Axis::parse("max_loss=20,25").unwrap(),
                Axis::parse("lr_iters=6,8,10").unwrap(),
            ],
        )
        .unwrap();
        assert_eq!(lattice.len(), 6);
        let mut seen = Vec::new();
        for i in 0..lattice.len() {
            let p = lattice.point(i).unwrap();
            assert_eq!(p.index, i);
            seen.push((p.config.optical.max_loss_db, p.config.lr_max_iters));
        }
        seen.sort_by(|a, b| a.partial_cmp(b).unwrap());
        seen.dedup();
        assert_eq!(seen.len(), 6, "points must be pairwise distinct");
        // Last axis fastest: point 1 differs from point 0 in lr_iters.
        let (a, b) = (lattice.point(0).unwrap(), lattice.point(1).unwrap());
        assert_eq!(a.config.optical.max_loss_db, b.config.optical.max_loss_db);
        assert_ne!(a.config.lr_max_iters, b.config.lr_max_iters);
    }

    #[test]
    fn declaration_errors_are_caught_eagerly() {
        assert!(Lattice::new(vec![], vec![]).is_err());
        assert!(Lattice::new(vec![], vec![Axis::parse("no_such_knob=1,2").unwrap()]).is_err());
        let dup = Axis::parse("lr_iters=4,8").unwrap();
        assert!(Lattice::new(vec![], vec![dup.clone(), dup]).is_err());
        assert!(Axis::parse("max_loss").is_err());
        assert!(Axis::parse("max_loss=").is_err());
        // Type mismatch surfaces when the base is applied...
        assert!(Lattice::new(
            vec![("capacity".to_owned(), KnobValue::Float(1.5))],
            vec![Axis::parse("lr_iters=4").unwrap()],
        )
        .is_err());
        // ...and per-point validation catches invalid combinations.
        let lattice = Lattice::new(
            vec![],
            vec![
                Axis::parse("wdm_pitch=700").unwrap(), // exceeds displacement 600
            ],
        )
        .unwrap();
        assert!(lattice.point(0).is_err());
    }

    #[test]
    fn selector_knob_round_trips() {
        let lattice =
            Lattice::new(vec![], vec![Axis::parse("selector=lr,ilp:5").unwrap()]).unwrap();
        assert_eq!(
            lattice.point(0).unwrap().config.selector,
            Selector::LagrangianRelaxation
        );
        assert_eq!(
            lattice.point(1).unwrap().config.selector,
            Selector::Ilp { time_limit_secs: 5 }
        );
        assert!(parse_selector("ilp").is_err());
    }

    #[test]
    fn spec_parsing_matches_programmatic_declaration() {
        let spec = r#"{
            "base": {"capacity": 16, "max_delay": 1500.0},
            "axes": [
                {"knob": "max_loss", "values": [22, 25.5]},
                {"knob": "wdm_pitch", "values": [20, 40]}
            ]
        }"#;
        let lattice = parse_spec(spec).unwrap();
        assert_eq!(lattice.len(), 4);
        assert_eq!(lattice.base_knobs().len(), 2);
        let p = lattice.point(3).unwrap();
        assert_eq!(p.config.optical.wdm_capacity, 16);
        assert_eq!(p.config.max_delay_ps, Some(1500.0));
        assert_eq!(p.config.optical.max_loss_db, 25.5);
        assert_eq!(p.config.optical.wdm_min_pitch, 40);

        assert!(parse_spec("{\"axes\": 3}").is_err());
        assert!(parse_spec("not json").is_err());
    }

    #[test]
    fn every_declared_knob_applies_and_classifies() {
        let base = OperonConfig::default();
        for (name, tier) in KNOBS {
            let value = match name {
                "selector" => KnobValue::Text("ilp:3".to_owned()),
                "max_loss" => KnobValue::Float(21.5),
                "max_delay" => KnobValue::Float(2000.0),
                "merge_threshold" => KnobValue::Float(base.cluster.merge_threshold * 2.0),
                "lr_converge" => KnobValue::Float(0.05),
                "capacity" => KnobValue::Int(16),
                "wdm_pitch" => KnobValue::Int(24),
                "wdm_displacement" => KnobValue::Int(800),
                _ => KnobValue::Int(3),
            };
            let next = apply_knob(base.clone(), name, &value).unwrap();
            next.validate().unwrap();
            assert_eq!(
                base.first_dirty_stage(&next),
                tier,
                "knob {name} must dirty exactly its declared tier"
            );
        }
    }
}
