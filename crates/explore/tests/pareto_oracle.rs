//! Property tests: the incremental dominance filter against the O(n²)
//! brute-force oracle, including duplicates, ties, and offer-order
//! permutations.

use operon_explore::pareto::{dominates, pareto_reference, ParetoFront};
use proptest::prelude::*;

/// Small integer coordinates force plenty of duplicates and ties.
fn point_set() -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(
        proptest::collection::vec((0i64..5).prop_map(|v| v as f64), 4),
        1..40,
    )
}

/// Slices every vector down to `dims` leading objectives.
fn sliced(points: &[Vec<f64>], dims: usize) -> Vec<Vec<f64>> {
    points.iter().map(|p| p[..dims].to_vec()).collect()
}

proptest! {
    #[test]
    fn incremental_front_matches_oracle(points in point_set(), dims in 2usize..=4) {
        let points = sliced(&points, dims);
        let oracle = pareto_reference(&points);
        let mut front = ParetoFront::new(dims);
        for (i, p) in points.iter().enumerate() {
            front.offer(i, p);
        }
        prop_assert_eq!(front.indices(), oracle);
    }

    #[test]
    fn front_is_offer_order_invariant(points in point_set(), salt in 0u64..1000) {
        let dims = 4;
        // A deterministic permutation derived from the salt.
        let mut order: Vec<usize> = (0..points.len()).collect();
        let mut state = salt.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        for i in (1..order.len()).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            order.swap(i, (state % (i as u64 + 1)) as usize);
        }
        let mut forward = ParetoFront::new(dims);
        for (i, p) in points.iter().enumerate() {
            forward.offer(i, p);
        }
        let mut permuted = ParetoFront::new(dims);
        for &i in &order {
            permuted.offer(i, &points[i]);
        }
        prop_assert_eq!(forward.indices(), permuted.indices());
    }

    #[test]
    fn every_front_member_is_undominated(points in point_set()) {
        let mut front = ParetoFront::new(4);
        for (i, p) in points.iter().enumerate() {
            front.offer(i, p);
        }
        // No resident entry is dominated by ANY offered point, and no
        // non-member is undominated (completeness).
        let members = front.indices();
        for &m in &members {
            prop_assert!(
                !points.iter().any(|p| dominates(p, &points[m])),
                "front member {} is dominated", m
            );
        }
        for i in 0..points.len() {
            if !members.contains(&i) {
                prop_assert!(
                    points.iter().any(|p| dominates(p, &points[i])),
                    "non-member {} is undominated", i
                );
            }
        }
    }

    #[test]
    fn dominance_is_a_strict_partial_order(
        a in proptest::collection::vec((0i64..5).prop_map(|v| v as f64), 3),
        b in proptest::collection::vec((0i64..5).prop_map(|v| v as f64), 3),
    ) {
        prop_assert!(!dominates(&a, &a), "irreflexive");
        prop_assert!(!(dominates(&a, &b) && dominates(&b, &a)), "asymmetric");
    }
}
