//! The sweep driver's determinism contract: warm-prefix sharing is a
//! speed-up, never a different answer. The warm sweep's objective
//! vectors are bitwise equal to cold-per-point evaluation, the Pareto
//! front is identical at 1, 2 and 8 threads and for any schedule seed,
//! and the emitted request trace replays through the serve daemon with
//! byte-equal route digests.

use operon_exec::json::{self, Value};
use operon_exec::Executor;
use operon_explore::lattice::{Axis, KnobValue, Lattice};
use operon_explore::sweep::{sweep, sweep_trace, SweepOptions, SweepResult};
use operon_netlist::synth::{generate, SynthConfig};
use operon_netlist::Design;
use operon_serve::Server;

const THREADS: [usize; 3] = [1, 2, 8];

fn design() -> Design {
    generate(&SynthConfig::small(), 23)
}

/// max_loss splits the lattice into two co-design groups; lr_iters and
/// wdm_pitch vary only suffix stages inside each group.
fn lattice() -> Lattice {
    Lattice::new(
        vec![("capacity".to_owned(), KnobValue::Int(32))],
        vec![
            Axis::parse("max_loss=20,25").unwrap(),
            Axis::parse("lr_iters=6,10").unwrap(),
            Axis::parse("wdm_pitch=20,40").unwrap(),
        ],
    )
    .unwrap()
}

fn assert_bitwise_equal(a: &SweepResult, b: &SweepResult, what: &str) {
    assert_eq!(a.points.len(), b.points.len(), "{what}: point count");
    for (x, y) in a.points.iter().zip(&b.points) {
        assert_eq!(x.index, y.index);
        assert_eq!(x.fingerprint, y.fingerprint, "{what}: point {}", x.index);
        let (vx, vy) = (x.objectives.vector(), y.objectives.vector());
        for (k, (ox, oy)) in vx.iter().zip(&vy).enumerate() {
            assert_eq!(
                ox.to_bits(),
                oy.to_bits(),
                "{what}: objective {k} of point {} diverged",
                x.index
            );
        }
    }
    assert_eq!(a.front, b.front, "{what}: front");
}

#[test]
fn warm_front_is_bitwise_equal_to_cold_per_point_at_all_thread_counts() {
    let design = design();
    let lattice = lattice();
    let mut baseline: Option<SweepResult> = None;
    for threads in THREADS {
        let exec = Executor::new(threads);
        let warm = sweep(&design, &lattice, &exec, &SweepOptions::default()).unwrap();
        let cold = sweep(
            &design,
            &lattice,
            &exec,
            &SweepOptions {
                cold: true,
                ..SweepOptions::default()
            },
        )
        .unwrap();
        assert_bitwise_equal(&warm, &cold, &format!("warm vs cold at {threads} threads"));
        assert!(
            warm.stages_rerun < cold.stages_rerun,
            "warm sweep must re-run strictly fewer stages"
        );
        assert_eq!(cold.stages_reused, 0);
        assert_eq!(warm.groups, 2, "two max_loss values, two warm groups");
        if let Some(b) = &baseline {
            assert_bitwise_equal(b, &warm, &format!("threads 1 vs {threads}"));
            assert_eq!(b.stages_reused, warm.stages_reused);
            assert_eq!(b.stages_rerun, warm.stages_rerun);
        } else {
            baseline = Some(warm);
        }
    }
}

#[test]
fn schedule_seed_never_moves_the_front() {
    let design = design();
    let lattice = lattice();
    let exec = Executor::new(4);
    let mut baseline: Option<SweepResult> = None;
    for seed in [0u64, 1, 0xdead_beef] {
        let result = sweep(
            &design,
            &lattice,
            &exec,
            &SweepOptions {
                seed,
                ..SweepOptions::default()
            },
        )
        .unwrap();
        if let Some(b) = &baseline {
            assert_bitwise_equal(b, &result, &format!("seed {seed}"));
        } else {
            baseline = Some(result);
        }
    }
}

#[test]
fn emitted_trace_replays_through_the_daemon_with_matching_digests() {
    let design = design();
    let lattice = lattice();
    let trace = sweep_trace(&design, &lattice).unwrap();
    // open + (set_config + route) per point + report + close.
    assert_eq!(trace.lines().count(), 1 + 2 * lattice.len() + 2);

    let mut server = Server::new(Executor::sequential(), 1);
    let responses = server.run_trace(&trace);
    let mut route_powers: Vec<f64> = Vec::new();
    for line in responses.lines() {
        let value = json::parse(line).expect("daemon responses are JSON");
        assert_eq!(
            value.get("ok").and_then(Value::as_bool),
            Some(true),
            "replay rejected a request: {line}"
        );
        if value.get("op").and_then(Value::as_str) == Some("route") {
            route_powers.push(value.get("power_mw").and_then(Value::as_f64).unwrap());
        }
    }
    assert_eq!(route_powers.len(), lattice.len());

    // The daemon replay routes the same lattice points in index order;
    // its power digests are bit-equal to the sweep's objectives.
    let result = sweep(
        &design,
        &lattice,
        &Executor::sequential(),
        &SweepOptions::default(),
    )
    .unwrap();
    for (record, power) in result.points.iter().zip(&route_powers) {
        assert_eq!(
            record.objectives.power_mw.to_bits(),
            power.to_bits(),
            "trace replay diverged at point {}",
            record.index
        );
    }
}
