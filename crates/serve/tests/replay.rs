//! Replay-determinism integration test: a recorded ~100-request ECO
//! trace must replay byte-for-byte identically at 1, 2 and 8 worker
//! threads, with thread-invariant session counters throughout.

use operon_exec::json::{self, Value};
use operon_exec::Executor;
use operon_netlist::synth::{generate, SynthConfig};
use operon_serve::Server;

/// Builds a ~100-request two-session ECO trace: open both sessions,
/// route, then interleaved `eco_move_pins` nudges (each group moved
/// away from and back to its home position so every ECO is feasible),
/// a `probe_wdm` every 10 requests and a `report` every 25, then close.
fn build_trace() -> String {
    let design = generate(&SynthConfig::small(), 42);
    let design_text = operon_netlist::io::write_design(&design);
    let die = design.die();
    let mut lines: Vec<String> = Vec::new();
    for session in ["left", "right"] {
        lines.push(
            Value::object(vec![
                ("op", "open_design".into()),
                ("session", session.into()),
                ("design", design_text.as_str().into()),
            ])
            .compact(),
        );
        lines.push(format!("{{\"op\":\"route\",\"session\":\"{session}\"}}"));
    }

    // Feasible nudge per group: a direction that keeps every pin on the
    // die, applied and undone alternately.
    const NUDGE: i64 = 24;
    let directions: Vec<Option<(i64, i64)>> = design
        .groups()
        .iter()
        .map(|group| {
            [(NUDGE, 0i64), (-NUDGE, 0), (0, NUDGE), (0, -NUDGE)]
                .into_iter()
                .find(|&(dx, dy)| {
                    group.bits().iter().all(|b| {
                        b.pins()
                            .all(|p| die.contains(operon_geom::Point::new(p.x + dx, p.y + dy)))
                    })
                })
        })
        .collect();

    let mut away = vec![true; directions.len()];
    let mut group = 0usize;
    let mut emitted = 0usize;
    while emitted < 88 {
        if let Some((dx, dy)) = directions[group] {
            let session = if emitted.is_multiple_of(2) {
                "left"
            } else {
                "right"
            };
            let sign = if away[group] { 1 } else { -1 };
            lines.push(format!(
                "{{\"op\":\"eco_move_pins\",\"session\":\"{session}\",\"group\":{group},\
                 \"dx\":{},\"dy\":{}}}",
                sign * dx,
                sign * dy
            ));
            away[group] = !away[group];
            emitted += 1;
            if emitted.is_multiple_of(10) {
                lines.push(format!(
                    "{{\"op\":\"probe_wdm\",\"session\":\"{session}\"}}"
                ));
            }
            if emitted.is_multiple_of(25) {
                lines.push(format!("{{\"op\":\"report\",\"session\":\"{session}\"}}"));
            }
        }
        group = (group + 1) % directions.len();
    }
    for session in ["left", "right"] {
        lines.push(format!("{{\"op\":\"report\",\"session\":\"{session}\"}}"));
        lines.push(format!("{{\"op\":\"close\",\"session\":\"{session}\"}}"));
    }
    lines.join("\n") + "\n"
}

#[test]
fn replay_is_byte_identical_across_thread_counts() {
    let trace = build_trace();
    assert!(
        trace.lines().count() >= 100,
        "the trace must be ~100 requests, got {}",
        trace.lines().count()
    );

    let reference = Server::new(Executor::new(1), 1).run_trace(&trace);
    assert_eq!(
        reference.lines().count(),
        trace.lines().count(),
        "one response per request"
    );
    for line in reference.lines() {
        assert!(line.contains("\"ok\":true"), "request failed: {line}");
    }

    for threads in [2usize, 8] {
        let replay = Server::new(Executor::new(threads), threads).run_trace(&trace);
        assert_eq!(
            replay, reference,
            "replay diverged at {threads} worker threads"
        );
    }

    // The byte equality above already pins every counter in every
    // report response across thread counts; spot-check the session
    // invariants inside the final reports.
    let last_reports: Vec<Value> = reference
        .lines()
        .filter(|l| l.contains("\"op\":\"report\""))
        .map(|l| json::parse(l).expect("report response is valid JSON"))
        .collect();
    assert!(last_reports.len() >= 4);
    for report in &last_reports {
        assert_eq!(
            report.get("wdm_networks_cloned").and_then(Value::as_i64),
            Some(0),
            "warm sessions must never clone a flow network"
        );
        assert_eq!(report.get("cold_routes").and_then(Value::as_i64), Some(1));
        let fingerprint = report
            .get("fingerprint")
            .and_then(Value::as_str)
            .expect("report carries the state digest");
        assert_eq!(fingerprint.len(), 16);
    }
}
