//! `operon-serve`: a persistent routing daemon with cross-request warm
//! sessions.
//!
//! The daemon speaks a line-oriented JSON (JSONL) protocol over any
//! byte pipe: each request is one JSON object on one line, each request
//! produces exactly one JSON response line, and responses are written
//! in request order. Sessions — a design plus every warm artifact the
//! flow derives from it — stay resident in the process between
//! requests, so a stream of incremental ECOs re-routes at warm speed
//! instead of re-running the cold pipeline per invocation.
//!
//! # Requests
//!
//! | `op`            | fields                                              |
//! |-----------------|-----------------------------------------------------|
//! | `open_design`   | `session`, `design` (netlist text format, inline)   |
//! | `route`         | `session`                                           |
//! | `eco_move_pins` | `session`, `group`, `dx`, `dy`                      |
//! | `eco_add_bus`   | `session`, `name`, `bits`, `source`, `sink`, `pitch`|
//! | `set_config`    | `session`, knobs (see [`Request::SetConfig`])       |
//! | `probe_wdm`     | `session`                                           |
//! | `report`        | `session`                                           |
//! | `close`         | `session`                                           |
//! | `shutdown`      | —                                                   |
//!
//! ECO requests apply the change and immediately re-route (warm when
//! possible), responding with the same route digest as `route`.
//! Failed requests — unknown session, malformed JSON, rejected ECO —
//! produce an `{"ok": false, ...}` response and leave every session
//! untouched; the daemon keeps serving.
//!
//! # Determinism contract
//!
//! Responses never carry wall-clock readings; every response byte is a
//! pure function of the request history. Concretely: requests to one
//! session are applied in input order no matter how the scheduler
//! batches them, each response depends only on that session's state
//! plus the request, and the underlying flow is bit-identical at any
//! worker count. Replaying a recorded trace therefore reproduces every
//! response byte-for-byte at any `--threads` value — that is what
//! `operon_serve --replay` (and the tests) assert. Timing lives only in
//! the executor's run report, never in the protocol.
//!
//! # Scheduling
//!
//! Incoming requests are admitted in batches by
//! [`operon_exec::Admission`]: a batch is the longest run of requests
//! addressing pairwise-distinct sessions (capped at the configured
//! width), and session-map mutators (`open_design`, `close`,
//! `shutdown`) run exclusively. A batch routes its sessions
//! concurrently on the shared executor via `par_map_coarse` while each
//! flow also parallelizes internally — the admission width is the
//! outer-vs-inner balance knob.

use operon::config::{OperonConfig, Selector};
use operon::session::WarmSession;
use operon::OperonError;
use operon_exec::json::{self, Value};
use operon_exec::{Admission, AdmissionKey, Executor};
use operon_geom::Point;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::sync::Mutex;

/// A parsed protocol request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Opens a session over an inline design (netlist text format).
    Open {
        /// Session name (the key all later requests address).
        session: String,
        /// The design, in the `operon_netlist::io` text format.
        design: String,
    },
    /// Routes the session's design (cached when already routed).
    Route {
        /// Target session.
        session: String,
    },
    /// ECO: translate one group's pins, then re-route.
    MovePins {
        /// Target session.
        session: String,
        /// Dense group index.
        group: usize,
        /// X translation.
        dx: i64,
        /// Y translation.
        dy: i64,
    },
    /// ECO: append a new bus group, then re-route.
    AddBus {
        /// Target session.
        session: String,
        /// New group name.
        name: String,
        /// Bus width.
        bits: usize,
        /// Bit-0 source pin.
        source: Point,
        /// Bit-0 sink pin.
        sink: Point,
        /// Per-bit y spacing.
        pitch: i64,
    },
    /// Replaces configuration knobs (unset knobs keep their values).
    SetConfig {
        /// Target session.
        session: String,
        /// `max_loss` — optical detection budget, dB.
        max_loss: Option<f64>,
        /// `capacity` — WDM channel capacity (also the cluster cap).
        capacity: Option<usize>,
        /// `max_delay` — arrival-time bound, ps.
        max_delay: Option<f64>,
        /// `selector` — `"lr"` or `"ilp"`.
        selector: Option<String>,
        /// `ilp_secs` — ILP time limit (with `selector: "ilp"`).
        ilp_secs: Option<u64>,
        /// `ilp_wave_size` — branch-and-bound wave width.
        ilp_wave_size: Option<usize>,
        /// `lr_iters` — LR iteration cap.
        lr_iters: Option<usize>,
        /// `lr_converge` — LR convergence ratio.
        lr_converge: Option<f64>,
        /// `wdm_pitch` — minimum WDM waveguide pitch, dbu.
        wdm_pitch: Option<i64>,
        /// `wdm_displacement` — WDM placement displacement bound, dbu.
        wdm_displacement: Option<i64>,
        /// `max_candidates` — co-design candidates kept per hyper net.
        max_candidates: Option<usize>,
        /// `merge_threshold` — clustering merge threshold.
        merge_threshold: Option<f64>,
    },
    /// Per-waveguide deletion what-ifs on the resident networks.
    Probe {
        /// Target session.
        session: String,
    },
    /// Deterministic session counters + state digest.
    Report {
        /// Target session.
        session: String,
    },
    /// Closes a session, freeing its resident state.
    Close {
        /// Target session.
        session: String,
    },
    /// Stops the serve loop after this response.
    Shutdown,
}

impl Request {
    /// The wire name of this request kind.
    pub fn op(&self) -> &'static str {
        match self {
            Request::Open { .. } => "open_design",
            Request::Route { .. } => "route",
            Request::MovePins { .. } => "eco_move_pins",
            Request::AddBus { .. } => "eco_add_bus",
            Request::SetConfig { .. } => "set_config",
            Request::Probe { .. } => "probe_wdm",
            Request::Report { .. } => "report",
            Request::Close { .. } => "close",
            Request::Shutdown => "shutdown",
        }
    }

    /// The session this request addresses (none for `shutdown`).
    pub fn session(&self) -> Option<&str> {
        match self {
            Request::Open { session, .. }
            | Request::Route { session }
            | Request::MovePins { session, .. }
            | Request::AddBus { session, .. }
            | Request::SetConfig { session, .. }
            | Request::Probe { session }
            | Request::Report { session }
            | Request::Close { session } => Some(session),
            Request::Shutdown => None,
        }
    }

    /// How the scheduler may batch this request: session-map mutators
    /// are exclusive, everything else batches by session key.
    fn admission_key(&self) -> AdmissionKey<'_> {
        match self {
            Request::Open { .. } | Request::Close { .. } | Request::Shutdown => {
                AdmissionKey::Exclusive
            }
            other => match other.session() {
                Some(s) => AdmissionKey::Keyed(s),
                None => AdmissionKey::Exclusive,
            },
        }
    }

    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// A human-readable message for malformed JSON, an unknown `op`, or
    /// missing/mistyped fields.
    pub fn parse(line: &str) -> Result<Request, String> {
        let value = json::parse(line).map_err(|e| format!("malformed request: {e}"))?;
        let op = value
            .get("op")
            .and_then(Value::as_str)
            .ok_or("request has no \"op\" string")?;
        let session = || -> Result<String, String> {
            Ok(value
                .get("session")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("{op} needs a \"session\" string"))?
                .to_owned())
        };
        let int = |key: &str| -> Result<i64, String> {
            value
                .get(key)
                .and_then(Value::as_i64)
                .ok_or_else(|| format!("{op} needs an integer \"{key}\""))
        };
        let point = |key: &str| -> Result<Point, String> {
            let arr = value
                .get(key)
                .and_then(Value::as_array)
                .ok_or_else(|| format!("{op} needs \"{key}\": [x, y]"))?;
            match arr {
                [x, y] => match (x.as_i64(), y.as_i64()) {
                    (Some(x), Some(y)) => Ok(Point::new(x, y)),
                    _ => Err(format!("{op} \"{key}\" coordinates must be integers")),
                },
                _ => Err(format!("{op} needs \"{key}\": [x, y]")),
            }
        };
        match op {
            "open_design" => Ok(Request::Open {
                session: session()?,
                design: value
                    .get("design")
                    .and_then(Value::as_str)
                    .ok_or("open_design needs a \"design\" string")?
                    .to_owned(),
            }),
            "route" => Ok(Request::Route {
                session: session()?,
            }),
            "eco_move_pins" => Ok(Request::MovePins {
                session: session()?,
                group: usize::try_from(int("group")?)
                    .map_err(|_| "\"group\" must be non-negative".to_owned())?,
                dx: int("dx")?,
                dy: int("dy")?,
            }),
            "eco_add_bus" => Ok(Request::AddBus {
                session: session()?,
                name: value
                    .get("name")
                    .and_then(Value::as_str)
                    .ok_or("eco_add_bus needs a \"name\" string")?
                    .to_owned(),
                bits: usize::try_from(int("bits")?)
                    .map_err(|_| "\"bits\" must be non-negative".to_owned())?,
                source: point("source")?,
                sink: point("sink")?,
                pitch: value.get("pitch").and_then(Value::as_i64).unwrap_or(1),
            }),
            "set_config" => Ok(Request::SetConfig {
                session: session()?,
                max_loss: value.get("max_loss").and_then(Value::as_f64),
                capacity: value
                    .get("capacity")
                    .and_then(Value::as_i64)
                    .and_then(|c| usize::try_from(c).ok()),
                max_delay: value.get("max_delay").and_then(Value::as_f64),
                selector: value
                    .get("selector")
                    .and_then(Value::as_str)
                    .map(str::to_owned),
                ilp_secs: value
                    .get("ilp_secs")
                    .and_then(Value::as_i64)
                    .and_then(|s| u64::try_from(s).ok()),
                ilp_wave_size: value
                    .get("ilp_wave_size")
                    .and_then(Value::as_i64)
                    .and_then(|s| usize::try_from(s).ok()),
                lr_iters: value
                    .get("lr_iters")
                    .and_then(Value::as_i64)
                    .and_then(|s| usize::try_from(s).ok()),
                lr_converge: value.get("lr_converge").and_then(Value::as_f64),
                wdm_pitch: value.get("wdm_pitch").and_then(Value::as_i64),
                wdm_displacement: value.get("wdm_displacement").and_then(Value::as_i64),
                max_candidates: value
                    .get("max_candidates")
                    .and_then(Value::as_i64)
                    .and_then(|s| usize::try_from(s).ok()),
                merge_threshold: value.get("merge_threshold").and_then(Value::as_f64),
            }),
            "probe_wdm" => Ok(Request::Probe {
                session: session()?,
            }),
            "report" => Ok(Request::Report {
                session: session()?,
            }),
            "close" => Ok(Request::Close {
                session: session()?,
            }),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown op {other:?}")),
        }
    }
}

/// One queued request line: the parse result, or the error to report in
/// its place (errors hold the queue slot so responses stay in order).
struct PendingLine {
    req: Result<Request, String>,
}

/// A batch slot: the request plus its checked-out session, lockable so
/// `par_map_coarse` workers can mutate their own slot through `&self`.
type BatchSlot = Mutex<(Result<Request, String>, Option<WarmSession>)>;

/// The daemon: resident sessions plus the admission scheduler.
///
/// # Examples
///
/// ```
/// use operon_exec::Executor;
/// use operon_serve::Server;
///
/// let mut server = Server::new(Executor::sequential(), 1);
/// let design = "design d\ndie 0 0 400 400\ngroup a\nbit 10 10 : 300 300\nend\n";
/// let open = operon_exec::json::Value::object(vec![
///     ("op", "open_design".into()),
///     ("session", "s".into()),
///     ("design", design.into()),
/// ]);
/// let response = server.handle_line(&open.compact());
/// assert!(response.starts_with("{\"ok\":true"));
/// let routed = server.handle_line("{\"op\": \"route\", \"session\": \"s\"}");
/// assert!(routed.contains("\"power_mw\""));
/// ```
pub struct Server {
    exec: Executor,
    admission: Admission,
    sessions: BTreeMap<String, WarmSession>,
    shutdown: bool,
}

impl Server {
    /// Creates a daemon over `exec`, batching up to `batch` requests
    /// (0 means one per executor worker).
    pub fn new(exec: Executor, batch: usize) -> Self {
        let width = if batch == 0 { exec.threads() } else { batch };
        Self {
            exec,
            admission: Admission::new(width),
            sessions: BTreeMap::new(),
            shutdown: false,
        }
    }

    /// Whether a `shutdown` request has been processed.
    pub fn is_shut_down(&self) -> bool {
        self.shutdown
    }

    /// Open session count.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Handles one request line, returning its response line (no
    /// trailing newline). Identical to what the batched serve loop
    /// produces for the same line at the same session state.
    pub fn handle_line(&mut self, line: &str) -> String {
        let mut pending = vec![PendingLine {
            req: Request::parse(line),
        }];
        let mut out = String::new();
        self.drain(&mut pending, &mut out);
        // drain() writes exactly one "response\n" per request line.
        out.pop();
        out
    }

    /// Runs a full request trace (one request per line; blank lines
    /// skipped), returning the concatenated response lines. All lines
    /// are queued upfront, so batching — and every response byte — is a
    /// pure function of the trace and the admission width.
    pub fn run_trace(&mut self, trace: &str) -> String {
        let mut pending: Vec<PendingLine> = trace
            .lines()
            .filter(|l| !l.trim().is_empty())
            .map(|l| PendingLine {
                req: Request::parse(l),
            })
            .collect();
        let mut out = String::new();
        self.drain(&mut pending, &mut out);
        self.record_admission_stats();
        out
    }

    /// The blocking serve loop: reads request lines from `reader` until
    /// EOF or `shutdown`, writing one response line per request to
    /// `writer` (flushed per drain so pipe peers can pipeline).
    /// When `record` is given, every raw request line is appended to it
    /// — the resulting file replays via [`Server::run_trace`].
    ///
    /// Requests already buffered in `reader` are batched together;
    /// the concrete batching never changes any response byte (see the
    /// module docs), only how much routing runs concurrently.
    ///
    /// # Errors
    ///
    /// I/O errors from the reader, writer, or trace recorder.
    pub fn serve<R: Read, W: Write>(
        &mut self,
        reader: &mut BufReader<R>,
        writer: &mut W,
        mut record: Option<&mut dyn Write>,
    ) -> std::io::Result<()> {
        let mut line = String::new();
        while !self.shutdown {
            line.clear();
            if reader.read_line(&mut line)? == 0 {
                break; // EOF
            }
            let mut pending = Vec::new();
            let mut queue_line = |l: &str, record: &mut Option<&mut dyn Write>| {
                if l.trim().is_empty() {
                    return std::io::Result::Ok(());
                }
                if let Some(rec) = record.as_deref_mut() {
                    rec.write_all(l.trim_end_matches(['\r', '\n']).as_bytes())?;
                    rec.write_all(b"\n")?;
                }
                pending.push(PendingLine {
                    req: Request::parse(l),
                });
                Ok(())
            };
            queue_line(&line, &mut record)?;
            // Drain whatever further complete lines the pipe already
            // delivered: they form the batching window.
            while reader.buffer().contains(&b'\n') {
                line.clear();
                if reader.read_line(&mut line)? == 0 {
                    break;
                }
                queue_line(&line, &mut record)?;
            }
            let mut out = String::new();
            self.drain(&mut pending, &mut out);
            writer.write_all(out.as_bytes())?;
            writer.flush()?;
        }
        self.record_admission_stats();
        writer.flush()
    }

    /// Executes queued requests in admission batches until the queue is
    /// empty or a `shutdown` request is processed, appending one
    /// `response\n` per request to `out` in queue order.
    fn drain(&mut self, pending: &mut Vec<PendingLine>, out: &mut String) {
        while !pending.is_empty() && !self.shutdown {
            let n = self.admission.admit(pending, |p| match &p.req {
                Ok(req) => req.admission_key(),
                Err(_) => AdmissionKey::Exclusive,
            });
            let batch: Vec<PendingLine> = pending.drain(..n).collect();
            if let [single] = &batch[..] {
                out.push_str(&self.execute_one(single));
                out.push('\n');
                continue;
            }
            // n > 1: pairwise-distinct session keys, so the batch routes
            // concurrently. Sessions are checked out of the map for the
            // duration; responses come back in queue order.
            let slots: Vec<BatchSlot> = batch
                .into_iter()
                .map(|p| {
                    let slot = p
                        .req
                        .as_ref()
                        .ok()
                        .and_then(|r| r.session())
                        .and_then(|s| self.sessions.remove(s));
                    Mutex::new((p.req, slot))
                })
                .collect();
            let exec = self.exec.clone();
            let responses = exec.par_map_coarse(&slots, |slot| {
                let mut guard = match slot.lock() {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
                let (req, session) = &mut *guard;
                match req {
                    Ok(req) => handle_session_request(req, session, &exec),
                    Err(e) => error_response(None, None, e),
                }
            });
            for slot in slots {
                let (req, session) = match slot.into_inner() {
                    Ok(inner) => inner,
                    Err(poisoned) => poisoned.into_inner(),
                };
                if let (Ok(req), Some(session)) = (req, session) {
                    if let Some(name) = req.session() {
                        self.sessions.insert(name.to_owned(), session);
                    }
                }
            }
            for response in responses {
                out.push_str(&response);
                out.push('\n');
            }
        }
        // A shutdown mid-queue still answers the remaining requests —
        // deterministically, as errors.
        for p in pending.drain(..) {
            let op = p.req.as_ref().ok().map(Request::op);
            let session = p.req.as_ref().ok().and_then(Request::session);
            out.push_str(&error_response(op, session, "daemon is shutting down"));
            out.push('\n');
        }
    }

    /// Executes one request inline (exclusive ops and batches of one).
    fn execute_one(&mut self, p: &PendingLine) -> String {
        let req = match &p.req {
            Ok(req) => req,
            Err(e) => return error_response(None, None, e),
        };
        match req {
            Request::Open { session, design } => self.open(session, design),
            Request::Close { session } => match self.sessions.remove(session) {
                Some(live) => {
                    let stats = live.close();
                    Value::object(vec![
                        ("ok", Value::Bool(true)),
                        ("op", "close".into()),
                        ("session", session.as_str().into()),
                        ("routes", Value::Int(stats.routes as i64)),
                    ])
                    .compact()
                }
                None => unknown_session(req.op(), session),
            },
            Request::Shutdown => {
                self.shutdown = true;
                Value::object(vec![("ok", Value::Bool(true)), ("op", "shutdown".into())]).compact()
            }
            other => {
                let name = other.session().unwrap_or_default().to_owned();
                let mut slot = self.sessions.remove(&name);
                let exec = self.exec.clone();
                let response = handle_session_request(other, &mut slot, &exec);
                if let Some(session) = slot {
                    self.sessions.insert(name, session);
                }
                response
            }
        }
    }

    fn open(&mut self, session: &str, design_text: &str) -> String {
        if self.sessions.contains_key(session) {
            return error_response(
                Some("open_design"),
                Some(session),
                &format!("session {session:?} is already open"),
            );
        }
        let design = match operon_netlist::io::read_design(design_text) {
            Ok(d) => d,
            Err(e) => return error_response(Some("open_design"), Some(session), &e.to_string()),
        };
        let groups = design.group_count();
        let bits = design.bit_count();
        match WarmSession::open(design, OperonConfig::default(), self.exec.clone()) {
            Ok(live) => {
                self.sessions.insert(session.to_owned(), live);
                Value::object(vec![
                    ("ok", Value::Bool(true)),
                    ("op", "open_design".into()),
                    ("session", session.into()),
                    ("groups", Value::Int(groups as i64)),
                    ("bits", Value::Int(bits as i64)),
                ])
                .compact()
            }
            Err(e) => error_response(Some("open_design"), Some(session), &e.to_string()),
        }
    }

    /// Folds the admission scheduler's counters into the shared run
    /// report (stage `"admission"`). Counters, like all run-report
    /// content, never appear in protocol responses.
    fn record_admission_stats(&mut self) {
        let mut stage = self.exec.stage("admission");
        stage.record("batches", self.admission.batches());
        stage.record("admitted", self.admission.admitted());
        stage.record("largest_batch", self.admission.largest_batch());
        stage.record("exclusive_batches", self.admission.exclusive_batches());
    }
}

/// Handles a session-scoped request against its (checked-out) session
/// slot. Pure per-session: the response depends only on the slot state
/// and the request, never on batch composition or timing.
fn handle_session_request(
    req: &Request,
    slot: &mut Option<WarmSession>,
    exec: &Executor,
) -> String {
    let _ = exec; // reserved for request kinds that spawn nested work
    let Some(name) = req.session() else {
        return error_response(Some(req.op()), None, "request addresses no session");
    };
    let Some(session) = slot.as_mut() else {
        return unknown_session(req.op(), name);
    };
    let route_digest = |summary: operon::session::RouteSummary| {
        Value::object(vec![
            ("ok", Value::Bool(true)),
            ("op", req.op().into()),
            ("session", name.into()),
            ("warm", Value::Bool(summary.warm)),
            ("hyper_nets", Value::Int(summary.hyper_nets as i64)),
            ("optical", Value::Int(summary.optical as i64)),
            ("electrical", Value::Int(summary.electrical as i64)),
            ("power_mw", Value::Float(summary.power_mw)),
            ("wdms", Value::Int(summary.wdm_final as i64)),
            ("proven_optimal", Value::Bool(summary.proven_optimal)),
            (
                "stages_reused",
                Value::Int(i64::from(summary.stages_reused)),
            ),
            ("stages_rerun", Value::Int(i64::from(summary.stages_rerun))),
        ])
        .compact()
    };
    let route_result = |r: Result<operon::session::RouteSummary, OperonError>| match r {
        Ok(summary) => route_digest(summary),
        Err(e) => error_response(Some(req.op()), Some(name), &e.to_string()),
    };
    match req {
        Request::Route { .. } => route_result(session.route()),
        Request::MovePins { group, dx, dy, .. } => {
            route_result(session.move_pins(*group, *dx, *dy))
        }
        Request::AddBus {
            name: bus,
            bits,
            source,
            sink,
            pitch,
            ..
        } => route_result(session.add_bus(bus, *bits, *source, *sink, *pitch)),
        Request::SetConfig {
            max_loss,
            capacity,
            max_delay,
            selector,
            ilp_secs,
            ilp_wave_size,
            lr_iters,
            lr_converge,
            wdm_pitch,
            wdm_displacement,
            max_candidates,
            merge_threshold,
            ..
        } => {
            let mut config = session.config().clone();
            if let Some(db) = max_loss {
                config.optical.max_loss_db = *db;
            }
            if let Some(cap) = capacity {
                config = config.with_wdm_capacity(*cap);
            }
            if let Some(ps) = max_delay {
                config.max_delay_ps = Some(*ps);
            }
            if let Some(iters) = lr_iters {
                config.lr_max_iters = *iters;
            }
            if let Some(ratio) = lr_converge {
                config.lr_converge_ratio = *ratio;
            }
            if let Some(pitch) = wdm_pitch {
                config.optical.wdm_min_pitch = *pitch;
            }
            if let Some(disp) = wdm_displacement {
                config.optical.wdm_max_displacement = *disp;
            }
            if let Some(cands) = max_candidates {
                config.max_candidates = *cands;
            }
            if let Some(merge) = merge_threshold {
                config.cluster.merge_threshold = *merge;
            }
            match selector.as_deref() {
                Some("lr") => config.selector = Selector::LagrangianRelaxation,
                Some("ilp") => {
                    config.selector = Selector::Ilp {
                        time_limit_secs: ilp_secs.unwrap_or(10),
                    };
                }
                Some(other) => {
                    return error_response(
                        Some(req.op()),
                        Some(name),
                        &format!("unknown selector {other:?} (expected \"lr\" or \"ilp\")"),
                    );
                }
                None => {
                    if let (Selector::Ilp { .. }, Some(secs)) = (&config.selector, ilp_secs) {
                        config.selector = Selector::Ilp {
                            time_limit_secs: *secs,
                        };
                    }
                }
            }
            if let Some(wave) = ilp_wave_size {
                config.ilp_wave_size = *wave;
            }
            match session.set_config(config) {
                Ok(()) => Value::object(vec![
                    ("ok", Value::Bool(true)),
                    ("op", "set_config".into()),
                    ("session", name.into()),
                ])
                .compact(),
                Err(e) => error_response(Some(req.op()), Some(name), &e.to_string()),
            }
        }
        Request::Probe { .. } => match session.probe_wdm() {
            Ok(probes) => {
                let deletable = probes.iter().filter(|p| p.deletable).count();
                let displaced: i64 = probes.iter().map(|p| p.displaced).sum();
                let reroute_cost: i64 = probes.iter().map(|p| p.reroute_cost).sum();
                Value::object(vec![
                    ("ok", Value::Bool(true)),
                    ("op", "probe_wdm".into()),
                    ("session", name.into()),
                    ("waveguides", Value::Int(probes.len() as i64)),
                    ("deletable", Value::Int(deletable as i64)),
                    ("displaced", Value::Int(displaced)),
                    ("reroute_cost", Value::Int(reroute_cost)),
                ])
                .compact()
            }
            Err(e) => error_response(Some(req.op()), Some(name), &e.to_string()),
        },
        Request::Report { .. } => {
            let stats = session.stats();
            let power = session
                .selection()
                .map_or(Value::Null, |sel| Value::Float(sel.power_mw));
            Value::object(vec![
                ("ok", Value::Bool(true)),
                ("op", "report".into()),
                ("session", name.into()),
                ("routed", Value::Bool(session.is_routed())),
                ("power_mw", power),
                ("routes", Value::Int(stats.routes as i64)),
                ("cold_routes", Value::Int(stats.cold_routes as i64)),
                ("warm_routes", Value::Int(stats.warm_routes as i64)),
                ("cached_routes", Value::Int(stats.cached_routes as i64)),
                ("partial_routes", Value::Int(stats.partial_routes as i64)),
                ("stages_reused", Value::Int(stats.stages_reused as i64)),
                ("stages_rerun", Value::Int(stats.stages_rerun as i64)),
                ("groups_reused", Value::Int(stats.groups_reused as i64)),
                (
                    "groups_reclustered",
                    Value::Int(stats.groups_reclustered as i64),
                ),
                ("nets_reused", Value::Int(stats.nets_reused as i64)),
                ("nets_recoded", Value::Int(stats.nets_recoded as i64)),
                (
                    "crossing_delta_rebuilds",
                    Value::Int(stats.crossing_delta_rebuilds as i64),
                ),
                (
                    "crossing_full_builds",
                    Value::Int(stats.crossing_full_builds as i64),
                ),
                ("probes", Value::Int(stats.probes as i64)),
                ("config_changes", Value::Int(stats.config_changes as i64)),
                ("lr_iterations", Value::Int(stats.lr.iterations as i64)),
                ("lr_priced_nets", Value::Int(stats.lr.priced_nets as i64)),
                ("wdm_cold_solves", Value::Int(stats.wdm.cold_solves as i64)),
                ("wdm_warm_trials", Value::Int(stats.wdm.warm_trials as i64)),
                (
                    "wdm_undo_entries",
                    Value::Int(stats.wdm.mcmf.undo_entries as i64),
                ),
                ("wdm_rollbacks", Value::Int(stats.wdm.mcmf.rollbacks as i64)),
                (
                    "wdm_networks_cloned",
                    Value::Int(stats.wdm.mcmf.networks_cloned as i64),
                ),
                (
                    "fingerprint",
                    format!("{:016x}", session.fingerprint()).into(),
                ),
                (
                    "config_fingerprint",
                    format!("{:016x}", session.config().fingerprint()).into(),
                ),
            ])
            .compact()
        }
        // Open/Close/Shutdown are exclusive and never reach this path.
        other => error_response(
            Some(other.op()),
            other.session(),
            "request kind cannot run batched",
        ),
    }
}

fn unknown_session(op: &str, session: &str) -> String {
    error_response(Some(op), Some(session), &format!("no session {session:?}"))
}

fn error_response(op: Option<&str>, session: Option<&str>, message: &str) -> String {
    let mut fields = vec![("ok", Value::Bool(false))];
    fields.push(("op", op.map_or(Value::Null, Value::from)));
    if let Some(s) = session {
        fields.push(("session", s.into()));
    }
    fields.push(("error", message.into()));
    Value::object(fields).compact()
}

#[cfg(test)]
mod tests {
    use super::*;

    const DESIGN: &str = "design d\ndie 0 0 600 600\ngroup a\nbit 20 20 : 500 500\n\
                          bit 30 20 : 500 480\nend\ngroup b\nbit 40 400 : 560 40\nend\n";

    fn open_line(session: &str) -> String {
        Value::object(vec![
            ("op", "open_design".into()),
            ("session", session.into()),
            ("design", DESIGN.into()),
        ])
        .compact()
    }

    #[test]
    fn open_route_report_close_round_trip() {
        let mut server = Server::new(Executor::sequential(), 1);
        let open = server.handle_line(&open_line("s"));
        assert!(open.contains("\"ok\":true"), "{open}");
        let route = server.handle_line("{\"op\":\"route\",\"session\":\"s\"}");
        assert!(route.contains("\"power_mw\""), "{route}");
        let report = server.handle_line("{\"op\":\"report\",\"session\":\"s\"}");
        assert!(report.contains("\"wdm_networks_cloned\":0"), "{report}");
        let close = server.handle_line("{\"op\":\"close\",\"session\":\"s\"}");
        assert!(close.contains("\"routes\":1"), "{close}");
        assert_eq!(server.session_count(), 0);
    }

    #[test]
    fn errors_are_responses_not_failures() {
        let mut server = Server::new(Executor::sequential(), 1);
        for (line, needle) in [
            ("{not json", "malformed request"),
            ("{\"op\": \"warp\"}", "unknown op"),
            ("{\"op\": \"route\"}", "needs a"),
            ("{\"op\": \"route\", \"session\": \"ghost\"}", "no session"),
        ] {
            let resp = server.handle_line(line);
            assert!(resp.contains("\"ok\":false"), "{resp}");
            assert!(resp.contains(needle), "{resp}");
        }
        // The daemon still works afterwards.
        assert!(server.handle_line(&open_line("s")).contains("\"ok\":true"));
    }

    #[test]
    fn eco_responses_match_between_batched_and_single() {
        let trace = [
            open_line("a"),
            open_line("b"),
            "{\"op\":\"route\",\"session\":\"a\"}".to_owned(),
            "{\"op\":\"route\",\"session\":\"b\"}".to_owned(),
            "{\"op\":\"eco_move_pins\",\"session\":\"a\",\"group\":0,\"dx\":5,\"dy\":-5}"
                .to_owned(),
            "{\"op\":\"eco_move_pins\",\"session\":\"b\",\"group\":1,\"dx\":-5,\"dy\":5}"
                .to_owned(),
            "{\"op\":\"report\",\"session\":\"a\"}".to_owned(),
            "{\"op\":\"report\",\"session\":\"b\"}".to_owned(),
        ]
        .join("\n");
        let mut wide = Server::new(Executor::new(2), 4);
        let batched = wide.run_trace(&trace);
        let mut narrow = Server::new(Executor::sequential(), 1);
        let sequential = narrow.run_trace(&trace);
        assert_eq!(batched, sequential);
    }

    #[test]
    fn serve_loop_reads_and_records() {
        let trace = [
            open_line("s"),
            "{\"op\":\"route\",\"session\":\"s\"}".to_owned(),
            "{\"op\":\"shutdown\"}".to_owned(),
        ]
        .join("\n")
            + "\n";
        let mut server = Server::new(Executor::sequential(), 1);
        let mut reader = BufReader::new(trace.as_bytes());
        let mut out = Vec::new();
        let mut recorded = Vec::new();
        server
            .serve(&mut reader, &mut out, Some(&mut recorded))
            .expect("in-memory serve cannot fail");
        assert!(server.is_shut_down());
        let out = String::from_utf8(out).expect("responses are UTF-8");
        assert_eq!(out.lines().count(), 3);
        assert_eq!(String::from_utf8(recorded).expect("trace is UTF-8"), trace);
        // The recorded trace replays to the same responses.
        let mut replayer = Server::new(Executor::sequential(), 1);
        assert_eq!(replayer.run_trace(&trace), out);
    }
}
