//! The `operon_serve` daemon binary.
//!
//! ```text
//! operon_serve [--threads N|auto] [--batch N] [--record FILE]
//!              [--replay FILE] [--run-report FILE]
//! ```
//!
//! Serves the JSONL routing protocol (see `operon_serve`'s library
//! docs) on stdin/stdout. `--batch` caps how many distinct-session
//! requests are routed concurrently per admission batch (default: one
//! per worker). `--record` appends every request line to a trace file;
//! `--replay` runs a recorded trace instead of stdin and prints its
//! responses — byte-identical at any `--threads` value. `--run-report`
//! writes the executor's per-stage instrumentation (the only place
//! timing appears).

use operon_exec::Executor;
use operon_serve::Server;
use std::io::BufReader;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: operon_serve [--threads N|auto] [--batch N] [--record FILE] [--replay FILE] \
         [--run-report FILE]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut threads = 0usize; // 0 = one worker per hardware thread
    let mut batch = 0usize; // 0 = one request slot per worker
    let mut record_path: Option<String> = None;
    let mut replay_path: Option<String> = None;
    let mut report_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threads" => {
                let parsed = args.get(i + 1).and_then(|s| {
                    if s == "auto" {
                        Some(0)
                    } else {
                        s.parse::<usize>().ok()
                    }
                });
                let Some(n) = parsed else {
                    return usage();
                };
                threads = n;
                i += 2;
            }
            "--batch" => {
                let Some(n) = args.get(i + 1).and_then(|s| s.parse::<usize>().ok()) else {
                    return usage();
                };
                batch = n;
                i += 2;
            }
            "--record" => {
                let Some(path) = args.get(i + 1) else {
                    return usage();
                };
                record_path = Some(path.clone());
                i += 2;
            }
            "--replay" => {
                let Some(path) = args.get(i + 1) else {
                    return usage();
                };
                replay_path = Some(path.clone());
                i += 2;
            }
            "--run-report" => {
                let Some(path) = args.get(i + 1) else {
                    return usage();
                };
                report_path = Some(path.clone());
                i += 2;
            }
            other => {
                eprintln!("unknown argument '{other}'");
                return usage();
            }
        }
    }

    let exec = Executor::new(threads);
    let mut server = Server::new(exec.clone(), batch);

    if let Some(path) = &replay_path {
        let trace = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        print!("{}", server.run_trace(&trace));
    } else {
        let mut record_file = match record_path
            .as_ref()
            .map(|path| {
                std::fs::File::create(path).map_err(|e| format!("cannot create {path}: {e}"))
            })
            .transpose()
        {
            Ok(file) => file,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        let stdin = std::io::stdin();
        let mut reader = BufReader::new(stdin.lock());
        let stdout = std::io::stdout();
        let mut writer = stdout.lock();
        let record = record_file.as_mut().map(|f| f as &mut dyn std::io::Write);
        if let Err(e) = server.serve(&mut reader, &mut writer, record) {
            eprintln!("serve loop failed: {e}");
            return ExitCode::FAILURE;
        }
    }

    if let Some(path) = report_path {
        let json = exec.report().to_json();
        if let Err(e) = std::fs::write(&path, json + "\n") {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("run report written to {path}");
    }
    ExitCode::SUCCESS
}
