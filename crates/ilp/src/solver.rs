//! Wave-synchronous best-first branch and bound over the simplex LP
//! relaxation.
//!
//! The search alternates two steps per round: *expand* — pop the
//! `wave_size` best open nodes from the frontier and solve their LP
//! relaxations concurrently on an [`operon_exec::Executor`] — and
//! *merge* — walk the results in wave order, updating the incumbent and
//! pushing children sequentially. The frontier orders nodes by
//! `(bound, id)` with ids assigned in merge order, so the explored tree
//! (and therefore the returned solution) is bit-identical for any thread
//! count at a fixed `wave_size`, and `wave_size = 1` performs exactly the
//! classic pop-one/solve-one best-first search.
//!
//! Parent LP vertices are replayed into children as *rest hints*
//! ([`crate::bounded::Rest`]): the child tableau starts with the parent's
//! at-upper-bound columns pre-flipped, which cuts simplex iterations
//! without affecting the relaxation's optimum value.

use crate::bounded::{solve_lp_bounded_with, Rest};
use crate::simplex::{LpOutcome, LpRow};
use crate::{Cmp, Model, VarId};
use operon_exec::Executor;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::{Duration, Instant};

const INT_TOL: f64 = 1e-6;
const FEAS_TOL: f64 = 1e-6;

/// Knobs for [`Model::solve`].
#[derive(Clone, Debug)]
pub struct SolveOptions {
    /// Wall-clock budget; on expiry the best incumbent is returned with
    /// [`SolveStatus::TimeLimit`]. Checked at wave boundaries.
    pub time_limit: Duration,
    /// Cap on explored branch-and-bound nodes.
    pub max_nodes: usize,
    /// An optional warm-start assignment (one 0.0/1.0 value per
    /// variable). If it satisfies every constraint it seeds the incumbent,
    /// so even limit-terminated solves return at least this solution.
    pub initial_solution: Option<Vec<f64>>,
    /// Nodes expanded concurrently per search round. The explored tree
    /// depends on this value (larger waves speculate past incumbent
    /// updates) but never on the executor's thread count.
    pub wave_size: usize,
    /// Executor the wave expansion runs on. Defaults to sequential; the
    /// flow passes its shared executor so ILP waves appear in the run
    /// report.
    pub executor: Executor,
    /// Replay parent LP vertices into children as rest hints (fewer
    /// simplex iterations per node). Degenerate relaxations may surface a
    /// different — equally optimal — vertex than a cold solve, which can
    /// reorder branching; disable for vertex-exact reproduction of the
    /// cold search.
    pub warm_start_basis: bool,
}

impl Default for SolveOptions {
    fn default() -> Self {
        Self {
            time_limit: Duration::from_secs(60),
            max_nodes: 1_000_000,
            initial_solution: None,
            wave_size: 1,
            executor: Executor::sequential(),
            warm_start_basis: true,
        }
    }
}

impl SolveOptions {
    /// Options with the given time limit in seconds.
    pub fn with_time_limit_secs(secs: u64) -> Self {
        Self {
            time_limit: Duration::from_secs(secs),
            ..Self::default()
        }
    }
}

/// Termination status of a solve.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SolveStatus {
    /// The returned solution is proven optimal.
    Optimal,
    /// The time limit expired; the returned solution is the best incumbent
    /// (feasible but possibly suboptimal).
    TimeLimit,
    /// The node limit was hit; same caveat as [`SolveStatus::TimeLimit`].
    NodeLimit,
    /// No feasible assignment exists.
    Infeasible,
}

/// Search counters accumulated over one solve.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Branch-and-bound nodes popped from the frontier.
    pub nodes_explored: usize,
    /// LP relaxations solved (root pre-solve included).
    pub lp_solves: usize,
    /// Search rounds (waves) executed.
    pub waves: usize,
    /// Times the incumbent was created or improved (warm-start seeding
    /// and root rounding included).
    pub incumbent_updates: usize,
    /// Simplex iterations (pivots + bound flips) across all LP solves —
    /// the quantity warm-start basis reuse exists to shrink.
    pub simplex_iterations: u64,
}

impl SolveStats {
    /// Adds `other` into `self` (used to total per-component solves).
    pub fn accumulate(&mut self, other: &SolveStats) {
        self.nodes_explored += other.nodes_explored;
        self.lp_solves += other.lp_solves;
        self.waves += other.waves;
        self.incumbent_updates += other.incumbent_updates;
        self.simplex_iterations += other.simplex_iterations;
    }
}

/// Result of a solve: status, objective, and variable values.
#[derive(Clone, Debug)]
pub struct Solution {
    status: SolveStatus,
    feasible: bool,
    objective: f64,
    values: Vec<f64>,
    stats: SolveStats,
    elapsed: Duration,
}

impl Solution {
    /// The termination status.
    pub fn status(&self) -> SolveStatus {
        self.status
    }

    /// Whether the solve proved optimality.
    pub fn is_optimal(&self) -> bool {
        self.status == SolveStatus::Optimal
    }

    /// Whether a feasible assignment is available.
    ///
    /// `false` both for proven-infeasible models and for limit-terminated
    /// searches that never found an incumbent.
    pub fn is_feasible(&self) -> bool {
        self.feasible
    }

    /// The objective of the returned assignment.
    ///
    /// # Panics
    ///
    /// Panics if no feasible assignment is available.
    pub fn objective(&self) -> f64 {
        assert!(self.is_feasible(), "no feasible solution available");
        self.objective
    }

    /// Value of a variable in the returned assignment (0.0 or 1.0).
    ///
    /// # Panics
    ///
    /// Panics if no feasible assignment is available.
    pub fn value(&self, var: VarId) -> f64 {
        assert!(self.is_feasible(), "no feasible solution available");
        self.values[var.index()]
    }

    /// Whether the variable is set in the returned assignment.
    pub fn is_one(&self, var: VarId) -> bool {
        self.value(var) > 0.5
    }

    /// Number of branch-and-bound nodes explored.
    pub fn nodes_explored(&self) -> usize {
        self.stats.nodes_explored
    }

    /// Search counters for this solve.
    pub fn stats(&self) -> SolveStats {
        self.stats
    }

    /// Wall-clock time spent solving.
    pub fn elapsed(&self) -> Duration {
        self.elapsed
    }
}

/// A branch-and-bound node, ordered by `(bound, id)` as a min-heap: the
/// id tie-break (ids are assigned in deterministic merge order) is what
/// makes the frontier — and the whole search — independent of executor
/// thread count.
struct Node {
    id: u64,
    bound: f64,
    fixed: Vec<Option<bool>>,
    /// Parent LP rests, full model length (see `SolveOptions::warm_start_basis`).
    hint: Option<Arc<[Rest]>>,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound && self.id == other.id
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for best-first (lowest bound,
        // then lowest id).
        other
            .bound
            .total_cmp(&self.bound)
            .then_with(|| other.id.cmp(&self.id))
    }
}

impl Model {
    /// Solves the model to optimality or until a limit expires.
    ///
    /// Wave-synchronous best-first branch and bound: each round expands
    /// the `wave_size` best open nodes concurrently (LP relaxation with
    /// fixed variables substituted out), then merges results in wave
    /// order — integral relaxations update the incumbent, fractional ones
    /// branch on the most fractional variable. A rounding heuristic seeds
    /// the incumbent at the root. The search is bit-identical for any
    /// executor thread count at a fixed `wave_size`.
    ///
    /// # Examples
    ///
    /// ```
    /// use operon_ilp::{Model, SolveOptions};
    ///
    /// let mut m = Model::new();
    /// let x = m.add_binary("x");
    /// m.add_ge([(1.0, x)], 1.0);
    /// m.set_objective([(3.0, x)]);
    /// let sol = m.solve(&SolveOptions::default());
    /// assert!(sol.is_optimal());
    /// assert!(sol.is_one(x));
    /// ```
    pub fn solve(&self, options: &SolveOptions) -> Solution {
        // operon-lint: allow(D002, reason = "branch-and-bound enforces the caller-supplied wall-clock time limit; ilp stays dependency-free")
        let start = Instant::now();
        let n = self.var_count();
        let wave_size = options.wave_size.max(1);
        let mut stats = SolveStats::default();
        let mut incumbent: Option<(f64, Vec<f64>)> = None;
        let mut status = SolveStatus::Optimal;

        // Seed from the caller's warm start when it checks out.
        if let Some(start_values) = &options.initial_solution {
            if start_values.len() == n
                && start_values.iter().all(|v| *v == 0.0 || *v == 1.0)
                && self.all_satisfied(start_values)
            {
                incumbent = Some((self.objective.eval(start_values), start_values.clone()));
                stats.incumbent_updates += 1;
            }
        }

        let mut frontier: BinaryHeap<Node> = BinaryHeap::new();
        let mut next_id: u64 = 1;
        // Root node.
        let root_fixed = vec![None; n];
        let (root, root_iters) = self.lp_relaxation(&root_fixed, None);
        stats.lp_solves += 1;
        stats.simplex_iterations += root_iters;
        match root {
            LpNodeResult::Infeasible => {
                stats.nodes_explored = 1;
                return Solution {
                    status: SolveStatus::Infeasible,
                    feasible: false,
                    objective: f64::INFINITY,
                    values: Vec::new(),
                    stats,
                    elapsed: start.elapsed(),
                };
            }
            LpNodeResult::Solved {
                objective,
                x,
                rests,
                ..
            } => {
                // Seed the incumbent by rounding the root relaxation,
                // unless the warm start is already better.
                if let Some(rounded) = self.round_to_feasible(&x) {
                    let obj = self.objective.eval(&rounded);
                    if incumbent.as_ref().is_none_or(|(b, _)| obj < *b) {
                        incumbent = Some((obj, rounded));
                        stats.incumbent_updates += 1;
                    }
                }
                frontier.push(Node {
                    id: 0,
                    bound: objective,
                    fixed: root_fixed,
                    hint: options.warm_start_basis.then_some(rests),
                });
            }
        }

        'search: while !frontier.is_empty() {
            if start.elapsed() > options.time_limit {
                status = SolveStatus::TimeLimit;
                break;
            }

            // Fill the wave: pop best-first, skipping bound-pruned nodes.
            let mut wave: Vec<Node> = Vec::with_capacity(wave_size);
            let mut hit_node_limit = false;
            while wave.len() < wave_size {
                let Some(node) = frontier.pop() else { break };
                if stats.nodes_explored >= options.max_nodes {
                    hit_node_limit = true;
                    break;
                }
                stats.nodes_explored += 1;
                if let Some((best, _)) = &incumbent {
                    if node.bound >= *best - INT_TOL {
                        continue; // pruned by bound
                    }
                }
                wave.push(node);
            }

            if !wave.is_empty() {
                stats.waves += 1;
                // Expand concurrently; order-preserving, so the merge
                // below sees results in the deterministic wave order.
                let results = options.executor.wave_map(&wave, |node| {
                    self.lp_relaxation(&node.fixed, node.hint.as_deref())
                });

                // Merge sequentially in wave order.
                for (node, (result, iters)) in wave.iter().zip(results) {
                    stats.lp_solves += 1;
                    stats.simplex_iterations += iters;
                    let LpNodeResult::Solved {
                        objective,
                        x,
                        rests,
                    } = result
                    else {
                        continue; // infeasible subtree
                    };
                    if let Some((best, _)) = &incumbent {
                        if objective >= *best - INT_TOL {
                            continue;
                        }
                    }
                    // Find the most fractional variable.
                    let frac_var = x
                        .iter()
                        .enumerate()
                        .filter(|&(i, _)| node.fixed[i].is_none())
                        .map(|(i, &v)| (i, (v - v.round()).abs()))
                        .filter(|&(_, f)| f > INT_TOL)
                        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(Ordering::Equal));

                    match frac_var {
                        None => {
                            // Integral: candidate incumbent.
                            let rounded: Vec<f64> = x.iter().map(|v| v.round()).collect();
                            if self.all_satisfied(&rounded) {
                                let obj = self.objective.eval(&rounded);
                                if incumbent.as_ref().is_none_or(|(b, _)| obj < *b) {
                                    incumbent = Some((obj, rounded));
                                    stats.incumbent_updates += 1;
                                }
                            }
                        }
                        Some((branch_var, _)) => {
                            // Both children inherit the node's LP objective
                            // as their bound (valid: fixing a variable only
                            // tightens the relaxation) and its vertex as a
                            // warm-start hint.
                            let hint = options.warm_start_basis.then_some(&rests);
                            for value in [x[branch_var] >= 0.5, x[branch_var] < 0.5] {
                                let mut fixed = node.fixed.clone();
                                fixed[branch_var] = Some(value);
                                frontier.push(Node {
                                    id: next_id,
                                    bound: objective,
                                    fixed,
                                    hint: hint.cloned(),
                                });
                                next_id += 1;
                            }
                        }
                    }
                }
            }

            if hit_node_limit {
                status = SolveStatus::NodeLimit;
                break 'search;
            }
        }

        self.finish(status, incumbent, stats, start)
    }

    /// The exact pop-one/solve-one sequential search this crate shipped
    /// before wave-synchronous expansion (cold LP solves, no executor) —
    /// kept as the oracle for the `wave_size = 1` equivalence tests and
    /// the single-thread regression bench. Ignores `wave_size`,
    /// `executor`, and `warm_start_basis`.
    pub fn solve_reference(&self, options: &SolveOptions) -> Solution {
        // operon-lint: allow(D002, reason = "reference search enforces the caller-supplied wall-clock time limit, mirroring Model::solve")
        let start = Instant::now();
        let n = self.var_count();
        let mut stats = SolveStats::default();
        let mut incumbent: Option<(f64, Vec<f64>)> = None;
        let mut status = SolveStatus::Optimal;

        if let Some(start_values) = &options.initial_solution {
            if start_values.len() == n
                && start_values.iter().all(|v| *v == 0.0 || *v == 1.0)
                && self.all_satisfied(start_values)
            {
                incumbent = Some((self.objective.eval(start_values), start_values.clone()));
                stats.incumbent_updates += 1;
            }
        }

        let mut heap: BinaryHeap<Node> = BinaryHeap::new();
        let mut next_id: u64 = 1;
        let root_fixed = vec![None; n];
        let (root, root_iters) = self.lp_relaxation(&root_fixed, None);
        stats.lp_solves += 1;
        stats.simplex_iterations += root_iters;
        match root {
            LpNodeResult::Infeasible => {
                stats.nodes_explored = 1;
                return Solution {
                    status: SolveStatus::Infeasible,
                    feasible: false,
                    objective: f64::INFINITY,
                    values: Vec::new(),
                    stats,
                    elapsed: start.elapsed(),
                };
            }
            LpNodeResult::Solved { objective, x, .. } => {
                if let Some(rounded) = self.round_to_feasible(&x) {
                    let obj = self.objective.eval(&rounded);
                    if incumbent.as_ref().is_none_or(|(b, _)| obj < *b) {
                        incumbent = Some((obj, rounded));
                        stats.incumbent_updates += 1;
                    }
                }
                heap.push(Node {
                    id: 0,
                    bound: objective,
                    fixed: root_fixed,
                    hint: None,
                });
            }
        }

        while let Some(node) = heap.pop() {
            if start.elapsed() > options.time_limit {
                status = SolveStatus::TimeLimit;
                break;
            }
            if stats.nodes_explored >= options.max_nodes {
                status = SolveStatus::NodeLimit;
                break;
            }
            stats.nodes_explored += 1;

            if let Some((best, _)) = &incumbent {
                if node.bound >= *best - INT_TOL {
                    continue;
                }
            }
            let (result, iters) = self.lp_relaxation(&node.fixed, None);
            stats.lp_solves += 1;
            stats.simplex_iterations += iters;
            let LpNodeResult::Solved { objective, x, .. } = result else {
                continue;
            };
            if let Some((best, _)) = &incumbent {
                if objective >= *best - INT_TOL {
                    continue;
                }
            }
            let frac_var = x
                .iter()
                .enumerate()
                .filter(|&(i, _)| node.fixed[i].is_none())
                .map(|(i, &v)| (i, (v - v.round()).abs()))
                .filter(|&(_, f)| f > INT_TOL)
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(Ordering::Equal));

            match frac_var {
                None => {
                    let rounded: Vec<f64> = x.iter().map(|v| v.round()).collect();
                    if self.all_satisfied(&rounded) {
                        let obj = self.objective.eval(&rounded);
                        if incumbent.as_ref().is_none_or(|(b, _)| obj < *b) {
                            incumbent = Some((obj, rounded));
                            stats.incumbent_updates += 1;
                        }
                    }
                }
                Some((branch_var, _)) => {
                    for value in [x[branch_var] >= 0.5, x[branch_var] < 0.5] {
                        let mut fixed = node.fixed.clone();
                        fixed[branch_var] = Some(value);
                        heap.push(Node {
                            id: next_id,
                            bound: objective,
                            fixed,
                            hint: None,
                        });
                        next_id += 1;
                    }
                }
            }
        }

        self.finish(status, incumbent, stats, start)
    }

    /// Packages the search outcome into a [`Solution`].
    fn finish(
        &self,
        status: SolveStatus,
        incumbent: Option<(f64, Vec<f64>)>,
        stats: SolveStats,
        start: Instant,
    ) -> Solution {
        match incumbent {
            Some((objective, values)) => Solution {
                status,
                feasible: true,
                objective,
                values,
                stats,
                elapsed: start.elapsed(),
            },
            None => Solution {
                // Exhausted the tree without an incumbent: infeasible
                // (when the search completed) or nothing found in time.
                status: if status == SolveStatus::Optimal {
                    SolveStatus::Infeasible
                } else {
                    status
                },
                feasible: false,
                objective: f64::INFINITY,
                values: Vec::new(),
                stats,
                elapsed: start.elapsed(),
            },
        }
    }

    /// Whether `values` satisfies every constraint.
    fn all_satisfied(&self, values: &[f64]) -> bool {
        self.constraints
            .iter()
            .all(|c| c.satisfied(values, FEAS_TOL))
    }

    /// Rounds an LP point to binary and returns it if feasible.
    fn round_to_feasible(&self, x: &[f64]) -> Option<Vec<f64>> {
        let rounded: Vec<f64> = x.iter().map(|v| v.round().clamp(0.0, 1.0)).collect();
        if self.all_satisfied(&rounded) {
            Some(rounded)
        } else {
            None
        }
    }

    /// Solves the LP relaxation with `fixed` variables substituted out,
    /// optionally warm-started from a full-length rest `hint`. Returns
    /// the node result plus the simplex iterations spent.
    fn lp_relaxation(&self, fixed: &[Option<bool>], hint: Option<&[Rest]>) -> (LpNodeResult, u64) {
        // Map free variables to dense LP columns.
        let mut col_of = vec![usize::MAX; fixed.len()];
        let mut free_vars = Vec::new();
        for (i, f) in fixed.iter().enumerate() {
            if f.is_none() {
                col_of[i] = free_vars.len();
                free_vars.push(i);
            }
        }
        let n_free = free_vars.len();

        let mut rows = Vec::with_capacity(self.constraints.len() + n_free);
        for c in &self.constraints {
            let mut coeffs = vec![0.0; n_free];
            let mut rhs = c.rhs - c.expr.constant();
            let mut any_free = false;
            for &(coef, v) in c.expr.terms() {
                match fixed[v.index()] {
                    Some(val) => rhs -= coef * (val as u8 as f64),
                    None => {
                        coeffs[col_of[v.index()]] += coef;
                        any_free = true;
                    }
                }
            }
            if !any_free {
                // Fully fixed constraint: check it directly.
                let ok = match c.cmp {
                    Cmp::Le => 0.0 <= rhs + FEAS_TOL,
                    Cmp::Ge => 0.0 >= rhs - FEAS_TOL,
                    Cmp::Eq => rhs.abs() <= FEAS_TOL,
                };
                if !ok {
                    return (LpNodeResult::Infeasible, 0);
                }
                continue;
            }
            rows.push(LpRow::new(coeffs, c.cmp, rhs));
        }
        let mut cost = vec![0.0; n_free];
        let mut fixed_cost = self.objective.constant();
        for &(coef, v) in self.objective.terms() {
            match fixed[v.index()] {
                Some(val) => fixed_cost += coef * (val as u8 as f64),
                None => cost[col_of[v.index()]] += coef,
            }
        }

        // Project the full-length hint onto the free columns.
        let col_hint: Option<Vec<Rest>> = hint.map(|h| free_vars.iter().map(|&i| h[i]).collect());
        let solve = solve_lp_bounded_with(&cost, &rows, &vec![1.0; n_free], col_hint.as_deref());
        let iters = solve.iterations;
        match solve.outcome {
            LpOutcome::Optimal { objective, x } => {
                let mut full = vec![0.0; fixed.len()];
                let mut full_rests = vec![Rest::Lower; fixed.len()];
                for (i, f) in fixed.iter().enumerate() {
                    match f {
                        Some(val) => {
                            full[i] = *val as u8 as f64;
                            full_rests[i] = if *val { Rest::Upper } else { Rest::Lower };
                        }
                        None => {
                            full[i] = x[col_of[i]];
                            full_rests[i] = solve.rests[col_of[i]];
                        }
                    }
                }
                (
                    LpNodeResult::Solved {
                        objective: objective + fixed_cost,
                        x: full,
                        rests: full_rests.into(),
                    },
                    iters,
                )
            }
            LpOutcome::Infeasible => (LpNodeResult::Infeasible, iters),
            LpOutcome::Unbounded => {
                // operon-lint: allow(R001, reason = "every binary relaxation bounds all variables in [0, 1], so the LP cannot be unbounded")
                unreachable!("binary relaxations carry explicit upper bounds")
            }
        }
    }
}

enum LpNodeResult {
    Solved {
        objective: f64,
        x: Vec<f64>,
        /// Per-model-variable rests at the relaxation's optimum (fixed
        /// variables report the bound they are fixed to).
        rests: Arc<[Rest]>,
    },
    Infeasible,
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn default_opts() -> SolveOptions {
        SolveOptions::default()
    }

    #[test]
    fn empty_model_is_trivially_optimal() {
        let m = Model::new();
        let sol = m.solve(&default_opts());
        assert!(sol.is_optimal());
        assert_eq!(sol.objective(), 0.0);
    }

    #[test]
    fn unconstrained_minimization_sets_negative_costs() {
        let mut m = Model::new();
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        m.set_objective([(-2.0, a), (3.0, b)]);
        let sol = m.solve(&default_opts());
        assert!(sol.is_optimal());
        assert!(sol.is_one(a) && !sol.is_one(b));
        assert_eq!(sol.objective(), -2.0);
    }

    #[test]
    fn knapsack_optimum() {
        // max 10a + 13b + 7c s.t. 3a + 4b + 2c <= 6.
        // Best: b + c = 20 (weight 6). a+c = 17, a+b infeasible (7 > 6).
        let mut m = Model::new();
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        let c = m.add_binary("c");
        m.add_le([(3.0, a), (4.0, b), (2.0, c)], 6.0);
        m.set_objective([(-10.0, a), (-13.0, b), (-7.0, c)]);
        let sol = m.solve(&default_opts());
        assert!(sol.is_optimal());
        assert_eq!(sol.objective().round(), -20.0);
        assert!(sol.is_one(b) && sol.is_one(c) && !sol.is_one(a));
    }

    #[test]
    fn infeasible_model_detected() {
        let mut m = Model::new();
        let a = m.add_binary("a");
        m.add_ge([(1.0, a)], 2.0); // impossible for a binary
        let sol = m.solve(&default_opts());
        assert_eq!(sol.status(), SolveStatus::Infeasible);
        assert!(!sol.is_feasible());
    }

    #[test]
    #[should_panic(expected = "no feasible solution")]
    fn objective_of_infeasible_panics() {
        let mut m = Model::new();
        let a = m.add_binary("a");
        m.add_ge([(1.0, a)], 2.0);
        let sol = m.solve(&default_opts());
        let _ = sol.objective();
    }

    #[test]
    fn set_partition_picks_cheapest() {
        // Exactly one of three candidates per item, two items, a coupling
        // constraint making the naive greedy infeasible.
        let mut m = Model::new();
        let a: Vec<VarId> = (0..3).map(|i| m.add_binary(format!("a{i}"))).collect();
        let b: Vec<VarId> = (0..3).map(|i| m.add_binary(format!("b{i}"))).collect();
        m.add_eq(a.iter().map(|&v| (1.0, v)).collect::<Vec<_>>(), 1.0);
        m.add_eq(b.iter().map(|&v| (1.0, v)).collect::<Vec<_>>(), 1.0);
        // Cheapest combo (a0, b0) is banned: a0 + b0 <= 1.
        m.add_le([(1.0, a[0]), (1.0, b[0])], 1.0);
        m.set_objective([
            (1.0, a[0]),
            (5.0, a[1]),
            (9.0, a[2]),
            (2.0, b[0]),
            (4.0, b[1]),
            (9.0, b[2]),
        ]);
        let sol = m.solve(&default_opts());
        assert!(sol.is_optimal());
        // Options: a0+b1 = 5, a1+b0 = 7 -> pick a0, b1.
        assert_eq!(sol.objective().round(), 5.0);
        assert!(sol.is_one(a[0]) && sol.is_one(b[1]));
    }

    #[test]
    fn equality_with_constant_term() {
        let mut m = Model::new();
        let a = m.add_binary("a");
        let mut e = crate::LinExpr::new();
        e.push(1.0, a).push_constant(1.0);
        m.add_eq(e, 2.0); // a + 1 == 2 -> a = 1
        m.set_objective([(1.0, a)]);
        let sol = m.solve(&default_opts());
        assert!(sol.is_optimal());
        assert!(sol.is_one(a));
    }

    #[test]
    fn vertex_cover_on_a_triangle() {
        // Min vertex cover of K3 is 2 — LP relaxation is ½ everywhere, so
        // this genuinely exercises branching.
        let mut m = Model::new();
        let v: Vec<VarId> = (0..3).map(|i| m.add_binary(format!("v{i}"))).collect();
        for (i, j) in [(0, 1), (1, 2), (0, 2)] {
            m.add_ge([(1.0, v[i]), (1.0, v[j])], 1.0);
        }
        m.set_objective(v.iter().map(|&x| (1.0, x)).collect::<Vec<_>>());
        let sol = m.solve(&default_opts());
        assert!(sol.is_optimal());
        assert_eq!(sol.objective().round(), 2.0);
        assert!(sol.nodes_explored() >= 1);
        let stats = sol.stats();
        assert!(stats.lp_solves >= stats.nodes_explored);
        assert!(stats.waves >= 1);
        assert!(stats.incumbent_updates >= 1);
        assert!(stats.simplex_iterations >= 1);
    }

    #[test]
    fn time_limit_returns_incumbent() {
        // A model solvable instantly still respects the API with a zero
        // time limit: status may be TimeLimit but must stay feasible if an
        // incumbent was seeded.
        let mut m = Model::new();
        let a = m.add_binary("a");
        m.add_ge([(1.0, a)], 1.0);
        m.set_objective([(1.0, a)]);
        let opts = SolveOptions {
            time_limit: Duration::from_secs(0),
            ..SolveOptions::default()
        };
        let sol = m.solve(&opts);
        // Root rounding finds a=1 which is feasible.
        assert!(sol.is_feasible());
    }

    #[test]
    fn warm_start_seeds_incumbent() {
        // Vertex cover of a triangle: the root LP is fractional (1/2
        // everywhere) and rounds to the all-ones cover (cost 3). A warm
        // start covering with two vertices (cost 2) must win when the
        // node budget prevents any branching.
        let mut m = Model::new();
        let v: Vec<VarId> = (0..3).map(|i| m.add_binary(format!("v{i}"))).collect();
        for (i, j) in [(0, 1), (1, 2), (0, 2)] {
            m.add_ge([(1.0, v[i]), (1.0, v[j])], 1.0);
        }
        m.set_objective(v.iter().map(|&x| (1.0, x)).collect::<Vec<_>>());
        let opts = SolveOptions {
            max_nodes: 0,
            initial_solution: Some(vec![1.0, 1.0, 0.0]),
            ..SolveOptions::default()
        };
        let sol = m.solve(&opts);
        assert!(sol.is_feasible());
        assert_eq!(sol.status(), SolveStatus::NodeLimit);
        assert_eq!(sol.objective(), 2.0, "warm start must beat the rounding");
    }

    #[test]
    fn infeasible_warm_start_is_ignored() {
        let mut m = Model::new();
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        m.add_eq([(1.0, a), (1.0, b)], 1.0);
        m.set_objective([(1.0, a), (5.0, b)]);
        let opts = SolveOptions {
            initial_solution: Some(vec![1.0, 1.0]), // violates the equality
            ..SolveOptions::default()
        };
        let sol = m.solve(&opts);
        assert!(sol.is_optimal());
        assert_eq!(sol.objective(), 1.0, "solver must ignore the bad start");
    }

    #[test]
    fn warm_start_with_wrong_length_is_ignored() {
        let mut m = Model::new();
        let a = m.add_binary("a");
        m.add_ge([(1.0, a)], 1.0);
        m.set_objective([(1.0, a)]);
        let opts = SolveOptions {
            initial_solution: Some(vec![1.0, 0.0, 0.0]),
            ..SolveOptions::default()
        };
        let sol = m.solve(&opts);
        assert!(sol.is_optimal());
        assert!(sol.is_one(a));
    }

    #[test]
    fn solver_improves_on_suboptimal_warm_start() {
        let mut m = Model::new();
        let vars: Vec<VarId> = (0..4).map(|i| m.add_binary(format!("x{i}"))).collect();
        m.add_eq(vars.iter().map(|&v| (1.0, v)).collect::<Vec<_>>(), 1.0);
        m.set_objective([
            (4.0, vars[0]),
            (3.0, vars[1]),
            (2.0, vars[2]),
            (1.0, vars[3]),
        ]);
        let opts = SolveOptions {
            initial_solution: Some(vec![1.0, 0.0, 0.0, 0.0]), // cost 4
            ..SolveOptions::default()
        };
        let sol = m.solve(&opts);
        assert!(sol.is_optimal());
        assert_eq!(sol.objective(), 1.0);
        assert!(sol.is_one(vars[3]));
    }

    #[test]
    fn product_variable_enforced_in_optimum() {
        // Penalize the product heavily; solver must avoid a=b=1.
        let mut m = Model::new();
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        let ab = m.add_product(a, b);
        // Reward a and b individually but punish their conjunction.
        m.set_objective([(-3.0, a), (-3.0, b), (10.0, ab)]);
        let sol = m.solve(&default_opts());
        assert!(sol.is_optimal());
        // Best: pick exactly one of a, b -> objective -3.
        assert_eq!(sol.objective().round(), -3.0);
        assert!(sol.is_one(a) ^ sol.is_one(b));
    }

    /// Exhaustive oracle for tiny models.
    fn brute_force(m: &Model) -> Option<f64> {
        let n = m.var_count();
        assert!(n <= 16);
        let mut best: Option<f64> = None;
        for mask in 0u32..(1 << n) {
            let values: Vec<f64> = (0..n).map(|i| ((mask >> i) & 1) as f64).collect();
            if m.constraints.iter().all(|c| c.satisfied(&values, 1e-9)) {
                let obj = m.objective.eval(&values);
                if best.is_none_or(|b| obj < b) {
                    best = Some(obj);
                }
            }
        }
        best
    }

    /// Deterministic battery of small random models shared by the
    /// differential tests.
    fn random_model(rng: &mut StdRng) -> Model {
        let n = rng.gen_range(1..=8);
        let mut m = Model::new();
        let vars: Vec<VarId> = (0..n).map(|i| m.add_binary(format!("x{i}"))).collect();
        let n_cons = rng.gen_range(0..=5);
        for _ in 0..n_cons {
            let mut expr: Vec<(f64, VarId)> = Vec::new();
            for &v in &vars {
                if rng.gen_bool(0.6) {
                    expr.push((rng.gen_range(-5..=5) as f64, v));
                }
            }
            if expr.is_empty() {
                continue;
            }
            let rhs = rng.gen_range(-4..=6) as f64;
            match rng.gen_range(0..3) {
                0 => m.add_le(expr, rhs),
                1 => m.add_ge(expr, rhs),
                _ => m.add_eq(expr, rhs),
            }
        }
        let obj: Vec<(f64, VarId)> = vars
            .iter()
            .map(|&v| (rng.gen_range(-9..=9) as f64, v))
            .collect();
        m.set_objective(obj);
        m
    }

    #[test]
    fn random_models_match_brute_force() {
        let mut rng = StdRng::seed_from_u64(7);
        for trial in 0..40 {
            let m = random_model(&mut rng);
            let sol = m.solve(&default_opts());
            match brute_force(&m) {
                None => assert_eq!(
                    sol.status(),
                    SolveStatus::Infeasible,
                    "trial {trial}: solver found a solution to an infeasible model"
                ),
                Some(best) => {
                    assert!(sol.is_optimal(), "trial {trial}: not optimal");
                    assert!(
                        (sol.objective() - best).abs() < 1e-6,
                        "trial {trial}: got {} want {best}",
                        sol.objective()
                    );
                }
            }
        }
    }

    #[test]
    fn wave_size_one_matches_reference_node_for_node() {
        // With basis reuse off the wave search at wave_size = 1 performs
        // exactly the reference's cold pop-one/solve-one loop: same
        // explored count, same LP count, same objective, same values.
        let mut rng = StdRng::seed_from_u64(11);
        for trial in 0..30 {
            let m = random_model(&mut rng);
            let opts = SolveOptions {
                wave_size: 1,
                warm_start_basis: false,
                ..SolveOptions::default()
            };
            let wave = m.solve(&opts);
            let reference = m.solve_reference(&opts);
            assert_eq!(wave.status(), reference.status(), "trial {trial}");
            assert_eq!(wave.is_feasible(), reference.is_feasible(), "trial {trial}");
            assert_eq!(
                wave.nodes_explored(),
                reference.nodes_explored(),
                "trial {trial}: explored trees differ"
            );
            assert_eq!(
                wave.stats().lp_solves,
                reference.stats().lp_solves,
                "trial {trial}: LP work differs"
            );
            if wave.is_feasible() {
                assert_eq!(wave.objective(), reference.objective(), "trial {trial}");
                let n = m.var_count();
                for i in 0..n {
                    assert_eq!(
                        wave.value(VarId(i)),
                        reference.value(VarId(i)),
                        "trial {trial}: value {i} differs"
                    );
                }
            }
        }
    }

    #[test]
    fn any_wave_size_and_thread_count_agree_on_the_optimum() {
        let mut rng = StdRng::seed_from_u64(13);
        for trial in 0..15 {
            let m = random_model(&mut rng);
            let oracle = brute_force(&m);
            for wave_size in [1usize, 4, 16] {
                for threads in [1usize, 2, 8] {
                    let opts = SolveOptions {
                        wave_size,
                        executor: Executor::new(threads),
                        ..SolveOptions::default()
                    };
                    let sol = m.solve(&opts);
                    match oracle {
                        None => assert_eq!(
                            sol.status(),
                            SolveStatus::Infeasible,
                            "trial {trial} wave {wave_size} threads {threads}"
                        ),
                        Some(best) => {
                            assert!(sol.is_optimal());
                            assert!(
                                (sol.objective() - best).abs() < 1e-6,
                                "trial {trial} wave {wave_size} threads {threads}: \
                                 got {} want {best}",
                                sol.objective()
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn warm_start_basis_cuts_simplex_iterations() {
        // Aggregated over a battery of branching-heavy random models,
        // replaying parent vertices as rest hints must shrink total pivot
        // work (individual models may tie when the root already prunes).
        let mut rng = StdRng::seed_from_u64(17);
        let mut cold_total = 0u64;
        let mut warm_total = 0u64;
        for _ in 0..30 {
            let m = random_model(&mut rng);
            let cold = m.solve(&SolveOptions {
                warm_start_basis: false,
                ..SolveOptions::default()
            });
            let warm = m.solve(&SolveOptions::default());
            assert_eq!(cold.is_feasible(), warm.is_feasible());
            if cold.is_feasible() {
                assert!((cold.objective() - warm.objective()).abs() < 1e-6);
            }
            cold_total += cold.stats().simplex_iterations;
            warm_total += warm.stats().simplex_iterations;
        }
        assert!(
            warm_total < cold_total,
            "warm {warm_total} vs cold {cold_total}: basis reuse saved nothing"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn assignment_problems_solve_optimally(
            costs in proptest::collection::vec(0i32..20, 9..=9)
        ) {
            // 3x3 assignment: permutation matrix minimizing cost.
            let mut m = Model::new();
            let x: Vec<Vec<VarId>> = (0..3)
                .map(|i| (0..3).map(|j| m.add_binary(format!("x{i}{j}"))).collect())
                .collect();
            for (i, row) in x.iter().enumerate() {
                m.add_eq(row.iter().map(|&v| (1.0, v)).collect::<Vec<_>>(), 1.0);
                m.add_eq((0..3).map(|j| (1.0, x[j][i])).collect::<Vec<_>>(), 1.0);
            }
            let obj: Vec<(f64, VarId)> = (0..9)
                .map(|k| (costs[k] as f64, x[k / 3][k % 3]))
                .collect();
            m.set_objective(obj);
            let sol = m.solve(&default_opts());
            prop_assert!(sol.is_optimal());
            // Brute-force over the 6 permutations.
            let perms = [[0, 1, 2], [0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]];
            let best = perms
                .iter()
                .map(|p| (0..3).map(|i| costs[i * 3 + p[i]] as f64).sum::<f64>())
                .fold(f64::INFINITY, f64::min);
            prop_assert!((sol.objective() - best).abs() < 1e-6);
        }
    }
}
