//! Dense two-phase primal simplex with *native* variable upper bounds.
//!
//! The plain simplex in [`crate::simplex`] needs an explicit `x_j <= u_j`
//! row per bounded variable, which doubles the row count of 0/1 LP
//! relaxations. The bounded-variable method keeps those bounds out of the
//! basis entirely: a nonbasic variable rests at its *lower or upper*
//! bound, the ratio test additionally considers basics hitting their
//! upper bounds and the entering variable flipping straight to its other
//! bound, and everything else proceeds as usual. For the OPERON
//! relaxations this roughly halves the tableau and the pivot work.
//!
//! # Examples
//!
//! ```
//! use operon_ilp::bounded::solve_lp_bounded;
//! use operon_ilp::simplex::{LpOutcome, LpRow};
//! use operon_ilp::Cmp;
//!
//! // min -x0 - 2 x1  s.t. x0 + x1 <= 1.5, 0 <= x <= 1.
//! let rows = vec![LpRow::new(vec![1.0, 1.0], Cmp::Le, 1.5)];
//! match solve_lp_bounded(&[-1.0, -2.0], &rows, &[1.0, 1.0]) {
//!     LpOutcome::Optimal { objective, x } => {
//!         assert!((objective + 2.5).abs() < 1e-6);
//!         assert!((x[1] - 1.0).abs() < 1e-6);
//!     }
//!     other => panic!("unexpected {other:?}"),
//! }
//! ```

use crate::simplex::{LpOutcome, LpRow};
use crate::Cmp;

const EPS: f64 = 1e-9;
const FEAS_EPS: f64 = 1e-7;

/// Where a nonbasic variable currently rests.
///
/// Also the unit of warm-start information between branch-and-bound
/// nodes: a parent LP's per-variable rests, replayed into a child's
/// initial tableau via [`solve_lp_bounded_with`], start the child search
/// near the parent vertex and cut pivot counts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rest {
    /// Resting at the lower bound `0`.
    Lower,
    /// Resting at the upper bound `u_j`.
    Upper,
}

/// Result of a bounded solve, with the extras warm-started callers need.
#[derive(Clone, Debug)]
pub struct BoundedSolve {
    /// The LP outcome (same as [`solve_lp_bounded`] returns).
    pub outcome: LpOutcome,
    /// Rest-bound summary of each structural variable at the optimum —
    /// empty unless optimal. Feed it back as the `hint` of a related
    /// solve (e.g. a child branch-and-bound node).
    pub rests: Vec<Rest>,
    /// Simplex iterations performed (pivots plus bound flips, both
    /// phases).
    pub iterations: u64,
}

/// Solves `min c·x` subject to `rows` and `0 <= x_j <= upper[j]`.
///
/// `upper[j]` may be `f64::INFINITY` for a free-above variable. Slack and
/// artificial variables are managed internally.
///
/// # Panics
///
/// Panics on dimension mismatches or non-finite input data (infinite
/// upper bounds excepted).
pub fn solve_lp_bounded(c: &[f64], rows: &[LpRow], upper: &[f64]) -> LpOutcome {
    solve_lp_bounded_with(c, rows, upper, None).outcome
}

/// [`solve_lp_bounded`] with an optional warm-start rest `hint` (one
/// [`Rest`] per structural variable), returning the rests and iteration
/// count alongside the outcome.
///
/// Hinted columns are flipped to their upper bound before phase 1 when
/// doing so keeps every basic value feasible and does not increase the
/// artificial infeasibility — so a stale or wrong hint can slow nothing
/// down structurally; it is simply ignored column by column. The result
/// is identical to the unhinted solve up to degenerate-vertex ties.
///
/// # Panics
///
/// Panics on dimension mismatches or non-finite input data (infinite
/// upper bounds excepted).
pub fn solve_lp_bounded_with(
    c: &[f64],
    rows: &[LpRow],
    upper: &[f64],
    hint: Option<&[Rest]>,
) -> BoundedSolve {
    let n = c.len();
    assert_eq!(upper.len(), n, "one upper bound per variable");
    assert!(c.iter().all(|v| v.is_finite()), "non-finite cost");
    assert!(
        upper.iter().all(|&u| u >= 0.0 && !u.is_nan()),
        "upper bounds must be non-negative"
    );
    for row in rows {
        assert_eq!(row.coeffs.len(), n, "row width must match variable count");
        assert!(row.rhs.is_finite(), "non-finite rhs");
        assert!(
            row.coeffs.iter().all(|v| v.is_finite()),
            "non-finite coefficient"
        );
    }
    if let Some(h) = hint {
        assert_eq!(h.len(), n, "one rest hint per variable");
    }
    let mut tableau = BoundedTableau::build(c, rows, upper);
    if let Some(h) = hint {
        tableau.apply_rest_hint(h);
    }
    tableau.init_phase1_objective();
    tableau.solve()
}

struct BoundedTableau {
    /// `m` constraint rows × `width` columns; the last column is the
    /// current *value* of each row's basic variable.
    t: Vec<Vec<f64>>,
    /// Reduced-cost row (length `width - 1`) plus the objective value in
    /// the last slot (stored negated, as in the classic tableau).
    obj: Vec<f64>,
    m: usize,
    width: usize,
    /// Total columns (structurals + slacks + artificials).
    n_cols: usize,
    n_struct: usize,
    art_start: usize,
    /// Upper bound per column (INFINITY for slacks/artificials' heads).
    ub: Vec<f64>,
    /// Basic column of each row.
    basis: Vec<usize>,
    /// Rest status of every column (meaningful when nonbasic).
    rest: Vec<Rest>,
    /// Phase-2 cost per column.
    cost2: Vec<f64>,
    /// Simplex iterations (pivots + bound flips) performed so far.
    iters: u64,
}

impl BoundedTableau {
    fn build(c: &[f64], rows: &[LpRow], upper: &[f64]) -> Self {
        let n = c.len();
        let m = rows.len();

        // Normalize rows to b >= 0 (structural variables start at their
        // LOWER bound 0, so the initial basic values are exactly b).
        #[derive(Clone, Copy)]
        enum Kind {
            Slack,
            SurplusArt,
            Art,
        }
        let mut norm: Vec<(Vec<f64>, f64, Kind)> = Vec::with_capacity(m);
        for row in rows {
            let (mut coeffs, mut rhs, mut cmp) = (row.coeffs.clone(), row.rhs, row.cmp);
            if rhs < 0.0 {
                for v in &mut coeffs {
                    *v = -*v;
                }
                rhs = -rhs;
                cmp = match cmp {
                    Cmp::Le => Cmp::Ge,
                    Cmp::Ge => Cmp::Le,
                    Cmp::Eq => Cmp::Eq,
                };
            }
            let kind = match cmp {
                Cmp::Le => Kind::Slack,
                Cmp::Ge => Kind::SurplusArt,
                Cmp::Eq => Kind::Art,
            };
            norm.push((coeffs, rhs, kind));
        }
        let n_slack = norm
            .iter()
            .filter(|(_, _, k)| matches!(k, Kind::Slack | Kind::SurplusArt))
            .count();
        let n_art = norm
            .iter()
            .filter(|(_, _, k)| matches!(k, Kind::SurplusArt | Kind::Art))
            .count();
        let n_cols = n + n_slack + n_art;
        let width = n_cols + 1;
        let art_start = n + n_slack;

        let mut t = vec![vec![0.0; width]; m];
        let mut basis = vec![0usize; m];
        let (mut si, mut ai) = (0usize, 0usize);
        for (i, (coeffs, rhs, kind)) in norm.iter().enumerate() {
            t[i][..n].copy_from_slice(coeffs);
            t[i][width - 1] = *rhs;
            match kind {
                Kind::Slack => {
                    t[i][n + si] = 1.0;
                    basis[i] = n + si;
                    si += 1;
                }
                Kind::SurplusArt => {
                    t[i][n + si] = -1.0;
                    si += 1;
                    t[i][art_start + ai] = 1.0;
                    basis[i] = art_start + ai;
                    ai += 1;
                }
                Kind::Art => {
                    t[i][art_start + ai] = 1.0;
                    basis[i] = art_start + ai;
                    ai += 1;
                }
            }
        }

        let mut ub = vec![f64::INFINITY; n_cols];
        ub[..n].copy_from_slice(upper);
        let mut cost2 = vec![0.0; n_cols];
        cost2[..n].copy_from_slice(c);

        Self {
            t,
            obj: vec![0.0; width],
            m,
            width,
            n_cols,
            n_struct: n,
            art_start,
            ub,
            basis,
            rest: vec![Rest::Lower; n_cols],
            cost2,
            iters: 0,
        }
    }

    /// Replays a parent vertex's rests: flips hinted structural columns
    /// to their upper bound before phase 1. A flip is committed only when
    /// every basic value stays non-negative AND the total artificial
    /// infeasibility does not grow, so hints can never make phase 1 start
    /// from a worse point than the cold start. Must run before
    /// [`Self::init_phase1_objective`] so the phase-1 reduced costs price
    /// the flipped values.
    fn apply_rest_hint(&mut self, hint: &[Rest]) {
        let last = self.width - 1;
        for (j, &h) in hint.iter().enumerate().take(self.n_struct) {
            if h != Rest::Upper {
                continue;
            }
            let u = self.ub[j];
            if !u.is_finite() || u <= 0.0 {
                continue;
            }
            let mut ok = true;
            let mut art_delta = 0.0;
            for i in 0..self.m {
                let nv = self.t[i][last] - u * self.t[i][j];
                if nv < -FEAS_EPS {
                    ok = false;
                    break;
                }
                if self.basis[i] >= self.art_start {
                    art_delta -= u * self.t[i][j];
                }
            }
            if !ok || art_delta > FEAS_EPS {
                continue;
            }
            for i in 0..self.m {
                let nv = self.t[i][last] - u * self.t[i][j];
                self.t[i][last] = nv.max(0.0);
            }
            self.rest[j] = Rest::Upper;
        }
    }

    /// Phase-1 reduced costs: minimize the sum of artificials over the
    /// current basic values (which [`Self::apply_rest_hint`] may have
    /// already shrunk).
    fn init_phase1_objective(&mut self) {
        let mut obj = vec![0.0; self.width];
        for i in 0..self.m {
            if self.basis[i] >= self.art_start {
                for (o, v) in obj.iter_mut().zip(&self.t[i]) {
                    *o -= v;
                }
            }
        }
        for o in obj.iter_mut().take(self.n_cols).skip(self.art_start) {
            *o = 0.0;
        }
        self.obj = obj;
    }

    fn solve(mut self) -> BoundedSolve {
        // Phase 1.
        if self.art_start < self.n_cols {
            if !self.optimize(self.n_cols) {
                // operon-lint: allow(R001, reason = "phase-1 objective is bounded below by zero, so it cannot be unbounded")
                unreachable!("phase-1 objective is bounded below by zero");
            }
            let phase1 = -self.obj[self.width - 1];
            if phase1 > FEAS_EPS {
                return BoundedSolve {
                    outcome: LpOutcome::Infeasible,
                    rests: Vec::new(),
                    iterations: self.iters,
                };
            }
            self.evict_basic_artificials();
        }

        // Phase 2: rebuild reduced costs from the phase-2 objective,
        // priced out over the current basis and nonbasic rests.
        self.install_phase2_objective();
        if !self.optimize(self.art_start) {
            return BoundedSolve {
                outcome: LpOutcome::Unbounded,
                rests: Vec::new(),
                iterations: self.iters,
            };
        }

        // Extract structural values.
        let mut x = vec![0.0; self.n_struct];
        for (j, xj) in x.iter_mut().enumerate() {
            *xj = match self.rest[j] {
                Rest::Lower => 0.0,
                Rest::Upper => self.ub[j],
            };
        }
        for i in 0..self.m {
            if self.basis[i] < self.n_struct {
                x[self.basis[i]] = self.t[i][self.width - 1];
            }
        }
        let objective: f64 = x
            .iter()
            .zip(&self.cost2[..self.n_struct])
            .map(|(v, c)| v * c)
            .sum();
        // Rest summary for warm-starting related solves: nonbasic columns
        // report their actual rest; basic columns report the nearer bound.
        let mut rests = vec![Rest::Lower; self.n_struct];
        for (j, r) in rests.iter_mut().enumerate() {
            *r = self.rest[j];
        }
        for i in 0..self.m {
            let b = self.basis[i];
            if b < self.n_struct {
                let u = self.ub[b];
                rests[b] = if u.is_finite() && self.t[i][self.width - 1] >= 0.5 * u {
                    Rest::Upper
                } else {
                    Rest::Lower
                };
            }
        }
        BoundedSolve {
            outcome: LpOutcome::Optimal { objective, x },
            rests,
            iterations: self.iters,
        }
    }

    fn install_phase2_objective(&mut self) {
        let width = self.width;
        let mut obj = vec![0.0; width];
        obj[..self.n_cols].copy_from_slice(&self.cost2);
        // Price out the basics: d = c - c_B · B^-1 A (rows already hold
        // B^-1 A after the eliminations of phase 1).
        for i in 0..self.m {
            let cb = self.cost2[self.basis[i]];
            if cb != 0.0 {
                for (o, t) in obj.iter_mut().zip(&self.t[i][..width]) {
                    *o -= cb * t;
                }
            }
        }
        // Note: obj[width-1] now tracks -(c_B · x_B); the nonbasic-at-
        // upper contribution to the objective value is added at
        // extraction time instead of being tracked here.
        self.obj = obj;
    }

    /// Pivots to optimality over columns `0..allowed`. Returns false on
    /// unboundedness.
    fn optimize(&mut self, allowed: usize) -> bool {
        let mut stall = 0usize;
        let max_iters = 400 + 80 * (self.m + self.n_struct);
        for iter in 0usize.. {
            let bland = stall > 60 || iter > max_iters;
            let Some(j) = self.entering(allowed, bland) else {
                return true;
            };
            let sigma = match self.rest[j] {
                Rest::Lower => 1.0,
                Rest::Upper => -1.0,
            };
            // Ratio test.
            let mut best_t = self.ub[j]; // bound-flip distance (may be inf)
            let mut leave: Option<(usize, Rest)> = None; // row, bound the basic hits
            for i in 0..self.m {
                let y = sigma * self.t[i][j];
                let v = self.t[i][self.width - 1];
                if y > EPS {
                    // Basic decreases toward its lower bound 0.
                    let ti = v / y;
                    if ti < best_t - EPS
                        || (ti < best_t + EPS
                            && leave.is_none_or(|(r, _)| self.basis[i] < self.basis[r]))
                    {
                        best_t = ti.max(0.0);
                        leave = Some((i, Rest::Lower));
                    }
                } else if y < -EPS {
                    // Basic increases toward its upper bound.
                    let ubi = self.ub[self.basis[i]];
                    if ubi.is_finite() {
                        let ti = (ubi - v) / (-y);
                        if ti < best_t - EPS
                            || (ti < best_t + EPS
                                && leave.is_none_or(|(r, _)| self.basis[i] < self.basis[r]))
                        {
                            best_t = ti.max(0.0);
                            leave = Some((i, Rest::Upper));
                        }
                    }
                }
            }
            if best_t.is_infinite() {
                return false; // unbounded direction
            }
            self.iters += 1;

            let before = self.obj[self.width - 1];
            match leave {
                None => {
                    // Bound flip: j runs all the way to its other bound.
                    let dist = self.ub[j];
                    debug_assert!(dist.is_finite());
                    for i in 0..self.m {
                        let y = self.t[i][j];
                        self.t[i][self.width - 1] -= sigma * dist * y;
                    }
                    self.obj[self.width - 1] -= sigma * dist * self.obj[j];
                    self.rest[j] = match self.rest[j] {
                        Rest::Lower => Rest::Upper,
                        Rest::Upper => Rest::Lower,
                    };
                }
                Some((r, hit)) => {
                    // The old basic leaves to `hit`; j enters with value
                    // (from its rest bound) + sigma * best_t.
                    let entering_value = match self.rest[j] {
                        Rest::Lower => sigma * best_t,
                        Rest::Upper => self.ub[j] + sigma * best_t,
                    };
                    let old_basic = self.basis[r];
                    self.rest[old_basic] = hit;
                    // Eliminate: make column j the unit column of row r.
                    let pivot = self.t[r][j];
                    debug_assert!(pivot.abs() > EPS, "pivot must be nonzero");
                    for v in self.t[r].iter_mut() {
                        *v /= pivot;
                    }
                    // Row r's value column must become the ENTERING
                    // variable's value; set it explicitly (elimination
                    // formulas assume nonbasics at 0, our rests are not).
                    self.t[r][self.width - 1] = entering_value;
                    for i in 0..self.m {
                        if i == r {
                            continue;
                        }
                        let f = self.t[i][j];
                        if f != 0.0 {
                            // Update values first (they do not follow the
                            // plain elimination rule under bounds).
                            let y = sigma * f;
                            self.t[i][self.width - 1] -= y * best_t;
                            for jj in 0..self.width - 1 {
                                let v = self.t[r][jj];
                                self.t[i][jj] -= f * v;
                            }
                            self.t[i][j] = 0.0;
                        }
                    }
                    let f = self.obj[j];
                    if f != 0.0 {
                        self.obj[self.width - 1] -= sigma * best_t * f;
                        for jj in 0..self.width - 1 {
                            let v = self.t[r][jj];
                            self.obj[jj] -= f * v;
                        }
                        self.obj[j] = 0.0;
                    }
                    self.basis[r] = j;
                }
            }
            let after = self.obj[self.width - 1];
            if (after - before).abs() < EPS {
                stall += 1;
            } else {
                stall = 0;
            }
        }
        // operon-lint: allow(R001, reason = "the iteration loop only exits via return; this arm is unreachable by construction")
        unreachable!("loop exits via return")
    }

    fn entering(&self, allowed: usize, bland: bool) -> Option<usize> {
        let eligible = |j: usize| -> bool {
            if self.basis.contains(&j) {
                return false;
            }
            match self.rest[j] {
                Rest::Lower => self.obj[j] < -EPS,
                Rest::Upper => self.obj[j] > EPS,
            }
        };
        if bland {
            (0..allowed).find(|&j| eligible(j))
        } else {
            let mut best: Option<(f64, usize)> = None;
            for j in 0..allowed {
                if eligible(j) {
                    let score = self.obj[j].abs();
                    if best.is_none_or(|(s, _)| score > s) {
                        best = Some((score, j));
                    }
                }
            }
            best.map(|(_, j)| j)
        }
    }

    /// After phase 1, pivot still-basic artificials (value 0) out on any
    /// nonzero non-artificial column; a fully zero row is redundant and
    /// harmless. Nothing moves (the artificial sits at 0), so every value
    /// column is preserved — the entering variable simply becomes basic
    /// *at its current rest value*.
    fn evict_basic_artificials(&mut self) {
        for r in 0..self.m {
            if self.basis[r] >= self.art_start {
                if let Some(j) = (0..self.art_start).find(|&j| self.t[r][j].abs() > EPS) {
                    let old = self.basis[r];
                    self.rest[old] = Rest::Lower;
                    let entering_value = match self.rest[j] {
                        Rest::Lower => 0.0,
                        Rest::Upper => self.ub[j],
                    };
                    let pivot = self.t[r][j];
                    for v in self.t[r][..self.width - 1].iter_mut() {
                        *v /= pivot;
                    }
                    self.t[r][self.width - 1] = entering_value;
                    for i in 0..self.m {
                        if i != r {
                            let f = self.t[i][j];
                            if f != 0.0 {
                                for jj in 0..self.width - 1 {
                                    let v = self.t[r][jj];
                                    self.t[i][jj] -= f * v;
                                }
                                self.t[i][j] = 0.0;
                            }
                        }
                    }
                    let f = self.obj[j];
                    if f != 0.0 {
                        for jj in 0..self.width - 1 {
                            let v = self.t[r][jj];
                            self.obj[jj] -= f * v;
                        }
                        self.obj[j] = 0.0;
                    }
                    self.basis[r] = j;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplex::solve_lp;
    use proptest::prelude::*;

    fn opt(outcome: LpOutcome) -> (f64, Vec<f64>) {
        match outcome {
            LpOutcome::Optimal { objective, x } => (objective, x),
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn unconstrained_negative_costs_hit_upper_bounds() {
        let (obj, x) = opt(solve_lp_bounded(&[-3.0, -4.0], &[], &[1.0, 1.0]));
        assert!((obj + 7.0).abs() < 1e-7);
        assert!((x[0] - 1.0).abs() < 1e-7 && (x[1] - 1.0).abs() < 1e-7);
    }

    #[test]
    fn unconstrained_positive_costs_stay_at_zero() {
        let (obj, x) = opt(solve_lp_bounded(&[2.0, 3.0], &[], &[1.0, 1.0]));
        assert!(obj.abs() < 1e-9);
        assert!(x.iter().all(|&v| v.abs() < 1e-9));
    }

    #[test]
    fn knapsack_relaxation_is_fractional() {
        // min -3a -4b -5c s.t. 2a + 3b + 4c <= 6, x in [0,1]^3.
        // LP: take a=1, b=1 (weight 5), c=1/4 -> obj -(3+4+1.25).
        let rows = vec![LpRow::new(vec![2.0, 3.0, 4.0], Cmp::Le, 6.0)];
        let (obj, x) = opt(solve_lp_bounded(
            &[-3.0, -4.0, -5.0],
            &rows,
            &[1.0, 1.0, 1.0],
        ));
        assert!((obj + 8.25).abs() < 1e-7, "obj {obj}");
        assert!((x[2] - 0.25).abs() < 1e-7);
    }

    #[test]
    fn equality_and_ge_rows_work() {
        // min x + 2y s.t. x + y == 1, x - y >= -0.5, x,y in [0,1].
        let rows = vec![
            LpRow::new(vec![1.0, 1.0], Cmp::Eq, 1.0),
            LpRow::new(vec![1.0, -1.0], Cmp::Ge, -0.5),
        ];
        let (obj, x) = opt(solve_lp_bounded(&[1.0, 2.0], &rows, &[1.0, 1.0]));
        // Optimal: maximize x subject to x+y=1 and x >= y-0.5 -> x=1,y=0
        // gives obj 1; check x - y = 1 >= -0.5 ok.
        assert!((obj - 1.0).abs() < 1e-7, "obj {obj}");
        assert!((x[0] - 1.0).abs() < 1e-7);
    }

    #[test]
    fn infeasible_detected() {
        let rows = vec![LpRow::new(vec![1.0, 1.0], Cmp::Ge, 3.0)];
        assert!(matches!(
            solve_lp_bounded(&[1.0, 1.0], &rows, &[1.0, 1.0]),
            LpOutcome::Infeasible
        ));
    }

    #[test]
    fn unbounded_detected_with_infinite_upper() {
        assert!(matches!(
            solve_lp_bounded(&[-1.0], &[], &[f64::INFINITY]),
            LpOutcome::Unbounded
        ));
    }

    #[test]
    fn vertex_cover_triangle_relaxation_is_half() {
        let rows = vec![
            LpRow::new(vec![1.0, 1.0, 0.0], Cmp::Ge, 1.0),
            LpRow::new(vec![0.0, 1.0, 1.0], Cmp::Ge, 1.0),
            LpRow::new(vec![1.0, 0.0, 1.0], Cmp::Ge, 1.0),
        ];
        let (obj, x) = opt(solve_lp_bounded(&[1.0, 1.0, 1.0], &rows, &[1.0, 1.0, 1.0]));
        assert!((obj - 1.5).abs() < 1e-7, "obj {obj}");
        assert!(x.iter().all(|&v| (v - 0.5).abs() < 1e-6));
    }

    #[test]
    fn rest_hint_preserves_optimum_and_cuts_iterations() {
        // min -3a -4b -5c s.t. 2a + 3b + 4c <= 6: the optimum rests a and
        // b at Upper. Re-solving with the optimal rests as hint must find
        // the same objective in no more iterations.
        let rows = vec![LpRow::new(vec![2.0, 3.0, 4.0], Cmp::Le, 6.0)];
        let c = [-3.0, -4.0, -5.0];
        let cold = solve_lp_bounded_with(&c, &rows, &[1.0, 1.0, 1.0], None);
        let LpOutcome::Optimal { objective: o1, .. } = cold.outcome else {
            panic!("cold solve must be optimal");
        };
        let warm = solve_lp_bounded_with(&c, &rows, &[1.0, 1.0, 1.0], Some(&cold.rests));
        let LpOutcome::Optimal { objective: o2, .. } = warm.outcome else {
            panic!("warm solve must be optimal");
        };
        assert!((o1 - o2).abs() < 1e-7, "warm {o2} vs cold {o1}");
        assert!(warm.iterations <= cold.iterations);
        assert!(warm.iterations < cold.iterations, "hint should skip pivots");
    }

    #[test]
    fn infeasible_hint_is_harmless() {
        // x0 must stay 0 (row forces x0 <= 0), but the hint says Upper:
        // the flip is rejected and the solve still succeeds.
        let rows = vec![LpRow::new(vec![1.0, 0.0], Cmp::Le, 0.0)];
        let hint = [Rest::Upper, Rest::Upper];
        let got = solve_lp_bounded_with(&[1.0, -1.0], &rows, &[1.0, 1.0], Some(&hint));
        let LpOutcome::Optimal { objective, x } = got.outcome else {
            panic!("must stay solvable under a bad hint");
        };
        assert!((objective + 1.0).abs() < 1e-7);
        assert!(x[0].abs() < 1e-7 && (x[1] - 1.0).abs() < 1e-7);
    }

    #[test]
    fn mixed_bounds_with_negative_rhs() {
        // -x <= -0.4  (x >= 0.4), min x -> 0.4.
        let rows = vec![LpRow::new(vec![-1.0], Cmp::Le, -0.4)];
        let (obj, x) = opt(solve_lp_bounded(&[1.0], &rows, &[1.0]));
        assert!((obj - 0.4).abs() < 1e-7);
        assert!((x[0] - 0.4).abs() < 1e-7);
    }

    /// Differential check against the plain simplex with explicit bound
    /// rows — the two implementations must agree on the optimum value
    /// (and feasibility status) of every random instance.
    fn reference(c: &[f64], rows: &[LpRow], upper: &[f64]) -> LpOutcome {
        let n = c.len();
        let mut all_rows = rows.to_vec();
        for (j, &u) in upper.iter().enumerate() {
            if u.is_finite() {
                let mut coeffs = vec![0.0; n];
                coeffs[j] = 1.0;
                all_rows.push(LpRow::new(coeffs, Cmp::Le, u));
            }
        }
        solve_lp(c, &all_rows)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(192))]
        #[test]
        fn matches_plain_simplex(
            n in 1usize..6,
            costs in proptest::collection::vec(-5i32..=5, 6),
            raw_rows in proptest::collection::vec(
                (proptest::collection::vec(-4i32..=4, 6), 0u8..3, -6i32..=8),
                0..6,
            ),
        ) {
            let c: Vec<f64> = costs[..n].iter().map(|&v| v as f64).collect();
            let upper = vec![1.0; n];
            let rows: Vec<LpRow> = raw_rows
                .into_iter()
                .map(|(coeffs, cmp, rhs)| {
                    let cmp = match cmp {
                        0 => Cmp::Le,
                        1 => Cmp::Ge,
                        _ => Cmp::Eq,
                    };
                    LpRow::new(
                        coeffs[..n].iter().map(|&v| v as f64).collect(),
                        cmp,
                        rhs as f64,
                    )
                })
                .collect();
            let got = solve_lp_bounded(&c, &rows, &upper);
            let want = reference(&c, &rows, &upper);
            match (got, want) {
                (
                    LpOutcome::Optimal { objective: a, x },
                    LpOutcome::Optimal { objective: b, .. },
                ) => {
                    prop_assert!((a - b).abs() < 1e-6, "bounded {a} vs plain {b}");
                    // The solution itself must be feasible.
                    for (j, &v) in x.iter().enumerate() {
                        prop_assert!(v >= -1e-7 && v <= upper[j] + 1e-7);
                    }
                    for row in &rows {
                        let lhs: f64 = row
                            .coeffs
                            .iter()
                            .zip(&x)
                            .map(|(a, b)| a * b)
                            .sum();
                        let ok = match row.cmp {
                            Cmp::Le => lhs <= row.rhs + 1e-6,
                            Cmp::Ge => lhs >= row.rhs - 1e-6,
                            Cmp::Eq => (lhs - row.rhs).abs() <= 1e-6,
                        };
                        prop_assert!(ok, "constraint violated: {lhs} vs {}", row.rhs);
                    }
                }
                (LpOutcome::Infeasible, LpOutcome::Infeasible) => {}
                (g, w) => prop_assert!(false, "disagreement: bounded {g:?} vs plain {w:?}"),
            }
        }

        /// Any hint — including an arbitrary one — must leave the optimum
        /// value (and feasibility verdict) unchanged.
        #[test]
        fn hinted_solve_matches_unhinted(
            n in 1usize..6,
            costs in proptest::collection::vec(-5i32..=5, 6),
            hint_bits in proptest::collection::vec(0u8..2, 6),
            raw_rows in proptest::collection::vec(
                (proptest::collection::vec(-4i32..=4, 6), 0u8..3, -6i32..=8),
                0..6,
            ),
        ) {
            let c: Vec<f64> = costs[..n].iter().map(|&v| v as f64).collect();
            let upper = vec![1.0; n];
            let hint: Vec<Rest> = hint_bits[..n]
                .iter()
                .map(|&b| if b == 1 { Rest::Upper } else { Rest::Lower })
                .collect();
            let rows: Vec<LpRow> = raw_rows
                .into_iter()
                .map(|(coeffs, cmp, rhs)| {
                    let cmp = match cmp {
                        0 => Cmp::Le,
                        1 => Cmp::Ge,
                        _ => Cmp::Eq,
                    };
                    LpRow::new(
                        coeffs[..n].iter().map(|&v| v as f64).collect(),
                        cmp,
                        rhs as f64,
                    )
                })
                .collect();
            let cold = solve_lp_bounded_with(&c, &rows, &upper, None);
            let warm = solve_lp_bounded_with(&c, &rows, &upper, Some(&hint));
            match (cold.outcome, warm.outcome) {
                (
                    LpOutcome::Optimal { objective: a, .. },
                    LpOutcome::Optimal { objective: b, .. },
                ) => prop_assert!((a - b).abs() < 1e-6, "cold {a} vs hinted {b}"),
                (LpOutcome::Infeasible, LpOutcome::Infeasible) => {}
                (g, w) => prop_assert!(false, "hint changed verdict: {g:?} vs {w:?}"),
            }
        }
    }
}
