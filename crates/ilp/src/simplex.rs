//! Dense two-phase primal simplex.
//!
//! Solves `min c·x` subject to `A x {<=,>=,==} b` and `x >= 0`. Upper
//! bounds (`x <= 1` for the relaxed binaries) are ordinary rows supplied
//! by the caller. The implementation is a classic dense tableau with
//! Dantzig pricing and a Bland's-rule fallback to guarantee termination
//! under degeneracy — sized for the few-thousand-variable relaxations the
//! OPERON formulation produces, not for general-purpose LP work.
//!
//! # Examples
//!
//! ```
//! use operon_ilp::simplex::{solve_lp, LpOutcome, LpRow};
//! use operon_ilp::Cmp;
//!
//! // min -x0 - 2 x1  s.t. x0 + x1 <= 1.5, x0 <= 1, x1 <= 1
//! let rows = vec![
//!     LpRow::new(vec![1.0, 1.0], Cmp::Le, 1.5),
//!     LpRow::new(vec![1.0, 0.0], Cmp::Le, 1.0),
//!     LpRow::new(vec![0.0, 1.0], Cmp::Le, 1.0),
//! ];
//! match solve_lp(&[-1.0, -2.0], &rows) {
//!     LpOutcome::Optimal { objective, x } => {
//!         assert!((objective + 2.5).abs() < 1e-6);
//!         assert!((x[1] - 1.0).abs() < 1e-6);
//!     }
//!     other => panic!("unexpected outcome {other:?}"),
//! }
//! ```

use crate::Cmp;

const EPS: f64 = 1e-9;

/// One LP constraint row: `coeffs · x cmp rhs`.
#[derive(Clone, Debug)]
pub struct LpRow {
    /// Dense coefficient vector (length = number of variables).
    pub coeffs: Vec<f64>,
    /// Comparison sense.
    pub cmp: Cmp,
    /// Right-hand side.
    pub rhs: f64,
}

impl LpRow {
    /// Creates a row.
    pub fn new(coeffs: Vec<f64>, cmp: Cmp, rhs: f64) -> Self {
        Self { coeffs, cmp, rhs }
    }
}

/// Result of an LP solve.
#[derive(Clone, Debug)]
pub enum LpOutcome {
    /// An optimal basic solution was found.
    Optimal {
        /// The minimized objective value.
        objective: f64,
        /// The primal solution (length = number of variables).
        x: Vec<f64>,
    },
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded below (cannot happen when every
    /// variable carries an upper-bound row).
    Unbounded,
}

/// Solves `min c·x` over the given rows with `x >= 0`.
///
/// # Panics
///
/// Panics if row lengths disagree with `c`, or on non-finite inputs.
pub fn solve_lp(c: &[f64], rows: &[LpRow]) -> LpOutcome {
    let n = c.len();
    for row in rows {
        assert_eq!(row.coeffs.len(), n, "row width must match variable count");
        assert!(row.rhs.is_finite(), "non-finite rhs");
        assert!(
            row.coeffs.iter().all(|v| v.is_finite()),
            "non-finite coefficient"
        );
    }
    assert!(c.iter().all(|v| v.is_finite()), "non-finite cost");

    Tableau::build(c, rows).solve()
}

struct Tableau {
    /// `m+1` rows × `width` columns; last row is the objective, last
    /// column the RHS.
    t: Vec<Vec<f64>>,
    m: usize,
    width: usize,
    n_struct: usize,
    n_art: usize,
    /// Basic variable (column) of each row.
    basis: Vec<usize>,
    /// First artificial column index.
    art_start: usize,
    /// The phase-2 cost vector, stashed between build and solve.
    cost_row_for_phase2: Option<Vec<f64>>,
}

impl Tableau {
    fn build(c: &[f64], rows: &[LpRow]) -> Self {
        let n = c.len();
        let m = rows.len();

        // Normalize rows to b >= 0 and classify.
        #[derive(Clone, Copy)]
        enum Kind {
            Slack,      // <= with slack
            SurplusArt, // >= with surplus + artificial
            Art,        // == with artificial
        }
        let mut norm: Vec<(Vec<f64>, f64, Kind)> = Vec::with_capacity(m);
        for row in rows {
            let (mut coeffs, mut rhs, mut cmp) = (row.coeffs.clone(), row.rhs, row.cmp);
            if rhs < 0.0 {
                for v in &mut coeffs {
                    *v = -*v;
                }
                rhs = -rhs;
                cmp = match cmp {
                    Cmp::Le => Cmp::Ge,
                    Cmp::Ge => Cmp::Le,
                    Cmp::Eq => Cmp::Eq,
                };
            }
            let kind = match cmp {
                Cmp::Le => Kind::Slack,
                Cmp::Ge => Kind::SurplusArt,
                Cmp::Eq => Kind::Art,
            };
            norm.push((coeffs, rhs, kind));
        }

        let n_slack = norm
            .iter()
            .filter(|(_, _, k)| matches!(k, Kind::Slack | Kind::SurplusArt))
            .count();
        let n_art = norm
            .iter()
            .filter(|(_, _, k)| matches!(k, Kind::SurplusArt | Kind::Art))
            .count();
        let width = n + n_slack + n_art + 1;
        let art_start = n + n_slack;

        let mut t = vec![vec![0.0; width]; m + 1];
        let mut basis = vec![0usize; m];
        let (mut si, mut ai) = (0usize, 0usize);
        for (i, (coeffs, rhs, kind)) in norm.iter().enumerate() {
            t[i][..n].copy_from_slice(coeffs);
            t[i][width - 1] = *rhs;
            match kind {
                Kind::Slack => {
                    t[i][n + si] = 1.0;
                    basis[i] = n + si;
                    si += 1;
                }
                Kind::SurplusArt => {
                    t[i][n + si] = -1.0;
                    si += 1;
                    t[i][art_start + ai] = 1.0;
                    basis[i] = art_start + ai;
                    ai += 1;
                }
                Kind::Art => {
                    t[i][art_start + ai] = 1.0;
                    basis[i] = art_start + ai;
                    ai += 1;
                }
            }
        }

        let mut tab = Self {
            t,
            m,
            width,
            n_struct: n,
            n_art,
            basis,
            art_start,
            cost_row_for_phase2: Some(c.to_vec()),
        };
        tab.install_phase1_objective();
        tab
    }

    fn install_phase1_objective(&mut self) {
        // Phase-1 objective: minimize sum of artificials. Reduced-cost row
        // = -(sum of rows whose basic variable is artificial).
        let width = self.width;
        let obj = self.m;
        for j in 0..width {
            self.t[obj][j] = 0.0;
        }
        for i in 0..self.m {
            if self.basis[i] >= self.art_start {
                for j in 0..width {
                    let v = self.t[i][j];
                    self.t[obj][j] -= v;
                }
            }
        }
        // Artificial columns themselves price to 0 in the objective row
        // (cost 1 plus the -1 from their own row): set explicitly.
        for a in 0..self.n_art {
            self.t[obj][self.art_start + a] = 0.0;
        }
    }

    fn solve(mut self) -> LpOutcome {
        // Phase 1.
        if self.n_art > 0 {
            if !self.pivot_to_optimality(self.art_start + self.n_art) {
                // Phase 1 of an always-feasible problem cannot be
                // unbounded (objective bounded below by 0).
                // operon-lint: allow(R001, reason = "phase-1 objective is bounded below by zero, so it cannot be unbounded")
                unreachable!("phase-1 objective is bounded below by zero");
            }
            let phase1 = -self.t[self.m][self.width - 1];
            if phase1 > 1e-7 {
                return LpOutcome::Infeasible;
            }
            self.evict_basic_artificials();
        }

        // Phase 2: install the real objective priced out over the basis.
        // operon-lint: allow(R001, reason = "cost_row_for_phase2 is populated at build time and taken exactly once")
        let c = self.cost_row_for_phase2.take().expect("set at build");
        let width = self.width;
        let obj = self.m;
        for j in 0..width {
            self.t[obj][j] = 0.0;
        }
        self.t[obj][..self.n_struct].copy_from_slice(&c);
        for i in 0..self.m {
            let b = self.basis[i];
            if b < self.n_struct && c[b] != 0.0 {
                let factor = c[b];
                for j in 0..width {
                    let v = self.t[i][j];
                    self.t[obj][j] -= factor * v;
                }
            }
        }
        // Artificials are barred from re-entering in phase 2.
        if !self.pivot_to_optimality(self.art_start) {
            return LpOutcome::Unbounded;
        }

        let mut x = vec![0.0; self.n_struct];
        for i in 0..self.m {
            if self.basis[i] < self.n_struct {
                x[self.basis[i]] = self.t[i][self.width - 1];
            }
        }
        let objective = -self.t[self.m][self.width - 1];
        LpOutcome::Optimal { objective, x }
    }

    /// Pivots until no negative reduced cost remains among columns
    /// `0..allowed_cols`. Returns false on unboundedness.
    fn pivot_to_optimality(&mut self, allowed_cols: usize) -> bool {
        let mut stall = 0usize;
        let mut last_obj = f64::INFINITY;
        // Termination: Bland's rule is cycle-free; the guard below only
        // bounds the Dantzig warm-up phase.
        let max_iters = 200 + 60 * (self.m + self.n_struct);
        for iter in 0.. {
            let use_bland = stall > 40 || iter > max_iters;
            let Some(col) = self.entering_column(allowed_cols, use_bland) else {
                return true; // optimal
            };
            let Some(row) = self.leaving_row(col) else {
                return false; // unbounded
            };
            self.pivot(row, col);
            let obj = -self.t[self.m][self.width - 1];
            if (last_obj - obj).abs() < EPS {
                stall += 1;
            } else {
                stall = 0;
            }
            last_obj = obj;
        }
        // operon-lint: allow(R001, reason = "the iteration loop only exits via return; this arm is unreachable by construction")
        unreachable!("infinite range loop only exits via return")
    }

    fn entering_column(&self, allowed_cols: usize, bland: bool) -> Option<usize> {
        let obj = &self.t[self.m];
        if bland {
            (0..allowed_cols).find(|&j| obj[j] < -EPS)
        } else {
            let mut best: Option<(f64, usize)> = None;
            for (j, &v) in obj.iter().enumerate().take(allowed_cols) {
                if v < -EPS && best.is_none_or(|(bv, _)| v < bv) {
                    best = Some((v, j));
                }
            }
            best.map(|(_, j)| j)
        }
    }

    fn leaving_row(&self, col: usize) -> Option<usize> {
        let mut best: Option<(f64, usize)> = None;
        for i in 0..self.m {
            let a = self.t[i][col];
            if a > EPS {
                let ratio = self.t[i][self.width - 1] / a;
                // Break ties on the smallest basis index (Bland-safe).
                let better = match best {
                    None => true,
                    Some((br, bi)) => {
                        ratio < br - EPS || (ratio < br + EPS && self.basis[i] < self.basis[bi])
                    }
                };
                if better {
                    best = Some((ratio, i));
                }
            }
        }
        best.map(|(_, i)| i)
    }

    fn pivot(&mut self, row: usize, col: usize) {
        let width = self.width;
        let pivot_val = self.t[row][col];
        debug_assert!(pivot_val.abs() > EPS, "pivot on a zero element");
        for j in 0..width {
            self.t[row][j] /= pivot_val;
        }
        for i in 0..=self.m {
            if i == row {
                continue;
            }
            let factor = self.t[i][col];
            if factor != 0.0 {
                for j in 0..width {
                    let v = self.t[row][j];
                    self.t[i][j] -= factor * v;
                }
                self.t[i][col] = 0.0; // kill round-off exactly
            }
        }
        self.basis[row] = col;
    }

    /// After phase 1, any artificial still basic sits at value 0; pivot it
    /// out on a nonzero structural/slack column, or leave the (redundant)
    /// row harmlessly in place if the whole row is zero.
    fn evict_basic_artificials(&mut self) {
        for i in 0..self.m {
            if self.basis[i] >= self.art_start {
                if let Some(col) = (0..self.art_start).find(|&j| self.t[i][j].abs() > EPS) {
                    self.pivot(i, col);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opt(outcome: LpOutcome) -> (f64, Vec<f64>) {
        match outcome {
            LpOutcome::Optimal { objective, x } => (objective, x),
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn unconstrained_minimum_is_zero_vector() {
        let (obj, x) = opt(solve_lp(&[1.0, 2.0], &[]));
        assert!(obj.abs() < 1e-9);
        assert!(x.iter().all(|&v| v.abs() < 1e-9));
    }

    #[test]
    fn bounded_negative_costs_hit_upper_bounds() {
        let rows = vec![
            LpRow::new(vec![1.0, 0.0], Cmp::Le, 1.0),
            LpRow::new(vec![0.0, 1.0], Cmp::Le, 1.0),
        ];
        let (obj, x) = opt(solve_lp(&[-3.0, -4.0], &rows));
        assert!((obj + 7.0).abs() < 1e-7);
        assert!((x[0] - 1.0).abs() < 1e-7 && (x[1] - 1.0).abs() < 1e-7);
    }

    #[test]
    fn classic_textbook_lp() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 -> (2, 6), 36.
        let rows = vec![
            LpRow::new(vec![1.0, 0.0], Cmp::Le, 4.0),
            LpRow::new(vec![0.0, 2.0], Cmp::Le, 12.0),
            LpRow::new(vec![3.0, 2.0], Cmp::Le, 18.0),
        ];
        let (obj, x) = opt(solve_lp(&[-3.0, -5.0], &rows));
        assert!((obj + 36.0).abs() < 1e-7);
        assert!((x[0] - 2.0).abs() < 1e-7 && (x[1] - 6.0).abs() < 1e-7);
    }

    #[test]
    fn equality_constraints_work() {
        // min x + y s.t. x + y == 1, x <= 1, y <= 1 -> obj 1.
        let rows = vec![
            LpRow::new(vec![1.0, 1.0], Cmp::Eq, 1.0),
            LpRow::new(vec![1.0, 0.0], Cmp::Le, 1.0),
            LpRow::new(vec![0.0, 1.0], Cmp::Le, 1.0),
        ];
        let (obj, x) = opt(solve_lp(&[1.0, 1.0], &rows));
        assert!((obj - 1.0).abs() < 1e-7);
        assert!((x[0] + x[1] - 1.0).abs() < 1e-7);
    }

    #[test]
    fn ge_constraints_work() {
        // min 2x + 3y s.t. x + y >= 2 -> pick x = 2.
        let rows = vec![LpRow::new(vec![1.0, 1.0], Cmp::Ge, 2.0)];
        let (obj, x) = opt(solve_lp(&[2.0, 3.0], &rows));
        assert!((obj - 4.0).abs() < 1e-7);
        assert!((x[0] - 2.0).abs() < 1e-7);
    }

    #[test]
    fn infeasible_detected() {
        let rows = vec![
            LpRow::new(vec![1.0], Cmp::Ge, 2.0),
            LpRow::new(vec![1.0], Cmp::Le, 1.0),
        ];
        assert!(matches!(solve_lp(&[1.0], &rows), LpOutcome::Infeasible));
    }

    #[test]
    fn unbounded_detected() {
        // min -x with no upper bound on x.
        assert!(matches!(solve_lp(&[-1.0], &[]), LpOutcome::Unbounded));
    }

    #[test]
    fn negative_rhs_rows_normalize() {
        // -x <= -2  (i.e. x >= 2), min x -> 2.
        let rows = vec![LpRow::new(vec![-1.0], Cmp::Le, -2.0)];
        let (obj, x) = opt(solve_lp(&[1.0], &rows));
        assert!((obj - 2.0).abs() < 1e-7);
        assert!((x[0] - 2.0).abs() < 1e-7);
    }

    #[test]
    fn redundant_equalities_tolerated() {
        // x + y == 1 stated twice.
        let rows = vec![
            LpRow::new(vec![1.0, 1.0], Cmp::Eq, 1.0),
            LpRow::new(vec![1.0, 1.0], Cmp::Eq, 1.0),
            LpRow::new(vec![1.0, 0.0], Cmp::Le, 1.0),
            LpRow::new(vec![0.0, 1.0], Cmp::Le, 1.0),
        ];
        let (obj, _) = opt(solve_lp(&[1.0, 2.0], &rows));
        assert!((obj - 1.0).abs() < 1e-7);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Multiple constraints tight at the optimum.
        let rows = vec![
            LpRow::new(vec![1.0, 1.0], Cmp::Le, 1.0),
            LpRow::new(vec![1.0, 0.0], Cmp::Le, 1.0),
            LpRow::new(vec![0.0, 1.0], Cmp::Le, 1.0),
            LpRow::new(vec![2.0, 2.0], Cmp::Le, 2.0),
        ];
        let (obj, _) = opt(solve_lp(&[-1.0, -1.0], &rows));
        assert!((obj + 1.0).abs() < 1e-7);
    }

    #[test]
    fn fractional_vertex_found() {
        // min -x0 - x1 s.t. 2x0 + x1 <= 2, x0 + 2x1 <= 2, x <= 1
        // optimum at (2/3, 2/3), objective -4/3.
        let rows = vec![
            LpRow::new(vec![2.0, 1.0], Cmp::Le, 2.0),
            LpRow::new(vec![1.0, 2.0], Cmp::Le, 2.0),
            LpRow::new(vec![1.0, 0.0], Cmp::Le, 1.0),
            LpRow::new(vec![0.0, 1.0], Cmp::Le, 1.0),
        ];
        let (obj, x) = opt(solve_lp(&[-1.0, -1.0], &rows));
        assert!((obj + 4.0 / 3.0).abs() < 1e-7);
        assert!((x[0] - 2.0 / 3.0).abs() < 1e-7);
        assert!((x[1] - 2.0 / 3.0).abs() < 1e-7);
    }
}
